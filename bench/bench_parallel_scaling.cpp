// Thread-scaling sweep for the three paradigm hot paths (ISSUE 2 acceptance
// bench): dense conv2d forward (CNN), batch event-graph construction (GNN),
// and spiking layer updates (SNN), each at 1, 2, 4 and hardware_concurrency
// threads via evd::par::set_thread_count.
//
// Besides throughput/speedup, every parallel run is checked bitwise against
// the single-thread output — the deterministic-partitioning contract that
// makes EVD_THREADS a pure performance knob. A mismatch prints loudly and
// the process exits non-zero.
//
// `--roofline` runs the single-core scalar-vs-vector sweep instead (see the
// roofline section below); its JSON lines are committed as BENCH_simd.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/graph_builder.hpp"
#include "gnn/graph_conv.hpp"
#include "nn/conv2d.hpp"
#include "simd/dispatch.hpp"
#include "snn/snn_model.hpp"

using namespace evd;

namespace {

bool g_checksum_failed = false;

std::vector<Index> sweep_thread_counts() {
  const auto hw = static_cast<Index>(std::thread::hardware_concurrency());
  std::vector<Index> counts{1, 2, 4};
  if (hw > 4) counts.push_back(hw);
  return counts;
}

double time_ms(const std::function<void()>& fn, int reps) {
  fn();  // warm-up (first touch, pool spin-up)
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
}

struct SweepRow {
  Index threads = 1;
  double ms = 0.0;
  bool identical = true;
};

void print_sweep(const char* workload, const std::vector<SweepRow>& rows) {
  Table table({"threads", "time [ms]", "speedup", "== serial output"});
  const double base = rows.front().ms;
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.threads), Table::num(row.ms, 3),
                   Table::num(base / row.ms, 2) + "x",
                   row.identical ? "yes" : "MISMATCH"});
    if (!row.identical) g_checksum_failed = true;
  }
  std::printf("\n-- %s --\n", workload);
  table.print();
}

// ---- CNN: conv2d forward (im2col + blocked GEMM path) ----

void sweep_conv2d() {
  Rng rng(1);
  nn::Conv2d conv(nn::Conv2dConfig{16, 32, 3, 1, 1, nn::ConvAlgo::Gemm}, rng);
  Rng xrng(2);
  const nn::Tensor x = nn::Tensor::randn({16, 64, 64}, xrng);

  std::vector<SweepRow> rows;
  nn::Tensor reference;
  for (const Index threads : sweep_thread_counts()) {
    par::set_thread_count(threads);
    nn::Tensor out;
    const double ms = time_ms([&] { out = conv.forward(x, false); }, 20);
    bool identical = true;
    if (threads == 1) {
      reference = out;
    } else {
      identical = std::memcmp(reference.data(), out.data(),
                              sizeof(float) *
                                  static_cast<size_t>(out.numel())) == 0;
    }
    rows.push_back({threads, ms, identical});
  }
  print_sweep("conv2d forward 16->32 ch, 64x64, k3 (GEMM path)", rows);
}

// ---- GNN: batch graph construction over a kd-tree ----

events::EventStream scaling_stream(Index events_count) {
  events::ShapeDatasetConfig config;
  config.width = 64;
  config.height = 64;
  config.duration_us = 200000;
  events::ShapeDataset dataset(config);
  auto sample = dataset.make_sample(0);
  auto& ev = sample.stream.events;
  while (static_cast<Index>(ev.size()) < events_count) {
    const auto n = ev.size();
    const TimeUs shift = ev.back().t + 100;
    for (size_t i = 0;
         i < n && static_cast<Index>(ev.size()) < events_count; ++i) {
      auto e = ev[i];
      e.t += shift;
      ev.push_back(e);
    }
  }
  ev.resize(static_cast<size_t>(events_count));
  return sample.stream;
}

std::uint64_t graph_checksum(const gnn::EventGraph& graph) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(graph.node_count()));
  mix(static_cast<std::uint64_t>(graph.edge_count()));
  for (Index i = 0; i < graph.node_count(); ++i) {
    for (const Index n : graph.neighbors(i)) {
      mix(static_cast<std::uint64_t>(n));
    }
  }
  return hash;
}

void sweep_graph_build() {
  const auto stream = scaling_stream(20000);
  gnn::GraphBuildConfig config;
  config.max_nodes = 4096;
  config.radius = 3.0f;

  std::vector<SweepRow> rows;
  std::uint64_t reference = 0;
  for (const Index threads : sweep_thread_counts()) {
    par::set_thread_count(threads);
    std::uint64_t checksum = 0;
    const double ms = time_ms(
        [&] { checksum = graph_checksum(gnn::build_graph(stream, config)); },
        5);
    bool identical = true;
    if (threads == 1) {
      reference = checksum;
    } else {
      identical = checksum == reference;
    }
    rows.push_back({threads, ms, identical});
  }
  print_sweep("batch graph construction, 4096 nodes, radius 3", rows);
}

// ---- SNN: spiking layer updates over a dense-ish train ----

snn::SpikeTrain random_train(Index steps, Index size, double density,
                             std::uint64_t seed) {
  snn::SpikeTrain train;
  train.steps = steps;
  train.size = size;
  train.active.resize(static_cast<size_t>(steps));
  Rng rng(seed);
  for (Index t = 0; t < steps; ++t) {
    for (Index i = 0; i < size; ++i) {
      if (rng.bernoulli(density)) {
        train.active[static_cast<size_t>(t)].push_back(i);
      }
    }
  }
  return train;
}

void sweep_snn_step() {
  snn::SpikingNetConfig config;
  config.layer_sizes = {1024, 2048, 2048, 10};
  Rng rng(3);
  snn::SpikingNet net(config, rng);
  const snn::SpikeTrain train = random_train(50, 1024, 0.05, 4);

  std::vector<SweepRow> rows;
  nn::Tensor reference;
  for (const Index threads : sweep_thread_counts()) {
    par::set_thread_count(threads);
    nn::Tensor logits;
    const double ms = time_ms([&] { logits = net.forward(train, false); }, 3);
    bool identical = true;
    if (threads == 1) {
      reference = logits;
    } else {
      identical = std::memcmp(reference.data(), logits.data(),
                              sizeof(float) *
                                  static_cast<size_t>(logits.numel())) == 0;
    }
    rows.push_back({threads, ms, identical});
  }
  print_sweep("SNN forward 1024-2048-2048-10, T=50, 5% input density", rows);
}

// ---- single-core roofline: scalar kernels vs the dispatched vector tier ----
//
// `--roofline` pins the pool to one thread and times the three vectorized
// hot spans under EVD_SIMD=scalar and under the best tier the CPU supports,
// so the reported speedup is pure vector-register win — no thread scaling
// mixed in. Every vector run is also checked bitwise against its scalar
// run: the kernels promise lane-for-lane identical arithmetic, so a
// roofline that cheats on the contract fails loudly here.

struct RooflineRow {
  const char* span = "";
  double scalar_ms = 0.0;
  double vector_ms = 0.0;
  bool identical = true;
  double speedup() const { return scalar_ms / vector_ms; }
};

/// Time fn under both tiers and bitwise-compare the `count` floats that
/// `data()` points at after each run (a getter, not a raw pointer, because
/// runs that reassign a Tensor relocate its storage).
RooflineRow roofline_span(const char* span, int reps, Index count,
                          const std::function<void()>& fn,
                          const std::function<const float*()>& data) {
  RooflineRow row;
  row.span = span;
  std::vector<float> scalar_out;
  {
    simd::ScopedTier tier(simd::Tier::Scalar);
    row.scalar_ms = time_ms(fn, reps);
    scalar_out.assign(data(), data() + count);
  }
  {
    simd::ScopedTier tier(simd::detect_best());
    row.vector_ms = time_ms(fn, reps);
    row.identical = std::memcmp(scalar_out.data(), data(),
                                sizeof(float) *
                                    static_cast<size_t>(count)) == 0;
  }
  return row;
}

RooflineRow roofline_conv() {
  Rng rng(1);
  nn::Conv2d conv(nn::Conv2dConfig{16, 32, 3, 1, 1, nn::ConvAlgo::Gemm}, rng);
  Rng xrng(2);
  const nn::Tensor x = nn::Tensor::randn({16, 64, 64}, xrng);
  nn::Tensor out;
  auto fn = [&] { out = conv.forward(x, false); };
  fn();  // materialise `out` so numel() is known
  return roofline_span("cnn.conv_forward", 20, out.numel(), fn,
                       [&] { return out.data(); });
}

RooflineRow roofline_snn() {
  snn::SpikingNetConfig config;
  config.layer_sizes = {1024, 2048, 2048, 10};
  Rng rng(3);
  snn::SpikingNet net(config, rng);
  const snn::SpikeTrain train = random_train(50, 1024, 0.05, 4);
  nn::Tensor logits;
  auto fn = [&] { logits = net.forward(train, false); };
  fn();
  return roofline_span("snn.step", 3, logits.numel(), fn,
                       [&] { return logits.data(); });
}

RooflineRow roofline_gnn() {
  constexpr Index kIn = 16, kOut = 16, kNodes = 2048, kDegree = 8;
  Rng rng(5);
  gnn::GraphConv conv(kIn, kOut, rng, gnn::Aggregation::Max);
  // Synthetic node features + ring-neighbor references: the exact
  // gathered-accumulate workload the incremental message pass runs per
  // event, without graph-construction cost polluting the span.
  std::vector<float> features(static_cast<size_t>(kNodes * kIn));
  for (auto& f : features) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> offsets(static_cast<size_t>(kNodes * kDegree * 3));
  for (auto& o : offsets) o = static_cast<float>(rng.uniform(-3.0, 3.0));
  std::vector<float> out(static_cast<size_t>(kNodes * kOut));
  auto fn = [&] {
    gnn::GraphConv::NeighborRef refs[kDegree];
    for (Index i = 0; i < kNodes; ++i) {
      for (Index j = 0; j < kDegree; ++j) {
        const Index n = (i + 1 + j) % kNodes;
        const float* o3 =
            offsets.data() + static_cast<size_t>((i * kDegree + j) * 3);
        refs[j] = {features.data() + static_cast<size_t>(n * kIn), o3[0],
                   o3[1], o3[2]};
      }
      conv.apply_node(features.data() + static_cast<size_t>(i * kIn),
                      std::span<const gnn::GraphConv::NeighborRef>(
                          refs, static_cast<size_t>(kDegree)),
                      out.data() + static_cast<size_t>(i * kOut));
    }
  };
  return roofline_span("gnn.message_pass", 10, static_cast<Index>(out.size()),
                       fn, [&] { return out.data(); });
}

int run_roofline() {
  par::set_thread_count(1);
  const simd::Tier best = simd::detect_best();
  std::printf("== single-core roofline: scalar vs %s kernels ==\n",
              simd::tier_name(best));
  if (best == simd::Tier::Scalar) {
    std::printf("no vector tier available on this CPU; nothing to compare.\n");
    return 0;
  }
  const RooflineRow rows[] = {roofline_conv(), roofline_snn(),
                              roofline_gnn()};
  Table table({"span", "scalar [ms]",
               std::to_string(simd::lane_width(best)) + "-lane [ms]",
               "speedup", "== scalar output"});
  for (const auto& row : rows) {
    table.add_row({row.span, Table::num(row.scalar_ms, 3),
                   Table::num(row.vector_ms, 3),
                   Table::num(row.speedup(), 2) + "x",
                   row.identical ? "yes" : "MISMATCH"});
    if (!row.identical) g_checksum_failed = true;
  }
  table.print();
  for (const auto& row : rows) {
    std::printf(
        "{\"bench\":\"simd_roofline\",\"span\":\"%s\",\"tier\":\"%s\","
        "\"threads\":1,\"scalar_ms\":%.3f,\"vector_ms\":%.3f,"
        "\"speedup\":%.2f,\"bitwise\":%s}\n",
        row.span, simd::tier_name(best), row.scalar_ms, row.vector_ms,
        row.speedup(), row.identical ? "true" : "false");
  }
  if (g_checksum_failed) {
    std::fprintf(stderr,
                 "FATAL: vector output diverged from the scalar kernels\n");
    return 1;
  }
  return 0;
}

// ---- google-benchmark registrations (thread count as the sweep axis) ----

void BM_Conv2dForwardThreads(benchmark::State& state) {
  par::set_thread_count(state.range(0));
  Rng rng(1);
  nn::Conv2d conv(nn::Conv2dConfig{16, 32, 3, 1, 1, nn::ConvAlgo::Gemm}, rng);
  Rng xrng(2);
  const nn::Tensor x = nn::Tensor::randn({16, 64, 64}, xrng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
  par::set_thread_count(1);
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_GraphBuildThreads(benchmark::State& state) {
  par::set_thread_count(state.range(0));
  const auto stream = scaling_stream(20000);
  gnn::GraphBuildConfig config;
  config.max_nodes = 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnn::build_graph(stream, config));
  }
  par::set_thread_count(1);
}
BENCHMARK(BM_GraphBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SnnForwardThreads(benchmark::State& state) {
  par::set_thread_count(state.range(0));
  snn::SpikingNetConfig config;
  config.layer_sizes = {1024, 2048, 2048, 10};
  Rng rng(3);
  snn::SpikingNet net(config, rng);
  const snn::SpikeTrain train = random_train(50, 1024, 0.05, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(train, false));
  }
  par::set_thread_count(1);
}
BENCHMARK(BM_SnnForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--roofline") == 0) {
    return run_roofline();
  }
  std::printf("== parallel scaling: CNN / GNN / SNN hot paths "
              "(hardware_concurrency = %u) ==\n",
              std::thread::hardware_concurrency());
  sweep_conv2d();
  sweep_graph_build();
  sweep_snn_step();
  if (g_checksum_failed) {
    std::fprintf(stderr,
                 "FATAL: parallel output diverged from the serial baseline\n");
    return 1;
  }
  std::printf("\nall parallel outputs bitwise-identical to EVD_THREADS=1.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
