// Reproduces the §III-A / §V on-chip learning argument: surrogate-gradient
// backpropagation "is an unrealistic algorithm for on-chip learning due to
// the prohibitive amount of memory ... to store the activity of all neurons
// over a potentially large number of timesteps"; eligibility propagation
// [34] and event-driven random feedback alignment [31] "are more realistic
// solutions" — and recent silicon (ReckOn [41]) implements exactly this.
//
// Same network, same data, three learners:
//   BPTT        — offline reference (stores T x neurons of state);
//   e-prop sym  — eligibility traces, learning signal via W_out^T;
//   e-prop rnd  — fully local: fixed random feedback [31].
// Reported: accuracy and the learning-state memory each needs.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "events/dataset.hpp"
#include "events/dvs_simulator.hpp"
#include "snn/encoding.hpp"
#include "snn/eprop.hpp"
#include "snn/snn_model.hpp"
#include "snn/stdp.hpp"

using namespace evd;

int main() {
  std::printf("== ABL-LEARN: offline BPTT vs on-chip-capable e-prop ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(50, 15, train, test);

  snn::EventEncoderConfig encoder;
  encoder.steps = 20;
  encoder.spatial_factor = 4;
  std::vector<snn::SpikeTrain> train_x, test_x;
  std::vector<Index> train_y, test_y;
  Rng augment_rng(9);
  for (const auto& s : train) {
    train_x.push_back(snn::encode_events(s.stream, encoder));
    train_y.push_back(s.label);
    // Spatial-shift augmentation, as in the SNN pipeline (the FC network
    // has no translation invariance of its own).
    for (int k = 0; k < 3; ++k) {
      const Index dx = static_cast<Index>(augment_rng.uniform_int(9)) - 4;
      const Index dy = static_cast<Index>(augment_rng.uniform_int(9)) - 4;
      events::EventStream shifted;
      shifted.width = s.stream.width;
      shifted.height = s.stream.height;
      for (events::Event e : s.stream.events) {
        const Index x = e.x + dx;
        const Index y = e.y + dy;
        if (x < 0 || y < 0 || x >= shifted.width || y >= shifted.height) {
          continue;
        }
        e.x = static_cast<std::int16_t>(x);
        e.y = static_cast<std::int16_t>(y);
        shifted.events.push_back(e);
      }
      train_x.push_back(snn::encode_events(shifted, encoder));
      train_y.push_back(s.label);
    }
  }
  for (const auto& s : test) {
    test_x.push_back(snn::encode_events(s.stream, encoder));
    test_y.push_back(s.label);
  }

  snn::SpikingNetConfig net_config;
  net_config.layer_sizes = {snn::encoded_size(32, 32, encoder), 96, 4};

  Table table({"learner", "locality", "test acc",
               "learning state @T=20", "@T=1000 (long seq.)"});

  // BPTT reference.
  {
    Rng rng(1);
    snn::SpikingNet net(net_config, rng);
    snn::SnnFitOptions options;
    options.epochs = 15;
    options.lr = 2e-3f;
    snn::fit_snn(net, train_x, train_y, options);
    const double accuracy = snn::evaluate_snn(net, test_x, test_y);
    table.add_row(
        {"surrogate-gradient BPTT [30]", "offline (full history)",
         Table::num(accuracy, 3),
         Table::eng(static_cast<double>(
             snn::EpropTrainer::bptt_state_bytes(net, 20))) + "B",
         Table::eng(static_cast<double>(
             snn::EpropTrainer::bptt_state_bytes(net, 1000))) + "B"});
  }
  // E-prop variants.
  for (const bool symmetric : {true, false}) {
    Rng rng(1);
    snn::SpikingNet net(net_config, rng);
    snn::EpropConfig config;
    config.symmetric_feedback = symmetric;
    config.lr = 2e-3f;
    snn::EpropTrainer trainer(net, config);
    snn::fit_eprop(trainer, train_x, train_y, 15);
    const double accuracy = snn::evaluate_snn(net, test_x, test_y);
    const std::string state =
        Table::eng(static_cast<double>(trainer.trainer_state_bytes())) + "B";
    table.add_row({symmetric ? "e-prop, symmetric feedback [34]"
                             : "e-prop, random feedback [31]",
                   symmetric ? "forward-only (weight transport)"
                             : "forward-only, fully local",
                   Table::num(accuracy, 3), state, state});
  }
  table.print();

  std::printf(
      "\nBPTT's learning state grows linearly with sequence length (the\n"
      "'prohibitive' memory of SIII-A); e-prop's is constant — the property\n"
      "that makes on-chip continual learning (ReckOn [41], SV) feasible —\n"
      "at a modest accuracy cost that shrinks further with the symmetric\n"
      "learning signal.\n");

  // ---- Fully unsupervised route: STDP ([27]) ----
  // STDP learns *spatial* receptive fields, so (like Diehl & Cook's
  // centred MNIST digits) it needs classes that are spatially distinct:
  // anisotropic shapes spinning in place at the sensor centre.
  std::printf("\n-- unsupervised STDP specialisation ([27]) --\n");
  const std::vector<events::ShapeKind> stdp_classes = {
      events::ShapeKind::Square, events::ShapeKind::Triangle,
      events::ShapeKind::Bar, events::ShapeKind::Cross};
  auto centred_sample = [&](Index index) {
    const auto label = static_cast<Index>(index % stdp_classes.size());
    Rng rng(9000 + static_cast<std::uint64_t>(index));
    events::Scene scene(32, 32, 0.1f);
    events::MovingShape shape;
    shape.kind = stdp_classes[static_cast<size_t>(label)];
    shape.x0 = 16.0;
    shape.y0 = 16.0;
    shape.radius = 8.0;
    shape.angle0 = rng.uniform(0.0, 6.28318530717958647692);
    shape.angular_velocity = rng.bernoulli(0.5) ? 4.0 : -4.0;
    shape.luminance = 0.9f;
    scene.add_shape(shape);
    events::DvsSimulator simulator(32, 32, events::DvsConfig{}, rng.fork());
    return std::pair<snn::SpikeTrain, Index>{
        snn::encode_events(simulator.simulate(scene, 100000), encoder),
        label};
  };
  std::vector<snn::SpikeTrain> stdp_train, stdp_test;
  std::vector<Index> stdp_train_y, stdp_test_y;
  for (Index i = 0; i < 120; ++i) {
    auto [x, y] = centred_sample(i);
    stdp_train.push_back(std::move(x));
    stdp_train_y.push_back(y);
  }
  for (Index i = 120; i < 160; ++i) {
    auto [x, y] = centred_sample(i);
    stdp_test.push_back(std::move(x));
    stdp_test_y.push_back(y);
  }

  snn::StdpConfig stdp_config;
  stdp_config.inputs = snn::encoded_size(32, 32, encoder);
  stdp_config.outputs = 12;
  stdp_config.threshold = 6.0f;
  snn::StdpLayer stdp(stdp_config);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (const auto& x : stdp_train) stdp.present(x, /*learn=*/true);
  }
  // Purity probe: assign each output to its majority class, score test set.
  std::vector<std::vector<Index>> votes(
      static_cast<size_t>(stdp_config.outputs),
      std::vector<Index>(stdp_classes.size(), 0));
  for (size_t i = 0; i < stdp_train.size(); ++i) {
    const auto counts = stdp.present(stdp_train[i], /*learn=*/false);
    const auto winner = static_cast<size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    ++votes[winner][static_cast<size_t>(stdp_train_y[i])];
  }
  std::vector<Index> assignment(static_cast<size_t>(stdp_config.outputs), 0);
  for (size_t j = 0; j < votes.size(); ++j) {
    assignment[j] = static_cast<Index>(
        std::max_element(votes[j].begin(), votes[j].end()) -
        votes[j].begin());
  }
  Index correct = 0;
  for (size_t i = 0; i < stdp_test.size(); ++i) {
    const auto counts = stdp.present(stdp_test[i], /*learn=*/false);
    const auto winner = static_cast<size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    correct += (assignment[winner] == stdp_test_y[i]) ? 1 : 0;
  }
  std::printf("centred spinning shapes, label-free STDP + majority "
              "read-out: %.3f accuracy (chance 0.25) — Hebbian local\n"
              "learning with no gradients at all, the most hardware-"
              "friendly end of the SIII-A learning spectrum.\n",
              static_cast<double>(correct) /
                  static_cast<double>(stdp_test.size()));
  return 0;
}
