// Reproduces the §V temporal-memory exchange:
//   "While it may be argued that SNNs are required for tasks relying on
//    temporal memory, recurrent blocks can be readily incorporated into
//    CNNs for this purpose, too [76]."
//
// Two workloads probe two ranges of temporal structure:
//
//  ROTATION (short-range): a cross spinning CW vs CCW. Local event timing
//  (and even the static ON/OFF polarity geometry — leading edges brighten,
//  trailing edges darken) carries the direction.
//
//  ORDER (long-range): two shapes at mirrored positions, one appearing in
//  each half of the recording; class = which side came first. The
//  time-integrated frames of the two classes are identical by construction,
//  so *only* memory spanning the recording can solve it.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "cnn/recurrent.hpp"
#include "cnn/representation.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

std::vector<nn::Tensor> frame_sequence(const events::EventStream& stream,
                                       TimeUs period) {
  cnn::FrameOptions options;
  auto frames = cnn::build_frame_sequence(stream, period, options);
  if (frames.empty()) {
    frames.emplace_back(std::vector<Index>{2, stream.height, stream.width});
  }
  return frames;
}

double pipeline_accuracy(core::EventPipeline& pipeline,
                         std::span<const events::LabelledSample> train,
                         std::span<const events::LabelledSample> test) {
  pipeline.train(train, core::TrainOptions{0, 0.0f, 1, false});
  Index correct = 0;
  for (const auto& s : test) {
    correct += (pipeline.classify(s.stream) == s.label) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

void run_task(const char* name,
              const std::vector<events::LabelledSample>& train,
              const std::vector<events::LabelledSample>& test) {
  std::printf("-- %s: %zu train / %zu test --\n", name, train.size(),
              test.size());
  Table table({"model", "temporal state", "test accuracy"});

  {
    cnn::CnnPipelineConfig config;
    config.num_classes = 2;
    cnn::CnnPipeline pipeline(config);
    table.add_row({"CNN, single count frame", "none (polarity statics only)",
                   Table::num(pipeline_accuracy(pipeline, train, test), 3)});
  }
  {
    cnn::RecurrentCnnConfig config;
    config.num_classes = 2;
    std::vector<std::vector<nn::Tensor>> train_seq, test_seq;
    std::vector<Index> train_labels, test_labels;
    for (const auto& s : train) {
      train_seq.push_back(frame_sequence(s.stream, 10000));
      train_labels.push_back(s.label);
    }
    for (const auto& s : test) {
      test_seq.push_back(frame_sequence(s.stream, 10000));
      test_labels.push_back(s.label);
    }
    cnn::RecurrentCnn model(config);
    cnn::fit_recurrent(model, train_seq, train_labels, 25, 2e-3f);
    table.add_row({"recurrent CNN, 10 ms frames [76]",
                   "RNN state (unbounded range)",
                   Table::num(evaluate_recurrent(model, test_seq,
                                                 test_labels),
                              3)});
  }
  {
    snn::SnnPipelineConfig config;
    config.num_classes = 2;
    snn::SnnPipeline pipeline(config);
    table.add_row({"SNN, 20 timesteps", "membranes + leaky readout",
                   Table::num(pipeline_accuracy(pipeline, train, test), 3)});
  }
  {
    gnn::GnnPipelineConfig config;
    config.num_classes = 2;
    gnn::GnnPipeline pipeline(config);
    table.add_row({"event-GNN", "(dx,dy,dt) edges, ~30 ms horizon",
                   Table::num(pipeline_accuracy(pipeline, train, test), 3)});
  }
  table.print();
}

}  // namespace

int main() {
  std::printf("== CLAIM-MEM: temporal-memory workloads (SV, [76]) ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 2;

  std::vector<events::LabelledSample> train, test;
  events::make_rotation_split(dataset_config, 50, 20, train, test);
  run_task("ROTATION direction (CW vs CCW)", train, test);

  std::printf("\n");
  events::make_order_split(dataset_config, 50, 20, train, test);
  run_task("appearance ORDER (left-first vs right-first)", train, test);

  std::printf(
      "\nReadings:\n"
      "  * ROTATION: even the static frame solves it via ON/OFF polarity\n"
      "    geometry (leading edges brighten, trailing darken) — integrated\n"
      "    polarity frames carry more motion information than the paper's\n"
      "    dichotomy suggests; all stateful models solve it too.\n"
      "  * ORDER: the static frame is at chance *by construction*; the\n"
      "    recurrent CNN recovers the order [76], supporting the paper's\n"
      "    rebuttal that SNN state is not the only route to temporal\n"
      "    memory. The event-GNN's relative (dt) encoding is time-\n"
      "    translation invariant and its graph horizon (~30 ms) is shorter\n"
      "    than the burst gap, so long-range order is invisible to it —\n"
      "    the kind of open problem behind Table I's GNN '?' entries.\n");
  return 0;
}
