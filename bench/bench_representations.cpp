// Reproduces ABL-REPR (§III-B): the event-to-frame representation ablation.
// Simple event counting [53],[54] discards all intra-window timing; time
// surfaces [56] keep some; combined count+surface channels [57] keep both.
// Same CNN, same split — accuracy, preparation cost and sensitivity to
// timestamp shuffling per representation.
#include <cstdio>

#include "cnn/dense_model.hpp"
#include "cnn/representation.hpp"
#include "common/table.hpp"
#include "core/workload.hpp"
#include "events/dataset.hpp"

using namespace evd;

namespace {

nn::Tensor frame_of(const events::EventStream& stream,
                    const cnn::FrameOptions& options) {
  return cnn::build_frame(stream.events, stream.width, stream.height,
                          stream.events.front().t,
                          stream.events.back().t + 1, options);
}

}  // namespace

int main() {
  std::printf("== ABL-REPR: event representation ablation ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(40, 10, train, test);

  Table table({"representation", "channels", "test acc",
               "acc (time shuffled)", "prep ops/frame", "prep bytes"});

  for (const auto repr :
       {cnn::Representation::CountSigned, cnn::Representation::CountTwoChannel,
        cnn::Representation::TimeSurface, cnn::Representation::ExpTimeSurface,
        cnn::Representation::Combined}) {
    cnn::FrameOptions options;
    options.repr = repr;

    // Build frames (counting preparation cost on the first).
    nn::OpCounter prep_counter;
    std::vector<nn::Tensor> train_frames, test_frames, shuffled_frames;
    std::vector<Index> train_labels, test_labels;
    {
      nn::ScopedCounter scope(prep_counter);
      train_frames.push_back(frame_of(train[0].stream, options));
    }
    train_labels.push_back(train[0].label);
    for (size_t i = 1; i < train.size(); ++i) {
      train_frames.push_back(frame_of(train[i].stream, options));
      train_labels.push_back(train[i].label);
    }
    std::uint64_t shuffle_seed = 77;
    for (const auto& s : test) {
      test_frames.push_back(frame_of(s.stream, options));
      shuffled_frames.push_back(frame_of(
          core::shuffle_timestamps(s.stream, shuffle_seed++), options));
      test_labels.push_back(s.label);
    }

    Rng rng(3);
    cnn::CnnModelConfig model_config;
    model_config.in_channels = cnn::representation_channels(repr);
    auto model = cnn::make_event_cnn(model_config, rng);
    cnn::FitOptions fit;
    fit.epochs = 30;
    fit.lr = 2e-3f;
    cnn::fit_classifier(model, train_frames, train_labels, fit);

    const double accuracy =
        cnn::evaluate_classifier(model, test_frames, test_labels);
    const double shuffled_accuracy =
        cnn::evaluate_classifier(model, shuffled_frames, test_labels);

    table.add_row(
        {cnn::representation_name(repr),
         std::to_string(cnn::representation_channels(repr)),
         Table::num(accuracy, 3), Table::num(shuffled_accuracy, 3),
         Table::eng(static_cast<double>(prep_counter.total_ops())),
         Table::eng(static_cast<double>(prep_counter.act_bytes_written))});
  }
  // HATS [56] — different tensor geometry (per-cell histograms), same
  // classifier family, same protocol.
  {
    cnn::HatsOptions hats_options;
    hats_options.cell = 4;  // 8x8 cell grid: keeps enough spatial layout at 32x32
    nn::OpCounter prep_counter;
    std::vector<nn::Tensor> train_frames, test_frames, shuffled_frames;
    std::vector<Index> train_labels, test_labels;
    {
      nn::ScopedCounter scope(prep_counter);
      train_frames.push_back(
          cnn::build_hats(train[0].stream.events, 32, 32, hats_options));
    }
    train_labels.push_back(train[0].label);
    for (size_t i = 1; i < train.size(); ++i) {
      train_frames.push_back(
          cnn::build_hats(train[i].stream.events, 32, 32, hats_options));
      train_labels.push_back(train[i].label);
    }
    std::uint64_t shuffle_seed = 177;
    for (const auto& s : test) {
      test_frames.push_back(cnn::build_hats(s.stream.events, 32, 32, hats_options));
      const auto shuffled = core::shuffle_timestamps(s.stream, shuffle_seed++);
      shuffled_frames.push_back(
          cnn::build_hats(shuffled.events, 32, 32, hats_options));
      test_labels.push_back(s.label);
    }
    Rng rng(3);
    cnn::CnnModelConfig model_config;
    model_config.in_channels = train_frames[0].dim(0);
    model_config.height = train_frames[0].dim(1);
    model_config.width = train_frames[0].dim(2);
    auto model = cnn::make_event_cnn(model_config, rng);
    cnn::FitOptions fit;
    fit.epochs = 30;
    fit.lr = 2e-3f;
    cnn::fit_classifier(model, train_frames, train_labels, fit);
    table.add_row(
        {"HATS [56] (4px cells, R=2)",
         std::to_string(train_frames[0].dim(0)),
         Table::num(cnn::evaluate_classifier(model, test_frames, test_labels),
                    3),
         Table::num(cnn::evaluate_classifier(model, shuffled_frames,
                                             test_labels),
                    3),
         Table::eng(static_cast<double>(prep_counter.total_ops())),
         Table::eng(static_cast<double>(prep_counter.act_bytes_written))});
  }

  table.print();
  std::printf(
      "\ncount representations are invariant to timestamp shuffling (they\n"
      "'effectively discard the fine temporal resolution', SIII-B); the\n"
      "surface-based ones degrade when time is destroyed, showing they\n"
      "actually consume it. Preparation cost grows with channel count —\n"
      "the CNN's 'Data - Preparation' burden in Table I.\n");
  return 0;
}
