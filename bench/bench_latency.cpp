// Reproduces CLAIM-LAT (§V): "CNNs largely lack this potential for
// data-driven computation that puts a lower bound on how fast they can
// respond to changes in their input data", while SNNs and event-graphs are
// event-driven.
//
// Workload: a quiet sensor; a shape sweeps into view at a known onset time.
// We measure, per pipeline, the delay from onset to (a) the first decision
// incorporating post-onset data and (b) the first *correct* decision —
// sweeping the CNN frame period and the SNN timestep to show that each
// clocked paradigm's latency floor is its period, whereas the GNN reacts
// per event.
#include <cmath>
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

struct LatencyResult {
  double first_us = 0.0;
  double first_correct_us = 0.0;
};

LatencyResult measure_latency(core::EventPipeline& pipeline,
                              const events::ShapeDatasetConfig& dataset,
                              Index trials) {
  Percentiles first, correct;
  for (Index trial = 0; trial < trials; ++trial) {
    const int label = static_cast<int>(trial % dataset.num_classes);
    // Jitter the onset across trials so it samples the clocked pipelines'
    // periods uniformly instead of aliasing with their grids.
    const TimeUs onset_us = 30000 + trial * 3777;
    const auto onset = events::make_onset_stream(
        dataset, label, onset_us, 100000,
        1000 + static_cast<std::uint64_t>(trial));
    auto session = pipeline.open_session(dataset.width, dataset.height);
    for (const auto& e : onset.stream.events) session->feed(e);
    session->advance_to(100000);

    double first_us = NAN, correct_us = NAN;
    for (const auto& d : session->decisions()) {
      if (d.t <= onset.onset_us || d.label < 0) continue;
      if (std::isnan(first_us)) {
        first_us = static_cast<double>(d.t - onset.onset_us);
      }
      if (std::isnan(correct_us) && d.label == label) {
        correct_us = static_cast<double>(d.t - onset.onset_us);
        break;
      }
    }
    first.add(std::isnan(first_us) ? 70000.0 : first_us);
    correct.add(std::isnan(correct_us) ? 70000.0 : correct_us);
  }
  return {first.mean(), correct.mean()};
}

}  // namespace

int main() {
  std::printf("== CLAIM-LAT: stimulus-onset reaction latency ==\n\n");

  events::ShapeDatasetConfig dataset;
  dataset.num_classes = 4;
  events::ShapeDataset generator(dataset);
  std::vector<events::LabelledSample> train, test;
  generator.make_split(40, 5, train, test);

  // epochs/lr <= 0: each pipeline trains with its own default recipe.
  core::TrainOptions options{0, 0.0f, 1, false};

  std::printf("training the three pipelines once...\n");
  Table table({"pipeline", "cadence", "first decision [ms]",
               "first correct [ms]"});

  // CNN at several frame periods.
  for (const TimeUs period : {10000, 20000, 50000}) {
    cnn::CnnPipelineConfig config;
    config.frame_period_us = period;
    cnn::CnnPipeline pipeline(config);
    pipeline.train(train, options);
    const auto latency = measure_latency(pipeline, dataset, 8);
    table.add_row({"CNN", "frame " + Table::num(period / 1000.0, 0) + " ms",
                   Table::num(latency.first_us / 1000.0, 2),
                   Table::num(latency.first_correct_us / 1000.0, 2)});
  }

  // SNN at several timesteps.
  for (const TimeUs timestep : {2000, 5000}) {
    snn::SnnPipelineConfig config;
    config.timestep_us = timestep;
    snn::SnnPipeline pipeline(config);
    pipeline.train(train, options);
    const auto latency = measure_latency(pipeline, dataset, 8);
    table.add_row({"SNN", "step " + Table::num(timestep / 1000.0, 0) + " ms",
                   Table::num(latency.first_us / 1000.0, 2),
                   Table::num(latency.first_correct_us / 1000.0, 2)});
  }

  // GNN: per-event.
  {
    gnn::GnnPipelineConfig config;
    gnn::GnnPipeline pipeline(config);
    pipeline.train(train, options);
    const auto latency = measure_latency(pipeline, dataset, 8);
    table.add_row({"GNN", "per event",
                   Table::num(latency.first_us / 1000.0, 2),
                   Table::num(latency.first_correct_us / 1000.0, 2)});
  }

  table.print();
  std::printf(
      "\npaper (§V): the frame period lower-bounds the CNN's reaction — its\n"
      "first-decision latency tracks the period (~period/2 expected delay +\n"
      "queueing to the boundary), the SNN's tracks its (finer) timestep, and\n"
      "the event-graph reacts with the first post-onset events themselves.\n"
      "First-correct latencies additionally include evidence accumulation,\n"
      "which is why they exceed the floors for every paradigm.\n");
  return 0;
}
