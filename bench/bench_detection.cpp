// The detection/localization application domain (paper §III-A Spiking-YOLO
// [35], §IV "object detection [70]"): event-cameras are pitched for fast
// localization of moving objects, so the laboratory includes a regression
// workload — predict the moving shape's (cx, cy, radius) from its events.
//
// Dense-frame CNN vs event-graph GNN with identical MSE training protocol;
// reported: mean centre error (pixels), radius error, and a "hit" rate
// (centre error < ground-truth radius — the prediction lands on the
// object).
#include <cstdio>

#include "cnn/dense_model.hpp"
#include "cnn/representation.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_model.hpp"
#include "gnn/graph_builder.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"

using namespace evd;

namespace {

nn::Tensor truth_of(const events::LocalizationSample& sample, float scale) {
  nn::Tensor t({3});
  t[0] = sample.cx / scale;
  t[1] = sample.cy / scale;
  t[2] = sample.radius / scale;
  return t;
}

struct Metrics {
  double centre_error = 0.0;
  double radius_error = 0.0;
  double hit_rate = 0.0;
};

Metrics score(std::span<const nn::Tensor> predictions,
              std::span<const events::LocalizationSample> test, float scale) {
  Metrics metrics;
  for (size_t i = 0; i < test.size(); ++i) {
    const double dx = predictions[i][0] * scale - test[i].cx;
    const double dy = predictions[i][1] * scale - test[i].cy;
    const double centre = std::sqrt(dx * dx + dy * dy);
    metrics.centre_error += centre;
    metrics.radius_error +=
        std::abs(predictions[i][2] * scale - test[i].radius);
    metrics.hit_rate += centre < test[i].radius ? 1.0 : 0.0;
  }
  const auto n = static_cast<double>(test.size());
  metrics.centre_error /= n;
  metrics.radius_error /= n;
  metrics.hit_rate /= n;
  return metrics;
}

}  // namespace

int main() {
  std::printf("== detection/localization domain ([35],[70]) ==\n\n");

  events::ShapeDatasetConfig config;
  config.num_classes = 4;
  std::vector<events::LocalizationSample> train, test;
  events::make_localization_split(config, 160, 40, train, test);
  const float scale = 32.0f;

  Table table({"model", "centre err [px]", "radius err [px]",
               "hit rate (err < r)"});

  // ---- CNN regressor ----
  {
    Rng rng(1);
    auto model = cnn::make_event_cnn(
        cnn::CnnModelConfig{2, 32, 32, /*num_classes=*/3, 8}, rng);
    cnn::FrameOptions frame_options;
    auto frame_of = [&](const events::EventStream& stream) {
      return cnn::build_frame(stream.events, 32, 32,
                              stream.events.front().t,
                              stream.events.back().t + 1, frame_options);
    };
    nn::Adam optimizer(model.params(), 1e-3f);
    for (int epoch = 0; epoch < 30; ++epoch) {
      for (const auto& sample : train) {
        const nn::Tensor prediction = model.forward(frame_of(sample.stream),
                                                    true);
        const auto loss = nn::mse_loss(prediction, truth_of(sample, scale));
        model.backward(loss.grad);
        optimizer.step();
      }
    }
    std::vector<nn::Tensor> predictions;
    for (const auto& sample : test) {
      predictions.push_back(model.forward(frame_of(sample.stream), false));
    }
    const auto metrics = score(predictions, test, scale);
    table.add_row({"CNN (count frame + regression head)",
                   Table::num(metrics.centre_error, 2),
                   Table::num(metrics.radius_error, 2),
                   Table::num(metrics.hit_rate, 3)});
  }

  // ---- GNN regressor ----
  // The graph features are translation-invariant by construction (only
  // relative offsets enter the kernels), so — as real detection heads do —
  // the GNN regresses the *residual* from an anchor (the event centroid)
  // plus the radius; the anchor supplies the absolute position.
  {
    gnn::EventGnnConfig model_config;
    model_config.num_classes = 3;  // (d_cx, d_cy, radius)
    gnn::EventGnn model(model_config);
    gnn::GraphBuildConfig graph_config;
    struct Anchor {
      double x, y, r;
    };
    auto anchor_of = [](const events::EventStream& stream) {
      double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0;
      for (const auto& e : stream.events) {
        sx += e.x;
        sy += e.y;
        sxx += static_cast<double>(e.x) * e.x;
        syy += static_cast<double>(e.y) * e.y;
      }
      const double n = std::max<double>(1.0, stream.size());
      const double mx = sx / n;
      const double my = sy / n;
      const double var =
          std::max(0.0, sxx / n - mx * mx + syy / n - my * my);
      // Event-cloud spread as the size anchor.
      return Anchor{mx, my, std::sqrt(var / 2.0)};
    };
    auto residual_truth = [&](const events::LocalizationSample& sample) {
      const auto anchor = anchor_of(sample.stream);
      nn::Tensor t({3});
      t[0] = static_cast<float>((sample.cx - anchor.x) / 8.0);
      t[1] = static_cast<float>((sample.cy - anchor.y) / 8.0);
      t[2] = static_cast<float>((sample.radius - anchor.r) / 8.0);
      return t;
    };
    std::vector<gnn::EventGraph> train_graphs, test_graphs;
    for (const auto& sample : train) {
      train_graphs.push_back(gnn::build_graph(sample.stream, graph_config));
    }
    for (const auto& sample : test) {
      test_graphs.push_back(gnn::build_graph(sample.stream, graph_config));
    }
    nn::Adam optimizer(model.params(), 2e-3f);
    for (int epoch = 0; epoch < 30; ++epoch) {
      for (size_t i = 0; i < train.size(); ++i) {
        const nn::Tensor prediction = model.forward(train_graphs[i], true);
        const auto loss = nn::mse_loss(prediction, residual_truth(train[i]));
        model.backward(loss.grad);
        optimizer.step();
      }
    }
    std::vector<nn::Tensor> predictions;
    for (size_t i = 0; i < test.size(); ++i) {
      const nn::Tensor raw = model.forward(test_graphs[i], false);
      const auto anchor = anchor_of(test[i].stream);
      nn::Tensor absolute({3});
      absolute[0] = static_cast<float>((anchor.x + raw[0] * 8.0) / scale);
      absolute[1] = static_cast<float>((anchor.y + raw[1] * 8.0) / scale);
      absolute[2] = static_cast<float>((anchor.r + raw[2] * 8.0) / scale);
      predictions.push_back(absolute);
    }
    const auto metrics = score(predictions, test, scale);
    table.add_row({"event-GNN (anchor + residual head)",
                   Table::num(metrics.centre_error, 2),
                   Table::num(metrics.radius_error, 2),
                   Table::num(metrics.hit_rate, 3)});
  }

  // ---- Non-learned baseline: event centroid ----
  {
    std::vector<nn::Tensor> predictions;
    for (const auto& sample : test) {
      double sx = 0.0, sy = 0.0;
      for (const auto& e : sample.stream.events) {
        sx += e.x;
        sy += e.y;
      }
      const double n = std::max<double>(1.0, sample.stream.size());
      nn::Tensor p({3});
      p[0] = static_cast<float>(sx / n / scale);
      p[1] = static_cast<float>(sy / n / scale);
      p[2] = 7.0f / scale;  // dataset mean radius
      predictions.push_back(p);
    }
    const auto metrics = score(predictions, test, scale);
    table.add_row({"event centroid (no learning)",
                   Table::num(metrics.centre_error, 2),
                   Table::num(metrics.radius_error, 2),
                   Table::num(metrics.hit_rate, 3)});
  }

  table.print();
  std::printf(
      "\non this single-object workload the event stream's spatial\n"
      "concentration already localizes the target (strong centroid\n"
      "baseline); the learned heads add the radius estimate and the\n"
      "robustness to noise/smear that multi-object scenes require. Note\n"
      "the GNN needs an anchor: its graph features are translation-\n"
      "invariant by construction — absolute position must come from the\n"
      "readout side, a design constraint event-GNN detectors like [70]\n"
      "handle the same way.\n");
  return 0;
}
