// Reproduces Fig. 2: the three processing pipelines side by side.
//
//  * left  (SNN): LIF membrane dynamics under a spike train + the surrogate
//    gradient that replaces the spike's delta-function derivative;
//  * centre (CNN): two-channel dense-frame construction from events, the
//    sparsity of the resulting feature maps, and the compressed (non-zero
//    list) storage the zero-skipping accelerators rely on;
//  * right (GNN): the spatiotemporal graph built from the same events.
#include <cstdio>

#include "cnn/representation.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/graph_builder.hpp"
#include "hw/zero_skip.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "snn/lif.hpp"
#include "snn/surrogate.hpp"

using namespace evd;

namespace {

void snn_panel() {
  std::printf("-- Fig 2 left (SNN): LIF membrane + surrogate gradient --\n");
  snn::LifConfig config;
  config.beta = 0.9f;
  config.threshold = 1.0f;
  // Current injection: silence, a burst, then sustained drive.
  std::vector<float> current(60, 0.0f);
  for (int t = 10; t < 14; ++t) current[static_cast<size_t>(t)] = 0.35f;
  for (int t = 30; t < 55; ++t) current[static_cast<size_t>(t)] = 0.22f;
  const auto trace = simulate_lif(config, current);

  std::printf("membrane trace (#=V, ^=spike):\n");
  for (size_t t = 0; t < trace.membrane.size(); t += 2) {
    const int bar = static_cast<int>(trace.membrane[t] / config.threshold * 30);
    std::printf("  t=%2zu |%-30.*s|%s V=%.2f\n", t, bar,
                "##############################",
                trace.spikes[t] ? " ^ spike" : "", trace.membrane[t]);
  }
  std::printf("total spikes: %lld\n", (long long)trace.spike_count());

  Table surrogate_table({"V - theta", "true dH/dV", "fast_sigmoid", "boxcar",
                         "arctan"});
  for (const float x : {-1.0f, -0.5f, -0.1f, 0.0f, 0.1f, 0.5f, 1.0f}) {
    surrogate_table.add_row(
        {Table::num(x, 2), x == 0.0f ? "inf (delta)" : "0",
         Table::num(surrogate_grad(snn::SurrogateKind::FastSigmoid, x), 3),
         Table::num(surrogate_grad(snn::SurrogateKind::Boxcar, x), 3),
         Table::num(surrogate_grad(snn::SurrogateKind::ArcTan, x), 3)});
  }
  surrogate_table.print();
}

void cnn_panel(const events::EventStream& stream) {
  std::printf("\n-- Fig 2 centre (CNN): dense frame, sparse feature maps, "
              "compression --\n");
  cnn::FrameOptions options;
  options.repr = cnn::Representation::CountTwoChannel;
  const nn::Tensor frame =
      cnn::build_frame(stream.events, stream.width, stream.height,
                       stream.events.front().t, stream.events.back().t + 1,
                       options);
  std::printf("frame: %lld events -> [2, %lld, %lld] dense tensor, "
              "%.1f%% zeros\n",
              (long long)stream.size(), (long long)stream.height,
              (long long)stream.width, frame.zero_fraction() * 100.0);

  // One conv+ReLU stage: feature-map sparsity after rectification.
  Rng rng(1);
  nn::Conv2d conv(nn::Conv2dConfig{2, 8, 3, 1, 1}, rng);
  nn::ReLU relu;
  const nn::Tensor feature_map = relu.forward(conv.forward(frame, false), false);
  std::printf("conv3x3(2->8) + ReLU feature map: %.1f%% zeros\n",
              relu.last_sparsity() * 100.0);

  Table compress({"storage", "bytes", "vs dense"});
  const double dense_bytes = static_cast<double>(feature_map.numel()) * 1.0;
  const double nz_bytes = hw::compressed_bytes(
      feature_map.numel(), feature_map.zero_fraction(), 1.0);
  compress.add_row({"dense int8 map", Table::eng(dense_bytes), "1.00x"});
  compress.add_row({"non-zero list (Fig 2 'compression')",
                    Table::eng(nz_bytes),
                    Table::num(dense_bytes / nz_bytes, 2) + "x smaller"});
  compress.print();
}

void gnn_panel(const events::EventStream& stream) {
  std::printf("\n-- Fig 2 right (GNN): graphs from events --\n");
  Table table({"radius", "nodes", "edges", "mean degree", "graph bytes",
               "vs dense frame bytes"});
  const double frame_bytes =
      2.0 * static_cast<double>(stream.width * stream.height) * 4.0;
  for (const float radius : {2.0f, 3.0f, 5.0f}) {
    gnn::GraphBuildConfig config;
    config.radius = radius;
    config.max_nodes = 512;
    const auto graph = gnn::build_graph(stream, config);
    table.add_row(
        {Table::num(radius, 1), std::to_string(graph.node_count()),
         std::to_string(graph.edge_count()),
         Table::num(graph.mean_degree(), 2),
         Table::eng(static_cast<double>(graph.storage_bytes())),
         Table::num(static_cast<double>(graph.storage_bytes()) / frame_bytes,
                    2) +
             "x"});
  }
  table.print();
  std::printf("edges carry (dx, dy, dt) offsets: relative event timing is "
              "available to every conv layer.\n");
  // The graph's byte cost is resolution-independent (it scales with event
  // count), the frame's is not: project to the Gen4 sensor.
  gnn::GraphBuildConfig config;
  const auto graph = gnn::build_graph(stream, config);
  const double vga_frame_bytes = 2.0 * 1280.0 * 720.0 * 4.0;
  std::printf("at Gen4 resolution (1280x720) the same scene's dense frame "
              "costs %s vs a ~%s graph: %.0fx in the graph's favour — the "
              "sparsity advantage appears at scale.\n",
              Table::eng(vga_frame_bytes).c_str(),
              Table::eng(static_cast<double>(graph.storage_bytes())).c_str(),
              vga_frame_bytes / static_cast<double>(graph.storage_bytes()));
}

}  // namespace

int main() {
  std::printf("== FIG 2: SNN / CNN / GNN pipeline anatomy ==\n\n");
  events::ShapeDatasetConfig dataset_config;
  events::ShapeDataset dataset(dataset_config);
  const auto sample = dataset.make_sample(0);

  snn_panel();
  cnn_panel(sample.stream);
  gnn_panel(sample.stream);
  return 0;
}
