// Reproduces the §III-A analogue-hardware caveat: "as is the case with many
// analogue systems, transistor mismatch and other physical non-idealities
// limit the robustness of this approach."
//
// The trained SNN is deployed onto a simulated analogue substrate where
// every weight (synaptic conductance) and neuron threshold carries
// multiplicative mismatch noise; accuracy is swept against the mismatch
// level, with and without the digital-CNN comparison at matched parameter
// perturbation. The energy upside of analogue (bench_energy: ~45x) must be
// traded against this robustness cliff.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

/// Apply i.i.d. multiplicative log-normal-ish mismatch to all parameters.
void perturb(std::vector<nn::Param*> params, double sigma, Rng& rng) {
  for (auto* p : params) {
    for (Index i = 0; i < p->value.numel(); ++i) {
      p->value[i] *= static_cast<float>(1.0 + rng.normal(0.0, sigma));
    }
  }
}

struct Saved {
  std::vector<nn::Tensor> values;
  explicit Saved(std::vector<nn::Param*> params) {
    for (auto* p : params) values.push_back(p->value);
  }
  void restore(std::vector<nn::Param*> params) const {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = values[i];
    }
  }
};

}  // namespace

int main() {
  std::printf("== analogue mismatch robustness (§III-A caveat) ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(50, 15, train, test);

  core::TrainOptions options{0, 0.0f, 1, false};
  std::printf("training SNN and CNN baselines...\n");
  snn::SnnPipeline snn_pipeline{snn::SnnPipelineConfig{}};
  snn_pipeline.train(train, options);
  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  cnn_pipeline.train(train, options);

  auto accuracy_of = [&](core::EventPipeline& pipeline) {
    Index correct = 0;
    for (const auto& s : test) {
      correct += (pipeline.classify(s.stream) == s.label) ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(test.size());
  };

  Table table({"mismatch sigma", "analogue SNN acc (mean of 5 chips)",
               "worst chip", "CNN acc at same perturbation"});
  const Saved snn_weights(snn_pipeline.net().params());
  const Saved cnn_weights(cnn_pipeline.model().params());
  Rng rng(31);
  for (const double sigma : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    RunningStats snn_stats, cnn_stats;
    const Index chips = sigma == 0.0 ? 1 : 5;
    for (Index chip = 0; chip < chips; ++chip) {
      snn_weights.restore(snn_pipeline.net().params());
      cnn_weights.restore(cnn_pipeline.model().params());
      if (sigma > 0.0) {
        perturb(snn_pipeline.net().params(), sigma, rng);
        perturb(cnn_pipeline.model().params(), sigma, rng);
      }
      snn_stats.add(accuracy_of(snn_pipeline));
      cnn_stats.add(accuracy_of(cnn_pipeline));
    }
    table.add_row({Table::num(sigma, 2), Table::num(snn_stats.mean(), 3),
                   Table::num(snn_stats.min(), 3),
                   Table::num(cnn_stats.mean(), 3)});
  }
  snn_weights.restore(snn_pipeline.net().params());
  cnn_weights.restore(cnn_pipeline.model().params());
  table.print();

  std::printf(
      "\ntransistor mismatch in analogue arrays is ~5-20%% sigma; the sweep\n"
      "shows where the energy advantage of analogue neuromorphic cores\n"
      "(bench_energy) starts costing task accuracy — the robustness limit\n"
      "the paper flags for fully-analogue systems ([46],[49]).\n");
  return 0;
}
