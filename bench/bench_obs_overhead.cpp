// Observability overhead gate (ISSUE 5 acceptance bench).
//
// The evd::obs contract is "observe everything, perturb nothing": the whole
// instrumentation layer — per-thread metric shards, span rings, latency
// stamping in the SessionManager — must cost under 5% of serving throughput
// when enabled and under 1% when the EVD_OBS kill-switch is off.
//
// Two measurements, two gates:
//
//   1. Enabled gate (<5%): serve the same multi-session GNN workload with
//      observability on and off, min-of-N trials each, and require
//      wall_on <= 1.05 * wall_off. GNN is the worst case — it opens two
//      spans and records latency on *every* event, where CNN/SNN amortise
//      over frames/steps.
//   2. Disabled gate (<1%): direct A/B of sub-1% effects drowns in run-to-
//      run noise, so the disabled side is bounded analytically: run the
//      exact disabled instrument sequence a served event crosses (enable
//      checks, counters, spans, histograms — each one branch on an atomic
//      flag) in a tight loop, and require that sequence cost to stay under
//      1% of the measured per-event serving cost.
//
// Also emits obs_trace.json — a Chrome trace-event capture of a 16-session
// serving run (load it at https://ui.perfetto.dev) — which CI uploads as a
// workflow artifact, plus one machine-readable JSON line per measurement.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "events/event.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "obs/obs.hpp"
#include "runtime/session_manager.hpp"

using namespace evd;

namespace {

constexpr Index kWidth = 32;
constexpr Index kHeight = 32;
constexpr Index kEventsPerSession = 3000;
constexpr Index kSessions = 8;
constexpr TimeUs kDuration = 150000;
constexpr int kTrials = 7;

std::vector<events::Event> session_stream(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<events::Event> stream;
  stream.reserve(kEventsPerSession);
  for (Index i = 0; i < kEventsPerSession; ++i) {
    events::Event e;
    e.x = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kWidth)));
    e.y = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kHeight)));
    e.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    e.t = (i * kDuration) / kEventsPerSession;
    stream.push_back(e);
  }
  return stream;
}

gnn::GnnPipelineConfig pipeline_config() {
  // Every event inserts (stride 1) and runs the async message pass over a
  // hidden-32 model: a realistic per-event serving cost, against which the
  // instrument cost (two spans + counters per event) is measured.
  gnn::GnnPipelineConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.num_classes = 2;
  config.model.hidden = 32;
  config.model.layers = 2;
  config.stream_stride = 1;
  config.stream_max_nodes = 2048;
  config.decision_retain = 256;
  return config;
}

/// One serving run: `sessions` GNN sessions through the SessionManager,
/// ingest + pump to completion. Returns wall milliseconds.
double serve_once(gnn::GnnPipeline& pipeline, Index sessions) {
  runtime::SessionManager manager(/*burst=*/256);
  std::vector<runtime::SessionId> ids;
  std::vector<std::vector<events::Event>> streams;
  for (Index s = 0; s < sessions; ++s) {
    ids.push_back(manager.add(pipeline.open_session(kWidth, kHeight)));
    streams.push_back(session_stream(100 + static_cast<std::uint64_t>(s)));
  }
  const auto t0 = std::chrono::steady_clock::now();
  Index cursor = 0;
  while (cursor < kEventsPerSession) {
    const Index until = std::min<Index>(cursor + 2048, kEventsPerSession);
    for (Index s = 0; s < sessions; ++s) {
      for (Index i = cursor; i < until; ++i) {
        manager.submit(ids[s],
                       streams[static_cast<size_t>(s)][static_cast<size_t>(i)]);
      }
    }
    manager.pump_all();
    cursor = until;
  }
  for (Index s = 0; s < sessions; ++s) manager.submit_advance(ids[s], kDuration);
  manager.pump_all();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double min_wall_ms(bool obs_on) {
  obs::set_enabled(obs_on);
  gnn::GnnPipeline pipeline(pipeline_config());
  serve_once(pipeline, kSessions);  // warmup: shards, rings, graph storage
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const double ms = serve_once(pipeline, kSessions);
    if (ms < best) best = ms;
  }
  return best;
}

/// Cost of the full disabled instrument sequence one served event crosses,
/// nanoseconds per event: the submit-side stamp check, the pump-side burst
/// span check, the feed + decision counters, the two pipeline spans, and
/// the two latency histograms. All are a branch on the same process-global
/// atomic flag, so a realistic sequence overlaps in the pipeline rather
/// than paying each branch serially.
double disabled_sequence_cost_ns() {
  obs::set_enabled(false);
  obs::Counter fed = obs::counter("evd_bench_disabled_fed_total");
  obs::Counter emitted = obs::counter("evd_bench_disabled_emitted_total");
  obs::Histogram lat_session = obs::histogram("evd_bench_disabled_us");
  obs::Histogram lat_all = obs::histogram("evd_bench_disabled_all_us");
  constexpr std::int64_t kEvents = 4000000;
  std::int64_t guard = 0;  // keeps the enable checks observable
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < kEvents; ++i) {
    guard += obs::enabled() ? 1 : 0;  // submit-side stamp check
    guard += obs::enabled() ? 1 : 0;  // pump-side burst span check
    fed.add(1);
    {
      obs::Span graph_update("bench.disabled_graph_update");
      obs::Span message_pass("bench.disabled_message_pass");
    }
    emitted.add(1);
    lat_session.record(i);
    lat_all.record(i);
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (guard != 0) std::fprintf(stderr, "unexpected: obs enabled mid-loop\n");
  const double total_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  return total_ns / static_cast<double>(kEvents);
}

/// Capture obs_trace.json: a fresh 16-session serving run with tracing on.
bool capture_trace(const char* path) {
  obs::set_enabled(true);
  obs::Tracer::instance().clear();
  gnn::GnnPipeline pipeline(pipeline_config());
  serve_once(pipeline, 16);
  // dropped() reports spans overwritten before any collection; query it
  // before write_chrome_trace() collects and advances the seen mark.
  const auto dropped = obs::Tracer::instance().dropped();
  std::ofstream os(path);
  if (!os) return false;
  obs::Tracer::instance().write_chrome_trace(os);
  const auto spans = obs::Tracer::instance().collect();
  std::printf("wrote %s: %zu spans in window, %lld older spans overwritten\n",
              path, spans.size(), static_cast<long long>(dropped));
  return os.good() && !spans.empty();
}

}  // namespace

int main() {
  const auto hw = static_cast<Index>(std::thread::hardware_concurrency());
  const Index threads = hw > 0 ? hw : 1;
  par::set_thread_count(threads);
  std::printf(
      "== observability overhead (%lld threads, %lld sessions x %lld events, "
      "min of %d trials) ==\n",
      static_cast<long long>(threads), static_cast<long long>(kSessions),
      static_cast<long long>(kEventsPerSession), kTrials);

  // Interleave would be fairer under thermal drift, but min-of-N on a warm
  // pipeline is stable enough and keeps the phases readable.
  const double off_ms = min_wall_ms(false);
  const double on_ms = min_wall_ms(true);
  const double ratio = on_ms / off_ms;

  const double per_event_ns =
      1e6 * off_ms / static_cast<double>(kSessions * kEventsPerSession);
  const double sequence_ns = disabled_sequence_cost_ns();
  const double disabled_frac = sequence_ns / per_event_ns;

  std::printf("serve wall: obs off %.2f ms, obs on %.2f ms (%.2fx)\n", off_ms,
              on_ms, ratio);
  std::printf(
      "disabled bound: %.2f ns/event instrument sequence vs %.0f ns/event "
      "serve = %.3f%%\n",
      sequence_ns, per_event_ns, 100.0 * disabled_frac);

  std::printf(
      "{\"bench\":\"obs_overhead\",\"mode\":\"enabled\",\"threads\":%lld,"
      "\"sessions\":%lld,\"off_ms\":%.3f,\"on_ms\":%.3f,\"ratio\":%.4f,"
      "\"gate\":1.05}\n",
      static_cast<long long>(threads), static_cast<long long>(kSessions),
      off_ms, on_ms, ratio);
  std::printf(
      "{\"bench\":\"obs_overhead\",\"mode\":\"disabled\",\"sequence_ns\":%.3f,"
      "\"event_ns\":%.1f,\"fraction\":%.5f,\"gate\":0.01}\n",
      sequence_ns, per_event_ns, disabled_frac);

  bool ok = true;
  if (ratio > 1.05) {
    std::fprintf(stderr,
                 "FATAL: enabled observability costs %.1f%% (> 5%% gate)\n",
                 100.0 * (ratio - 1.0));
    ok = false;
  }
  if (disabled_frac > 0.01) {
    std::fprintf(stderr,
                 "FATAL: disabled observability bound %.2f%% (> 1%% gate)\n",
                 100.0 * disabled_frac);
    ok = false;
  }
  if (!capture_trace("obs_trace.json")) {
    std::fprintf(stderr, "FATAL: trace capture produced no spans\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
