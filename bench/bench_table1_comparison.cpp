// Reproduces TABLE I: the twelve-axis qualitative comparison of the SNN,
// CNN and GNN paradigms — regenerated as *measurements*.
//
// All three pipelines are trained on the identical ShapeDataset split, then
// every axis is measured by the comparison harness (see
// src/core/comparison.cpp and DESIGN.md for the axis-to-measurement map).
// The derived {-, +, ++} grades are printed next to the paper's published
// ratings.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "core/comparison.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

int main() {
  std::printf("== TABLE I: SNN / CNN / GNN comparison, measured ==\n\n");

  core::ComparisonConfig config;
  config.classification.dataset.num_classes = 4;
  config.classification.dataset.seed = 42;
  config.classification.train_per_class = 60;
  config.classification.test_per_class = 15;
  // epochs/lr <= 0: every pipeline trains with its own default recipe on
  // the identical split.
  config.classification.training.epochs = 0;
  config.classification.training.lr = 0.0f;
  config.streaming.onset_us = 30000;
  config.streaming.duration_us = 100000;
  config.streaming.trials = 4;
  config.probe_samples = 6;
  config.verbose = true;

  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  snn::SnnPipeline snn_pipeline{snn::SnnPipelineConfig{}};
  gnn::GnnPipeline gnn_pipeline{gnn::GnnPipelineConfig{}};

  core::ComparisonHarness harness(config);
  harness.add(&snn_pipeline);
  harness.add(&cnn_pipeline);
  harness.add(&gnn_pipeline);
  const core::ComparisonResult result = harness.run();

  std::printf("\n-- raw measurements --\n");
  result.measurement_table().print();

  std::printf("\n-- derived grades vs the paper's Table I --\n");
  result.rating_table().print();

  std::printf(
      "\nNotes:\n"
      "  * 'Hardware - Maturity' is a documented constant (CNN accelerators\n"
      "    are an industry; SNN cores exist in silicon; event-GNN hardware\n"
      "    'does not exist today', SIV) — not measurable in software.\n"
      "  * Grades derive from the measured columns by the rules in\n"
      "    src/core/rating.cpp (best ++, within ~8x +, beyond that -).\n"
      "  * Deviations from the paper and their causes are catalogued in\n"
      "    EXPERIMENTS.md (notably: at 32x32 the dense frame is unusually\n"
      "    cheap, compressing the CNN-vs-GNN operation/footprint gaps that\n"
      "    the paper reports at megapixel scale).\n");
  return 0;
}
