// Reproduces the paper's energy claims:
//
//  * [40]: "additions require around four times less energy" than
//    multiplications — printed straight from the energy tables;
//  * [42]: "memory accesses dominate energy consumption as high as 99% of
//    the total" in time-multiplexed SNN cores — measured by running the
//    trained SNN pipeline's real workload through the core model;
//  * §V: CNN accelerators [62] and digital spiking processors [78] sit at
//    hundreds of milliwatts, analogue spiking processors an order of
//    magnitude lower [46] — power at a fixed streaming rate;
//  * [42]/[44]: clocked vs event-driven neuron updates — cost crossover as
//    a function of input activity.
#include <cstdio>

#include "common/table.hpp"
#include "events/dataset.hpp"
#include "hw/energy_model.hpp"
#include "hw/report.hpp"
#include "hw/snn_core.hpp"
#include "hw/systolic.hpp"
#include "hw/zero_skip.hpp"
#include "cnn/cnn_pipeline.hpp"
#include "snn/event_driven.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

void op_energy_table() {
  std::printf("-- Per-operation energies (45nm survey, ref [40]) --\n");
  Table table({"technology", "add [pJ]", "mult [pJ]", "mult/add",
               "SRAM [pJ/B]"});
  auto row = [&](const char* name, const hw::EnergyTable& t) {
    table.add_row({name, Table::num(t.add_pj, 2), Table::num(t.mult_pj, 2),
                   Table::num(t.mult_pj / t.add_pj, 1) + "x",
                   Table::num(t.sram_pj_per_byte, 2)});
  };
  row("digital fp32", hw::EnergyTable::digital_45nm_fp32());
  row("digital int8", hw::EnergyTable::digital_45nm_int8());
  row("analogue neuromorphic", hw::EnergyTable::analog_neuromorphic());
  table.print();
  std::printf("paper claim [40]: additions ~4x cheaper than multiplications "
              "-> fp32 ratio above.\n\n");
}

struct MeasuredWorkloads {
  nn::OpCounter cnn;
  nn::OpCounter snn;
  double sample_interval_us = 0.0;
};

MeasuredWorkloads measure_real_workloads() {
  // Small but real: train briefly so activity statistics are authentic.
  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(10, 4, train, test);

  core::TrainOptions options;
  options.epochs = 4;
  options.lr = 2e-3f;

  MeasuredWorkloads workloads;
  workloads.sample_interval_us =
      static_cast<double>(dataset_config.duration_us);

  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  cnn_pipeline.train(train, options);
  {
    nn::ScopedCounter scope(workloads.cnn);
    for (const auto& s : test) (void)cnn_pipeline.classify(s.stream);
  }
  for (auto* field : {&workloads.cnn}) {
    // Per-inference averages.
    field->mults /= static_cast<Index>(test.size());
    field->adds /= static_cast<Index>(test.size());
    field->comparisons /= static_cast<Index>(test.size());
    field->zero_skippable_mults /= static_cast<Index>(test.size());
    field->param_bytes_read /= static_cast<Index>(test.size());
    field->act_bytes_read /= static_cast<Index>(test.size());
    field->act_bytes_written /= static_cast<Index>(test.size());
    field->state_bytes_rw /= static_cast<Index>(test.size());
  }

  snn::SnnPipeline snn_pipeline{snn::SnnPipelineConfig{}};
  snn_pipeline.train(train, options);
  {
    nn::ScopedCounter scope(workloads.snn);
    for (const auto& s : test) (void)snn_pipeline.classify(s.stream);
  }
  workloads.snn.mults /= static_cast<Index>(test.size());
  workloads.snn.adds /= static_cast<Index>(test.size());
  workloads.snn.comparisons /= static_cast<Index>(test.size());
  workloads.snn.param_bytes_read /= static_cast<Index>(test.size());
  workloads.snn.state_bytes_rw /= static_cast<Index>(test.size());
  return workloads;
}

void memory_domination(const MeasuredWorkloads& workloads) {
  std::printf("-- CLAIM-ENERGY: SNN core energy breakdown ([42]'s '99%% "
              "memory') --\n");
  const auto report = hw::run_snn_core(workloads.snn, hw::SnnCoreConfig{});
  std::printf("%s", hw::detailed(report.energy).c_str());
  std::printf("memory share of digital SNN-core energy: %.1f%% "
              "(paper: up to 99%%)\n",
              report.energy.memory_fraction() * 100.0);
  std::printf("=> the add-vs-mult advantage is 'largely irrelevant' (§III-A) "
              "because compute is only %.1f%% of the total.\n\n",
              (1.0 - report.energy.memory_fraction()) * 100.0);
}

void power_table(const MeasuredWorkloads& workloads) {
  std::printf("-- CLAIM-ENERGY: power at one classification per 100 ms "
              "stream (§V) --\n");
  Table table({"system", "energy/inf", "power", "paper anchor"});
  const double interval = workloads.sample_interval_us;

  const auto cnn_report = hw::run_zero_skip(workloads.cnn, hw::ZeroSkipConfig{});
  const auto snn_digital = hw::run_snn_core(workloads.snn, hw::SnnCoreConfig{});
  hw::SnnCoreConfig analog_config;
  analog_config.analog = true;
  const auto snn_analog = hw::run_snn_core(workloads.snn, analog_config);

  // Scale to the paper's anchor workloads: the cited silicon runs networks
  // ~1000x larger at ~10-100x the rate; report both raw and scaled power.
  auto row = [&](const char* name, const hw::EnergyBreakdown& e,
                 const char* anchor) {
    table.add_row({name, hw::summary(e),
                   Table::num(hw::power_mw(e.total_pj(), interval) * 1000.0,
                              3) +
                       " uW (this workload)",
                   anchor});
  };
  row("zero-skip CNN accelerator", cnn_report.energy,
      "NullHop-class: 100s of mW [62]");
  row("digital SNN core (clocked)", snn_digital.energy,
      "digital neuromorphic: 100s of mW [78]");
  row("analogue SNN core", snn_analog.energy,
      "analogue: ~10x lower [46]");
  table.print();
  const double digital_over_analog =
      snn_digital.energy.total_pj() / snn_analog.energy.total_pj();
  std::printf("digital/analogue SNN energy ratio: %.1fx "
              "(paper: 'an order of magnitude less power')\n\n",
              digital_over_analog);
}

void clocked_vs_event_driven() {
  std::printf("-- CLAIM-ENERGY: clocked vs event-driven neuron updates "
              "([42],[44]) --\n");
  Rng rng(3);
  nn::Tensor weight = nn::Tensor::randn({128, 256}, rng, 0.3f);
  snn::SpikingLayerSpec layer;
  layer.weight = &weight;
  layer.lif.beta = 0.9f;

  Table table({"input density", "policy", "neuron updates", "mem accesses",
               "core energy [nJ]", "winner"});
  for (const double density : {0.0005, 0.005, 0.05, 0.5}) {
    snn::SpikeTrain train;
    train.steps = 200;
    train.size = 256;
    train.active.resize(200);
    Rng train_rng(7);
    for (Index t = 0; t < 200; ++t) {
      for (Index i = 0; i < 256; ++i) {
        if (train_rng.bernoulli(density)) {
          train.active[static_cast<size_t>(t)].push_back(i);
        }
      }
    }
    snn::ExecutionCost clocked_cost, event_cost;
    snn::run_clocked(layer, train, clocked_cost);
    snn::run_event_driven(layer, train, event_cost);
    const auto clocked_report =
        hw::run_snn_core(clocked_cost, hw::SnnCoreConfig{});
    const auto event_report =
        hw::run_snn_core(event_cost, hw::SnnCoreConfig{});
    const bool event_wins = event_report.energy.total_pj() <
                            clocked_report.energy.total_pj();
    auto add = [&](const char* policy, const snn::ExecutionCost& cost,
                   const hw::SnnCoreReport& report, bool winner) {
      table.add_row({Table::num(density, 4), policy,
                     Table::eng(static_cast<double>(cost.neuron_updates)),
                     Table::eng(static_cast<double>(cost.memory_accesses)),
                     Table::num(report.energy.total_pj() * 1e-3, 1),
                     winner ? "<-" : ""});
    };
    add("clocked", clocked_cost, clocked_report, !event_wins);
    add("event-driven", event_cost, event_report, event_wins);
  }
  table.print();
  std::printf("paper (§III-A): event-driven updates need more accesses and "
              "more complex arithmetic per update, so clocked cores win "
              "except under extreme sparsity — the crossover above.\n");
}

}  // namespace

int main() {
  std::printf("== CLAIM-ENERGY: hardware energy model experiments ==\n\n");
  op_energy_table();
  const auto workloads = measure_real_workloads();
  memory_domination(workloads);
  power_table(workloads);
  clocked_vs_event_driven();
  return 0;
}
