// Reproduces ABL-RATE (§II): high-resolution sensors flood under ego-motion
// [20], and the mitigation strategies the paper lists — in-sensor
// down-sampling [21], electronically foveated pixels [22], centre-surround
// suppression [23] and the Gen4-style event-rate controller [10].
//
// Workload: a textured scene with global ego-motion plus one moving object,
// simulated at several sensor resolutions.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "events/downsample.hpp"
#include "events/dvs_simulator.hpp"
#include "events/foveation.hpp"
#include "events/rate_controller.hpp"
#include "events/scene.hpp"

using namespace evd;

namespace {

events::EventStream ego_motion_stream(Index size, double ego_speed) {
  events::Scene scene(size, size, 0.4f);
  Rng texture_rng(9);
  scene.set_texture(0.25, texture_rng);
  scene.set_ego_motion(ego_speed, ego_speed * 0.35);
  events::MovingShape shape;
  shape.kind = events::ShapeKind::Circle;
  shape.x0 = static_cast<double>(size) / 2.0;
  shape.y0 = static_cast<double>(size) / 2.0;
  shape.vx = static_cast<double>(size) / 2.0;
  shape.radius = static_cast<double>(size) / 8.0;
  shape.luminance = 0.95f;
  scene.add_shape(shape);

  events::DvsConfig config;
  config.background_rate_hz = 0.5;
  events::DvsSimulator simulator(size, size, config, Rng(11));
  return simulator.simulate(scene, 100000);
}

void resolution_sweep() {
  std::printf("-- event rate vs resolution under ego-motion ([20]) --\n");
  Table table({"sensor", "pixels", "events /100ms", "rate [eps]",
               "rate/pixel [eps]"});
  for (const Index size : {32, 64, 128, 256}) {
    const auto stream = ego_motion_stream(size, 40.0);
    table.add_row(
        {std::to_string(size) + "x" + std::to_string(size),
         Table::eng(static_cast<double>(size * size)),
         Table::eng(static_cast<double>(stream.size())),
         Table::eng(static_cast<double>(stream.size()) * 10.0),
         Table::num(static_cast<double>(stream.size()) * 10.0 /
                        static_cast<double>(size * size),
                    1)});
  }
  table.print();
  std::printf("the whole textured field generates events under ego-motion: "
              "rate grows with pixel count, the §II scaling problem.\n\n");
}

void mitigation_table() {
  std::printf("-- mitigation strategies on the 128x128 ego-motion stream --\n");
  const auto stream = ego_motion_stream(128, 40.0);
  Table table({"strategy", "events out", "kept fraction", "note"});
  table.add_row({"none", Table::eng(static_cast<double>(stream.size())),
                 "1.000", "baseline"});

  {
    events::SpatialDownsampleConfig config;
    config.factor = 2;
    config.accumulate = true;
    config.count_threshold = 2;
    const auto out = events::spatial_downsample(stream, config);
    table.add_row({"in-sensor 2x2 downsample [21]",
                   Table::eng(static_cast<double>(out.size())),
                   Table::num(static_cast<double>(out.size()) /
                                  static_cast<double>(stream.size()),
                              3),
                   "integrate-and-fire pooling"});
  }
  {
    events::FoveationConfig config;
    config.fovea_width = 48;
    config.fovea_height = 48;
    config.periphery_factor = 4;
    config.activity_driven = true;
    const auto result = events::foveate(stream, config);
    table.add_row({"electronic foveation [22]",
                   Table::eng(static_cast<double>(result.events.size())),
                   Table::num(static_cast<double>(result.events.size()) /
                                  static_cast<double>(stream.size()),
                              3),
                   "full res in fovea, pooled periphery"});
  }
  {
    events::CentreSurroundConfig config;
    const auto out = events::centre_surround_filter(stream, config);
    table.add_row({"centre-surround [23]",
                   Table::eng(static_cast<double>(out.size())),
                   Table::num(static_cast<double>(out.size()) /
                                  static_cast<double>(stream.size()),
                              3),
                   "suppresses full-field activity"});
  }
  for (const auto policy :
       {events::RatePolicy::Drop, events::RatePolicy::Decimate,
        events::RatePolicy::Suppress}) {
    events::RateControllerConfig config;
    config.max_rate_eps = 2e5;
    config.policy = policy;
    events::RateController controller(config, Rng(13));
    const auto out = controller.process(stream.events);
    const char* name = policy == events::RatePolicy::Drop ? "ERC drop [10]"
                       : policy == events::RatePolicy::Decimate
                           ? "ERC decimate [10]"
                           : "ERC suppress [10]";
    table.add_row({name, Table::eng(static_cast<double>(out.size())),
                   Table::num(controller.stats().keep_fraction(), 3),
                   "200 keps budget"});
  }
  table.print();
}

void foveation_detail() {
  std::printf("\n-- foveation keeps the object, thins the background --\n");
  const auto stream = ego_motion_stream(128, 40.0);
  events::FoveationConfig config;
  config.fovea_width = 48;
  config.fovea_height = 48;
  config.periphery_factor = 4;
  config.activity_driven = true;
  const auto result = events::foveate(stream, config);
  std::printf("foveal events kept at full resolution : %lld\n",
              (long long)result.foveal_events);
  std::printf("peripheral events in -> out           : %lld -> %lld "
              "(%.1fx reduction)\n",
              (long long)result.peripheral_in,
              (long long)result.peripheral_out,
              static_cast<double>(result.peripheral_in) /
                  std::max<double>(1.0,
                                   static_cast<double>(result.peripheral_out)));
  std::printf("fovea re-centred %zu times (activity-driven saccades)\n",
              result.fovea_track.size());
}

void accuracy_under_budget() {
  std::printf("\n-- task accuracy under event-rate budgets --\n");
  // Train the CNN on unconstrained streams, then classify streams thinned
  // by the ERC at shrinking budgets: how much rate can the link shed before
  // the application notices?
  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(40, 15, train, test);
  cnn::CnnPipeline pipeline{cnn::CnnPipelineConfig{}};
  pipeline.train(train, core::TrainOptions{0, 0.0f, 1, false});

  Table table({"ERC budget [keps]", "mean kept fraction", "test accuracy"});
  for (const double budget : {1e9, 2e4, 1e4, 5e3, 2e3, 1e3}) {
    double kept = 0.0;
    Index correct = 0;
    Rng rng(77);
    for (const auto& sample : test) {
      events::RateControllerConfig config;
      config.max_rate_eps = budget;
      config.policy = events::RatePolicy::Decimate;
      events::RateController controller(config, rng.fork());
      events::EventStream thinned;
      thinned.width = sample.stream.width;
      thinned.height = sample.stream.height;
      thinned.events = controller.process(sample.stream.events);
      kept += controller.stats().keep_fraction();
      correct += (pipeline.classify(thinned) == sample.label) ? 1 : 0;
    }
    table.add_row(
        {budget >= 1e9 ? "unlimited" : Table::num(budget / 1000.0, 0),
         Table::num(kept / static_cast<double>(test.size()), 3),
         Table::num(static_cast<double>(correct) /
                        static_cast<double>(test.size()),
                    3)});
  }
  table.print();
  std::printf("accuracy is near-baseline down to ~2/3 of the events and "
              "degrades gracefully to ~1/3 (event redundancy is why "
              "in-sensor rate control [10],[21] is viable), then collapses "
              "once the thinned stream no longer covers the shape.\n");
}

}  // namespace

int main() {
  std::printf("== ABL-RATE: resolution side effects and mitigations (§II) ==\n\n");
  resolution_sweep();
  mitigation_table();
  foveation_detail();
  accuracy_under_budget();
  return 0;
}
