// Reproduces CLAIM-SPARSE (§III-B): CNNs on event data are themselves
// sparse — rectified feature maps are mostly zero [50], pruning [51] and
// quantization [52] zero/shrink the weights — and sparsity-aware hardware
// converts that into savings, with structured sparsity [65] the
// memory-friendly variant.
//
// Experiments:
//   1. ReLU feature-map sparsity per layer on real event frames;
//   2. magnitude vs structured pruning sweep: accuracy + zero-skip energy;
//   3. weight-quantization sweep (post-training + QAT);
//   4. dense systolic vs zero-skipping accelerator on the same workload.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "cnn/dense_model.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "hw/systolic.hpp"
#include "hw/zero_skip.hpp"
#include "nn/activations.hpp"
#include "nn/pruning.hpp"
#include "nn/quantization.hpp"

using namespace evd;

namespace {

struct Workbench {
  events::ShapeDatasetConfig dataset_config;
  std::vector<events::LabelledSample> train, test;
  std::vector<nn::Tensor> train_frames, test_frames;
  std::vector<Index> train_labels, test_labels;

  Workbench() {
    dataset_config.num_classes = 4;
    events::ShapeDataset dataset(dataset_config);
    dataset.make_split(40, 10, train, test);
    cnn::FrameOptions options;
    for (const auto& s : train) {
      train_frames.push_back(cnn::build_frame(
          s.stream.events, 32, 32, s.stream.events.front().t,
          s.stream.events.back().t + 1, options));
      train_labels.push_back(s.label);
    }
    for (const auto& s : test) {
      test_frames.push_back(cnn::build_frame(
          s.stream.events, 32, 32, s.stream.events.front().t,
          s.stream.events.back().t + 1, options));
      test_labels.push_back(s.label);
    }
  }

  nn::Sequential trained_model(Index epochs = 25) {
    Rng rng(1);
    auto model = cnn::make_event_cnn(cnn::CnnModelConfig{}, rng);
    cnn::FitOptions options;
    options.epochs = epochs;
    options.lr = 2e-3f;
    cnn::fit_classifier(model, train_frames, train_labels, options);
    return model;
  }

  double accuracy(nn::Sequential& model) {
    return cnn::evaluate_classifier(model, test_frames, test_labels);
  }

  nn::OpCounter workload(nn::Sequential& model) {
    nn::OpCounter counter;
    nn::ScopedCounter scope(counter);
    for (const auto& frame : test_frames) {
      (void)model.forward(frame, false);
    }
    return counter;
  }
};

void activation_sparsity(Workbench& bench, nn::Sequential& model) {
  std::printf("-- activation sparsity per ReLU layer ([50]) --\n");
  // Forward a frame and read each ReLU's sparsity.
  (void)model.forward(bench.test_frames[0], false);
  Table table({"layer", "output sparsity"});
  table.add_row({"input frame",
                 Table::num(bench.test_frames[0].zero_fraction(), 3)});
  for (Index i = 0; i < model.size(); ++i) {
    if (auto* relu = dynamic_cast<nn::ReLU*>(&model.layer(i))) {
      table.add_row({"ReLU after layer " + std::to_string(i - 1),
                     Table::num(relu->last_sparsity(), 3)});
    }
  }
  table.print();
}

void pruning_sweep(Workbench& bench) {
  std::printf("\n-- pruning sweep ([51] magnitude, [65] structured) --\n");
  Table table({"method", "fraction", "weight sparsity", "test accuracy",
               "zero-skip energy [uJ]"});
  {
    auto model = bench.trained_model();
    const auto counter = bench.workload(model);
    const auto report = hw::run_zero_skip(counter, hw::ZeroSkipConfig{});
    table.add_row({"unpruned", "0.0", "0.000",
                   Table::num(bench.accuracy(model), 3),
                   Table::num(report.energy.total_uj(), 2)});
  }
  for (const bool structured : {false, true}) {
    for (const double fraction : {0.3, 0.5, 0.7, 0.9}) {
      auto model = bench.trained_model();
      nn::PruneMask mask(model.params());
      if (structured) {
        mask.prune_structured_rows(fraction);
      } else {
        mask.prune_magnitude(fraction);
      }
      const double accuracy = bench.accuracy(model);
      const auto counter = bench.workload(model);
      const auto report = hw::run_zero_skip(counter, hw::ZeroSkipConfig{});
      table.add_row({structured ? "structured rows" : "magnitude",
                     Table::num(fraction, 1),
                     Table::num(nn::weight_sparsity(model.params()), 3),
                     Table::num(accuracy, 3),
                     Table::num(report.energy.total_uj(), 2)});
    }
  }
  table.print();
}

void quantization_sweep(Workbench& bench) {
  std::printf("\n-- weight quantization sweep ([52], STE [39]) --\n");
  Table table({"bits", "post-training acc", "QAT-finetuned acc"});
  auto baseline = bench.trained_model();
  const double fp_accuracy = bench.accuracy(baseline);
  table.add_row({"fp32", Table::num(fp_accuracy, 3), "-"});
  for (const int bits : {8, 4, 3, 2}) {
    auto model = bench.trained_model();
    nn::quantize_params(model.params(), bits);
    const double ptq = bench.accuracy(model);

    // QAT fine-tune for a few epochs with the straight-through estimator.
    auto qat_model = bench.trained_model();
    nn::QatTrainer qat(qat_model.params(), bits);
    nn::Adam optimizer(qat_model.params(), 5e-4f);
    for (int epoch = 0; epoch < 5; ++epoch) {
      for (size_t i = 0; i < bench.train_frames.size(); ++i) {
        qat.quantize_for_forward();
        const auto [loss, hit] = nn::train_step(
            qat_model, bench.train_frames[i], bench.train_labels[i]);
        (void)loss;
        (void)hit;
        qat.restore_latent();
        optimizer.step();
      }
    }
    qat.quantize_for_forward();  // deploy quantized
    const double qat_accuracy = bench.accuracy(qat_model);
    table.add_row({std::to_string(bits), Table::num(ptq, 3),
                   Table::num(qat_accuracy, 3)});
  }
  table.print();
}

void accelerator_faceoff(Workbench& bench) {
  std::printf("\n-- dense systolic vs zero-skipping accelerator (§III-B) --\n");
  auto model = bench.trained_model();
  const auto counter = bench.workload(model);
  const double sparsity =
      static_cast<double>(counter.zero_skippable_mults) /
      static_cast<double>(counter.macs());
  std::printf("workload: %s MACs, %.1f%% with a zero activation operand\n",
              Table::eng(static_cast<double>(counter.macs())).c_str(),
              sparsity * 100.0);

  const auto systolic = hw::run_systolic(counter, hw::SystolicConfig{});
  hw::ZeroSkipConfig zs_config;
  zs_config.lanes = 16 * 16;
  const auto zero_skip = hw::run_zero_skip(counter, zs_config);
  Table table({"accelerator", "executed MACs", "latency [us]",
               "energy [uJ]"});
  table.add_row({"systolic array (TPU-like [60])",
                 Table::eng(static_cast<double>(systolic.effective_macs)),
                 Table::num(systolic.latency_us, 1),
                 Table::num(systolic.energy.total_uj(), 2)});
  table.add_row({"zero-skipping (NullHop-like [62])",
                 Table::eng(static_cast<double>(zero_skip.effective_macs)),
                 Table::num(zero_skip.latency_us, 1),
                 Table::num(zero_skip.energy.total_uj(), 2)});
  table.print();
  std::printf("zero-skipping converts the %.0f%% activation sparsity into "
              "%.1fx energy and %.1fx latency savings on this workload.\n",
              sparsity * 100.0,
              systolic.energy.total_pj() / zero_skip.energy.total_pj(),
              systolic.latency_us / zero_skip.latency_us);
}

}  // namespace

int main() {
  std::printf("== CLAIM-SPARSE: CNN sparsity and sparsity-aware hardware ==\n\n");
  Workbench bench;
  auto model = bench.trained_model();
  std::printf("baseline test accuracy: %.3f\n\n", bench.accuracy(model));
  activation_sparsity(bench, model);
  pruning_sweep(bench);
  quantization_sweep(bench);
  accelerator_faceoff(bench);
  return 0;
}
