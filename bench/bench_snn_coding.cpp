// Reproduces ABL-CODING (§III-A): the ANN-to-SNN conversion path [36]-[38].
// A ReLU MLP is trained on (downsampled) event-count features, converted by
// threshold balancing, and evaluated across timestep budgets — accuracy
// converges to the ANN's as T grows while spikes/inference climb, the
// rate-coding trade-off. Also compares deterministic-accumulator vs
// stochastic rate coding ("unevenness error") and latency coding sparsity.
#include <cstdio>

#include "cnn/representation.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "snn/conversion.hpp"

using namespace evd;

namespace {

/// Event stream -> normalised analog feature vector (pooled count frame).
nn::Tensor features_of(const events::EventStream& stream) {
  cnn::FrameOptions options;
  options.repr = cnn::Representation::CountTwoChannel;
  nn::Tensor frame =
      cnn::build_frame(stream.events, stream.width, stream.height,
                       stream.events.front().t, stream.events.back().t + 1,
                       options);
  // 4x4 pool to 2*8*8 = 128 features in [0, 1].
  nn::Tensor pooled({2 * 8 * 8});
  for (Index c = 0; c < 2; ++c) {
    for (Index y = 0; y < 8; ++y) {
      for (Index x = 0; x < 8; ++x) {
        float acc = 0.0f;
        for (Index dy = 0; dy < 4; ++dy) {
          for (Index dx = 0; dx < 4; ++dx) {
            acc += frame.at3(c, y * 4 + dy, x * 4 + dx);
          }
        }
        pooled[(c * 8 + y) * 8 + x] = acc / 16.0f;
      }
    }
  }
  return pooled;
}

}  // namespace

int main() {
  std::printf("== ABL-CODING: ANN->SNN conversion and spike coding ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(50, 15, train, test);

  std::vector<nn::Tensor> train_x, test_x;
  std::vector<Index> train_y, test_y;
  Rng augment_rng(9);
  for (const auto& s : train) {
    train_x.push_back(features_of(s.stream));
    train_y.push_back(s.label);
    // Spatial-shift augmentation: the MLP has no built-in translation
    // invariance (same recipe as the SNN pipeline).
    for (int k = 0; k < 4; ++k) {
      const Index dx = static_cast<Index>(augment_rng.uniform_int(9)) - 4;
      const Index dy = static_cast<Index>(augment_rng.uniform_int(9)) - 4;
      events::EventStream shifted;
      shifted.width = s.stream.width;
      shifted.height = s.stream.height;
      for (events::Event e : s.stream.events) {
        const Index x = e.x + dx;
        const Index y = e.y + dy;
        if (x < 0 || y < 0 || x >= shifted.width || y >= shifted.height) {
          continue;
        }
        e.x = static_cast<std::int16_t>(x);
        e.y = static_cast<std::int16_t>(y);
        shifted.events.push_back(e);
      }
      train_x.push_back(features_of(shifted));
      train_y.push_back(s.label);
    }
  }
  for (const auto& s : test) {
    test_x.push_back(features_of(s.stream));
    test_y.push_back(s.label);
  }

  // Train the source ANN.
  Rng rng(1);
  nn::Sequential ann;
  ann.emplace<nn::Linear>(128, 64, rng);
  ann.emplace<nn::ReLU>();
  ann.emplace<nn::Linear>(64, 4, rng);
  nn::Adam optimizer(ann.params(), 2e-3f);
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (size_t i = 0; i < train_x.size(); ++i) {
      nn::train_step(ann, train_x[i], train_y[i]);
      optimizer.step();
    }
  }
  Index ann_correct = 0;
  for (size_t i = 0; i < test_x.size(); ++i) {
    ann_correct += (nn::predict(ann, test_x[i]) == test_y[i]) ? 1 : 0;
  }
  const double ann_accuracy =
      static_cast<double>(ann_correct) / static_cast<double>(test_x.size());
  std::printf("source ANN test accuracy: %.3f\n\n", ann_accuracy);

  // Convert and sweep timesteps.
  auto converted = snn::convert_ann_to_snn(ann, train_x, {});
  std::printf("-- converted IF-SNN vs timestep budget (rate coding [36]) --\n");
  Table table({"timesteps T", "accuracy", "vs ANN", "hidden spikes/inf",
               "spikes/neuron"});
  for (const Index steps : {2, 4, 8, 16, 32, 64, 128}) {
    Index correct = 0;
    double spikes = 0.0;
    for (size_t i = 0; i < test_x.size(); ++i) {
      const auto inference = snn::run_converted(converted, test_x[i], steps);
      correct += (inference.predicted == test_y[i]) ? 1 : 0;
      spikes += static_cast<double>(inference.total_spikes);
    }
    const double accuracy =
        static_cast<double>(correct) / static_cast<double>(test_x.size());
    spikes /= static_cast<double>(test_x.size());
    table.add_row({std::to_string(steps), Table::num(accuracy, 3),
                   Table::num(accuracy - ann_accuracy, 3),
                   Table::num(spikes, 0),
                   Table::num(spikes / 64.0 /
                                  static_cast<double>(steps),
                              3)});
  }
  table.print();
  std::printf("accuracy converges to the ANN's as T grows; spike cost grows "
              "linearly — the conversion trade-off of [36].\n\n");

  // Unevenness error: deterministic vs stochastic input rate coding at the
  // encoder level (variance of realised spike count around the target).
  std::printf("-- rate-coding 'unevenness' ([36]-[38]) --\n");
  Table coding({"coding", "T", "mean |realised - target| spikes"});
  for (const Index steps : {8, 32}) {
    double deterministic_err = 0.0, stochastic_err = 0.0;
    Rng coding_rng(5);
    Index n = 0;
    for (size_t i = 0; i < 10; ++i) {
      const auto& x = test_x[i];
      const auto det = snn::rate_encode(x, steps, true);
      const auto sto = snn::rate_encode(x, steps, false, &coding_rng);
      std::vector<Index> det_counts(static_cast<size_t>(x.numel()), 0);
      std::vector<Index> sto_counts(static_cast<size_t>(x.numel()), 0);
      for (const auto& step : det.active) {
        for (const Index j : step) ++det_counts[static_cast<size_t>(j)];
      }
      for (const auto& step : sto.active) {
        for (const Index j : step) ++sto_counts[static_cast<size_t>(j)];
      }
      for (Index j = 0; j < x.numel(); ++j) {
        const double target =
            std::min(std::max(x[j], 0.0f), 1.0f) * static_cast<double>(steps);
        deterministic_err +=
            std::abs(static_cast<double>(det_counts[static_cast<size_t>(j)]) -
                     target);
        stochastic_err +=
            std::abs(static_cast<double>(sto_counts[static_cast<size_t>(j)]) -
                     target);
        ++n;
      }
    }
    coding.add_row({"deterministic accumulator [37]", std::to_string(steps),
                    Table::num(deterministic_err / n, 3)});
    coding.add_row({"stochastic (Poisson-like) [36]", std::to_string(steps),
                    Table::num(stochastic_err / n, 3)});
  }
  coding.print();

  // Latency coding sparsity.
  const auto latency_train = snn::latency_encode(test_x[0], 32);
  const auto rate_train = snn::rate_encode(test_x[0], 32, true);
  std::printf("\nlatency coding [32]: %lld spikes vs rate coding's %lld for "
              "the same input (one spike per active feature — the sparsest "
              "code, used by time-to-first-spike conversions [37]).\n",
              (long long)latency_train.total_spikes(),
              (long long)rate_train.total_spikes());
  return 0;
}
