// Reproduces Fig. 1: pixel-pitch and array-size trends of event-camera
// sensors over the decade, from the devices cited in the paper (§II and
// refs [6], [10]-[16]).
//
// Output: the year/pitch/resolution series (the figure's two scatter plots)
// plus fitted exponential trends — pitch shrink rate and resolution growth
// rate per year — and the fill-factor step caused by BSI 3D stacking.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace {

struct SensorRecord {
  const char* name;
  int year;
  int width;
  int height;
  double pitch_um;
  double fill_factor_pct;  ///< <= 0 when not reported.
  bool stacked;            ///< BSI / 3D wafer stacking.
  const char* reference;
};

// Values from the publications the paper cites.
const std::vector<SensorRecord>& sensor_database() {
  static const std::vector<SensorRecord> sensors = {
      {"DVS128 (Lichtsteiner)", 2008, 128, 128, 40.0, 8.1, false, "[6]"},
      {"ATIS (Posch)", 2010, 304, 240, 30.0, 20.0, false, "[16]"},
      {"sDVS (Serrano-Gotarredona)", 2013, 128, 128, 35.0, 9.0, false, "[14]"},
      {"DAVIS240 (Brandli)", 2014, 240, 180, 18.5, 22.0, false, "[13]"},
      {"Samsung VGA DVS", 2017, 640, 480, 9.0, 11.0, false, "[11]*"},
      {"CeleX-V (Chen&Guo)", 2019, 1280, 800, 9.8, 8.5, false, "[12]"},
      {"Prophesee/Sony Gen4", 2020, 1280, 720, 4.86, 77.0, true, "[10]"},
      {"Samsung HD DVS (Suh)", 2020, 1280, 960, 4.95, 49.0, true, "[11]"},
      {"Hybrid pixel (Akrarai)", 2021, 96, 96, 15.0, 10.0, false, "[15]"},
  };
  return sensors;
}

/// Least-squares fit of log(y) = a + b * (year - 2008); returns the annual
/// multiplicative factor exp(b).
double annual_factor(const std::vector<std::pair<int, double>>& series) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(series.size());
  for (const auto& [year, value] : series) {
    const double x = year - 2008;
    const double y = std::log(value);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  return std::exp(b);
}

}  // namespace

int main() {
  std::printf("== FIG 1: event-camera pixel & array scaling, 2008-2021 ==\n\n");

  evd::Table table({"sensor", "year", "array", "pixels", "pitch [um]",
                    "fill factor", "stacked", "ref"});
  std::vector<std::pair<int, double>> pitch_series, pixel_series;
  for (const auto& s : sensor_database()) {
    const double megapixels =
        static_cast<double>(s.width) * s.height / 1e6;
    table.add_row({s.name, std::to_string(s.year),
                   std::to_string(s.width) + "x" + std::to_string(s.height),
                   evd::Table::num(megapixels, 3) + "MP",
                   evd::Table::num(s.pitch_um, 2),
                   s.fill_factor_pct > 0
                       ? evd::Table::num(s.fill_factor_pct, 1) + "%"
                       : "n/a",
                   s.stacked ? "yes" : "no", s.reference});
    pitch_series.emplace_back(s.year, s.pitch_um);
    pixel_series.emplace_back(s.year,
                              static_cast<double>(s.width) * s.height);
  }
  table.print();

  const double pitch_factor = annual_factor(pitch_series);
  const double pixel_factor = annual_factor(pixel_series);
  std::printf("\nFitted trends (2008-2021):\n");
  std::printf("  pixel pitch shrinks x%.2f per year (halves every %.1f years)\n",
              1.0 / pitch_factor, std::log(0.5) / std::log(pitch_factor));
  std::printf("  array size grows   x%.2f per year (doubles every %.1f years)\n",
              pixel_factor, std::log(2.0) / std::log(pixel_factor));

  // Fill-factor step from BSI stacking (paper: ~1/5 -> >3/4 of pixel area).
  double planar_ff = 0.0, stacked_ff = 0.0;
  int planar_n = 0, stacked_n = 0;
  for (const auto& s : sensor_database()) {
    if (s.fill_factor_pct <= 0) continue;
    if (s.stacked) {
      stacked_ff += s.fill_factor_pct;
      ++stacked_n;
    } else {
      planar_ff += s.fill_factor_pct;
      ++planar_n;
    }
  }
  std::printf(
      "  mean fill factor: planar %.0f%% -> BSI/3D-stacked %.0f%% "
      "(paper: ~one fifth -> more than three quarters for the best case)\n",
      planar_ff / planar_n, stacked_ff / stacked_n);
  std::printf(
      "  readout throughput reached the GEPS range with Gen4's 1.066 GEPS "
      "[10]\n");
  return 0;
}
