// Reproduces the §IV graph-construction latency claim: incorporating events
// into a continuously evolving graph via tree search [75] is the latency
// roadblock, and algorithmic innovation (HUGNet [72]) yields a speed-up of
// around four orders of magnitude.
//
// Three per-event insertion strategies over the same stream:
//   rebuild   — rebuild a balanced k-d tree over the live window, then query
//               (the naive "tree search" baseline);
//   amortised — rebuild the tree only every K events, query always (a fairer
//               tree baseline);
//   grid-hash — the incremental bounded builder (HUGNet-style mechanism).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/graph_builder.hpp"
#include "gnn/incremental.hpp"
#include "gnn/kdtree.hpp"

using namespace evd;

namespace {

events::EventStream benchmark_stream(Index events_count) {
  events::ShapeDatasetConfig config;
  config.width = 64;
  config.height = 64;
  config.duration_us = 200000;
  config.max_radius = 12.0;
  events::ShapeDataset dataset(config);
  auto sample = dataset.make_sample(0);
  // Tile/trim to the requested size.
  auto& ev = sample.stream.events;
  while (static_cast<Index>(ev.size()) < events_count) {
    const auto n = ev.size();
    const TimeUs shift = ev.back().t + 100;
    for (size_t i = 0; i < n &&
                       static_cast<Index>(ev.size()) < events_count;
         ++i) {
      auto e = ev[i];
      e.t += shift;
      ev.push_back(e);
    }
  }
  ev.resize(static_cast<size_t>(events_count));
  return sample.stream;
}

constexpr double kTimeScale = 1e-4;
constexpr float kRadius = 3.0f;

/// Baseline A: full k-d rebuild per event over the live horizon window.
/// `mean_visited` (optional) receives the mean kd-tree nodes touched per
/// query, via the per-query visit-count out-param.
void run_rebuild(const events::EventStream& stream, Percentiles& latency,
                 Index limit, double* mean_visited = nullptr) {
  std::vector<gnn::Point3> window;
  const TimeUs horizon =
      static_cast<TimeUs>(kRadius / kTimeScale);
  size_t window_start = 0;
  Index processed = 0;
  double visited_sum = 0.0;
  Index queries = 0;
  for (const auto& e : stream.events) {
    if (processed++ >= limit) break;
    const auto start = std::chrono::steady_clock::now();
    const gnn::Point3 p = gnn::embed(e, kTimeScale);
    // Evict stale, append, rebuild, query.
    while (window_start < window.size() &&
           p.z - window[window_start].z > kRadius) {
      ++window_start;
    }
    std::vector<gnn::Point3> live(window.begin() + static_cast<std::ptrdiff_t>(
                                                       window_start),
                                  window.end());
    const gnn::KdTree tree(live);
    Index visited = 0;
    benchmark::DoNotOptimize(tree.radius_query(p, kRadius, &visited));
    window.push_back(p);
    const auto stop = std::chrono::steady_clock::now();
    latency.add(std::chrono::duration<double, std::nano>(stop - start).count());
    visited_sum += static_cast<double>(visited);
    ++queries;
    (void)horizon;
  }
  if (mean_visited != nullptr) {
    *mean_visited = queries > 0 ? visited_sum / static_cast<double>(queries)
                                : 0.0;
  }
}

/// Baseline B: rebuild every K events, query per event.
void run_amortized(const events::EventStream& stream, Percentiles& latency,
                   Index rebuild_every, double* mean_visited = nullptr) {
  std::vector<gnn::Point3> points;
  gnn::KdTree tree;
  Index since_rebuild = 0;
  double visited_sum = 0.0;
  Index queries = 0;
  for (const auto& e : stream.events) {
    const auto start = std::chrono::steady_clock::now();
    const gnn::Point3 p = gnn::embed(e, kTimeScale);
    if (since_rebuild == 0) {
      tree = gnn::KdTree(points);
    }
    since_rebuild = (since_rebuild + 1) % rebuild_every;
    Index visited = 0;
    benchmark::DoNotOptimize(tree.radius_query(p, kRadius, &visited));
    points.push_back(p);
    const auto stop = std::chrono::steady_clock::now();
    latency.add(std::chrono::duration<double, std::nano>(stop - start).count());
    visited_sum += static_cast<double>(visited);
    ++queries;
  }
  if (mean_visited != nullptr) {
    *mean_visited = queries > 0 ? visited_sum / static_cast<double>(queries)
                                : 0.0;
  }
}

/// The incremental grid-hash builder.
void run_incremental(const events::EventStream& stream,
                     Percentiles& latency) {
  gnn::IncrementalConfig config;
  config.time_scale = kTimeScale;
  config.radius = kRadius;
  gnn::IncrementalGraphBuilder builder(stream.width, stream.height, config);
  for (const auto& e : stream.events) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(builder.insert(e));
    const auto stop = std::chrono::steady_clock::now();
    latency.add(std::chrono::duration<double, std::nano>(stop - start).count());
  }
}

void summary_table() {
  const auto stream = benchmark_stream(20000);
  Percentiles rebuild, amortized, incremental;
  double rebuild_visited = 0.0, amortized_visited = 0.0;
  // The per-event rebuild is catastrophically slow by design; cap its count.
  run_rebuild(stream, rebuild, 2000, &rebuild_visited);
  run_amortized(stream, amortized, 64, &amortized_visited);
  run_incremental(stream, incremental);

  std::printf("\n== CLAIM-GRAPH: per-event graph-construction latency "
              "(%lld-event stream, 64x64) ==\n",
              (long long)stream.size());
  Table table({"method", "median [ns]", "p99 [ns]", "speedup vs tree"});
  const double base = rebuild.median();
  auto add = [&](const char* name, const Percentiles& p) {
    table.add_row({name, Table::num(p.median(), 0),
                   Table::num(p.percentile(99.0), 0),
                   Table::num(base / p.median(), 1) + "x"});
  };
  add("kd-tree rebuild per event [75]", rebuild);
  add("kd-tree amortised rebuild /64", amortized);
  add("incremental grid-hash (HUGNet-style [72])", incremental);
  table.print();
  std::printf("mean kd nodes visited/query: rebuild %.0f, amortised %.0f "
              "(the tree-search cost the incremental builder avoids)\n",
              rebuild_visited, amortized_visited);
  std::printf(
      "paper: \"algorithmic innovations have already resulted in a four "
      "order of magnitude speed-up\" — the rebuild-vs-incremental gap above "
      "is the same mechanism measured on this substrate; it widens with "
      "resolution and window size (the paper's setting is a full-resolution "
      "sensor with much deeper windows).\n");
}

/// Scaling study: per-event cost vs live-window size. The tree rebuild is
/// O(n log n) in the window; the grid-hash is O(1). The paper's setting —
/// megapixel sensors, MEPS-range rates, deep windows — lives at the right
/// edge, where the extrapolated gap reaches the cited four orders.
void scaling_table() {
  std::printf("\n-- scaling with live-window size --\n");
  Table table({"window [events]", "tree rebuild+query [ns]",
               "grid-hash insert [ns]", "ratio"});
  Rng rng(5);
  double last_tree = 0.0, last_incremental = 1.0;
  Index last_window = 1;
  for (const Index window : {1000, 4000, 16000, 64000}) {
    // Random live window over a 256x256 sensor, 30 ms deep.
    std::vector<gnn::Point3> points;
    points.reserve(static_cast<size_t>(window));
    for (Index i = 0; i < window; ++i) {
      points.push_back({static_cast<float>(rng.uniform(0, 256)),
                        static_cast<float>(rng.uniform(0, 256)),
                        static_cast<float>(rng.uniform(0, kRadius))});
    }
    // Tree: rebuild + query (averaged over a few repeats).
    const int repeats = window <= 4000 ? 20 : 5;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
      const gnn::KdTree tree(points);
      benchmark::DoNotOptimize(
          tree.radius_query(points.back(), kRadius));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double tree_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / repeats;

    // Grid-hash: insert the same points, measure steady-state inserts.
    gnn::IncrementalConfig config;
    config.time_scale = kTimeScale;
    config.radius = kRadius;
    gnn::IncrementalGraphBuilder builder(256, 256, config);
    events::Event e{0, 0, Polarity::On, 0};
    for (Index i = 0; i < window; ++i) {
      e.x = static_cast<std::int16_t>(points[static_cast<size_t>(i)].x);
      e.y = static_cast<std::int16_t>(points[static_cast<size_t>(i)].y);
      e.t = static_cast<TimeUs>(points[static_cast<size_t>(i)].z / kTimeScale);
      benchmark::DoNotOptimize(builder.insert(e));
    }
    const auto t2 = std::chrono::steady_clock::now();
    for (Index i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(builder.insert(e));
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double incremental_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() / 1000.0;

    table.add_row({std::to_string(window), Table::num(tree_ns, 0),
                   Table::num(incremental_ns, 0),
                   Table::num(tree_ns / incremental_ns, 0) + "x"});
    last_tree = tree_ns;
    last_incremental = incremental_ns;
    last_window = window;
  }
  table.print();
  // O(n log n) extrapolation to a megaevent window.
  const double target = 1e6;
  const double scale = target / static_cast<double>(last_window);
  const double projected_tree =
      last_tree * scale *
      (std::log(target) / std::log(static_cast<double>(last_window)));
  std::printf("extrapolated to a 1M-event window (MEPS-rate HD sensor): "
              "tree ~%.0f us vs grid-hash ~%.2f us -> ~%.1e x — at or above "
              "the paper's four-orders-of-magnitude claim (already %.0fx "
              "measured at the 64k window).\n",
              projected_tree * 1e-3, last_incremental * 1e-3,
              projected_tree / last_incremental,
              last_tree / last_incremental);
}

void BM_KdTreeRebuildInsert(benchmark::State& state) {
  const auto stream = benchmark_stream(static_cast<Index>(state.range(0)));
  for (auto _ : state) {
    Percentiles latency;
    run_rebuild(stream, latency, state.range(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KdTreeRebuildInsert)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_IncrementalInsert(benchmark::State& state) {
  const auto stream = benchmark_stream(static_cast<Index>(state.range(0)));
  for (auto _ : state) {
    Percentiles latency;
    run_incremental(stream, latency);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalInsert)->Arg(500)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  summary_table();
  scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
