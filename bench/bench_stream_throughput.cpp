// Multi-session streaming throughput (ISSUE 4 acceptance bench).
//
// One pipeline per paradigm serves K concurrent sessions through the
// evd::runtime SessionManager; the sweep measures aggregate ingest and
// decision throughput at K = 1, 4, 16, 64 on the full evd::par pool. The
// point of the runtime refactor is that sessions share nothing mutable, so
// aggregate throughput should scale with K until the pool saturates —
// single-session serving leaves every worker but one idle.
//
// Output: one human table per paradigm plus one machine-readable JSON line
// per (paradigm, session count) config on stdout, e.g.
//   {"bench":"stream_throughput","paradigm":"gnn","sessions":16,...}
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cnn/cnn_pipeline.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "events/event.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "runtime/session_manager.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

constexpr Index kWidth = 32;
constexpr Index kHeight = 32;
constexpr Index kEventsPerSession = 4000;
constexpr TimeUs kDuration = 200000;  // 200 ms of stream per session

/// Deterministic synthetic stream: uniform spatial noise, sorted times.
std::vector<events::Event> session_stream(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<events::Event> stream;
  stream.reserve(kEventsPerSession);
  for (Index i = 0; i < kEventsPerSession; ++i) {
    events::Event e;
    e.x = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kWidth)));
    e.y = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kHeight)));
    e.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    e.t = (i * kDuration) / kEventsPerSession;
    stream.push_back(e);
  }
  return stream;
}

struct ThroughputRow {
  Index sessions = 1;
  double wall_ms = 0.0;
  std::int64_t events = 0;
  std::int64_t decisions = 0;

  double events_per_s() const { return 1e3 * static_cast<double>(events) / wall_ms; }
  double decisions_per_s() const {
    return 1e3 * static_cast<double>(decisions) / wall_ms;
  }
};

template <typename Pipeline>
ThroughputRow serve(Pipeline& pipeline, Index session_count) {
  runtime::SessionManager manager(/*burst=*/256);
  std::vector<runtime::SessionId> ids;
  std::vector<std::vector<events::Event>> streams;
  for (Index s = 0; s < session_count; ++s) {
    ids.push_back(manager.add(pipeline.open_session(kWidth, kHeight)));
    streams.push_back(session_stream(100 + static_cast<std::uint64_t>(s)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  // Submit in bursts small enough to never overflow the 4096-deep ingress
  // queues, pumping between bursts — the serving loop a real deployment runs.
  Index cursor = 0;
  while (cursor < kEventsPerSession) {
    const Index until = std::min<Index>(cursor + 2048, kEventsPerSession);
    for (Index s = 0; s < session_count; ++s) {
      for (Index i = cursor; i < until; ++i) {
        manager.submit(ids[s], streams[static_cast<size_t>(s)]
                                      [static_cast<size_t>(i)]);
      }
    }
    manager.pump_all();
    cursor = until;
  }
  for (Index s = 0; s < session_count; ++s) {
    manager.submit_advance(ids[s], kDuration);
  }
  manager.pump_all();
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputRow row;
  row.sessions = session_count;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto id : ids) {
    const auto stats = manager.stats(id);
    row.events += stats.events_fed;
    row.decisions += stats.decisions_emitted;
  }
  return row;
}

void print_json(const char* paradigm, Index threads,
                const ThroughputRow& row) {
  std::printf(
      "{\"bench\":\"stream_throughput\",\"paradigm\":\"%s\",\"threads\":%lld,"
      "\"sessions\":%lld,\"events\":%lld,\"decisions\":%lld,"
      "\"wall_ms\":%.3f,\"events_per_s\":%.0f,\"decisions_per_s\":%.0f}\n",
      paradigm, static_cast<long long>(threads),
      static_cast<long long>(row.sessions),
      static_cast<long long>(row.events),
      static_cast<long long>(row.decisions), row.wall_ms, row.events_per_s(),
      row.decisions_per_s());
}

template <typename Pipeline>
bool sweep(const char* paradigm, Pipeline& pipeline, Index threads) {
  std::vector<ThroughputRow> rows;
  for (const Index k : {1, 4, 16, 64}) {
    rows.push_back(serve(pipeline, k));
  }

  Table table({"sessions", "wall [ms]", "events/s", "decisions/s",
               "vs 1 session"});
  const double base = rows.front().events_per_s();
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.sessions), Table::num(row.wall_ms, 1),
                   Table::num(row.events_per_s(), 0),
                   Table::num(row.decisions_per_s(), 0),
                   Table::num(row.events_per_s() / base, 2) + "x"});
  }
  std::printf("\n-- %s: %lld-thread pool --\n", paradigm,
              static_cast<long long>(threads));
  table.print();
  for (const auto& row : rows) print_json(paradigm, threads, row);

  // Acceptance: on a >= 4 worker pool, serving many sessions must beat the
  // single-session aggregate (sessions are independent, so anything else
  // means the runtime serialised them).
  const double best = rows.back().events_per_s();
  if (threads >= 4 && best <= base) {
    std::fprintf(stderr,
                 "FATAL: %s aggregate throughput did not scale with "
                 "sessions (%.0f ev/s at 64 vs %.0f at 1)\n",
                 paradigm, best, base);
    return false;
  }
  return true;
}

}  // namespace

int main() {
  const auto hw = static_cast<Index>(std::thread::hardware_concurrency());
  const Index threads = hw > 0 ? hw : 1;
  par::set_thread_count(threads);
  std::printf("== multi-session stream serving throughput (%lld threads, "
              "%lld events/session) ==\n",
              static_cast<long long>(threads),
              static_cast<long long>(kEventsPerSession));

  bool ok = true;
  {
    cnn::CnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.base_filters = 4;
    config.frame_period_us = 20000;  // 10 frame decisions per session
    cnn::CnnPipeline pipeline(config);
    ok = sweep("cnn", pipeline, threads) && ok;
  }
  {
    snn::SnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.hidden = 64;
    config.timestep_us = 5000;  // 40 step decisions per session
    snn::SnnPipeline pipeline(config);
    ok = sweep("snn", pipeline, threads) && ok;
  }
  {
    gnn::GnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.model.hidden = 16;
    config.model.layers = 2;
    config.stream_stride = 4;      // one decision per inserted event
    config.stream_max_nodes = 2048;  // > inserts/session: no recycle here
    config.decision_retain = 1024;   // keep 64 sessions' tails light
    gnn::GnnPipeline pipeline(config);
    ok = sweep("gnn", pipeline, threads) && ok;
  }
  return ok ? 0 : 1;
}
