// Multi-session streaming throughput (ISSUE 4 acceptance bench).
//
// One pipeline per paradigm serves K concurrent sessions through the
// evd::runtime SessionManager; the sweep measures aggregate ingest and
// decision throughput at K = 1, 4, 16, 64 on the full evd::par pool. The
// point of the runtime refactor is that sessions share nothing mutable, so
// aggregate throughput should scale with K until the pool saturates —
// single-session serving leaves every worker but one idle.
//
// Output: one human table per paradigm plus one machine-readable JSON line
// per (paradigm, session count) config on stdout, e.g.
//   {"bench":"stream_throughput","paradigm":"gnn","sessions":16,...}
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/oracles.hpp"
#include "cnn/cnn_pipeline.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "events/event.hpp"
#include "fault/admission.hpp"
#include "fault/injector.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "obs/metrics.hpp"
#include "route/route.hpp"
#include "runtime/session_manager.hpp"
#include "sched/cost.hpp"
#include "sched/planner.hpp"
#include "shard/shard_manager.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

constexpr Index kWidth = 32;
constexpr Index kHeight = 32;
constexpr Index kEventsPerSession = 4000;
constexpr TimeUs kDuration = 200000;  // 200 ms of stream per session

/// Deterministic synthetic stream: uniform spatial noise, sorted times.
std::vector<events::Event> make_stream(std::uint64_t seed, Index count,
                                       TimeUs duration) {
  Rng rng(seed);
  std::vector<events::Event> stream;
  stream.reserve(static_cast<size_t>(count));
  for (Index i = 0; i < count; ++i) {
    events::Event e;
    e.x = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kWidth)));
    e.y = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kHeight)));
    e.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    e.t = (i * duration) / count;
    stream.push_back(e);
  }
  return stream;
}

std::vector<events::Event> session_stream(std::uint64_t seed) {
  return make_stream(seed, kEventsPerSession, kDuration);
}

struct ThroughputRow {
  Index sessions = 1;
  double wall_ms = 0.0;
  std::int64_t events = 0;
  std::int64_t decisions = 0;

  double events_per_s() const { return 1e3 * static_cast<double>(events) / wall_ms; }
  double decisions_per_s() const {
    return 1e3 * static_cast<double>(decisions) / wall_ms;
  }
};

template <typename Pipeline>
ThroughputRow serve(Pipeline& pipeline, Index session_count) {
  runtime::SessionManager manager(/*burst=*/256);
  std::vector<runtime::SessionId> ids;
  std::vector<std::vector<events::Event>> streams;
  for (Index s = 0; s < session_count; ++s) {
    ids.push_back(manager.add(pipeline.open_session(kWidth, kHeight)));
    streams.push_back(session_stream(100 + static_cast<std::uint64_t>(s)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  // Submit in bursts small enough to never overflow the 4096-deep ingress
  // queues, pumping between bursts — the serving loop a real deployment runs.
  Index cursor = 0;
  while (cursor < kEventsPerSession) {
    const Index until = std::min<Index>(cursor + 2048, kEventsPerSession);
    for (Index s = 0; s < session_count; ++s) {
      for (Index i = cursor; i < until; ++i) {
        manager.submit(ids[s], streams[static_cast<size_t>(s)]
                                      [static_cast<size_t>(i)]);
      }
    }
    manager.pump_all();
    cursor = until;
  }
  for (Index s = 0; s < session_count; ++s) {
    manager.submit_advance(ids[s], kDuration);
  }
  manager.pump_all();
  const auto t1 = std::chrono::steady_clock::now();

  ThroughputRow row;
  row.sessions = session_count;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto id : ids) {
    const auto stats = manager.stats(id);
    row.events += stats.events_fed;
    row.decisions += stats.decisions_emitted;
  }
  return row;
}

void print_json(const char* paradigm, Index threads,
                const ThroughputRow& row) {
  std::printf(
      "{\"bench\":\"stream_throughput\",\"paradigm\":\"%s\",\"threads\":%lld,"
      "\"sessions\":%lld,\"events\":%lld,\"decisions\":%lld,"
      "\"wall_ms\":%.3f,\"events_per_s\":%.0f,\"decisions_per_s\":%.0f}\n",
      paradigm, static_cast<long long>(threads),
      static_cast<long long>(row.sessions),
      static_cast<long long>(row.events),
      static_cast<long long>(row.decisions), row.wall_ms, row.events_per_s(),
      row.decisions_per_s());
}

template <typename Pipeline>
bool sweep(const char* paradigm, Pipeline& pipeline, Index threads) {
  std::vector<ThroughputRow> rows;
  for (const Index k : {1, 4, 16, 64}) {
    rows.push_back(serve(pipeline, k));
  }

  Table table({"sessions", "wall [ms]", "events/s", "decisions/s",
               "vs 1 session"});
  const double base = rows.front().events_per_s();
  for (const auto& row : rows) {
    table.add_row({std::to_string(row.sessions), Table::num(row.wall_ms, 1),
                   Table::num(row.events_per_s(), 0),
                   Table::num(row.decisions_per_s(), 0),
                   Table::num(row.events_per_s() / base, 2) + "x"});
  }
  std::printf("\n-- %s: %lld-thread pool --\n", paradigm,
              static_cast<long long>(threads));
  table.print();
  for (const auto& row : rows) print_json(paradigm, threads, row);

  // Acceptance: on a >= 4 worker pool, serving many sessions must beat the
  // single-session aggregate (sessions are independent, so anything else
  // means the runtime serialised them).
  const double best = rows.back().events_per_s();
  if (threads >= 4 && best <= base) {
    std::fprintf(stderr,
                 "FATAL: %s aggregate throughput did not scale with "
                 "sessions (%.0f ev/s at 64 vs %.0f at 1)\n",
                 paradigm, best, base);
    return false;
  }
  return true;
}

/// Every event inserts (stride 1) and runs the async message pass over a
/// hidden-32 model — the realistic per-event serving cost against which the
/// overhead gates below are held (the same shape bench_obs_overhead uses).
gnn::GnnPipelineConfig gnn_dense_config() {
  gnn::GnnPipelineConfig config;
  config.width = kWidth;
  config.height = kHeight;
  config.num_classes = 2;
  config.model.hidden = 32;
  config.model.layers = 2;
  config.stream_stride = 1;
  config.stream_max_nodes = 2048;
  config.decision_retain = 256;
  return config;
}

// ---- fault-injection overhead gate (< 1% when disabled) -------------------
//
// Every served op crosses five injection sites (four ingress-corruption
// checks at submit, one op-fault check in pump), each a relaxed atomic load
// + branch while injection is disabled. Sub-1% effects drown in run-to-run
// noise on a direct A/B, so — like the obs disabled gate — the sequence is
// bounded analytically: time the exact five-site sequence in a tight loop
// and require it to cost < 1% of the measured per-event serving cost.
bool gate_fault_overhead(double serve_ns_per_event) {
  fault::set_enabled(false);
  fault::Site sites[5] = {
      fault::Injector::instance().site("bench.fault.malformed"),
      fault::Injector::instance().site("bench.fault.out_of_order"),
      fault::Injector::instance().site("bench.fault.duplicate"),
      fault::Injector::instance().site("bench.fault.storm"),
      fault::Injector::instance().site("bench.fault.op_fault"),
  };
  constexpr std::int64_t kOps = 8000000;
  std::int64_t guard = 0;  // keeps the disabled branches observable
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < kOps; ++i) {
    for (auto& site : sites) {
      guard += site.fire(i) != fault::FaultKind::None ? 1 : 0;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (guard != 0) std::fprintf(stderr, "unexpected: a disabled site fired\n");
  const double sequence_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(kOps);
  const double fraction = sequence_ns / serve_ns_per_event;
  std::printf(
      "\n-- fault-injection overhead (disabled) --\n"
      "   five-site sequence: %.2f ns/op vs %.0f ns/event served "
      "(%.3f%%)\n",
      sequence_ns, serve_ns_per_event, 100.0 * fraction);
  std::printf(
      "{\"bench\":\"fault_overhead\",\"sequence_ns\":%.3f,"
      "\"serve_ns_per_event\":%.1f,\"fraction\":%.5f}\n",
      sequence_ns, serve_ns_per_event, fraction);
  if (fraction >= 0.01) {
    std::fprintf(stderr,
                 "FATAL: disabled fault sites cost %.3f%% of serving "
                 "(gate: < 1%%)\n",
                 100.0 * fraction);
    return false;
  }
  return true;
}

// ---- overload ladder gate (>= 80% of capacity at 2x offered load) ---------

struct OverloadRow {
  double factor = 1.0;
  std::int64_t served = 0;
  std::int64_t offered = 0;
  double wall_ms = 0.0;
  double served_per_s() const {
    return 1e3 * static_cast<double>(served) / wall_ms;
  }
};

/// Offer `factor` x the per-round queue capacity to every session for a
/// fixed number of rounds, with the degradation ladder enabled, and measure
/// what actually got served. At factor 1 nothing sheds; at factor 2 the
/// ladder climbs to RejectAdmits during each burst and the gate below
/// requires serving not to collapse under the shed pressure.
OverloadRow serve_overload(double factor) {
  constexpr Index kSessions = 8;
  constexpr Index kQueueCapacity = 1024;
  constexpr Index kRounds = 4;
  const Index offered_per_round =
      static_cast<Index>(static_cast<double>(kQueueCapacity) * factor);
  const Index total = offered_per_round * kRounds;

  gnn::GnnPipeline pipeline(gnn_dense_config());
  runtime::SessionManager manager(/*burst=*/256);
  fault::AdmissionConfig admission;
  admission.enabled = true;
  manager.set_admission(admission);
  runtime::ManagedSessionConfig config;
  config.queue_capacity = kQueueCapacity;
  std::vector<runtime::SessionId> ids;
  std::vector<std::vector<events::Event>> streams;
  for (Index s = 0; s < kSessions; ++s) {
    ids.push_back(manager.add(pipeline.open_session(kWidth, kHeight), config));
    // The overloading sensor produces `factor` x the events; stretching the
    // stream window by the same factor keeps temporal density — and with it
    // the per-event graph-neighbourhood cost — identical across factors, so
    // the served/s ratio below isolates the serving stack (admission ladder,
    // queueing, rejection) instead of re-measuring model cost vs density.
    streams.push_back(
        make_stream(500 + static_cast<std::uint64_t>(s), total,
                    static_cast<TimeUs>(static_cast<double>(kDuration) *
                                        static_cast<double>(kRounds) * factor)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  Index cursor = 0;
  for (Index round = 0; round < kRounds; ++round) {
    for (Index s = 0; s < kSessions; ++s) {
      for (Index i = cursor; i < cursor + offered_per_round; ++i) {
        manager.submit(ids[s],
                       streams[static_cast<size_t>(s)][static_cast<size_t>(i)]);
      }
    }
    manager.pump_all();
    cursor += offered_per_round;
  }
  const auto t1 = std::chrono::steady_clock::now();

  OverloadRow row;
  row.factor = factor;
  row.offered = static_cast<std::int64_t>(total) * kSessions;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto id : ids) row.served += manager.stats(id).events_fed;
  return row;
}

bool gate_overload() {
  const OverloadRow capacity = serve_overload(1.0);
  const OverloadRow overload = serve_overload(2.0);

  Table table({"offered", "events offered", "events served", "wall [ms]",
               "served/s"});
  for (const auto& row : {capacity, overload}) {
    table.add_row({Table::num(row.factor, 1) + "x",
                   std::to_string(row.offered), std::to_string(row.served),
                   Table::num(row.wall_ms, 1),
                   Table::num(row.served_per_s(), 0)});
  }
  std::printf("\n-- overload ladder: served throughput under pressure --\n");
  table.print();
  for (const auto& row : {capacity, overload}) {
    std::printf(
        "{\"bench\":\"stream_overload\",\"offered_factor\":%.1f,"
        "\"offered\":%lld,\"served\":%lld,\"wall_ms\":%.3f,"
        "\"served_per_s\":%.0f}\n",
        row.factor, static_cast<long long>(row.offered),
        static_cast<long long>(row.served), row.wall_ms, row.served_per_s());
  }

  const double ratio = overload.served_per_s() / capacity.served_per_s();
  if (ratio < 0.80) {
    std::fprintf(stderr,
                 "FATAL: served throughput at 2x offered load is %.0f%% of "
                 "capacity (gate: >= 80%%)\n",
                 100.0 * ratio);
    return false;
  }
  return true;
}

// ---- execution-planner gate (ISSUE 8 acceptance) --------------------------
//
// A mixed-paradigm population arranged adversarially for the legacy s % W
// deal: the two expensive dense-GNN sessions sit at ids 0 and 4, so on a
// 4-worker pool the blind round-robin pump stacks both onto worker 0 every
// round while the SNN workers idle. The annealed plan re-partitions the
// regions by modeled cost.
//
// Three gates, in decreasing order of portability:
//   1. Equivalence (every host): the planned pump's per-session decision
//      streams are bitwise identical to the round-robin pump's — the plan
//      equivalence contract, re-checked on real runs, not just in the
//      oracle suite.
//   2. Modeled serving makespan (every host): the chosen plan must beat the
//      modeled cost of the exact legacy schedule — Plan::round_robin(8, 4,
//      256) is the s % 4 deal, burst 256, default placements, i.e. what the
//      blind pump actually executes — by >= 10% under the same evd::hw cost
//      models the paper's Table I comparisons rest on.
//   3. Wall clock: the plan only redistributes *visits* across workers
//      (the equivalence contract forbids it changing any executed op), so
//      its wall-time effect is purely a parallel-makespan effect. That is
//      only physically expressible when the host can actually run the 4
//      regions concurrently: on < 4 hardware threads every partition
//      serialises onto the same cores and all schedules cost the same wall
//      time by construction. So the >= 1.10x wall gate arms when
//      hardware_concurrency >= 4; below that the wall leg is reported and
//      only sanity-checked (planned must not be materially slower).

struct PlannerRow {
  double wall_ms = 0.0;
  std::int64_t events = 0;
  std::vector<std::vector<core::Decision>> streams;
  double events_per_s() const {
    return 1e3 * static_cast<double>(events) / wall_ms;
  }
};

/// The mixed population, in session-id order. Paradigm pattern
/// gnn,cnn,snn,snn — repeating at ids 4..7, so each paradigm's sessions
/// collide on a worker under the legacy deal at W = 4.
struct MixedPopulation {
  gnn::GnnPipeline gnn;
  cnn::CnnPipeline cnn;
  snn::SnnPipeline snn;
  std::vector<const char*> paradigms;

  MixedPopulation()
      : gnn(gnn_dense_config()),
        cnn([] {
          cnn::CnnPipelineConfig config;
          config.width = kWidth;
          config.height = kHeight;
          config.num_classes = 2;
          config.base_filters = 4;
          config.frame_period_us = 20000;
          return config;
        }()),
        snn([] {
          snn::SnnPipelineConfig config;
          config.width = kWidth;
          config.height = kHeight;
          config.num_classes = 2;
          config.hidden = 64;
          config.timestep_us = 5000;
          return config;
        }()),
        paradigms{"gnn", "cnn", "snn", "snn", "gnn", "cnn", "snn", "snn"} {}

  std::unique_ptr<core::StreamSession> open(size_t i) {
    if (std::strcmp(paradigms[i], "gnn") == 0) {
      return gnn.open_session(kWidth, kHeight);
    }
    if (std::strcmp(paradigms[i], "cnn") == 0) {
      return cnn.open_session(kWidth, kHeight);
    }
    return snn.open_session(kWidth, kHeight);
  }

  sched::SessionProfile profile(size_t i, Index queued_ops) {
    if (std::strcmp(paradigms[i], "gnn") == 0) {
      return sched::profile_for(gnn, "gnn", queued_ops);
    }
    if (std::strcmp(paradigms[i], "cnn") == 0) {
      return sched::profile_for(cnn, "cnn", queued_ops);
    }
    return sched::profile_for(snn, "snn", queued_ops);
  }

  std::vector<events::Event> stream(size_t i) const {
    return session_stream(900 + static_cast<std::uint64_t>(i));
  }
};

template <typename Population>
PlannerRow serve_mixed(Population& population, const sched::Plan* plan) {
  const auto session_count = static_cast<Index>(population.paradigms.size());
  runtime::SessionManager manager(/*burst=*/256);
  std::vector<runtime::SessionId> ids;
  std::vector<std::vector<events::Event>> streams;
  for (Index s = 0; s < session_count; ++s) {
    ids.push_back(manager.add(population.open(static_cast<size_t>(s))));
    streams.push_back(population.stream(static_cast<size_t>(s)));
  }
  if (plan != nullptr) manager.set_plan(*plan);

  const auto t0 = std::chrono::steady_clock::now();
  Index cursor = 0;
  while (cursor < kEventsPerSession) {
    const Index until = std::min<Index>(cursor + 2048, kEventsPerSession);
    for (Index s = 0; s < session_count; ++s) {
      for (Index i = cursor; i < until; ++i) {
        manager.submit(ids[s], streams[static_cast<size_t>(s)]
                                      [static_cast<size_t>(i)]);
      }
    }
    manager.pump_all();
    cursor = until;
  }
  for (Index s = 0; s < session_count; ++s) {
    manager.submit_advance(ids[s], kDuration);
  }
  manager.pump_all();
  const auto t1 = std::chrono::steady_clock::now();

  PlannerRow row;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (const auto id : ids) {
    row.events += manager.stats(id).events_fed;
    std::vector<core::Decision> out;
    manager.drain(id, out);
    row.streams.push_back(std::move(out));
  }
  return row;
}

bool streams_bitwise_identical(
    const std::vector<std::vector<core::Decision>>& a,
    const std::vector<std::vector<core::Decision>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t s = 0; s < a.size(); ++s) {
    const auto& da = a[s];
    const auto& db = b[s];
    if (da.size() != db.size()) return false;
    for (size_t i = 0; i < da.size(); ++i) {
      if (da[i].label != db[i].label || da[i].t != db[i].t ||
          std::memcmp(&da[i].confidence, &db[i].confidence,
                      sizeof(da[i].confidence)) != 0) {
        return false;
      }
    }
  }
  return true;
}

bool decision_streams_identical(const PlannerRow& a, const PlannerRow& b) {
  return streams_bitwise_identical(a.streams, b.streams);
}

bool gate_planner() {
  // The adversarial deal needs W = 4 exactly (the ISSUE's >= 4 threads);
  // region_count above matches. Restore the full pool afterwards.
  const Index previous_threads = par::thread_count();
  par::set_thread_count(4);
  const bool sched_was_enabled = sched::enabled();
  sched::set_enabled(true);

  MixedPopulation population;
  std::vector<sched::SessionProfile> profiles;
  for (size_t s = 0; s < population.paradigms.size(); ++s) {
    profiles.push_back(population.profile(s, 2048));
  }
  sched::AnnealerConfig config;
  config.seed = 11;
  config.iterations = 900;
  config.region_count = 4;
  config.burst_cap = 256;
  const sched::Plan plan = sched::Planner::instance().plan_for(profiles, config);
  // Modeled baseline = the schedule the legacy pump actually runs: the
  // s % 4 deal at the manager's burst (256), default placements, unfused.
  const sched::CostModels models;
  sched::Plan legacy_schedule = sched::Plan::round_robin(8, 4, 256);
  const double legacy_modeled_us =
      sched::plan_cost_us(legacy_schedule, profiles, models);
  const double modeled_speedup = legacy_modeled_us / plan.modeled_cost_us;
  std::printf("\n-- execution planner: chosen plan --\n%s\n",
              plan.describe().c_str());
  std::printf(
      "   modeled drain: round-robin %.0f us, planned %.0f us (%.2fx)\n",
      legacy_modeled_us, plan.modeled_cost_us, modeled_speedup);

  // Interleave modes and keep the best of two runs each, so a one-off
  // scheduler hiccup cannot decide the gate either way.
  PlannerRow round_robin = serve_mixed(population, nullptr);
  PlannerRow planned = serve_mixed(population, &plan);
  {
    PlannerRow rr2 = serve_mixed(population, nullptr);
    if (rr2.wall_ms < round_robin.wall_ms) round_robin = std::move(rr2);
    PlannerRow planned2 = serve_mixed(population, &plan);
    if (planned2.wall_ms < planned.wall_ms) planned = std::move(planned2);
  }
  sched::set_enabled(sched_was_enabled);
  par::set_thread_count(previous_threads);

  const bool identical = decision_streams_identical(round_robin, planned);
  const double speedup = planned.events_per_s() / round_robin.events_per_s();
  const unsigned cores = std::thread::hardware_concurrency();
  const bool wall_gated = cores >= 4;
  Table table({"pump", "wall [ms]", "events/s", "vs round-robin"});
  table.add_row({"round-robin", Table::num(round_robin.wall_ms, 1),
                 Table::num(round_robin.events_per_s(), 0), "1.00x"});
  table.add_row({"planned", Table::num(planned.wall_ms, 1),
                 Table::num(planned.events_per_s(), 0),
                 Table::num(speedup, 2) + "x"});
  std::printf(
      "\n-- execution planner: mixed 8-session population, 4 workers --\n");
  table.print();
  std::printf("   decision streams bitwise identical: %s\n",
              identical ? "yes" : "NO");
  if (!wall_gated) {
    std::printf(
        "   host has %u hardware thread(s): all partitions serialise, so "
        "the wall leg is\n   reported but gated on the modeled makespan "
        "(wall sanity bound: >= 0.85x)\n",
        cores);
  }
  std::printf(
      "{\"bench\":\"stream_planner\",\"sessions\":8,\"threads\":4,"
      "\"cores\":%u,\"round_robin_wall_ms\":%.3f,\"planned_wall_ms\":%.3f,"
      "\"speedup\":%.3f,\"modeled_round_robin_us\":%.1f,"
      "\"modeled_plan_us\":%.1f,\"modeled_speedup\":%.3f,"
      "\"wall_gated\":%s,\"streams_identical\":%s}\n",
      cores, round_robin.wall_ms, planned.wall_ms, speedup, legacy_modeled_us,
      plan.modeled_cost_us, modeled_speedup, wall_gated ? "true" : "false",
      identical ? "true" : "false");

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: planned pump changed a decision stream (the plan "
                 "equivalence contract is bitwise)\n");
    return false;
  }
  if (modeled_speedup < 1.10) {
    std::fprintf(stderr,
                 "FATAL: planner modeled improvement %.2fx on the "
                 "adversarial mixed workload (gate: >= 1.10x over the "
                 "legacy round-robin schedule)\n",
                 modeled_speedup);
    return false;
  }
  if (wall_gated && speedup < 1.10) {
    std::fprintf(stderr,
                 "FATAL: planner wall speedup %.2fx on %u-core host "
                 "(gate: >= 1.10x over round-robin)\n",
                 speedup, cores);
    return false;
  }
  if (!wall_gated && speedup < 0.85) {
    std::fprintf(stderr,
                 "FATAL: planned pump is materially slower (%.2fx) than "
                 "round-robin on a serialised host (sanity bound: 0.85x)\n",
                 speedup);
    return false;
  }
  return true;
}

// ---- execution-routing gate (ISSUE 9 acceptance) --------------------------
//
// A sparse adversarial population: four CNN and four SNN sessions whose
// streams live entirely in an 8x8 corner of the 32x32 sensor, so the live
// fraction of the declared dense work is ~6% — the regime where the
// paper's event-driven side of the dichotomy wins. The session profiles
// carry that measured activity, and the planner — searching only over
// *proved* execution paths — must route the CNN placement onto cnn.sparse
// and the SNN placement onto snn.event_driven.
//
// Four legs:
//   1. Path choice (every host): the annealed plan routes cnn -> cnn.sparse
//      and snn -> snn.event_driven.
//   2. Equivalence (every host): serving through the routed plan produces
//      decision streams bitwise identical to serving the same schedule
//      with every path forced back to Default — the routing equivalence
//      contract re-checked on a real run, not just in the oracle suite.
//   3. Modeled serving makespan (every host): the routed plan must beat
//      the same plan with default paths by >= 1.10x under the same cost
//      models — isolating the routing win from the partitioning win
//      gate_planner already holds.
//   4. Wall clock: routing changes per-op cost, not parallelism, so the
//      wall win is expressible on any core count — but its size depends on
//      how much of the serving loop the routed hot stage is, and on small
//      hosts queue/pump overhead compresses it. The >= 1.10x wall gate
//      arms on >= 4 hardware threads (where CI measures it reliably);
//      below that the leg is reported and sanity-bounded (>= 0.85x).

/// Sparse-corner stream: session_stream's temporal density, all activity
/// confined to an 8x8 patch of the sensor.
std::vector<events::Event> sparse_corner_stream(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<events::Event> stream;
  stream.reserve(static_cast<size_t>(kEventsPerSession));
  for (Index i = 0; i < kEventsPerSession; ++i) {
    events::Event e;
    e.x = static_cast<std::int16_t>(rng.uniform_int(8));
    e.y = static_cast<std::int16_t>(rng.uniform_int(8));
    e.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    e.t = (i * kDuration) / kEventsPerSession;
    stream.push_back(e);
  }
  return stream;
}

/// Measured live fraction: mean distinct-pixel occupancy per frame period
/// — what the activity-scaled execution paths are priced against.
double stream_activity(const std::vector<events::Event>& stream,
                       TimeUs period) {
  std::vector<char> touched(static_cast<size_t>(kWidth * kHeight), 0);
  double occupancy_sum = 0.0;
  Index windows = 0;
  Index live = 0;
  TimeUs window_end = period;
  const auto flush = [&] {
    occupancy_sum +=
        static_cast<double>(live) / static_cast<double>(kWidth * kHeight);
    ++windows;
    live = 0;
    std::fill(touched.begin(), touched.end(), 0);
  };
  for (const events::Event& e : stream) {
    while (e.t >= window_end) {
      flush();
      window_end += period;
    }
    char& cell = touched[static_cast<size_t>(e.y) * kWidth +
                         static_cast<size_t>(e.x)];
    live += cell == 0 ? 1 : 0;
    cell = 1;
  }
  flush();
  return windows > 0 ? occupancy_sum / static_cast<double>(windows) : 1.0;
}

/// The sparse population, paradigm pattern cnn,snn repeating over 8 ids.
struct SparsePopulation {
  cnn::CnnPipeline cnn;
  snn::SnnPipeline snn;
  std::vector<const char*> paradigms;
  double activity = 1.0;

  SparsePopulation()
      : cnn([] {
          cnn::CnnPipelineConfig config;
          config.width = kWidth;
          config.height = kHeight;
          config.num_classes = 2;
          config.base_filters = 4;
          config.frame_period_us = 20000;
          return config;
        }()),
        snn([] {
          snn::SnnPipelineConfig config;
          config.width = kWidth;
          config.height = kHeight;
          config.num_classes = 2;
          config.hidden = 64;
          config.timestep_us = 5000;
          return config;
        }()),
        paradigms{"cnn", "snn", "cnn", "snn", "cnn", "snn", "cnn", "snn"},
        activity(stream_activity(stream(0), 20000)) {}

  std::unique_ptr<core::StreamSession> open(size_t i) {
    if (std::strcmp(paradigms[i], "cnn") == 0) {
      return cnn.open_session(kWidth, kHeight);
    }
    return snn.open_session(kWidth, kHeight);
  }

  sched::SessionProfile profile(size_t i, Index queued_ops) {
    if (std::strcmp(paradigms[i], "cnn") == 0) {
      return sched::profile_for(cnn, "cnn", queued_ops, activity);
    }
    return sched::profile_for(snn, "snn", queued_ops, activity);
  }

  std::vector<events::Event> stream(size_t i) const {
    return sparse_corner_stream(1300 + static_cast<std::uint64_t>(i));
  }
};

bool gate_routing() {
  const Index previous_threads = par::thread_count();
  par::set_thread_count(4);
  const bool sched_was_enabled = sched::enabled();
  sched::set_enabled(true);
  // Proved-gating: the planner may only route onto oracle-backed paths,
  // and registering the route.* oracles is what marks them proved — the
  // same entitlement step a serving binary performs at startup.
  check::register_builtin_oracles();

  SparsePopulation population;
  std::vector<sched::SessionProfile> profiles;
  for (size_t s = 0; s < population.paradigms.size(); ++s) {
    profiles.push_back(population.profile(s, 2048));
  }
  sched::AnnealerConfig config;
  config.seed = 23;
  config.iterations = 1200;
  config.region_count = 4;
  config.burst_cap = 256;
  const sched::Plan plan = sched::Planner::instance().plan_for(profiles, config);

  const auto placement_path = [&plan](const char* paradigm) {
    for (const sched::ParadigmPlacement& p : plan.placements) {
      if (p.paradigm == paradigm) return p.path;
    }
    return route::PathId::Default;
  };
  const route::PathId cnn_path = placement_path("cnn");
  const route::PathId snn_path = placement_path("snn");

  // The routing win in isolation: the same annealed schedule with every
  // placement forced back to the default path, priced by the same models.
  sched::Plan unrouted = plan;
  for (sched::ParadigmPlacement& p : unrouted.placements) {
    p.path = route::PathId::Default;
  }
  unrouted.refresh_labels();
  const sched::CostModels models;
  const double unrouted_modeled_us =
      sched::plan_cost_us(unrouted, profiles, models);
  const double routed_modeled_us = sched::plan_cost_us(plan, profiles, models);
  const double modeled_speedup = unrouted_modeled_us / routed_modeled_us;
  std::printf(
      "\n-- execution routing: chosen plan (measured activity %.3f) --\n%s\n",
      population.activity, plan.describe().c_str());
  std::printf(
      "   modeled drain: default paths %.0f us, routed %.0f us (%.2fx)\n",
      unrouted_modeled_us, routed_modeled_us, modeled_speedup);

  // Best of two runs each, interleaved, as in gate_planner.
  PlannerRow default_paths = serve_mixed(population, &unrouted);
  PlannerRow routed = serve_mixed(population, &plan);
  {
    PlannerRow default2 = serve_mixed(population, &unrouted);
    if (default2.wall_ms < default_paths.wall_ms) {
      default_paths = std::move(default2);
    }
    PlannerRow routed2 = serve_mixed(population, &plan);
    if (routed2.wall_ms < routed.wall_ms) routed = std::move(routed2);
  }
  sched::set_enabled(sched_was_enabled);
  par::set_thread_count(previous_threads);

  const bool identical = decision_streams_identical(default_paths, routed);
  const double speedup = routed.events_per_s() / default_paths.events_per_s();
  const unsigned cores = std::thread::hardware_concurrency();
  const bool wall_gated = cores >= 4;
  Table table({"paths", "wall [ms]", "events/s", "vs default"});
  table.add_row({"default", Table::num(default_paths.wall_ms, 1),
                 Table::num(default_paths.events_per_s(), 0), "1.00x"});
  table.add_row({"routed", Table::num(routed.wall_ms, 1),
                 Table::num(routed.events_per_s(), 0),
                 Table::num(speedup, 2) + "x"});
  std::printf(
      "\n-- execution routing: sparse 8-session population, 4 workers --\n");
  table.print();
  std::printf("   decision streams bitwise identical: %s\n",
              identical ? "yes" : "NO");
  std::printf(
      "{\"bench\":\"stream_routing\",\"sessions\":8,\"threads\":4,"
      "\"cores\":%u,\"activity\":%.4f,\"cnn_path\":\"%s\","
      "\"snn_path\":\"%s\",\"default_wall_ms\":%.3f,\"routed_wall_ms\":%.3f,"
      "\"speedup\":%.3f,\"modeled_default_us\":%.1f,"
      "\"modeled_routed_us\":%.1f,\"modeled_speedup\":%.3f,"
      "\"wall_gated\":%s,\"streams_identical\":%s}\n",
      cores, population.activity, route::path_name(cnn_path),
      route::path_name(snn_path), default_paths.wall_ms, routed.wall_ms,
      speedup, unrouted_modeled_us, routed_modeled_us, modeled_speedup,
      wall_gated ? "true" : "false", identical ? "true" : "false");

  if (cnn_path != route::PathId::CnnSparse ||
      snn_path != route::PathId::SnnEventDriven) {
    std::fprintf(stderr,
                 "FATAL: planner did not route the sparse population onto "
                 "the event-driven paths (cnn -> %s, snn -> %s)\n",
                 route::path_name(cnn_path), route::path_name(snn_path));
    return false;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: routed pump changed a decision stream (the routing "
                 "equivalence contract is bitwise)\n");
    return false;
  }
  if (modeled_speedup < 1.10) {
    std::fprintf(stderr,
                 "FATAL: routing modeled improvement %.2fx on the sparse "
                 "population (gate: >= 1.10x over default paths on the "
                 "same schedule)\n",
                 modeled_speedup);
    return false;
  }
  if (wall_gated && speedup < 1.10) {
    std::fprintf(stderr,
                 "FATAL: routing wall speedup %.2fx on %u-core host "
                 "(gate: >= 1.10x over default paths)\n",
                 speedup, cores);
    return false;
  }
  if (!wall_gated && speedup < 0.85) {
    std::fprintf(stderr,
                 "FATAL: routed pump is materially slower (%.2fx) than "
                 "default paths (sanity bound: 0.85x)\n",
                 speedup);
    return false;
  }
  return true;
}

// ---- sharded-ingestion gate (evd::shard acceptance) -----------------------
//
// A tenant population at serving scale: 10^4 sessions (the ISSUE's floor)
// with Zipf(1.1) hot-key tenant weights and two-state MMPP (Markov-
// modulated Poisson) bursty arrivals — the skewed, bursty workload shape
// consistent-hash sharding exists for. One deterministic arrival tape is
// served twice through a ShardManager — at shards = 1 (the legacy
// single-manager collapse: no ring, no placement) and at 4 shards — and
// three legs are held:
//   1. Equivalence (every host, always gated): per-session decision
//      streams bitwise identical between the two runs, and neither run
//      sheds an event — sharding is replay-transparent at population
//      scale, not just on oracle-sized schedules.
//   2. Throughput: shard pumps fan out over evd::par, so the win is a
//      parallel-makespan effect exactly like the planner wall leg — the
//      >= 1.5x gate arms on >= 4 hardware threads; below that the ratio
//      is reported and sanity-bounded (>= 0.75x: ring + placement overhead
//      must stay in the noise even when every shard serialises onto one
//      core).
//   3. p99 feed->decision latency from the obs histogram on a separate
//      instrumented 4-shard run (reported and recorded in the JSON, so
//      BENCH_stream.json tracks the tail SLO over time).

constexpr Index kShardSessions = 10000;
constexpr Index kShardArrivals = 150000;
constexpr Index kShardGeometry = 16;
constexpr Index kShardCount = 4;

struct Arrival {
  Index session = 0;
  events::Event event;
};

/// The shared arrival tape. Tenant of each event ~ Zipf(1.1) over the 10^4
/// sessions (rank-1 tenant takes ~10% of all traffic); inter-arrival gaps
/// are exponential with the rate modulated by a two-state Markov chain
/// (quiet ~40 us mean gap, burst ~4 us), switching with a small per-arrival
/// hazard — sustained bursts hammering one hot shard, exactly the adversary
/// of the placement design.
std::vector<Arrival> shard_arrival_tape() {
  Rng rng(4242);
  std::vector<double> cdf(static_cast<size_t>(kShardSessions));
  double total = 0.0;
  for (Index s = 0; s < kShardSessions; ++s) {
    total += 1.0 / std::pow(static_cast<double>(s) + 1.0, 1.1);
    cdf[static_cast<size_t>(s)] = total;
  }
  std::vector<Arrival> tape;
  tape.reserve(static_cast<size_t>(kShardArrivals));
  double now_us = 0.0;
  bool burst = false;
  for (Index i = 0; i < kShardArrivals; ++i) {
    if (rng.bernoulli(burst ? 0.05 : 0.02)) burst = !burst;
    const double mean_gap = burst ? 4.0 : 40.0;
    now_us += -mean_gap * std::log(1.0 - rng.uniform());
    Arrival a;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(),
                                     rng.uniform() * total);
    a.session = static_cast<Index>(it - cdf.begin());
    a.event.x = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kShardGeometry)));
    a.event.y = static_cast<std::int16_t>(
        rng.uniform_int(static_cast<std::uint64_t>(kShardGeometry)));
    a.event.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    a.event.t = static_cast<TimeUs>(now_us);
    tape.push_back(a);
  }
  return tape;
}

/// Light GNN tenants: a decision every 4th event with no advance ops, so
/// 10^4 mostly-idle sessions cost nothing until traffic reaches them.
gnn::GnnPipelineConfig shard_tenant_config() {
  gnn::GnnPipelineConfig config;
  config.width = kShardGeometry;
  config.height = kShardGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 4;
  config.stream_max_nodes = 64;    // hot tenants recycle, deterministically
  config.decision_retain = 4096;   // > max decisions of the hottest tenant
  return config;
}

struct ShardRow {
  Index shards = 1;
  double wall_ms = 0.0;
  std::int64_t events = 0;
  std::int64_t decisions = 0;
  std::int64_t dropped = 0;
  std::vector<std::vector<core::Decision>> streams;
  double events_per_s() const {
    return 1e3 * static_cast<double>(events) / wall_ms;
  }
};

ShardRow serve_tape_sharded(gnn::GnnPipeline& pipeline,
                            const std::vector<Arrival>& tape, Index shards) {
  shard::ShardManagerConfig cfg;
  cfg.shards = shards;
  cfg.burst = 256;
  cfg.ingress_capacity = 8192;
  shard::ShardManager manager(cfg);
  std::vector<shard::ShardManager::SessionId> ids;
  ids.reserve(static_cast<size_t>(kShardSessions));
  for (Index s = 0; s < kShardSessions; ++s) {
    ids.push_back(manager.add([&] {
      return pipeline.open_session(kShardGeometry, kShardGeometry);
    }));
  }

  const auto t0 = std::chrono::steady_clock::now();
  // Drain every 2048 arrivals: even if a burst lands entirely on one
  // tenant, no ingress ring (8192) or inner queue (4096) can overflow, so
  // the two runs shed nothing and stay comparable event for event.
  Index since_pump = 0;
  for (const Arrival& a : tape) {
    while (!manager.submit(ids[static_cast<size_t>(a.session)], a.event)) {
      manager.pump();
    }
    if (++since_pump == 2048) {
      manager.pump_all();
      since_pump = 0;
    }
  }
  manager.pump_all();
  const auto t1 = std::chrono::steady_clock::now();

  ShardRow row;
  row.shards = shards;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const shard::ShardManager::Stats stats = manager.stats();
  row.events = stats.totals.events_fed;
  row.decisions = stats.totals.decisions_emitted;
  row.dropped = stats.totals.events_dropped;
  row.streams.reserve(ids.size());
  for (const auto id : ids) {
    std::vector<core::Decision> out;
    manager.drain(id, out);
    row.streams.push_back(std::move(out));
  }
  return row;
}

void print_sharded_json(const ShardRow& row) {
  std::printf(
      "{\"bench\":\"stream_sharded\",\"sessions\":%lld,\"shards\":%lld,"
      "\"events\":%lld,\"decisions\":%lld,\"dropped\":%lld,"
      "\"wall_ms\":%.3f,\"events_per_s\":%.0f}\n",
      static_cast<long long>(kShardSessions),
      static_cast<long long>(row.shards), static_cast<long long>(row.events),
      static_cast<long long>(row.decisions),
      static_cast<long long>(row.dropped), row.wall_ms, row.events_per_s());
}

bool gate_sharding() {
  const std::vector<Arrival> tape = shard_arrival_tape();
  gnn::GnnPipeline pipeline(shard_tenant_config());

  // Interleave modes, best of two each, as in gate_planner.
  ShardRow unsharded = serve_tape_sharded(pipeline, tape, 1);
  ShardRow sharded = serve_tape_sharded(pipeline, tape, kShardCount);
  {
    ShardRow un2 = serve_tape_sharded(pipeline, tape, 1);
    const bool identical_un = streams_bitwise_identical(unsharded.streams,
                                                        un2.streams);
    if (!identical_un) {
      std::fprintf(stderr,
                   "FATAL: two shards=1 runs of the same tape disagree — "
                   "serving is not deterministic\n");
      return false;
    }
    if (un2.wall_ms < unsharded.wall_ms) unsharded = std::move(un2);
    ShardRow sh2 = serve_tape_sharded(pipeline, tape, kShardCount);
    if (sh2.wall_ms < sharded.wall_ms) sharded = std::move(sh2);
  }

  const bool identical =
      streams_bitwise_identical(unsharded.streams, sharded.streams);
  const double speedup = sharded.events_per_s() / unsharded.events_per_s();
  const unsigned cores = std::thread::hardware_concurrency();
  const bool wall_gated = cores >= 4;

  // Tail latency of the sharded plane, from a separate instrumented run so
  // the throughput numbers above stay unperturbed.
  obs::MetricsRegistry::instance().reset();
  obs::set_enabled(true);
  serve_tape_sharded(pipeline, tape, kShardCount);
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::snapshot();
  // Each shard's inner manager records its own labeled histogram
  // (evd_feed_to_decision_us{shard="k"}); the population tail is the
  // bucket-wise merge across shards.
  obs::HistogramSnapshot latency;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("evd_feed_to_decision_us", 0) != 0) continue;
    if (latency.buckets.empty()) latency.buckets.resize(h.buckets.size(), 0);
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      latency.buckets[b] += h.buckets[b];
    }
    latency.count += h.count;
    latency.sum += h.sum;
  }
  if (latency.count == 0) {
    std::fprintf(stderr,
                 "FATAL: no feed->decision latency samples from the "
                 "sharded run\n");
    return false;
  }
  const double p50 = latency.quantile(0.50);
  const double p99 = latency.quantile(0.99);

  Table table({"shards", "wall [ms]", "events/s", "vs 1 shard"});
  table.add_row({"1", Table::num(unsharded.wall_ms, 1),
                 Table::num(unsharded.events_per_s(), 0), "1.00x"});
  table.add_row({std::to_string(kShardCount), Table::num(sharded.wall_ms, 1),
                 Table::num(sharded.events_per_s(), 0),
                 Table::num(speedup, 2) + "x"});
  std::printf(
      "\n-- sharded ingestion: %lld Zipf/MMPP tenants, %lld arrivals --\n",
      static_cast<long long>(kShardSessions),
      static_cast<long long>(kShardArrivals));
  table.print();
  std::printf("   decision streams bitwise identical: %s\n",
              identical ? "yes" : "NO");
  std::printf(
      "   sharded feed->decision latency: p50 %.0f us, p99 %.0f us over "
      "%lld samples\n",
      p50, p99, static_cast<long long>(latency.count));
  if (!wall_gated) {
    std::printf(
        "   host has %u hardware thread(s): shard pumps serialise, so the "
        "1.5x leg is\n   reported but only sanity-bounded (>= 0.75x)\n",
        cores);
  }
  print_sharded_json(unsharded);
  print_sharded_json(sharded);
  std::printf(
      "{\"bench\":\"stream_sharded_gate\",\"sessions\":%lld,"
      "\"shards\":%lld,\"cores\":%u,\"speedup\":%.3f,\"wall_gated\":%s,"
      "\"streams_identical\":%s,\"p50_us\":%.1f,\"p99_us\":%.1f}\n",
      static_cast<long long>(kShardSessions),
      static_cast<long long>(kShardCount), cores, speedup,
      wall_gated ? "true" : "false", identical ? "true" : "false", p50, p99);

  if (unsharded.dropped != 0 || sharded.dropped != 0) {
    std::fprintf(stderr,
                 "FATAL: the tape should never shed (%lld dropped at 1 "
                 "shard, %lld at %lld)\n",
                 static_cast<long long>(unsharded.dropped),
                 static_cast<long long>(sharded.dropped),
                 static_cast<long long>(kShardCount));
    return false;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: sharding changed a decision stream (the "
                 "replay-transparency contract is bitwise)\n");
    return false;
  }
  if (wall_gated && speedup < 1.5) {
    std::fprintf(stderr,
                 "FATAL: sharded throughput %.2fx vs the single-manager "
                 "path on %u-core host (gate: >= 1.5x)\n",
                 speedup, cores);
    return false;
  }
  if (!wall_gated && speedup < 0.75) {
    std::fprintf(stderr,
                 "FATAL: sharding is materially slower (%.2fx) than the "
                 "single-manager path on a serialised host (sanity bound: "
                 "0.75x)\n",
                 speedup);
    return false;
  }
  return true;
}

// ---- feed->decision latency (p50 / p99 from the obs histogram) ------------

/// Serve 8 sessions of one paradigm with observability on and report the
/// feed->decision latency distribution the SessionManager recorded. The
/// registry is reset per paradigm so each histogram is uncontaminated by
/// the previous pipeline's samples.
template <typename Pipeline>
bool report_latency(const char* paradigm, Pipeline& pipeline) {
  obs::MetricsRegistry::instance().reset();
  obs::set_enabled(true);
  serve(pipeline, 8);
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::snapshot();
  const obs::HistogramSnapshot* latency =
      snap.histogram("evd_feed_to_decision_us");
  if (latency == nullptr || latency->count == 0) {
    std::fprintf(stderr, "FATAL: no %s feed->decision latency samples\n",
                 paradigm);
    return false;
  }
  const double p50 = latency->quantile(0.50);
  const double p99 = latency->quantile(0.99);
  std::printf(
      "\n-- %s feed->decision latency (8 sessions, 1-in-16 sampled) --\n"
      "   p50 %.0f us, p99 %.0f us, mean %.0f us over %lld samples\n",
      paradigm, p50, p99, latency->mean(),
      static_cast<long long>(latency->count));
  std::printf(
      "{\"bench\":\"stream_latency\",\"paradigm\":\"%s\",\"sessions\":8,"
      "\"samples\":%lld,\"p50_us\":%.1f,\"p99_us\":%.1f,\"mean_us\":%.1f}\n",
      paradigm, static_cast<long long>(latency->count), p50, p99,
      latency->mean());
  return true;
}

bool report_all_latencies() {
  bool ok = true;
  {
    cnn::CnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.base_filters = 4;
    config.frame_period_us = 20000;
    cnn::CnnPipeline pipeline(config);
    ok = report_latency("cnn", pipeline) && ok;
  }
  {
    snn::SnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.hidden = 64;
    config.timestep_us = 5000;
    snn::SnnPipeline pipeline(config);
    ok = report_latency("snn", pipeline) && ok;
  }
  {
    gnn::GnnPipeline pipeline(gnn_dense_config());
    ok = report_latency("gnn", pipeline) && ok;
  }
  return ok;
}

}  // namespace

int main() {
  const auto hw = static_cast<Index>(std::thread::hardware_concurrency());
  const Index threads = hw > 0 ? hw : 1;
  par::set_thread_count(threads);
  std::printf("== multi-session stream serving throughput (%lld threads, "
              "%lld events/session) ==\n",
              static_cast<long long>(threads),
              static_cast<long long>(kEventsPerSession));

  bool ok = true;
  {
    cnn::CnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.base_filters = 4;
    config.frame_period_us = 20000;  // 10 frame decisions per session
    cnn::CnnPipeline pipeline(config);
    ok = sweep("cnn", pipeline, threads) && ok;
  }
  {
    snn::SnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.hidden = 64;
    config.timestep_us = 5000;  // 40 step decisions per session
    snn::SnnPipeline pipeline(config);
    ok = sweep("snn", pipeline, threads) && ok;
  }
  {
    gnn::GnnPipelineConfig config;
    config.width = kWidth;
    config.height = kHeight;
    config.num_classes = 2;
    config.model.hidden = 16;
    config.model.layers = 2;
    config.stream_stride = 4;      // one decision per inserted event
    config.stream_max_nodes = 2048;  // > inserts/session: no recycle here
    config.decision_retain = 1024;   // keep 64 sessions' tails light
    gnn::GnnPipeline pipeline(config);
    ok = sweep("gnn", pipeline, threads) && ok;
  }
  {
    // Per-event serving cost for the fault-overhead gate, from a fresh
    // 8-session GNN run (the densest per-event paradigm).
    gnn::GnnPipeline pipeline(gnn_dense_config());
    const ThroughputRow row = serve(pipeline, 8);
    const double ns_per_event =
        row.wall_ms * 1e6 / static_cast<double>(row.events);
    ok = gate_fault_overhead(ns_per_event) && ok;
  }
  ok = gate_overload() && ok;
  ok = gate_planner() && ok;
  ok = gate_routing() && ok;
  ok = gate_sharding() && ok;
  ok = report_all_latencies() && ok;
  return ok ? 0 : 1;
}
