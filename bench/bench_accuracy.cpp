// Reproduces CLAIM-ACC:
//  * §V / [77]: "SNNs have been observed to consistently exhibit a degraded
//    performance relative to CNNs" on event-camera benchmarks;
//  * §IV / [69],[70]: event-GNNs outperform dense-frame CNNs "while
//    remarkably requiring orders of magnitude fewer neural network
//    calculations and parameters".
//
// All three pipelines train on the identical split with their own training
// recipes; we report accuracy, parameters and per-classification operations,
// plus the resolution projection that shows where the operation gap the
// paper describes comes from (it grows with sensor area for the CNN but not
// for the event-driven GNN).
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

namespace {

struct Row {
  std::string name;
  double accuracy = 0.0;
  Index params = 0;
  std::int64_t ops = 0;
  std::int64_t stream_ops_per_decision = 0;
};

Row measure(core::EventPipeline& pipeline,
            std::span<const events::LabelledSample> train,
            std::span<const events::LabelledSample> test,
            const core::TrainOptions& options) {
  std::printf("training %s (%lld samples, %lld epochs)...\n",
              pipeline.name().c_str(), (long long)train.size(),
              (long long)options.epochs);
  pipeline.train(train, options);

  Row row;
  row.name = pipeline.name();
  Index correct = 0;
  nn::OpCounter counter;
  {
    nn::ScopedCounter scope(counter);
    for (const auto& sample : test) {
      correct += (pipeline.classify(sample.stream) == sample.label) ? 1 : 0;
    }
  }
  row.accuracy = static_cast<double>(correct) /
                 static_cast<double>(test.size());
  row.params = pipeline.param_count();
  row.ops = counter.total_ops() / static_cast<Index>(test.size());

  // Streaming: ops per emitted decision.
  nn::OpCounter stream_counter;
  {
    nn::ScopedCounter scope(stream_counter);
    auto session = pipeline.open_session(test[0].stream.width,
                                         test[0].stream.height);
    for (const auto& e : test[0].stream.events) session->feed(e);
    session->advance_to(test[0].stream.events.back().t + 1);
    const auto decisions = session->decisions().size();
    if (decisions > 0) {
      row.stream_ops_per_decision =
          stream_counter.total_ops() / static_cast<Index>(decisions);
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== CLAIM-ACC: accuracy / parameters / operations ==\n\n");

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(80, 20, train, test);

  // epochs/lr <= 0: each pipeline trains with its own default recipe.
  core::TrainOptions options{0, 0.0f, 1, false};

  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  snn::SnnPipeline snn_pipeline{snn::SnnPipelineConfig{}};
  gnn::GnnPipeline gnn_pipeline{gnn::GnnPipelineConfig{}};

  std::vector<Row> rows;
  rows.push_back(measure(cnn_pipeline, train, test, options));
  rows.push_back(measure(snn_pipeline, train, test, options));
  rows.push_back(measure(gnn_pipeline, train, test, options));

  std::printf("\n");
  Table table({"pipeline", "test accuracy", "params", "ops/classification",
               "ops/streaming decision"});
  for (const auto& row : rows) {
    table.add_row({row.name, Table::num(row.accuracy, 3),
                   Table::eng(static_cast<double>(row.params)),
                   Table::eng(static_cast<double>(row.ops)),
                   Table::eng(static_cast<double>(
                       row.stream_ops_per_decision))});
  }
  table.print();

  const auto& cnn_row = rows[0];
  const auto& snn_row = rows[1];
  const auto& gnn_row = rows[2];
  std::printf("\npaper claims vs measured:\n");
  std::printf("  SNN degraded vs CNN [77]: CNN %.3f vs SNN %.3f -> %s\n",
              cnn_row.accuracy, snn_row.accuracy,
              cnn_row.accuracy > snn_row.accuracy ? "holds" : "DEVIATES");
  std::printf("  GNN matches/beats CNN [69],[70]: GNN %.3f vs CNN %.3f -> %s\n",
              gnn_row.accuracy, cnn_row.accuracy,
              gnn_row.accuracy >= cnn_row.accuracy - 0.05 ? "holds"
                                                          : "DEVIATES");
  std::printf("  GNN fewer parameters: %.1fx fewer than CNN\n",
              static_cast<double>(cnn_row.params) /
                  static_cast<double>(gnn_row.params));

  // Resolution projection: CNN conv work scales with pixel area; the
  // event-graph scales with event count (bounded by max_nodes here). The
  // paper's "orders of magnitude fewer calculations" [70] is measured on
  // 240x180..640x480 sensors.
  std::printf("\n-- operation-count projection vs sensor resolution --\n");
  Table projection({"resolution", "CNN ops (scales with area)",
                    "GNN ops (scales with events)", "ratio"});
  const double base_area = 32.0 * 32.0;
  for (const auto& [w, h] : std::vector<std::pair<int, int>>{
           {32, 32}, {240, 180}, {640, 480}, {1280, 720}}) {
    const double area_scale = (w * h) / base_area;
    // Event count grows ~linearly with object contour length (~sqrt(area));
    // graph work is further capped by the node budget.
    const double event_scale = std::sqrt(area_scale);
    const double cnn_ops = static_cast<double>(cnn_row.ops) * area_scale;
    const double gnn_ops =
        static_cast<double>(gnn_row.ops) * std::min(event_scale, 4.0);
    projection.add_row({std::to_string(w) + "x" + std::to_string(h),
                        Table::eng(cnn_ops), Table::eng(gnn_ops),
                        Table::num(cnn_ops / gnn_ops, 1) + "x"});
  }
  projection.print();
  std::printf("at the paper's evaluation resolutions the CNN/GNN operation "
              "ratio reaches the 'orders of magnitude' regime.\n");
  return 0;
}
