// Asynchronous, event-driven inference — the §IV perspective in action.
//
//   $ ./examples/async_inference
//
// A shape sweeps into an initially quiet scene. Every incoming event is
// inserted into the evolving spatiotemporal graph by the O(1) incremental
// builder, the affected node's features are computed asynchronously
// (causal / "hemispherical" updates), and the running class decision is
// re-read — so the system's belief sharpens event by event, with no frame
// period or timestep in the loop. The same stream is also fed to the CNN
// session to contrast when each paradigm's first decision becomes available.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/async_update.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "gnn/incremental.hpp"

using namespace evd;

int main() {
  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(40, 4, train, test);
  // Deployment-matched training: the streaming scenario below serves
  // shapes sweeping IN from off-screen, so the training set must contain
  // such trajectories too (free-roaming samples alone are a distribution
  // mismatch — a partially visible entering shape looks like a bar).
  for (int label = 0; label < dataset_config.num_classes; ++label) {
    for (int k = 0; k < 10; ++k) {
      const auto onset_sample = events::make_onset_stream(
          dataset_config, label, 20000 + k * 2500, 100000,
          500 + static_cast<std::uint64_t>(label * 16 + k));
      train.push_back({onset_sample.stream, label});
    }
  }

  std::printf("training GNN and CNN pipelines...\n");
  gnn::GnnPipeline gnn_pipeline{gnn::GnnPipelineConfig{}};
  core::TrainOptions gnn_options{30, 2e-3f, 1, false};
  gnn_pipeline.train(train, gnn_options);
  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  core::TrainOptions cnn_options{35, 2e-3f, 1, false};
  cnn_pipeline.train(train, cnn_options);

  // Stimulus-onset stream: (near) silent until the shape enters at 30 ms.
  const int true_label = 0;  // circle
  const auto onset = events::make_onset_stream(dataset_config, true_label,
                                               30000, 100000, 99);
  std::printf("\nstimulus: %s entering at t = %lld us (%lld events total)\n\n",
              events::shape_kind_name(
                  static_cast<events::ShapeKind>(true_label)),
              (long long)onset.onset_us, (long long)onset.stream.size());

  // --- GNN: per-event asynchronous inference, narrated. ---
  auto gnn_session = gnn_pipeline.open_session(32, 32);
  auto cnn_session = cnn_pipeline.open_session(32, 32);
  for (const auto& e : onset.stream.events) {
    gnn_session->feed(e);
    cnn_session->feed(e);
  }
  gnn_session->advance_to(100000);
  cnn_session->advance_to(100000);

  const auto& gnn_decisions = gnn_session->decisions();
  const auto& cnn_decisions = cnn_session->decisions();

  std::printf("-- GNN belief evolution (every ~40th decision) --\n");
  Table table({"t [us]", "since onset [us]", "predicted", "confidence"});
  for (size_t i = 0; i < gnn_decisions.size();
       i += std::max<size_t>(gnn_decisions.size() / 12, 1)) {
    const auto& d = gnn_decisions[i];
    table.add_row({std::to_string(d.t),
                   std::to_string(d.t - onset.onset_us),
                   events::shape_kind_name(
                       static_cast<events::ShapeKind>(d.label)),
                   Table::num(d.confidence, 3)});
  }
  table.print();

  auto first_after_onset = [&](const std::vector<core::Decision>& decisions,
                               bool require_correct) {
    for (const auto& d : decisions) {
      if (d.t <= onset.onset_us || d.label < 0) continue;
      if (!require_correct || d.label == true_label) {
        return static_cast<double>(d.t - onset.onset_us);
      }
    }
    return -1.0;  // never
  };
  std::printf("\nfirst decision / first correct decision after onset "
              "(-1 = never):\n");
  std::printf("  GNN (per event)   : %+.0f us / %+.0f us\n",
              first_after_onset(gnn_decisions, false),
              first_after_onset(gnn_decisions, true));
  std::printf("  CNN (20ms frames) : %+.0f us / %+.0f us\n",
              first_after_onset(cnn_decisions, false),
              first_after_onset(cnn_decisions, true));

  // --- Cost of asynchrony: per-event update work vs full recompute. ---
  std::printf("\n-- async update cost (AEGNN [70] / HUGNet [72] mechanism) --\n");
  gnn::IncrementalConfig inc_config;
  gnn::IncrementalGraphBuilder builder(32, 32, inc_config);
  gnn::AsyncEventGnn async(gnn_pipeline.model(), /*bidirectional=*/false);
  std::int64_t async_macs = 0;
  Index inserted = 0;
  for (const auto& e : onset.stream.events) {
    auto result = builder.insert(e);
    gnn::GraphNode node;
    node.position = gnn::embed(e, inc_config.time_scale);
    node.polarity_sign = static_cast<std::int8_t>(polarity_sign(e.polarity));
    node.t = e.t;
    async_macs += async.insert(node, result.neighbors).macs;
    ++inserted;
  }
  std::printf("events inserted            : %lld\n", (long long)inserted);
  std::printf("async MACs per event       : %s\n",
              Table::eng(static_cast<double>(async_macs) /
                         static_cast<double>(inserted))
                  .c_str());
  std::printf("full recompute would cost  : %s MACs per event at the final "
              "graph size\n",
              Table::eng(static_cast<double>(async.full_recompute_macs()))
                  .c_str());
  std::printf("=> %.0fx saving from asynchronous updates.\n",
              static_cast<double>(async.full_recompute_macs()) /
                  (static_cast<double>(async_macs) /
                   static_cast<double>(inserted)));
  return 0;
}
