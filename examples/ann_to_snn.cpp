// ANN-to-SNN conversion walkthrough (paper §III-A, refs [36]-[39]).
//
//   $ ./examples/ann_to_snn
//
// Trains a conventional ReLU MLP on pooled event-count features, converts
// it to an integrate-and-fire SNN by data-based threshold balancing, and
// shows the accuracy-vs-timesteps / spikes-vs-timesteps trade-off — the
// "off-chip learning by conversion" path the paper describes for deploying
// standard networks on neuromorphic hardware.
#include <cstdio>

#include "cnn/representation.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "snn/conversion.hpp"

using namespace evd;

namespace {

nn::Tensor pooled_counts(const events::EventStream& stream) {
  cnn::FrameOptions options;
  nn::Tensor frame =
      cnn::build_frame(stream.events, stream.width, stream.height,
                       stream.events.front().t, stream.events.back().t + 1,
                       options);
  nn::Tensor pooled({2 * 8 * 8});
  for (Index c = 0; c < 2; ++c) {
    for (Index y = 0; y < 8; ++y) {
      for (Index x = 0; x < 8; ++x) {
        float acc = 0.0f;
        for (Index dy = 0; dy < 4; ++dy) {
          for (Index dx = 0; dx < 4; ++dx) {
            acc += frame.at3(c, y * 4 + dy, x * 4 + dx);
          }
        }
        pooled[(c * 8 + y) * 8 + x] = acc / 16.0f;
      }
    }
  }
  return pooled;
}

}  // namespace

int main() {
  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(50, 12, train, test);

  std::vector<nn::Tensor> train_x, test_x;
  std::vector<Index> train_y, test_y;
  for (const auto& s : train) {
    train_x.push_back(pooled_counts(s.stream));
    train_y.push_back(s.label);
  }
  for (const auto& s : test) {
    test_x.push_back(pooled_counts(s.stream));
    test_y.push_back(s.label);
  }

  std::printf("training the source ReLU MLP (128-64-4)...\n");
  Rng rng(1);
  nn::Sequential ann;
  ann.emplace<nn::Linear>(128, 64, rng);
  ann.emplace<nn::ReLU>();
  ann.emplace<nn::Linear>(64, 4, rng);
  nn::Adam optimizer(ann.params(), 2e-3f);
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (size_t i = 0; i < train_x.size(); ++i) {
      nn::train_step(ann, train_x[i], train_y[i]);
      optimizer.step();
    }
  }
  Index ann_hits = 0;
  for (size_t i = 0; i < test_x.size(); ++i) {
    ann_hits += (nn::predict(ann, test_x[i]) == test_y[i]) ? 1 : 0;
  }
  std::printf("ANN test accuracy: %.3f\n\n",
              static_cast<double>(ann_hits) /
                  static_cast<double>(test_x.size()));

  std::printf("converting (threshold balancing at the 99th percentile)...\n");
  auto converted = snn::convert_ann_to_snn(ann, train_x, {});
  std::printf("layer activation scales:");
  for (const float s : converted.layer_scales) std::printf(" %.3f", s);
  std::printf("\n\n");

  Table table({"timesteps", "SNN accuracy", "hidden spikes/inference"});
  for (const Index steps : {4, 8, 16, 32, 64}) {
    Index hits = 0;
    double spikes = 0.0;
    for (size_t i = 0; i < test_x.size(); ++i) {
      const auto inference = snn::run_converted(converted, test_x[i], steps);
      hits += (inference.predicted == test_y[i]) ? 1 : 0;
      spikes += static_cast<double>(inference.total_spikes);
    }
    table.add_row({std::to_string(steps),
                   Table::num(static_cast<double>(hits) /
                                  static_cast<double>(test_x.size()),
                              3),
                   Table::num(spikes / static_cast<double>(test_x.size()),
                              0)});
  }
  table.print();
  std::printf("\nrate-coded conversion approaches the ANN's accuracy as the "
              "timestep budget grows, paying linearly in spikes — choose T "
              "by your energy/latency budget.\n");
  return 0;
}
