// Shape classification — the full workflow on one paradigm of your choice.
//
//   $ ./examples/shape_classification [cnn|snn|gnn] [train_per_class]
//
// Walks through: dataset generation, training with progress, per-class
// evaluation (confusion matrix), and instrumented inference cost — the
// workload the paper's accuracy comparisons (refs [69],[70],[77]) run on.
#include <cstdio>
#include <cstring>
#include <memory>

#include "cnn/cnn_pipeline.hpp"
#include "common/table.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "hw/energy_model.hpp"
#include "hw/report.hpp"
#include "snn/snn_pipeline.hpp"

using namespace evd;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "gnn";
  const Index train_per_class = argc > 2 ? std::atoi(argv[2]) : 40;

  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  events::ShapeDataset dataset(dataset_config);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(train_per_class, 12, train, test);
  std::printf("dataset: %zu train / %zu test, classes:", train.size(),
              test.size());
  for (int c = 0; c < dataset_config.num_classes; ++c) {
    std::printf(" %s", events::shape_kind_name(
                           static_cast<events::ShapeKind>(c)));
  }
  std::printf("\n");

  std::unique_ptr<core::EventPipeline> pipeline;
  core::TrainOptions options;
  options.lr = 2e-3f;
  options.verbose = true;
  if (std::strcmp(which, "cnn") == 0) {
    pipeline = std::make_unique<cnn::CnnPipeline>(cnn::CnnPipelineConfig{});
    options.epochs = 35;
  } else if (std::strcmp(which, "snn") == 0) {
    pipeline = std::make_unique<snn::SnnPipeline>(snn::SnnPipelineConfig{});
    options.epochs = 15;
  } else {
    pipeline = std::make_unique<gnn::GnnPipeline>(gnn::GnnPipelineConfig{});
    options.epochs = 30;
  }

  std::printf("\ntraining %s pipeline...\n", pipeline->name().c_str());
  pipeline->train(train, options);

  // Confusion matrix + instrumented cost.
  std::vector<std::vector<int>> confusion(
      static_cast<size_t>(dataset_config.num_classes),
      std::vector<int>(static_cast<size_t>(dataset_config.num_classes), 0));
  nn::OpCounter counter;
  Index correct = 0;
  {
    nn::ScopedCounter scope(counter);
    for (const auto& sample : test) {
      const int predicted = pipeline->classify(sample.stream);
      ++confusion[static_cast<size_t>(sample.label)]
                 [static_cast<size_t>(predicted)];
      correct += (predicted == sample.label) ? 1 : 0;
    }
  }

  std::printf("\ntest accuracy: %.3f\n\nconfusion matrix (rows = truth):\n",
              static_cast<double>(correct) / static_cast<double>(test.size()));
  std::vector<std::string> header = {"truth \\ pred"};
  for (int c = 0; c < dataset_config.num_classes; ++c) {
    header.push_back(events::shape_kind_name(
        static_cast<events::ShapeKind>(c)));
  }
  Table table(header);
  for (int r = 0; r < dataset_config.num_classes; ++r) {
    std::vector<std::string> row = {
        events::shape_kind_name(static_cast<events::ShapeKind>(r))};
    for (int c = 0; c < dataset_config.num_classes; ++c) {
      row.push_back(std::to_string(
          confusion[static_cast<size_t>(r)][static_cast<size_t>(c)]));
    }
    table.add_row(row);
  }
  table.print();

  const auto per_inference = static_cast<double>(test.size());
  std::printf("\ninference cost (mean over %zu samples):\n", test.size());
  std::printf("  parameters        : %s\n",
              Table::eng(static_cast<double>(pipeline->param_count())).c_str());
  std::printf("  operations        : %s\n",
              Table::eng(static_cast<double>(counter.total_ops()) /
                         per_inference)
                  .c_str());
  std::printf("  bytes moved       : %s\n",
              Table::eng(static_cast<double>(counter.total_bytes()) /
                         per_inference)
                  .c_str());
  const auto energy =
      hw::energy_of(counter, hw::EnergyTable::digital_45nm_int8());
  std::printf("  modelled energy   : %s (int8 edge accelerator)\n",
              hw::summary(energy).c_str());
  return 0;
}
