// Event-camera sensor playground: simulate, denoise, encode, persist.
//
//   $ ./examples/sensor_playground [output.csv]
//
// Demonstrates the sensor substrate end-to-end: scene + DVS pixel model,
// non-idealities (noise / hot pixels / threshold mismatch), the denoising
// filters, AER wire formats with their bandwidth, and stream I/O. This is
// the part of the library that replaces physical hardware for every other
// experiment.
#include <cstdio>

#include "common/table.hpp"
#include "events/aer.hpp"
#include "events/dvs_simulator.hpp"
#include "events/event_io.hpp"
#include "events/filters.hpp"
#include "events/scene.hpp"

using namespace evd;

int main(int argc, char** argv) {
  // A scene with two moving shapes over a lightly textured background.
  events::Scene scene(64, 64, 0.15f);
  Rng rng(2024);
  scene.set_texture(0.05, rng);
  events::MovingShape circle;
  circle.kind = events::ShapeKind::Circle;
  circle.x0 = 14;
  circle.y0 = 20;
  circle.vx = 120.0;
  circle.vy = 40.0;
  circle.radius = 7.0;
  circle.luminance = 0.9f;
  scene.add_shape(circle);
  events::MovingShape cross;
  cross.kind = events::ShapeKind::Cross;
  cross.x0 = 48;
  cross.y0 = 44;
  cross.vx = -90.0;
  cross.angular_velocity = 4.0;
  cross.radius = 8.0;
  cross.luminance = 0.8f;
  scene.add_shape(cross);

  // A realistic, imperfect sensor.
  events::DvsConfig config;
  config.contrast_threshold = 0.15;
  config.threshold_mismatch = 0.03;
  config.refractory_us = 200;
  config.background_rate_hz = 2.0;
  config.hot_pixel_fraction = 0.001;
  events::DvsSimulator simulator(64, 64, config, rng.fork());

  std::printf("simulating 200 ms on a 64x64 DVS...\n");
  auto stream = simulator.simulate(scene, 200000);
  std::printf("  %lld events, %.0f events/s, %.1f%% ON, %.1f%% of pixels "
              "active\n",
              (long long)stream.size(), stream.rate_eps(),
              events::on_fraction(stream.events) * 100.0,
              events::active_pixel_fraction(stream) * 100.0);

  // Denoising chain.
  Table table({"stage", "events", "removed"});
  table.add_row({"raw sensor output",
                 std::to_string(stream.size()), "-"});
  const auto hot = events::detect_hot_pixels(stream.events, 64, 64, 5.0);
  auto cleaned = events::mask_pixels(stream.events, 64, hot);
  table.add_row({"hot-pixel mask (" + std::to_string(hot.size()) +
                     " pixels)",
                 std::to_string(cleaned.size()),
                 std::to_string(stream.size() -
                                static_cast<Index>(cleaned.size()))});
  const auto before_ba = static_cast<Index>(cleaned.size());
  cleaned = events::background_activity_filter(cleaned, 64, 64, 5000);
  table.add_row({"background-activity filter (5 ms support)",
                 std::to_string(cleaned.size()),
                 std::to_string(before_ba -
                                static_cast<Index>(cleaned.size()))});
  const auto before_refractory = static_cast<Index>(cleaned.size());
  cleaned = events::refractory_filter(cleaned, 64, 64, 500);
  table.add_row({"refractory filter (500 us)",
                 std::to_string(cleaned.size()),
                 std::to_string(before_refractory -
                                static_cast<Index>(cleaned.size()))});
  table.print();

  // AER wire formats.
  const auto raw32 = events::raw32_encode(cleaned);
  const auto delta = events::delta_encode(cleaned);
  std::printf("\nAER link cost for the cleaned stream:\n");
  std::printf("  RAW32 (address+time words) : %.1f bits/event\n",
              raw32.bits_per_event());
  std::printf("  EVT-delta (compressed)     : %.1f bits/event (%.2fx)\n",
              delta.bits_per_event(),
              raw32.bits_per_event() / delta.bits_per_event());

  // Persist.
  const std::string path = argc > 1 ? argv[1] : "playground_events.csv";
  events::EventStream out;
  out.width = 64;
  out.height = 64;
  out.events = cleaned;
  events::write_csv(path, out);
  std::printf("\nwrote %zu cleaned events to %s (x,y,p,t_us)\n",
              cleaned.size(), path.c_str());
  return 0;
}
