// Quickstart: simulate an event camera, train all three paradigms on the
// same data, and print the accuracy / cost summary.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end tour of the library: dataset generation
// (scene renderer + DVS pixel model), the CNN / SNN / GNN pipelines behind
// one interface, and the instrumented comparison.
#include <cstdio>

#include "cnn/cnn_pipeline.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "events/dataset.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "snn/snn_pipeline.hpp"

int main() {
  using namespace evd;

  // 1. A small, fast dataset: 4 shape classes on a 32x32 sensor.
  events::ShapeDatasetConfig dataset_config;
  dataset_config.num_classes = 4;
  dataset_config.seed = 42;
  events::ShapeDataset dataset(dataset_config);

  std::vector<events::LabelledSample> train, test;
  dataset.make_split(/*train_per_class=*/25, /*test_per_class=*/8, train,
                     test);
  std::printf("dataset: %zu train / %zu test samples, ~%lld events each\n",
              train.size(), test.size(),
              static_cast<long long>(train.front().stream.size()));

  // 2. The three pipelines behind the common interface.
  cnn::CnnPipeline cnn_pipeline{cnn::CnnPipelineConfig{}};
  snn::SnnPipeline snn_pipeline{snn::SnnPipelineConfig{}};
  gnn::GnnPipeline gnn_pipeline{gnn::GnnPipelineConfig{}};
  std::vector<core::EventPipeline*> pipelines = {&cnn_pipeline, &snn_pipeline,
                                                 &gnn_pipeline};

  // epochs/lr <= 0: each pipeline uses its own default training recipe.
  core::TrainOptions options;
  options.epochs = 0;
  options.lr = 0.0f;

  Table table({"pipeline", "test accuracy", "parameters", "ops/inference"});
  for (auto* pipeline : pipelines) {
    std::printf("training %s...\n", pipeline->name().c_str());
    pipeline->train(train, options);

    Index correct = 0;
    nn::OpCounter counter;
    {
      nn::ScopedCounter scope(counter);
      for (const auto& sample : test) {
        correct += (pipeline->classify(sample.stream) == sample.label) ? 1 : 0;
      }
    }
    table.add_row({pipeline->name(),
                   Table::num(static_cast<double>(correct) /
                                  static_cast<double>(test.size()),
                              3),
                   Table::eng(static_cast<double>(pipeline->param_count())),
                   Table::eng(static_cast<double>(counter.total_ops()) /
                              static_cast<double>(test.size()))});
  }
  table.print();
  return 0;
}
