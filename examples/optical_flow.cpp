// Event-based optical flow — fully event-driven motion estimation.
//
//   $ ./examples/optical_flow
//
// A shape moves with a known velocity; the plane-fitting estimator recovers
// the flow from the raw event stream, per event, with no frames anywhere —
// one of the application domains (optical-flow estimation [57],[72]) where
// the paper reports event-native methods beating frame pipelines.
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "events/dvs_simulator.hpp"
#include "events/optical_flow.hpp"
#include "events/scene.hpp"

using namespace evd;

int main() {
  Table table({"true velocity [px/s]", "estimated (median)", "angular err",
               "valid fits"});

  Rng rng(5);
  for (const auto& [vx, vy] : std::vector<std::pair<double, double>>{
           {160.0, 0.0}, {0.0, 120.0}, {110.0, 110.0}, {-140.0, 70.0}}) {
    events::Scene scene(48, 48, 0.1f);
    events::MovingShape shape;
    shape.kind = events::ShapeKind::Square;
    shape.x0 = 24.0 - vx * 0.05;  // centred mid-trajectory
    shape.y0 = 24.0 - vy * 0.05;
    shape.vx = vx;
    shape.vy = vy;
    shape.radius = 7.0;
    shape.luminance = 0.9f;
    scene.add_shape(shape);

    events::DvsConfig config;
    config.background_rate_hz = 0.1;
    events::DvsSimulator simulator(48, 48, config, rng.fork());
    const auto stream = simulator.simulate(scene, 100000);

    events::FlowConfig flow_config;
    flow_config.dt_max_us = 40000;
    flow_config.min_points = 8;
    const auto flows = events::estimate_flow(stream, flow_config);

    Percentiles vxs, vys;
    for (const auto& f : flows) {
      vxs.add(f.vx);
      vys.add(f.vy);
    }
    const double est_vx = flows.empty() ? 0.0 : vxs.median();
    const double est_vy = flows.empty() ? 0.0 : vys.median();
    const double true_angle = std::atan2(vy, vx);
    const double est_angle = std::atan2(est_vy, est_vx);
    double angle_err = std::fabs(true_angle - est_angle) * 180.0 / 3.14159265;
    if (angle_err > 180.0) angle_err = 360.0 - angle_err;

    char truth[48], estimate[48];
    std::snprintf(truth, sizeof truth, "(%+.0f, %+.0f)", vx, vy);
    std::snprintf(estimate, sizeof estimate, "(%+.0f, %+.0f)", est_vx,
                  est_vy);
    table.add_row({truth, estimate, Table::num(angle_err, 1) + " deg",
                   std::to_string(flows.size())});
  }
  table.print();
  std::printf(
      "\nEach estimate is produced *at* an event from the local time-surface\n"
      "gradient — latency is one event, not one frame. Magnitudes are\n"
      "edge-normal flow (the aperture problem compresses speed along the\n"
      "edge); the motion direction is what downstream consumers use.\n");
  return 0;
}
