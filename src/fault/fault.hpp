// Umbrella header for the fault-tolerance substrate (`evd::fault`):
//
//   injector.hpp    deterministic named-site fault injection
//   checkpoint.hpp  versioned, size-bounded session state serialization
//   admission.hpp   token-bucket rate limiting + overload degradation ladder
//
// The consumers are the runtime (SessionManager quarantine / restore /
// admission) and the check subsystem (runtime.fault_isolation and
// runtime.checkpoint_replay oracles). DESIGN.md section 11 documents the
// fault model end to end.
#pragma once

#include "fault/admission.hpp"   // IWYU pragma: export
#include "fault/checkpoint.hpp"  // IWYU pragma: export
#include "fault/injector.hpp"    // IWYU pragma: export
