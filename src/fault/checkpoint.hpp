// Versioned, size-bounded in-memory checkpoints for StreamSession state.
//
// Unlike common/serialization.hpp (fstream-backed model I/O), checkpoints
// live in a per-session byte vector inside the SessionManager: taking one
// must not touch the filesystem or allocate beyond the (reused) vector, and
// restoring one must be able to reject truncated or mismatched bytes with a
// typed error rather than undefined reads.
//
// Format: every checkpoint starts with {kMagic, kVersion} (written by
// SessionBase), followed by length-prefixed fields. The version policy is
// strict equality — a checkpoint is a crash-recovery artifact with the
// lifetime of one serving process, not an archival format, so there is no
// cross-version migration: bump kVersion whenever any session's layout
// changes and old bytes are simply rejected (CheckpointMismatch).
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace evd::fault {

inline constexpr std::uint32_t kCheckpointMagic = 0x45564443;  // "EVDC"
inline constexpr std::uint32_t kCheckpointVersion = 1;

class CheckpointWriter {
 public:
  /// Appends into `out` (cleared first); throws Error(CheckpointTooLarge)
  /// as soon as the running size would exceed `max_bytes`.
  CheckpointWriter(std::vector<std::uint8_t>& out, std::size_t max_bytes)
      : out_(out), max_bytes_(max_bytes) {
    out_.clear();
  }

  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  void str(const std::string& s) {
    i64(static_cast<std::int64_t>(s.size()));
    raw(s.data(), s.size());
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(T));
  }

  /// Length-prefixed span of trivially copyable elements.
  template <typename T>
  void pod_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    i64(static_cast<std::int64_t>(values.size()));
    raw(values.data(), values.size_bytes());
  }

  template <typename T>
  void pod_vector(const std::vector<T>& values) {
    pod_span(std::span<const T>(values));
  }

  std::size_t bytes_written() const noexcept { return out_.size(); }

 private:
  void raw(const void* data, std::size_t n) {
    if (out_.size() + n > max_bytes_) {
      throw Error(ErrorCode::CheckpointTooLarge,
                  "checkpoint would exceed " + std::to_string(max_bytes_) +
                      " bytes");
    }
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + n);
  }

  std::vector<std::uint8_t>& out_;
  std::size_t max_bytes_;
};

class CheckpointReader {
 public:
  explicit CheckpointReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() { return read_as<std::uint8_t>(); }
  std::uint32_t u32() { return read_as<std::uint32_t>(); }
  std::int64_t i64() { return read_as<std::int64_t>(); }
  double f64() { return read_as<double>(); }

  std::string str() {
    const std::size_t n = length();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(T));
  }

  template <typename T>
  void pod_vector(std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = length();  // bounded by remaining(): no huge alloc
    check_available(n * sizeof(T));
    values.resize(n);
    raw(values.data(), n * sizeof(T));
  }

  /// Reads into a fixed caller-owned span; the stored count must not exceed
  /// the span (CheckpointCorrupt otherwise). Returns the stored count —
  /// trailing span elements are left untouched.
  template <typename T>
  Index pod_span_into(std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t n = length();
    if (n > out.size()) {
      throw Error(ErrorCode::CheckpointCorrupt,
                  "stored span larger than its target buffer");
    }
    check_available(n * sizeof(T));
    raw(out.data(), n * sizeof(T));
    return static_cast<Index>(n);
  }

  std::size_t remaining() const noexcept { return bytes_.size() - cursor_; }

  /// Every load must end exactly at the last byte — trailing garbage means
  /// the writer and reader disagree about the layout.
  void expect_end() const {
    if (remaining() != 0) {
      throw Error(ErrorCode::CheckpointCorrupt,
                  std::to_string(remaining()) + " trailing bytes");
    }
  }

 private:
  template <typename T>
  T read_as() {
    T v;
    raw(&v, sizeof(T));
    return v;
  }

  /// Length prefix, validated against the bytes actually present so corrupt
  /// counts can never drive a huge allocation or an out-of-bounds read.
  std::size_t length() {
    const std::int64_t n = i64();
    if (n < 0 || static_cast<std::size_t>(n) > remaining()) {
      throw Error(ErrorCode::CheckpointCorrupt, "invalid length prefix");
    }
    return static_cast<std::size_t>(n);
  }

  void check_available(std::size_t n) const {
    if (n > remaining()) {
      throw Error(ErrorCode::CheckpointCorrupt, "truncated checkpoint");
    }
  }

  void raw(void* data, std::size_t n) {
    check_available(n);
    std::memcpy(data, bytes_.data() + cursor_, n);
    cursor_ += n;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace evd::fault
