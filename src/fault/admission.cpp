#include "fault/admission.hpp"

namespace evd::fault {

const char* degradation_level_name(DegradationLevel level) noexcept {
  switch (level) {
    case DegradationLevel::Nominal: return "Nominal";
    case DegradationLevel::ShedSampling: return "ShedSampling";
    case DegradationLevel::CoarsenBursts: return "CoarsenBursts";
    case DegradationLevel::DropNoise: return "DropNoise";
    case DegradationLevel::RejectAdmits: return "RejectAdmits";
  }
  return "Unknown";
}

DegradationLevel degradation_level(const AdmissionConfig& config,
                                   double occupancy) noexcept {
  if (!config.enabled) return DegradationLevel::Nominal;
  if (occupancy >= config.reject_at) return DegradationLevel::RejectAdmits;
  if (occupancy >= config.drop_noise_at) return DegradationLevel::DropNoise;
  if (occupancy >= config.coarsen_at) return DegradationLevel::CoarsenBursts;
  if (occupancy >= config.shed_sampling_at) {
    return DegradationLevel::ShedSampling;
  }
  return DegradationLevel::Nominal;
}

}  // namespace evd::fault
