// Admission control and graceful degradation for the serving runtime.
//
// Two mechanisms sit in front of every managed session's EventQueue:
//
//  * Per-session token bucket, refilled by *stream time* (event timestamps),
//    not wall clock — the admission decision for a given op stream is a pure
//    function of the stream, so rate-limited serving is as deterministic and
//    replayable as unlimited serving.
//
//  * A global overload ladder driven by aggregate queue occupancy. Each rung
//    sheds progressively more load, in order of how much the shed decision
//    costs the consumer:
//
//      Nominal        -> everything admitted
//      ShedSampling   -> stop stamping latency samples (observability pays
//                        first; decisions unaffected)
//      CoarsenBursts  -> pump() multiplies its burst, trading interleaving
//                        fairness for per-round throughput (op order per
//                        session is unchanged, so decision streams are too)
//      DropNoise      -> feeds to low-priority sessions that fail a cheap
//                        spatio-temporal support test are shed
//      RejectAdmits   -> all feeds rejected; advances still run so sessions
//                        keep making (empty-input) progress
//
// Every shed is accounted — SessionManager::stats() exposes the ledger; a
// shed the operator cannot see is indistinguishable from data corruption.
#pragma once

#include <array>
#include <cstddef>
#include <limits>

#include "common/types.hpp"
#include "events/event.hpp"

namespace evd::fault {

/// Stream-time token bucket. rate <= 0 disables (always admits).
class TokenBucket {
 public:
  void configure(double rate_per_s, double burst) noexcept {
    rate_per_s_ = rate_per_s;
    burst_ = burst < 1.0 ? 1.0 : burst;
    tokens_ = burst_;
    primed_ = false;
  }

  /// Admit one op at stream time `t`. Refills from the time elapsed since
  /// the previous admission attempt; a stalled stream earns no tokens.
  bool take(TimeUs t) noexcept {
    if (rate_per_s_ <= 0.0) return true;
    if (!primed_) {
      primed_ = true;
      last_t_ = t;
    }
    if (t > last_t_) {
      tokens_ += rate_per_s_ * static_cast<double>(t - last_t_) * 1e-6;
      if (tokens_ > burst_) tokens_ = burst_;
      last_t_ = t;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const noexcept { return tokens_; }

 private:
  double rate_per_s_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 0.0;
  TimeUs last_t_ = 0;
  bool primed_ = false;
};

enum class DegradationLevel : std::uint8_t {
  Nominal = 0,
  ShedSampling,
  CoarsenBursts,
  DropNoise,
  RejectAdmits,
};

const char* degradation_level_name(DegradationLevel level) noexcept;

struct AdmissionConfig {
  /// Master switch: disabled (default) admits everything — the overload
  /// ladder never perturbs a deployment that has not opted in, which is how
  /// the determinism oracles keep holding unchanged.
  bool enabled = false;
  /// Occupancy thresholds (aggregate queued ops / aggregate capacity) at
  /// which each rung engages. Must be non-decreasing.
  double shed_sampling_at = 0.50;
  double coarsen_at = 0.70;
  double drop_noise_at = 0.85;
  double reject_at = 0.95;
  /// Burst multiplier while CoarsenBursts (or worse) is active.
  Index coarsen_factor = 4;
  /// DropNoise applies only to sessions with priority <= this.
  Index shed_priority_max = 0;
  /// Support window for the noise test: an event with no recent activity in
  /// its own or 4-adjacent coarse cells within this window is "noise".
  TimeUs noise_support_window_us = 5000;
};

/// Map aggregate occupancy to a ladder rung.
DegradationLevel degradation_level(const AdmissionConfig& config,
                                   double occupancy) noexcept;

/// Cheap, geometry-free noise classifier: a coarse (x>>2, y>>2) grid of
/// last-activity timestamps, folded into a fixed 64x64 table. An event is
/// "supported" when its own or a 4-adjacent cell saw activity within the
/// window — the same spatio-temporal support idea as the full
/// background-activity filter (events/filters.hpp), collapsed to O(1) state
/// so it can run per-submit in front of the queue. Every observed event
/// warms the table whether or not shedding is active, so the classifier is
/// not cold when overload hits.
class NoiseGate {
 public:
  NoiseGate() { last_.fill(kNever); }

  /// Record activity and report whether the event had support.
  bool observe(const events::Event& e, TimeUs window) noexcept {
    const Index cx = cell_coord(e.x);
    const Index cy = cell_coord(e.y);
    bool supported = false;
    supported |= recent(cx, cy, e.t, window);
    supported |= recent(cx - 1, cy, e.t, window);
    supported |= recent(cx + 1, cy, e.t, window);
    supported |= recent(cx, cy - 1, e.t, window);
    supported |= recent(cx, cy + 1, e.t, window);
    last_[index(cx, cy)] = e.t;
    return supported;
  }

 private:
  static constexpr Index kGrid = 64;
  static constexpr TimeUs kNever = std::numeric_limits<TimeUs>::min();

  static Index cell_coord(Index v) noexcept { return (v >> 2) & (kGrid - 1); }
  static std::size_t index(Index cx, Index cy) noexcept {
    return static_cast<std::size_t>(((cy & (kGrid - 1)) * kGrid) +
                                    (cx & (kGrid - 1)));
  }
  bool recent(Index cx, Index cy, TimeUs t, TimeUs window) const noexcept {
    const TimeUs last = last_[index(cx, cy)];
    return last != kNever && t >= last && t - last <= window;
  }

  std::array<TimeUs, kGrid * kGrid> last_;
};

}  // namespace evd::fault
