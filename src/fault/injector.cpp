#include "fault/injector.hpp"

#include <deque>
#include <mutex>

#include "common/rng.hpp"

namespace evd::fault {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "None";
    case FaultKind::MalformedEvent: return "MalformedEvent";
    case FaultKind::OutOfOrderEvent: return "OutOfOrderEvent";
    case FaultKind::DuplicateEvent: return "DuplicateEvent";
    case FaultKind::OverflowStorm: return "OverflowStorm";
    case FaultKind::ArenaExhaustion: return "ArenaExhaustion";
    case FaultKind::SessionThrow: return "SessionThrow";
  }
  return "Unknown";
}

namespace detail {

FaultKind SiteState::decide(std::int64_t key) noexcept {
  if (!armed.load(std::memory_order_acquire)) return FaultKind::None;
  // `plan` is only written while disarmed; the acquire above pairs with the
  // release store in arm(), so reading it here is race-free.
  if (plan.target >= 0 && key != plan.target) return FaultKind::None;
  const std::int64_t visit = visits.fetch_add(1, std::memory_order_relaxed);
  if (visit < plan.after) return FaultKind::None;
  if (plan.max_fires > 0 &&
      fires.load(std::memory_order_relaxed) >= plan.max_fires) {
    return FaultKind::None;
  }
  if (plan.probability < 1.0) {
    // Counter-indexed hash: visit v fires iff splitmix64(seed + v) lands
    // under probability. Stateless per visit, so the schedule is a pure
    // function of (seed, visit index) — shrinking and replay both hold.
    std::uint64_t state =
        plan.seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(visit + 1);
    const std::uint64_t h = splitmix64(state);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= plan.probability) return FaultKind::None;
  }
  fires.fetch_add(1, std::memory_order_relaxed);
  return plan.kind;
}

}  // namespace detail

struct Injector::Impl {
  mutable std::mutex mutex;
  // deque: stable addresses for Site handles across site() registrations.
  std::deque<detail::SiteState> sites;
};

Injector::Impl& Injector::impl() const {
  static Impl instance;
  return instance;
}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

detail::SiteState* Injector::find(std::string_view name) const {
  for (auto& site : impl().sites) {
    if (site.name == name) return &site;
  }
  return nullptr;
}

Site Injector::site(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  if (detail::SiteState* existing = find(name)) return Site(existing);
  impl().sites.emplace_back();
  impl().sites.back().name = std::string(name);
  return Site(&impl().sites.back());
}

void Injector::arm(std::string_view name, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  detail::SiteState* state = find(name);
  if (state == nullptr) {
    impl().sites.emplace_back();
    impl().sites.back().name = std::string(name);
    state = &impl().sites.back();
  }
  state->armed.store(false, std::memory_order_release);
  state->plan = plan;
  state->visits.store(0, std::memory_order_relaxed);
  state->fires.store(0, std::memory_order_relaxed);
  state->armed.store(true, std::memory_order_release);
}

void Injector::disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl().mutex);
  if (detail::SiteState* state = find(name)) {
    state->armed.store(false, std::memory_order_release);
  }
}

void Injector::reset() {
  std::lock_guard<std::mutex> lock(impl().mutex);
  for (auto& site : impl().sites) {
    site.armed.store(false, std::memory_order_release);
    site.visits.store(0, std::memory_order_relaxed);
    site.fires.store(0, std::memory_order_relaxed);
  }
}

std::int64_t Injector::visits(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl().mutex);
  const detail::SiteState* state = find(name);
  return state != nullptr ? state->visits.load(std::memory_order_relaxed) : 0;
}

std::int64_t Injector::fires(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl().mutex);
  const detail::SiteState* state = find(name);
  return state != nullptr ? state->fires.load(std::memory_order_relaxed) : 0;
}

events::Event corrupt_malformed(events::Event e, std::uint64_t salt) noexcept {
  // Far out of any plausible geometry, sign-flipped by the salt so both
  // negative and large-positive malformations are exercised.
  std::uint64_t state = salt;
  const std::uint64_t h = splitmix64(state);
  e.x = (h & 1) != 0 ? std::int16_t{-1} : std::int16_t{0x7FFF};
  e.y = (h & 2) != 0 ? std::int16_t{-2} : std::int16_t{0x7FFE};
  return e;
}

events::Event corrupt_out_of_order(events::Event e, TimeUs skew) noexcept {
  e.t = e.t >= skew ? e.t - skew : -1;
  return e;
}

}  // namespace evd::fault
