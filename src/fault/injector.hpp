// Deterministic, seed-driven fault injection (`evd::fault::Injector`).
//
// Production code declares *named injection sites* at the points where a
// fault could plausibly enter the system (ingress corruption, op-apply
// exceptions, arena exhaustion). A test arms a site with a FaultPlan; the
// site then decides — deterministically, from (seed, visit counter) — which
// visits fire. Everything about a firing schedule is reproducible: no wall
// clock, no global RNG, no dependence on thread interleaving as long as the
// plan carries a `target` key (the runtime keys its sites by session id, and
// one worker owns a session per pump round, so the matching-visit counter is
// single-writer).
//
// Hot-path discipline mirrors evd::obs: when injection is disabled — the
// default, and the only state production ever runs in — every site check
// compiles to one relaxed atomic load and a predictable branch
// (bench_stream_throughput gates the overhead at <1%). Arming a site never
// happens concurrently with serving; the armed flag is the release/acquire
// boundary for the plan payload.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "events/event.hpp"

namespace evd::fault {

/// Process-wide kill switch, default off. Sites short-circuit to a single
/// branch while disabled.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// The fault classes the runtime's sites know how to manifest.
enum class FaultKind : std::uint8_t {
  None = 0,        ///< Site did not fire this visit.
  MalformedEvent,  ///< Corrupt coordinates to out-of-bounds values.
  OutOfOrderEvent, ///< Skew the timestamp backwards.
  DuplicateEvent,  ///< Enqueue the op twice.
  OverflowStorm,   ///< Enqueue a burst of copies (queue-overflow stress).
  ArenaExhaustion, ///< Raise std::bad_alloc from the op-apply path.
  SessionThrow,    ///< Raise evd::Error(InjectedFault) from op apply.
};

const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultPlan {
  FaultKind kind = FaultKind::SessionThrow;
  /// Per-matching-visit fire probability; 1.0 fires every eligible visit.
  /// Draws come from splitmix64(seed, visit) — reproducible, not wall-clock.
  double probability = 1.0;
  /// Skip the first `after` matching visits before becoming eligible.
  Index after = 0;
  /// Stop after this many fires; <= 0 means unlimited.
  Index max_fires = 1;
  /// Only visits whose key equals this fire (-1 matches any key). The
  /// runtime passes the session id as the key, which also pins the visit
  /// counter to a single pump worker — the determinism requirement.
  std::int64_t target = -1;
  std::uint64_t seed = 1;
  /// OverflowStorm: extra copies enqueued beyond the original op.
  Index storm_extra = 8;
  /// OutOfOrderEvent: how far the timestamp is skewed backwards.
  TimeUs time_skew_us = 10000;
};

namespace detail {

struct SiteState {
  std::string name;
  std::atomic<bool> armed{false};
  FaultPlan plan;  ///< Written only while disarmed (armed is the fence).
  std::atomic<std::int64_t> visits{0};  ///< Matching visits since arm().
  std::atomic<std::int64_t> fires{0};

  FaultKind decide(std::int64_t key) noexcept;
};

}  // namespace detail

/// Cheap copyable handle to one injection site. Default-constructed handles
/// are inert. Obtained once at component construction (registry mutex), then
/// queried on the hot path.
class Site {
 public:
  Site() = default;

  /// The visit's fire decision. FaultKind::None when disabled, unarmed,
  /// key-filtered out, outside the after/max_fires window, or the
  /// probability draw misses.
  FaultKind fire(std::int64_t key = -1) noexcept {
    if (!enabled() || state_ == nullptr) return FaultKind::None;
    return state_->decide(key);
  }

  /// The armed plan's parameters (storm length, time skew). Only meaningful
  /// right after fire() returned non-None; the runtime is the sole reader.
  const FaultPlan& plan() const noexcept { return state_->plan; }

  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Injector;
  explicit Site(detail::SiteState* state) : state_(state) {}
  detail::SiteState* state_ = nullptr;
};

class Injector {
 public:
  static Injector& instance();

  /// Find-or-create the named site. Open-time cost (mutex + map); the
  /// returned handle is hot-path safe.
  Site site(std::string_view name);

  /// Install `plan` and arm the site. Resets its visit/fire counters so a
  /// schedule is reproducible from the moment of arming.
  void arm(std::string_view name, const FaultPlan& plan);

  void disarm(std::string_view name);

  /// Disarm every site and zero all counters. Does not touch enabled().
  void reset();

  /// Matching visits since the site was last armed (0 if never created).
  std::int64_t visits(std::string_view name) const;
  /// Fires since the site was last armed.
  std::int64_t fires(std::string_view name) const;

 private:
  Injector() = default;
  detail::SiteState* find(std::string_view name) const;

  struct Impl;
  Impl& impl() const;
};

/// RAII: arms one site (enabling injection process-wide) for a scope, then
/// disarms it and restores the previous enabled() flag. The shape every test
/// and oracle uses, so no fault schedule leaks across test cases.
class ScopedInjection {
 public:
  ScopedInjection(std::string_view site, const FaultPlan& plan)
      : site_(site), previous_(enabled()) {
    Injector::instance().arm(site_, plan);
    set_enabled(true);
  }
  ~ScopedInjection() {
    Injector::instance().disarm(site_);
    set_enabled(previous_);
  }
  ScopedInjection(const ScopedInjection&) = delete;
  ScopedInjection& operator=(const ScopedInjection&) = delete;

 private:
  std::string site_;
  bool previous_;
};

/// Deterministic event corruptions used by the runtime's ingress sites
/// (public so tests can predict the corrupted values exactly).
events::Event corrupt_malformed(events::Event e, std::uint64_t salt) noexcept;
events::Event corrupt_out_of_order(events::Event e, TimeUs skew) noexcept;

}  // namespace evd::fault
