// Dispatching entry points for the three traced hot-span kernels:
//
//   * conv_gemm_block  — the blocked-GEMM microkernel behind
//                        `cnn.conv_forward` (Conv2d::forward_gemm);
//   * lif_step_block   — the LIF membrane update + threshold/spike scatter
//                        behind `snn.step` (SpikingNet::step/forward);
//   * gnn_apply_node   — the neighbor-accumulate inner loop behind
//                        `gnn.message_pass` (GraphConv::apply_node).
//
// Each entry point consults simd::active_tier() and forwards to the scalar,
// AVX2 or NEON build of the same arithmetic. All tiers are bit-identical:
// vector lanes hold *independent outputs* (pixels / neurons / output
// features), each accumulated with unfused multiply+add in exactly the
// per-output order of the scalar reference, so IEEE-754 rounding is
// reproduced lane for lane. The scalar build is the reference
// implementation the `simd.*` oracles compare against.
//
// The spike/feature accumulations walk weight *columns*, which in the
// row-major [out][in] layout are strided — a gather per vector, and a cache
// miss per lane once the matrix outgrows L2. Callers that serve repeatedly
// (SpikingNet, GraphConv) therefore maintain a transposed [in][out] copy and
// pass it as `w_t` / `w_*_t`: the vector tiers then stream contiguous,
// prefetch-friendly rows. Loop interchange keeps each output's accumulation
// order identical (ascending spike / feature order per output), so the
// transposed path is bitwise-equal to the gather path and to the scalar
// reference. Passing nullptr selects the gather fallback.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace evd::simd {

// --- cnn.conv_forward -------------------------------------------------------
// For each output channel oc in [oc_begin, oc_end) and pixel p in
// [px_begin, px_end):
//   out[oc*cols + p] = bias[oc] + sum_{r<rows} w[oc*rows + r] * col[r*cols + p]
// accumulated in ascending r order per pixel (the direct conv's (ic, ky, kx)
// order). `w` is [out_channels, rows] row-major, `col` is the im2col matrix
// [rows, cols], `out` is [out_channels, cols]; `cols` is the row stride, the
// pixel range selects a block of it so the caller can keep one col block
// L2-resident while every output channel crosses it.
void conv_gemm_block(const float* w, const float* bias, const float* col,
                     float* out, Index oc_begin, Index oc_end, Index rows,
                     Index cols, Index px_begin, Index px_end);

// --- snn.step ---------------------------------------------------------------
// LIF update over neurons [n_begin, n_end) of one layer:
//   v' = beta * v[o] + b[o] + sum_{i in spikes} w[o*in_dim + i]   (spike order)
//   if membrane_pre: membrane_pre[o] = v'   (pre-reset, for the surrogate grad)
//   if v' >= theta: append o to spikes_out (ascending), v' = reset_to_zero ?
//                   0 : v' - theta
//   v[o] = v'
// `spikes` are input spike indices in [0, in_dim); `spikes_out` is appended
// in ascending neuron order, matching the scalar chunk loop. `w_t` is the
// transposed weight matrix [in_dim, out_dim] (or nullptr for the gather
// fallback); `out_dim` is its row length — the layer's full neuron count,
// of which [n_begin, n_end) is this call's chunk.
void lif_step_block(float* v, const float* b, const float* w,
                    const float* w_t, Index in_dim, Index out_dim,
                    const Index* spikes, Index spike_count, Index n_begin,
                    Index n_end, float beta, float theta, bool reset_to_zero,
                    float* membrane_pre, std::vector<Index>& spikes_out);

// --- gnn.message_pass -------------------------------------------------------
// Layout-compatible mirror of GraphConv::NeighborRef (asserted at the call
// site): a pointer into the previous layer's feature storage plus the
// spatiotemporal offset to the centre node.
struct GnnNeighbor {
  const float* features = nullptr;
  float dx = 0.0f, dy = 0.0f, dz = 0.0f;
};

// Single-node graph convolution (continuous-kernel message passing):
//   acc_o  = bias[o] + sum_f w_self[o*in + f] * h_self[f]
//   c_j,o  = sum_f w_nbr[o*(in+3) + f] * feat_j[f]
//            + w_nbr[.. in+0]*dx_j + [.. in+1]*dy_j + [.. in+2]*dz_j
//   Max :    msg_o = c_0,o then replaced when c_j,o > msg_o (ties keep first)
//   Mean:    msg_o = sum_j c_j,o, scaled by inv_degree
//   out[o] = ReLU(acc_o + msg_o)   for o in [0, out_dim)
// `w_self_t` ([in_dim, out_dim]) and `w_nbr_t` ([in_dim+3, out_dim]) are the
// transposed copies; pass both or neither (nullptr selects gathers).
void gnn_apply_node(const float* w_self, const float* w_self_t,
                    const float* w_nbr, const float* w_nbr_t,
                    const float* bias, Index in_dim, Index out_dim,
                    const float* h_self, const GnnNeighbor* neighbors,
                    Index neighbor_count, bool max_aggregation,
                    float inv_degree, float* out);

namespace detail {

// Per-tier builds. The AVX2/NEON symbols exist only when the build carries
// that tier (EVD_SIMD_HAVE_AVX2 / EVD_SIMD_HAVE_NEON); the dispatchers in
// kernels.cpp gate the calls accordingly. The scalar references take no
// transposed weights — they are the pre-simd loops, verbatim.
void conv_gemm_block_scalar(const float* w, const float* bias,
                            const float* col, float* out, Index oc_begin,
                            Index oc_end, Index rows, Index cols,
                            Index px_begin, Index px_end);
void lif_step_block_scalar(float* v, const float* b, const float* w,
                           Index in_dim, const Index* spikes,
                           Index spike_count, Index n_begin, Index n_end,
                           float beta, float theta, bool reset_to_zero,
                           float* membrane_pre, std::vector<Index>& spikes_out);
void gnn_apply_node_scalar(const float* w_self, const float* w_nbr,
                           const float* bias, Index in_dim, Index out_dim,
                           const float* h_self, const GnnNeighbor* neighbors,
                           Index neighbor_count, bool max_aggregation,
                           float inv_degree, float* out);

#if defined(EVD_SIMD_HAVE_AVX2)
void conv_gemm_block_avx2(const float* w, const float* bias, const float* col,
                          float* out, Index oc_begin, Index oc_end, Index rows,
                          Index cols, Index px_begin, Index px_end);
void lif_step_block_avx2(float* v, const float* b, const float* w,
                         const float* w_t, Index in_dim, Index out_dim,
                         const Index* spikes, Index spike_count, Index n_begin,
                         Index n_end, float beta, float theta,
                         bool reset_to_zero, float* membrane_pre,
                         std::vector<Index>& spikes_out);
void gnn_apply_node_avx2(const float* w_self, const float* w_self_t,
                         const float* w_nbr, const float* w_nbr_t,
                         const float* bias, Index in_dim, Index out_dim,
                         const float* h_self, const GnnNeighbor* neighbors,
                         Index neighbor_count, bool max_aggregation,
                         float inv_degree, float* out);
#endif

#if defined(EVD_SIMD_HAVE_NEON)
void conv_gemm_block_neon(const float* w, const float* bias, const float* col,
                          float* out, Index oc_begin, Index oc_end, Index rows,
                          Index cols, Index px_begin, Index px_end);
void lif_step_block_neon(float* v, const float* b, const float* w,
                         const float* w_t, Index in_dim, Index out_dim,
                         const Index* spikes, Index spike_count, Index n_begin,
                         Index n_end, float beta, float theta,
                         bool reset_to_zero, float* membrane_pre,
                         std::vector<Index>& spikes_out);
void gnn_apply_node_neon(const float* w_self, const float* w_self_t,
                         const float* w_nbr, const float* w_nbr_t,
                         const float* bias, Index in_dim, Index out_dim,
                         const float* h_self, const GnnNeighbor* neighbors,
                         Index neighbor_count, bool max_aggregation,
                         float inv_degree, float* out);
#endif

}  // namespace detail
}  // namespace evd::simd
