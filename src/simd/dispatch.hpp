// Runtime SIMD tier selection for the vectorized hot-path kernels.
//
// The kernels in evd::simd ship in up to three builds of the same
// arithmetic — scalar (the reference), AVX2 (x86-64) and NEON (aarch64) —
// and every dispatching entry point picks one at call time from a single
// process-wide tier. The tier is chosen once at startup from CPU feature
// detection, overridable by the `EVD_SIMD` environment variable
// (native|avx2|neon|scalar, parsed with the same warn-and-fall-back
// discipline as EVD_THREADS) and, for tests and oracles, by the ScopedTier
// RAII guard.
//
// Equivalence contract: every tier produces bit-identical outputs for the
// kernels in kernels.hpp (see DESIGN.md §12) — vector lanes evaluate
// independent outputs with unfused multiply+add in the same per-output
// order as the scalar reference, so switching tiers never changes results,
// only speed.
#pragma once

#include "common/types.hpp"

namespace evd::simd {

enum class Tier : int { Scalar = 0, Avx2 = 1, Neon = 2 };

/// Human-readable tier name ("scalar", "avx2", "neon").
const char* tier_name(Tier tier) noexcept;

/// Vector lanes (floats per register) for a tier: 8, 4 or 1.
Index lane_width(Tier tier) noexcept;

/// True when this build carries the tier's kernels AND the running CPU can
/// execute them (CPUID on x86, baseline on aarch64, scalar everywhere).
bool tier_supported(Tier tier) noexcept;

/// Best supported tier on this machine (what EVD_SIMD=native resolves to).
Tier detect_best() noexcept;

/// Parse an EVD_SIMD-style value. Unset/empty selects `fallback`; an
/// unknown spelling or an unsupported tier warns and falls back, mirroring
/// parse_thread_count's handling of EVD_THREADS.
Tier parse_tier(const char* value, Tier fallback) noexcept;

/// The process-wide tier consulted by every kernel dispatch. Initialised
/// on first use from EVD_SIMD (default: detect_best()).
Tier active_tier() noexcept;

/// Override the active tier (an unsupported request installs Scalar, which
/// every build carries). Returns the previously active tier. Not
/// thread-safe against in-flight kernels — call between inference batches,
/// as the oracles and benches do.
Tier set_active_tier(Tier tier) noexcept;

/// RAII tier override for oracles/benches comparing tiers in-process.
class ScopedTier {
 public:
  explicit ScopedTier(Tier tier) : saved_(set_active_tier(tier)) {}
  ~ScopedTier() { set_active_tier(saved_); }
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  Tier saved_;
};

}  // namespace evd::simd
