// The vector-register abstraction behind the evd::simd kernels: one small
// value type (VecF) with load/store, broadcast, unfused mul/add/sub, fused
// fma, max, compare/blend, strided gather and horizontal reduce, backed by
// AVX2 (__m256, 8 lanes) or NEON (float32x4_t, 4 lanes).
//
// This header is included only by the per-tier kernel TUs, which define
// EVD_SIMD_VEC_AVX2 or EVD_SIMD_VEC_NEON before inclusion; the shared
// kernel bodies in kernels_vec_impl.hpp are written against this interface
// once and compiled per tier. The scalar reference kernels do NOT go
// through this abstraction — they are the plain loops the oracles compare
// against.
//
// Bitwise discipline: kernels that must match the scalar reference use
// mul()+add() (two correctly-rounded IEEE-754 ops per lane, exactly what
// the scalar code does) rather than fma(); fma() is provided for callers
// that opt into fused rounding. The per-tier TUs are compiled with
// -ffp-contract=off so the compiler cannot re-fuse the unfused ops.
#pragma once

#include <cstdint>

#include "common/types.hpp"

#if defined(EVD_SIMD_VEC_AVX2)

#include <immintrin.h>

namespace evd::simd {

/// Comparison result: one all-ones/all-zeros float lane per input lane.
struct VecM {
  __m256 raw;
  /// Bit b set iff lane b's predicate held.
  int movemask() const noexcept { return _mm256_movemask_ps(raw); }
  bool any() const noexcept { return movemask() != 0; }
};

/// Per-lane int32 offsets for strided gathers.
struct VecI {
  __m256i raw;
  /// {0, stride, 2*stride, ..., 7*stride}; stride must fit int32 after
  /// multiplication (the dispatchers guard this).
  static VecI lane_stride(Index stride) noexcept {
    const auto s = static_cast<std::int32_t>(stride);
    return {_mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s,
                              7 * s)};
  }
};

struct VecF {
  static constexpr Index kWidth = 8;
  __m256 raw;

  static VecF load(const float* p) noexcept { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const noexcept { _mm256_storeu_ps(p, raw); }
  static VecF broadcast(float x) noexcept { return {_mm256_set1_ps(x)}; }
  static VecF zero() noexcept { return {_mm256_setzero_ps()}; }
  /// lanes[i] = base[offsets.lane(i)].
  static VecF gather(const float* base, VecI offsets) noexcept {
    return {_mm256_i32gather_ps(base, offsets.raw, 4)};
  }

  static VecF add(VecF a, VecF b) noexcept {
    return {_mm256_add_ps(a.raw, b.raw)};
  }
  static VecF sub(VecF a, VecF b) noexcept {
    return {_mm256_sub_ps(a.raw, b.raw)};
  }
  static VecF mul(VecF a, VecF b) noexcept {
    return {_mm256_mul_ps(a.raw, b.raw)};
  }
  /// Fused a*b + c (single rounding). NOT bitwise-equal to mul+add.
  static VecF fma(VecF a, VecF b, VecF c) noexcept {
    return {_mm256_fmadd_ps(a.raw, b.raw, c.raw)};
  }
  static VecF max(VecF a, VecF b) noexcept {
    return {_mm256_max_ps(a.raw, b.raw)};
  }

  static VecM cmp_ge(VecF a, VecF b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_GE_OQ)};
  }
  static VecM cmp_gt(VecF a, VecF b) noexcept {
    return {_mm256_cmp_ps(a.raw, b.raw, _CMP_GT_OQ)};
  }
  /// m ? a : b, per lane.
  static VecF blend(VecM m, VecF a, VecF b) noexcept {
    return {_mm256_blendv_ps(b.raw, a.raw, m.raw)};
  }

  /// Horizontal sum of all lanes (pairwise tree order).
  float hsum() const noexcept {
    const __m128 lo = _mm256_castps256_ps128(raw);
    const __m128 hi = _mm256_extractf128_ps(raw, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }
};

}  // namespace evd::simd

#elif defined(EVD_SIMD_VEC_NEON)

#include <arm_neon.h>

namespace evd::simd {

struct VecM {
  uint32x4_t raw;
  int movemask() const noexcept {
    // Narrow each lane to its sign bit: lane i contributes bit i.
    const uint32x4_t bits = {1u, 2u, 4u, 8u};
    return static_cast<int>(vaddvq_u32(vandq_u32(raw, bits)));
  }
  bool any() const noexcept { return vmaxvq_u32(raw) != 0; }
};

struct VecI {
  std::int32_t idx[4];
  static VecI lane_stride(Index stride) noexcept {
    const auto s = static_cast<std::int32_t>(stride);
    return {{0, s, 2 * s, 3 * s}};
  }
};

struct VecF {
  static constexpr Index kWidth = 4;
  float32x4_t raw;

  static VecF load(const float* p) noexcept { return {vld1q_f32(p)}; }
  void store(float* p) const noexcept { vst1q_f32(p, raw); }
  static VecF broadcast(float x) noexcept { return {vdupq_n_f32(x)}; }
  static VecF zero() noexcept { return {vdupq_n_f32(0.0f)}; }
  static VecF gather(const float* base, VecI offsets) noexcept {
    float32x4_t v = vdupq_n_f32(0.0f);
    v = vld1q_lane_f32(base + offsets.idx[0], v, 0);
    v = vld1q_lane_f32(base + offsets.idx[1], v, 1);
    v = vld1q_lane_f32(base + offsets.idx[2], v, 2);
    v = vld1q_lane_f32(base + offsets.idx[3], v, 3);
    return {v};
  }

  static VecF add(VecF a, VecF b) noexcept { return {vaddq_f32(a.raw, b.raw)}; }
  static VecF sub(VecF a, VecF b) noexcept { return {vsubq_f32(a.raw, b.raw)}; }
  static VecF mul(VecF a, VecF b) noexcept { return {vmulq_f32(a.raw, b.raw)}; }
  static VecF fma(VecF a, VecF b, VecF c) noexcept {
    return {vfmaq_f32(c.raw, a.raw, b.raw)};
  }
  static VecF max(VecF a, VecF b) noexcept { return {vmaxq_f32(a.raw, b.raw)}; }

  static VecM cmp_ge(VecF a, VecF b) noexcept {
    return {vcgeq_f32(a.raw, b.raw)};
  }
  static VecM cmp_gt(VecF a, VecF b) noexcept {
    return {vcgtq_f32(a.raw, b.raw)};
  }
  static VecF blend(VecM m, VecF a, VecF b) noexcept {
    return {vbslq_f32(m.raw, a.raw, b.raw)};
  }

  float hsum() const noexcept { return vaddvq_f32(raw); }
};

}  // namespace evd::simd

#else
#error "vec.hpp: define EVD_SIMD_VEC_AVX2 or EVD_SIMD_VEC_NEON before including"
#endif
