// Width-generic vector builds of the three hot-span kernels, written once
// against the VecF abstraction (vec.hpp) and compiled per tier by
// kernels_avx2.cpp / kernels_neon.cpp. Include vec.hpp (with the tier
// macro set) before this header.
//
// Bitwise contract with kernels_scalar.cpp: lanes hold independent outputs
// (pixels / neurons / output features); every per-output operation is the
// scalar reference's operation, in the scalar reference's order, using
// unfused mul+add. The only things vectorization changes are which outputs
// advance together and how spikes are extracted from the fired mask — both
// invisible in the results.
//
// The SNN and GNN kernels have two weight-access strategies. With a
// transposed weight copy (w_t, [in][out]) they stream contiguous rows —
// loop interchange that keeps each output's accumulation order (ascending
// spike / feature index) intact, so it is still bitwise. Without one they
// gather strided weight columns from the row-major matrix. Same arithmetic,
// different memory behaviour: the gather path goes latency-bound once the
// matrix outgrows L2, the transposed path stays at streaming bandwidth.
#pragma once

#include <vector>

#include "simd/kernels.hpp"

namespace evd::simd::detail {
namespace vecimpl {

// --- cnn.conv_forward: register-tiled GEMM microkernel ----------------------
// NOC output channels advance together over a strip of 2 vectors of pixels,
// holding all NOC*2 accumulators in registers across the full r loop: col
// traffic drops by NOC× versus the scalar kernel and each accumulator sees
// the same ascending-r mul+add chain as the scalar per-pixel loop.
template <int NOC>
inline void conv_tile(const float* w, const float* bias, const float* col,
                      float* out, Index oc0, Index rows, Index cols,
                      Index px_begin, Index px_end) {
  constexpr Index W = VecF::kWidth;
  Index p = px_begin;
  for (; p + 2 * W <= px_end; p += 2 * W) {
    VecF acc0[NOC], acc1[NOC];
    for (int t = 0; t < NOC; ++t) {
      acc0[t] = VecF::broadcast(bias[oc0 + t]);
      acc1[t] = acc0[t];
    }
    for (Index r = 0; r < rows; ++r) {
      const float* c_row = col + r * cols + p;
      const VecF c0 = VecF::load(c_row);
      const VecF c1 = VecF::load(c_row + W);
      for (int t = 0; t < NOC; ++t) {
        const VecF wv = VecF::broadcast(w[(oc0 + t) * rows + r]);
        acc0[t] = VecF::add(acc0[t], VecF::mul(wv, c0));
        acc1[t] = VecF::add(acc1[t], VecF::mul(wv, c1));
      }
    }
    for (int t = 0; t < NOC; ++t) {
      float* o_row = out + (oc0 + t) * cols + p;
      acc0[t].store(o_row);
      acc1[t].store(o_row + W);
    }
  }
  for (; p + W <= px_end; p += W) {
    VecF acc[NOC];
    for (int t = 0; t < NOC; ++t) acc[t] = VecF::broadcast(bias[oc0 + t]);
    for (Index r = 0; r < rows; ++r) {
      const VecF c0 = VecF::load(col + r * cols + p);
      for (int t = 0; t < NOC; ++t) {
        const VecF wv = VecF::broadcast(w[(oc0 + t) * rows + r]);
        acc[t] = VecF::add(acc[t], VecF::mul(wv, c0));
      }
    }
    for (int t = 0; t < NOC; ++t) acc[t].store(out + (oc0 + t) * cols + p);
  }
  // Scalar pixel tail (block size % W), same ascending-r chain.
  for (; p < px_end; ++p) {
    for (int t = 0; t < NOC; ++t) {
      const float* w_oc = w + (oc0 + t) * rows;
      float a = bias[oc0 + t];
      for (Index r = 0; r < rows; ++r) a += w_oc[r] * col[r * cols + p];
      out[(oc0 + t) * cols + p] = a;
    }
  }
}

inline void conv_gemm_block(const float* w, const float* bias,
                            const float* col, float* out, Index oc_begin,
                            Index oc_end, Index rows, Index cols,
                            Index px_begin, Index px_end) {
  Index oc = oc_begin;
  for (; oc + 4 <= oc_end; oc += 4) {
    conv_tile<4>(w, bias, col, out, oc, rows, cols, px_begin, px_end);
  }
  switch (oc_end - oc) {
    case 3:
      conv_tile<3>(w, bias, col, out, oc, rows, cols, px_begin, px_end);
      break;
    case 2:
      conv_tile<2>(w, bias, col, out, oc, rows, cols, px_begin, px_end);
      break;
    case 1:
      conv_tile<1>(w, bias, col, out, oc, rows, cols, px_begin, px_end);
      break;
    default: break;
  }
}

// --- snn.step: LIF update + compressed spike emit ---------------------------
// Shared epilogue for one vector of membrane values: cache pre-reset
// membrane, threshold, emit fired lanes in ascending neuron order, reset.
inline void lif_finish_vec(float* v, Index o, VecF vo, const VecF& vtheta,
                           bool reset_to_zero, float* membrane_pre,
                           std::vector<Index>& spikes_out) {
  if (membrane_pre != nullptr) vo.store(membrane_pre + o);
  const VecM fired = VecF::cmp_ge(vo, vtheta);
  const int mask = fired.movemask();
  if (mask != 0) {
    // Compressed emit: ascending set bits = ascending neuron ids, the
    // order the scalar loop appends in.
    for (int m = mask; m != 0; m &= m - 1) {
      spikes_out.push_back(
          o + static_cast<Index>(__builtin_ctz(static_cast<unsigned>(m))));
    }
    const VecF reset = reset_to_zero ? VecF::zero() : VecF::sub(vo, vtheta);
    vo = VecF::blend(fired, reset, vo);
  }
  vo.store(v + o);
}

inline void lif_step_block(float* v, const float* b, const float* w,
                           const float* w_t, Index in_dim, Index out_dim,
                           const Index* spikes, Index spike_count,
                           Index n_begin, Index n_end, float beta, float theta,
                           bool reset_to_zero, float* membrane_pre,
                           std::vector<Index>& spikes_out) {
  constexpr Index W = VecF::kWidth;
  const VecF vbeta = VecF::broadcast(beta);
  const VecF vtheta = VecF::broadcast(theta);
  const Index vec_end = n_begin + ((n_end - n_begin) / W) * W;
  if (w_t != nullptr) {
    // Transposed path, three phases over the vector region. Per neuron the
    // operation sequence is exactly the scalar reference's — leak+bias,
    // then spikes in ascending order, then threshold — only the neuron/spike
    // loop nesting is interchanged, which no per-neuron chain can observe.
    //
    // Phase 1: v = beta*v + b, in place.
    for (Index o = n_begin; o < vec_end; o += W) {
      VecF::add(VecF::mul(vbeta, VecF::load(v + o)), VecF::load(b + o))
          .store(v + o);
    }
    // Phase 2: one contiguous w_t row per spike, streamed across the chunk.
    // Four spikes per pass quarters the v load/store traffic; the adds per
    // neuron stay in ascending spike order.
    Index s = 0;
    for (; s + 4 <= spike_count; s += 4) {
      const float* r0 = w_t + spikes[s + 0] * out_dim;
      const float* r1 = w_t + spikes[s + 1] * out_dim;
      const float* r2 = w_t + spikes[s + 2] * out_dim;
      const float* r3 = w_t + spikes[s + 3] * out_dim;
      for (Index o = n_begin; o < vec_end; o += W) {
        VecF vo = VecF::load(v + o);
        vo = VecF::add(vo, VecF::load(r0 + o));
        vo = VecF::add(vo, VecF::load(r1 + o));
        vo = VecF::add(vo, VecF::load(r2 + o));
        vo = VecF::add(vo, VecF::load(r3 + o));
        vo.store(v + o);
      }
    }
    for (; s < spike_count; ++s) {
      const float* r = w_t + spikes[s] * out_dim;
      for (Index o = n_begin; o < vec_end; o += W) {
        VecF::add(VecF::load(v + o), VecF::load(r + o)).store(v + o);
      }
    }
    // Phase 3: threshold / emit / reset, ascending o.
    for (Index o = n_begin; o < vec_end; o += W) {
      lif_finish_vec(v, o, VecF::load(v + o), vtheta, reset_to_zero,
                     membrane_pre, spikes_out);
    }
  } else {
    const VecI row_stride = VecI::lane_stride(in_dim);
    for (Index o = n_begin; o < vec_end; o += W) {
      // v' = beta*v + b, then one strided gather per input spike pulls the
      // synapse column w[(o..o+W-1)*in_dim + i] for all lanes at once.
      VecF vo =
          VecF::add(VecF::mul(vbeta, VecF::load(v + o)), VecF::load(b + o));
      const float* w_base = w + o * in_dim;
      for (Index s = 0; s < spike_count; ++s) {
        vo = VecF::add(vo, VecF::gather(w_base + spikes[s], row_stride));
      }
      lif_finish_vec(v, o, vo, vtheta, reset_to_zero, membrane_pre,
                     spikes_out);
    }
  }
  if (vec_end < n_end) {
    // Scalar neuron tail — full per-neuron sequence, appended after the
    // vector region so spike ids stay ascending.
    lif_step_block_scalar(v, b, w, in_dim, spikes, spike_count, vec_end,
                          n_end, beta, theta, reset_to_zero, membrane_pre,
                          spikes_out);
  }
}

// --- gnn.message_pass: neighbor accumulate ----------------------------------
// One body, two weight-column loaders: `self_col(f, o)` / `nbr_col(f, o)`
// return the vector of weights feeding outputs o..o+W-1 from input feature f
// (f in [0, in_dim+3) for the neighbor matrix — the last three are the
// spatiotemporal offset columns). The transposed loader is a contiguous
// load, the fallback a strided gather; the arithmetic around them is
// identical.
template <typename SelfCol, typename NbrCol>
inline void gnn_apply_node_body(SelfCol self_col, NbrCol nbr_col,
                                const float* bias, Index in_dim,
                                Index out_dim, const float* h_self,
                                const GnnNeighbor* neighbors,
                                Index neighbor_count, bool max_aggregation,
                                float inv_degree, float* out,
                                Index vec_end) {
  constexpr Index W = VecF::kWidth;
  const VecF vzero = VecF::zero();
  const VecF vinv = VecF::broadcast(inv_degree);
  for (Index o = 0; o < vec_end; o += W) {
    // acc = bias + W_self · h_self for W outputs: per feature, one weight
    // column across output rows times the broadcast activation.
    VecF acc = VecF::load(bias + o);
    for (Index f = 0; f < in_dim; ++f) {
      acc = VecF::add(acc,
                      VecF::mul(self_col(f, o), VecF::broadcast(h_self[f])));
    }
    VecF msg = vzero;
    for (Index j = 0; j < neighbor_count; ++j) {
      const GnnNeighbor& nb = neighbors[j];
      VecF contrib = vzero;
      for (Index f = 0; f < in_dim; ++f) {
        contrib = VecF::add(
            contrib, VecF::mul(nbr_col(f, o), VecF::broadcast(nb.features[f])));
      }
      // One expression in the scalar reference — keep its tree:
      // contrib += (wx*dx + wy*dy) + wz*dz.
      const VecF off = VecF::add(
          VecF::add(VecF::mul(nbr_col(in_dim, o), VecF::broadcast(nb.dx)),
                    VecF::mul(nbr_col(in_dim + 1, o), VecF::broadcast(nb.dy))),
          VecF::mul(nbr_col(in_dim + 2, o), VecF::broadcast(nb.dz)));
      contrib = VecF::add(contrib, off);
      if (max_aggregation) {
        // First neighbor seeds msg; later ones replace it only when
        // strictly greater (compare/blend), so ties keep the first —
        // exactly the scalar `!has_msg || contrib > msg` rule.
        msg = (j == 0) ? contrib
                       : VecF::blend(VecF::cmp_gt(contrib, msg), contrib, msg);
      } else {
        msg = VecF::add(msg, contrib);
      }
    }
    // Max: acc + (has_msg ? msg : 0.0f) — msg is already 0 when there are
    // no neighbors, so the unconditional add reproduces the +0.0f case.
    const VecF pre = max_aggregation ? VecF::add(acc, msg)
                                     : VecF::add(acc, VecF::mul(vinv, msg));
    const VecF relu = VecF::blend(VecF::cmp_gt(pre, vzero), pre, vzero);
    relu.store(out + o);
  }
}

inline void gnn_apply_node(const float* w_self, const float* w_self_t,
                           const float* w_nbr, const float* w_nbr_t,
                           const float* bias, Index in_dim, Index out_dim,
                           const float* h_self, const GnnNeighbor* neighbors,
                           Index neighbor_count, bool max_aggregation,
                           float inv_degree, float* out) {
  constexpr Index W = VecF::kWidth;
  const Index vec_end = (out_dim / W) * W;
  if (w_self_t != nullptr && w_nbr_t != nullptr) {
    gnn_apply_node_body(
        [w_self_t, out_dim](Index f, Index o) {
          return VecF::load(w_self_t + f * out_dim + o);
        },
        [w_nbr_t, out_dim](Index f, Index o) {
          return VecF::load(w_nbr_t + f * out_dim + o);
        },
        bias, in_dim, out_dim, h_self, neighbors, neighbor_count,
        max_aggregation, inv_degree, out, vec_end);
  } else {
    const VecI self_stride = VecI::lane_stride(in_dim);
    const VecI nbr_stride = VecI::lane_stride(in_dim + 3);
    gnn_apply_node_body(
        [w_self, in_dim, &self_stride](Index f, Index o) {
          return VecF::gather(w_self + o * in_dim + f, self_stride);
        },
        [w_nbr, in_dim, &nbr_stride](Index f, Index o) {
          return VecF::gather(w_nbr + o * (in_dim + 3) + f, nbr_stride);
        },
        bias, in_dim, out_dim, h_self, neighbors, neighbor_count,
        max_aggregation, inv_degree, out, vec_end);
  }
  if (vec_end < out_dim) {
    gnn_apply_node_scalar(w_self + vec_end * in_dim,
                          w_nbr + vec_end * (in_dim + 3), bias + vec_end,
                          in_dim, out_dim - vec_end, h_self, neighbors,
                          neighbor_count, max_aggregation, inv_degree,
                          out + vec_end);
  }
}

}  // namespace vecimpl
}  // namespace evd::simd::detail
