// Tier dispatch for the hot-span kernels. Every entry point reads the
// process-wide tier once and forwards. The SNN/GNN kernels gather weight
// columns only when the caller passes no transposed copy; that fallback
// additionally drops to scalar when the row stride could overflow the
// 32-bit gather indices (never hit by realistic layer sizes, but the
// kernels must be total).
#include "simd/kernels.hpp"

#include <cstdint>

#include "simd/dispatch.hpp"

namespace evd::simd {
namespace {

/// Max lane offset is (kWidth-1) * stride; keep the product comfortably
/// inside int32 for an 8-lane gather.
constexpr Index kMaxGatherStride = INT32_MAX / 8;

}  // namespace

void conv_gemm_block(const float* w, const float* bias, const float* col,
                     float* out, Index oc_begin, Index oc_end, Index rows,
                     Index cols, Index px_begin, Index px_end) {
  switch (active_tier()) {
#if defined(EVD_SIMD_HAVE_AVX2)
    case Tier::Avx2:
      detail::conv_gemm_block_avx2(w, bias, col, out, oc_begin, oc_end, rows,
                                   cols, px_begin, px_end);
      return;
#endif
#if defined(EVD_SIMD_HAVE_NEON)
    case Tier::Neon:
      detail::conv_gemm_block_neon(w, bias, col, out, oc_begin, oc_end, rows,
                                   cols, px_begin, px_end);
      return;
#endif
    default: break;
  }
  detail::conv_gemm_block_scalar(w, bias, col, out, oc_begin, oc_end, rows,
                                 cols, px_begin, px_end);
}

void lif_step_block(float* v, const float* b, const float* w,
                    const float* w_t, Index in_dim, Index out_dim,
                    const Index* spikes, Index spike_count, Index n_begin,
                    Index n_end, float beta, float theta, bool reset_to_zero,
                    float* membrane_pre, std::vector<Index>& spikes_out) {
  if (w_t != nullptr || in_dim <= kMaxGatherStride) {
    switch (active_tier()) {
#if defined(EVD_SIMD_HAVE_AVX2)
      case Tier::Avx2:
        detail::lif_step_block_avx2(v, b, w, w_t, in_dim, out_dim, spikes,
                                    spike_count, n_begin, n_end, beta, theta,
                                    reset_to_zero, membrane_pre, spikes_out);
        return;
#endif
#if defined(EVD_SIMD_HAVE_NEON)
      case Tier::Neon:
        detail::lif_step_block_neon(v, b, w, w_t, in_dim, out_dim, spikes,
                                    spike_count, n_begin, n_end, beta, theta,
                                    reset_to_zero, membrane_pre, spikes_out);
        return;
#endif
      default: break;
    }
  }
  detail::lif_step_block_scalar(v, b, w, in_dim, spikes, spike_count, n_begin,
                                n_end, beta, theta, reset_to_zero,
                                membrane_pre, spikes_out);
}

void gnn_apply_node(const float* w_self, const float* w_self_t,
                    const float* w_nbr, const float* w_nbr_t,
                    const float* bias, Index in_dim, Index out_dim,
                    const float* h_self, const GnnNeighbor* neighbors,
                    Index neighbor_count, bool max_aggregation,
                    float inv_degree, float* out) {
  const bool transposed = w_self_t != nullptr && w_nbr_t != nullptr;
  if (transposed || in_dim + 3 <= kMaxGatherStride) {
    switch (active_tier()) {
#if defined(EVD_SIMD_HAVE_AVX2)
      case Tier::Avx2:
        detail::gnn_apply_node_avx2(w_self, transposed ? w_self_t : nullptr,
                                    w_nbr, transposed ? w_nbr_t : nullptr,
                                    bias, in_dim, out_dim, h_self, neighbors,
                                    neighbor_count, max_aggregation,
                                    inv_degree, out);
        return;
#endif
#if defined(EVD_SIMD_HAVE_NEON)
      case Tier::Neon:
        detail::gnn_apply_node_neon(w_self, transposed ? w_self_t : nullptr,
                                    w_nbr, transposed ? w_nbr_t : nullptr,
                                    bias, in_dim, out_dim, h_self, neighbors,
                                    neighbor_count, max_aggregation,
                                    inv_degree, out);
        return;
#endif
      default: break;
    }
  }
  detail::gnn_apply_node_scalar(w_self, w_nbr, bias, in_dim, out_dim, h_self,
                                neighbors, neighbor_count, max_aggregation,
                                inv_degree, out);
}

}  // namespace evd::simd
