// AVX2 builds of the hot-span kernels. This TU is the only one compiled
// with -mavx2 -mfma (plus -ffp-contract=off so the compiler cannot fuse
// the deliberately unfused mul+add chains); nothing here executes unless
// the runtime dispatcher saw AVX2+FMA in CPUID, so no illegal instructions
// can leak onto older x86 parts.
#define EVD_SIMD_VEC_AVX2 1
#include "simd/vec.hpp"

#include "simd/kernels_vec_impl.hpp"

namespace evd::simd::detail {

void conv_gemm_block_avx2(const float* w, const float* bias, const float* col,
                          float* out, Index oc_begin, Index oc_end, Index rows,
                          Index cols, Index px_begin, Index px_end) {
  vecimpl::conv_gemm_block(w, bias, col, out, oc_begin, oc_end, rows, cols,
                           px_begin, px_end);
}

void lif_step_block_avx2(float* v, const float* b, const float* w,
                         const float* w_t, Index in_dim, Index out_dim,
                         const Index* spikes, Index spike_count, Index n_begin,
                         Index n_end, float beta, float theta,
                         bool reset_to_zero, float* membrane_pre,
                         std::vector<Index>& spikes_out) {
  vecimpl::lif_step_block(v, b, w, w_t, in_dim, out_dim, spikes, spike_count,
                          n_begin, n_end, beta, theta, reset_to_zero,
                          membrane_pre, spikes_out);
}

void gnn_apply_node_avx2(const float* w_self, const float* w_self_t,
                         const float* w_nbr, const float* w_nbr_t,
                         const float* bias, Index in_dim, Index out_dim,
                         const float* h_self, const GnnNeighbor* neighbors,
                         Index neighbor_count, bool max_aggregation,
                         float inv_degree, float* out) {
  vecimpl::gnn_apply_node(w_self, w_self_t, w_nbr, w_nbr_t, bias, in_dim,
                          out_dim, h_self, neighbors, neighbor_count,
                          max_aggregation, inv_degree, out);
}

}  // namespace evd::simd::detail
