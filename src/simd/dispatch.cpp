#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"

namespace evd::simd {
namespace {

bool cpu_has_avx2() noexcept {
#if defined(EVD_SIMD_HAVE_AVX2)
  // GCC/Clang resolve this via CPUID (cached after the first call), so an
  // AVX2-capable binary still runs — scalar tier — on older x86 parts.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_neon() noexcept {
#if defined(EVD_SIMD_HAVE_NEON)
  return true;  // Advanced SIMD is baseline on AArch64.
#else
  return false;
#endif
}

std::atomic<int>& active_tier_slot() noexcept {
  // Initialised from EVD_SIMD exactly once; relaxed loads on the hot path
  // (the tier only changes between batches, via set_active_tier).
  static std::atomic<int> tier{static_cast<int>(
      parse_tier(std::getenv("EVD_SIMD"), detect_best()))};
  return tier;
}

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::Scalar: return "scalar";
    case Tier::Avx2: return "avx2";
    case Tier::Neon: return "neon";
  }
  return "scalar";
}

Index lane_width(Tier tier) noexcept {
  switch (tier) {
    case Tier::Scalar: return 1;
    case Tier::Avx2: return 8;
    case Tier::Neon: return 4;
  }
  return 1;
}

bool tier_supported(Tier tier) noexcept {
  switch (tier) {
    case Tier::Scalar: return true;
    case Tier::Avx2: return cpu_has_avx2();
    case Tier::Neon: return cpu_has_neon();
  }
  return false;
}

Tier detect_best() noexcept {
  if (cpu_has_avx2()) return Tier::Avx2;
  if (cpu_has_neon()) return Tier::Neon;
  return Tier::Scalar;
}

Tier parse_tier(const char* value, Tier fallback) noexcept {
  // Unset / empty is not an error — the default is simply in effect.
  if (value == nullptr || *value == '\0') return fallback;
  const auto is = [value](const char* s) { return std::strcmp(value, s) == 0; };
  if (is("native") || is("NATIVE")) return detect_best();
  Tier requested = fallback;
  if (is("scalar") || is("SCALAR")) {
    requested = Tier::Scalar;
  } else if (is("avx2") || is("AVX2")) {
    requested = Tier::Avx2;
  } else if (is("neon") || is("NEON")) {
    requested = Tier::Neon;
  } else {
    log_warn(
        "EVD_SIMD='%s' is not one of native|avx2|neon|scalar; falling back "
        "to %s",
        value, tier_name(fallback));
    return fallback;
  }
  if (!tier_supported(requested)) {
    const Tier best = detect_best();
    log_warn("EVD_SIMD=%s is not supported on this CPU/build; using %s",
             tier_name(requested), tier_name(best));
    return best;
  }
  return requested;
}

Tier active_tier() noexcept {
  return static_cast<Tier>(
      active_tier_slot().load(std::memory_order_relaxed));
}

Tier set_active_tier(Tier tier) noexcept {
  if (!tier_supported(tier)) tier = Tier::Scalar;
  return static_cast<Tier>(active_tier_slot().exchange(
      static_cast<int>(tier), std::memory_order_relaxed));
}

}  // namespace evd::simd
