// Scalar reference builds of the three hot-span kernels. These are the
// loops the vector tiers are proved equivalent against (oracles
// simd.conv_vs_scalar / simd.snn_step_vs_scalar /
// simd.gnn_accumulate_vs_scalar), lifted verbatim from the pre-simd
// Conv2d::forward_gemm, SpikingNet::step and GraphConv::apply_node bodies.
// Keep them boring: no manual vector code, no reassociation — per-output
// accumulation order is the contract.
#include <algorithm>
#include <vector>

#include "simd/kernels.hpp"

namespace evd::simd::detail {

void conv_gemm_block_scalar(const float* w, const float* bias,
                            const float* col, float* out, Index oc_begin,
                            Index oc_end, Index rows, Index cols,
                            Index px_begin, Index px_end) {
  // Pixel blocks sized to keep a col row slice resident in L1 (same cache
  // blocking as the original GEMM loop; per-pixel accumulation order over r
  // is unaffected by the blocking, so any [px_begin, px_end) partition the
  // caller picks yields identical bits).
  constexpr Index kPixelBlock = 1024;
  for (Index oc = oc_begin; oc < oc_end; ++oc) {
    const float* w_oc = w + oc * rows;
    const float b = bias[oc];
    float* out_oc = out + oc * cols;
    for (Index p0 = px_begin; p0 < px_end; p0 += kPixelBlock) {
      const Index p1 = std::min(px_end, p0 + kPixelBlock);
      std::fill(out_oc + p0, out_oc + p1, b);
      for (Index r = 0; r < rows; ++r) {
        const float wv = w_oc[r];
        const float* c_row = col + r * cols;
        for (Index p = p0; p < p1; ++p) {
          out_oc[p] += wv * c_row[p];
        }
      }
    }
  }
}

void lif_step_block_scalar(float* v, const float* b, const float* w,
                           Index in_dim, const Index* spikes,
                           Index spike_count, Index n_begin, Index n_end,
                           float beta, float theta, bool reset_to_zero,
                           float* membrane_pre,
                           std::vector<Index>& spikes_out) {
  for (Index o = n_begin; o < n_end; ++o) {
    float vo = beta * v[o] + b[o];
    const float* w_row = w + o * in_dim;
    for (Index s = 0; s < spike_count; ++s) vo += w_row[spikes[s]];
    // Membrane cached pre-reset for the surrogate gradient.
    if (membrane_pre != nullptr) membrane_pre[o] = vo;
    if (vo >= theta) {
      spikes_out.push_back(o);
      vo = reset_to_zero ? 0.0f : vo - theta;
    }
    v[o] = vo;
  }
}

void gnn_apply_node_scalar(const float* w_self, const float* w_nbr,
                           const float* bias, Index in_dim, Index out_dim,
                           const float* h_self, const GnnNeighbor* neighbors,
                           Index neighbor_count, bool max_aggregation,
                           float inv_degree, float* out) {
  for (Index o = 0; o < out_dim; ++o) {
    float acc = bias[o];
    const float* ws = w_self + o * in_dim;
    for (Index f = 0; f < in_dim; ++f) acc += ws[f] * h_self[f];
    float msg = 0.0f;
    bool has_msg = false;
    const float* wn = w_nbr + o * (in_dim + 3);
    for (Index j = 0; j < neighbor_count; ++j) {
      const GnnNeighbor& nb = neighbors[j];
      float contrib = 0.0f;
      for (Index f = 0; f < in_dim; ++f) contrib += wn[f] * nb.features[f];
      contrib += wn[in_dim + 0] * nb.dx + wn[in_dim + 1] * nb.dy +
                 wn[in_dim + 2] * nb.dz;
      if (max_aggregation) {
        if (!has_msg || contrib > msg) {
          msg = contrib;
          has_msg = true;
        }
      } else {
        msg += contrib;
      }
    }
    const float pre = max_aggregation ? acc + (has_msg ? msg : 0.0f)
                                      : acc + inv_degree * msg;
    out[o] = pre > 0.0f ? pre : 0.0f;
  }
}

}  // namespace evd::simd::detail
