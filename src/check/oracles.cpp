#include "check/oracles.hpp"

#include <algorithm>
#include <sstream>

#include "check/ulp.hpp"
#include "cnn/cnn_pipeline.hpp"
#include "fault/injector.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "gnn/graph_builder.hpp"
#include "gnn/graph_conv.hpp"
#include "gnn/incremental.hpp"
#include "gnn/kdtree.hpp"
#include "obs/metrics.hpp"
#include "route/route.hpp"
#include "sched/annealer.hpp"
#include "sched/planner.hpp"
#include "shard/shard_manager.hpp"
#include "simd/dispatch.hpp"
#include "runtime/session_manager.hpp"
#include "snn/snn_model.hpp"
#include "snn/snn_pipeline.hpp"

namespace evd::check {
namespace {

constexpr Index kThreadedCount = 4;

std::string show_lif(const snn::LifConfig& lif) {
  std::ostringstream os;
  os << "lif{beta=" << lif.beta << ", theta=" << lif.threshold
     << ", reset_to_zero=" << (lif.reset_to_zero ? "true" : "false") << "}";
  return os.str();
}

std::optional<std::string> diff_trains(const snn::SpikeTrain& a,
                                       const snn::SpikeTrain& b) {
  if (a.steps != b.steps) {
    return "step count: " + std::to_string(a.steps) + " vs " +
           std::to_string(b.steps);
  }
  for (Index t = 0; t < a.steps; ++t) {
    const auto& sa = a.active[static_cast<size_t>(t)];
    const auto& sb = b.active[static_cast<size_t>(t)];
    if (sa != sb) {
      std::ostringstream os;
      os << "spikes at step " << t << ": {";
      for (const Index i : sa) os << i << " ";
      os << "} vs {";
      for (const Index i : sb) os << i << " ";
      os << "}";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace

// ---- conv2d ---------------------------------------------------------------

Gen<ConvCase> conv_case_gen() {
  Gen<ConvCase> gen;
  gen.sample = [](Rng& rng) {
    ConvCase c;
    c.config.in_channels = 1 + static_cast<Index>(rng.uniform_int(3));
    c.config.out_channels = 1 + static_cast<Index>(rng.uniform_int(3));
    c.config.kernel = 1 + static_cast<Index>(rng.uniform_int(3));
    c.config.stride = 1 + static_cast<Index>(rng.uniform_int(2));
    c.config.padding = static_cast<Index>(rng.uniform_int(2));
    c.weight_seed = rng.next_u64();
    const Index h = c.config.kernel + static_cast<Index>(rng.uniform_int(6));
    const Index w = c.config.kernel + static_cast<Index>(rng.uniform_int(6));
    c.input = tensor_gen({c.config.in_channels, h, w}, 1.0f, 0.35).sample(rng);
    return c;
  };
  gen.shrink = [](const ConvCase& c) {
    std::vector<ConvCase> out;
    for (auto& smaller : shrink_tensor(c.input)) {
      ConvCase candidate = c;
      candidate.input = std::move(smaller);
      out.push_back(std::move(candidate));
    }
    return out;
  };
  gen.show = [](const ConvCase& c) {
    std::ostringstream os;
    os << "conv ic=" << c.config.in_channels << " oc=" << c.config.out_channels
       << " k=" << c.config.kernel << " stride=" << c.config.stride
       << " pad=" << c.config.padding << " weight_seed=" << c.weight_seed
       << ", " << show_tensor(c.input);
    return os.str();
  };
  return gen;
}

std::optional<std::string> diff_conv_direct_vs_gemm(const ConvCase& c) {
  nn::Conv2dConfig direct_config = c.config;
  direct_config.algo = nn::ConvAlgo::Direct;
  nn::Conv2dConfig gemm_config = c.config;
  gemm_config.algo = nn::ConvAlgo::Gemm;
  Rng direct_rng(c.weight_seed);
  Rng gemm_rng(c.weight_seed);
  nn::Conv2d direct(direct_config, direct_rng);
  nn::Conv2d gemm(gemm_config, gemm_rng);
  const nn::Tensor a = direct.forward(c.input, false);
  const nn::Tensor b = gemm.forward(c.input, false);
  // Accumulation order per output element is identical, so agreement is
  // exact (a GEMM padding tap only ever adds w * 0.0f).
  return diff_floats("direct vs gemm output", a.data(), b.data(), a.numel());
}

std::optional<std::string> diff_conv_serial_vs_threads(const ConvCase& c) {
  auto run = [&c] {
    nn::Conv2dConfig config = c.config;  // Auto: shape-pure algo choice
    Rng rng(c.weight_seed);
    nn::Conv2d conv(config, rng);
    return conv.forward(c.input, false);
  };
  const nn::Tensor serial = with_thread_count(1, run);
  const nn::Tensor threaded = with_thread_count(kThreadedCount, run);
  return diff_floats("conv output at 1 vs " + std::to_string(kThreadedCount) +
                         " threads",
                     serial.data(), threaded.data(), serial.numel());
}

// ---- SNN layer ------------------------------------------------------------

Gen<SnnLayerCase> snn_layer_case_gen() {
  Gen<SnnLayerCase> gen;
  auto weight = dyadic_in(1.0f, 8);
  auto beta = element_of<float>({1.0f, 0.5f, 0.25f});
  auto threshold = element_of<float>({1.0f, 0.5f, 1.5f});
  gen.sample = [weight, beta, threshold](Rng& rng) {
    SnnLayerCase c;
    c.in = 1 + static_cast<Index>(rng.uniform_int(6));
    c.out = 1 + static_cast<Index>(rng.uniform_int(5));
    c.weights.resize(static_cast<size_t>(c.in * c.out));
    for (auto& w : c.weights) w = weight.sample(rng);
    c.lif.beta = beta.sample(rng);
    c.lif.threshold = threshold.sample(rng);
    c.lif.reset_to_zero = rng.bernoulli(0.5);
    c.input = spike_train_gen(8, c.in, 0.3).sample(rng);
    return c;
  };
  gen.shrink = [](const SnnLayerCase& c) {
    std::vector<SnnLayerCase> out;
    for (auto& fewer : shrink_spike_train(c.input)) {
      SnnLayerCase candidate = c;
      candidate.input = std::move(fewer);
      out.push_back(std::move(candidate));
    }
    // Zero out weights one at a time (shrinks the surviving interaction).
    size_t zeroed = 0;
    for (size_t i = 0; i < c.weights.size() && zeroed < 8; ++i) {
      if (c.weights[i] == 0.0f) continue;
      SnnLayerCase candidate = c;
      candidate.weights[i] = 0.0f;
      out.push_back(std::move(candidate));
      ++zeroed;
    }
    return out;
  };
  gen.show = [](const SnnLayerCase& c) {
    std::ostringstream os;
    os << "snn layer " << c.in << "->" << c.out << " " << show_lif(c.lif)
       << " weights=[";
    for (size_t i = 0; i < c.weights.size() && i < 16; ++i) {
      os << (i ? ", " : "") << c.weights[i];
    }
    os << (c.weights.size() > 16 ? ", ...] " : "] ");
    os << show_spike_train(c.input);
    return os.str();
  };
  return gen;
}

std::optional<std::string> diff_snn_clocked_vs_event_driven(
    const SnnLayerCase& c) {
  nn::Tensor weight({c.out, c.in});
  std::copy(c.weights.begin(), c.weights.end(), weight.data());
  snn::SpikingLayerSpec spec;
  spec.weight = &weight;
  spec.lif = c.lif;
  snn::ExecutionCost clocked_cost, event_cost;
  const snn::SpikeTrain clocked = snn::run_clocked(spec, c.input, clocked_cost);
  const snn::SpikeTrain event =
      snn::run_event_driven(spec, c.input, event_cost);
  if (auto mismatch = diff_trains(clocked, event)) {
    return "clocked vs event-driven: " + *mismatch;
  }
  return diff_scalar("output spike count",
                     static_cast<double>(clocked_cost.output_spikes),
                     static_cast<double>(event_cost.output_spikes));
}

// ---- SNN network ----------------------------------------------------------

Gen<SnnNetCase> snn_net_case_gen() {
  Gen<SnnNetCase> gen;
  gen.sample = [](Rng& rng) {
    SnnNetCase c;
    const Index input = 4 + static_cast<Index>(rng.uniform_int(12));
    const Index hidden = 4 + static_cast<Index>(rng.uniform_int(12));
    const Index output = 2 + static_cast<Index>(rng.uniform_int(4));
    c.layer_sizes = {input, hidden, output};
    c.weight_seed = rng.next_u64();
    c.input = spike_train_gen(10, input, 0.25).sample(rng);
    return c;
  };
  gen.shrink = [](const SnnNetCase& c) {
    std::vector<SnnNetCase> out;
    for (auto& fewer : shrink_spike_train(c.input)) {
      SnnNetCase candidate = c;
      candidate.input = std::move(fewer);
      out.push_back(std::move(candidate));
    }
    return out;
  };
  gen.show = [](const SnnNetCase& c) {
    std::ostringstream os;
    os << "snn net {";
    for (size_t i = 0; i < c.layer_sizes.size(); ++i) {
      os << (i ? "," : "") << c.layer_sizes[i];
    }
    os << "} weight_seed=" << c.weight_seed << ", " << show_spike_train(c.input);
    return os.str();
  };
  return gen;
}

std::optional<std::string> diff_snn_net_serial_vs_threads(const SnnNetCase& c) {
  auto run = [&c] {
    snn::SpikingNetConfig config;
    config.layer_sizes = c.layer_sizes;
    Rng rng(c.weight_seed);
    snn::SpikingNet net(config, rng);
    return net.forward(c.input, false);
  };
  const nn::Tensor serial = with_thread_count(1, run);
  const nn::Tensor threaded = with_thread_count(kThreadedCount, run);
  return diff_floats("snn logits at 1 vs " + std::to_string(kThreadedCount) +
                         " threads",
                     serial.data(), threaded.data(), serial.numel());
}

// ---- GNN ------------------------------------------------------------------

Gen<GraphCase> graph_case_gen() {
  Gen<GraphCase> gen;
  auto radius = element_of<float>({2.0f, 3.0f, 4.0f});
  auto degree = element_of<Index>({4, 8, 12});
  StreamGenConfig stream_config;
  stream_config.max_width = 24;
  stream_config.max_height = 24;
  stream_config.max_events = 200;
  auto stream = event_stream_gen(stream_config);
  gen.sample = [radius, degree, stream](Rng& rng) {
    GraphCase c;
    c.stream = stream.sample(rng);
    c.radius = radius.sample(rng);
    c.max_neighbors = degree.sample(rng);
    return c;
  };
  gen.shrink = [](const GraphCase& c) {
    std::vector<GraphCase> out;
    for (auto& fewer : shrink_stream(c.stream)) {
      GraphCase candidate = c;
      candidate.stream = std::move(fewer);
      out.push_back(std::move(candidate));
    }
    return out;
  };
  gen.show = [](const GraphCase& c) {
    std::ostringstream os;
    os << "graph radius=" << c.radius << " max_neighbors=" << c.max_neighbors
       << ", " << show_stream(c.stream);
    return os.str();
  };
  return gen;
}

namespace {

/// Sorted squared distances from node i to its neighbours — the
/// tie-permutation-invariant signature the two builders must share.
std::vector<float> neighbor_distances(const gnn::EventGraph& graph, Index i) {
  std::vector<float> distances;
  for (const Index j : graph.neighbors(i)) {
    distances.push_back(
        gnn::squared_distance(graph.node(i).position, graph.node(j).position));
  }
  std::sort(distances.begin(), distances.end());
  return distances;
}

std::optional<std::string> diff_graphs_by_distance(
    const gnn::EventGraph& a, const gnn::EventGraph& b, const char* what) {
  if (a.node_count() != b.node_count()) {
    return std::string(what) + ": node count " +
           std::to_string(a.node_count()) + " vs " +
           std::to_string(b.node_count());
  }
  for (Index i = 0; i < a.node_count(); ++i) {
    const auto da = neighbor_distances(a, i);
    const auto db = neighbor_distances(b, i);
    if (da != db) {
      std::ostringstream os;
      os << what << ": node " << i << " neighbour distances {";
      for (const float d : da) os << d << " ";
      os << "} vs {";
      for (const float d : db) os << d << " ";
      os << "}";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> diff_gnn_batch_vs_incremental(const GraphCase& c) {
  gnn::GraphBuildConfig batch_config;
  batch_config.radius = c.radius;
  batch_config.max_neighbors = c.max_neighbors;
  batch_config.max_nodes = std::max<Index>(c.stream.size(), 1);
  gnn::IncrementalConfig inc_config;
  inc_config.radius = c.radius;
  inc_config.max_neighbors = c.max_neighbors;
  inc_config.cell_capacity = 1024;  // ample: no eviction, exact equivalence
  if (c.stream.width <= 0 || c.stream.height <= 0) return std::nullopt;
  const gnn::EventGraph batch = gnn::build_graph(c.stream, batch_config);
  const gnn::EventGraph incremental = gnn::build_graph_incremental(
      c.stream, inc_config, batch_config.max_nodes);
  return diff_graphs_by_distance(batch, incremental, "batch vs incremental");
}

std::optional<std::string> diff_gnn_build_serial_vs_threads(
    const GraphCase& c) {
  gnn::GraphBuildConfig config;
  config.radius = c.radius;
  config.max_neighbors = c.max_neighbors;
  config.max_nodes = std::max<Index>(c.stream.size(), 1);
  auto run = [&] { return gnn::build_graph(c.stream, config); };
  const gnn::EventGraph serial = with_thread_count(1, run);
  const gnn::EventGraph threaded = with_thread_count(kThreadedCount, run);
  // The parallel layer promises bitwise determinism, so compare exactly.
  if (serial.node_count() != threaded.node_count() ||
      serial.edge_count() != threaded.edge_count()) {
    return "graph shape: " + std::to_string(serial.node_count()) + "n/" +
           std::to_string(serial.edge_count()) + "e vs " +
           std::to_string(threaded.node_count()) + "n/" +
           std::to_string(threaded.edge_count()) + "e";
  }
  for (Index i = 0; i < serial.node_count(); ++i) {
    const auto sa = serial.neighbors(i);
    const auto sb = threaded.neighbors(i);
    if (!std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) {
      return "neighbours of node " + std::to_string(i) +
             " differ across thread counts";
    }
  }
  return std::nullopt;
}

// ---- simd: vector tiers vs the scalar reference kernels -------------------

namespace {

/// Run fn with the given SIMD tier active, restoring the previous tier.
template <typename Fn>
auto with_simd_tier(simd::Tier tier, Fn&& fn) {
  simd::ScopedTier scoped(tier);
  return fn();
}

std::string tier_pair_label(const std::string& what) {
  return what + " (scalar vs " + simd::tier_name(simd::detect_best()) + ")";
}

}  // namespace

std::optional<std::string> diff_simd_conv_vs_scalar(const ConvCase& c) {
  auto run = [&c] {
    nn::Conv2dConfig config = c.config;
    config.algo = nn::ConvAlgo::Gemm;  // force the vectorized GEMM path
    Rng rng(c.weight_seed);
    nn::Conv2d conv(config, rng);
    return conv.forward(c.input, false);
  };
  const nn::Tensor scalar = with_simd_tier(simd::Tier::Scalar, run);
  const nn::Tensor vector = with_simd_tier(simd::detect_best(), run);
  // He-normal weights are not dyadic, yet the bound is 0 ULPs: the vector
  // lanes replay the scalar per-pixel accumulation order with unfused
  // mul+add, so the agreement is bitwise, not merely close.
  return diff_floats_ulp(tier_pair_label("conv gemm output"), scalar.data(),
                         vector.data(), scalar.numel(), 0);
}

std::optional<std::string> diff_simd_snn_step_vs_scalar(const SnnNetCase& c) {
  struct StepRun {
    std::vector<nn::Tensor> logits;
    snn::SnnState state;
  };
  auto run = [&c] {
    snn::SpikingNetConfig config;
    config.layer_sizes = c.layer_sizes;
    Rng rng(c.weight_seed);
    snn::SpikingNet net(config, rng);
    StepRun r;
    r.state = net.make_state();
    for (Index t = 0; t < c.input.steps; ++t) {
      r.logits.push_back(
          net.step(r.state, c.input.active[static_cast<size_t>(t)]));
    }
    return r;
  };
  const StepRun scalar = with_simd_tier(simd::Tier::Scalar, run);
  const StepRun vector = with_simd_tier(simd::detect_best(), run);
  for (size_t t = 0; t < scalar.logits.size(); ++t) {
    if (auto d = diff_floats_ulp(
            tier_pair_label("snn step logits at t=" + std::to_string(t)),
            scalar.logits[t].data(), vector.logits[t].data(),
            scalar.logits[t].numel(), 0)) {
      return d;
    }
  }
  for (size_t l = 0; l < scalar.state.membrane.size(); ++l) {
    if (auto d = diff_floats_ulp(
            tier_pair_label("snn membrane layer " + std::to_string(l)),
            scalar.state.membrane[l].data(), vector.state.membrane[l].data(),
            static_cast<Index>(scalar.state.membrane[l].size()), 0)) {
      return d;
    }
  }
  if (auto d = diff_floats_ulp(
          tier_pair_label("snn readout sum"), scalar.state.readout_sum.data(),
          vector.state.readout_sum.data(),
          static_cast<Index>(scalar.state.readout_sum.size()), 0)) {
    return d;
  }
  // Bitwise membranes imply identical threshold crossings; the explicit
  // spike-count check catches a kernel that fires the right membrane but
  // emits the wrong ids.
  return diff_scalar("snn hidden spikes in final step",
                     static_cast<double>(scalar.state.step_hidden_spikes),
                     static_cast<double>(vector.state.step_hidden_spikes));
}

Gen<GnnNodeCase> gnn_node_case_gen() {
  Gen<GnnNodeCase> gen;
  gen.sample = [](Rng& rng) {
    GnnNodeCase c;
    c.in = 1 + static_cast<Index>(rng.uniform_int(12));
    // Spans one-or-more full vector widths plus every tail length.
    c.out = 1 + static_cast<Index>(rng.uniform_int(20));
    c.weight_seed = rng.next_u64();
    c.max_aggregation = rng.bernoulli(0.5);
    c.h_self.resize(static_cast<size_t>(c.in));
    for (auto& x : c.h_self) {
      x = rng.bernoulli(0.2) ? 0.0f
                             : static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    const Index degree = static_cast<Index>(rng.uniform_int(7));  // 0..6
    c.neighbor_features.assign(static_cast<size_t>(degree), {});
    c.offsets.assign(static_cast<size_t>(degree), {});
    for (Index j = 0; j < degree; ++j) {
      auto& feats = c.neighbor_features[static_cast<size_t>(j)];
      feats.resize(static_cast<size_t>(c.in));
      for (auto& x : feats) {
        x = rng.bernoulli(0.2) ? 0.0f
                               : static_cast<float>(rng.uniform(-1.0, 1.0));
      }
      for (auto& o : c.offsets[static_cast<size_t>(j)]) {
        o = static_cast<float>(rng.uniform(-3.0, 3.0));
      }
    }
    return c;
  };
  gen.shrink = [](const GnnNodeCase& c) {
    std::vector<GnnNodeCase> out;
    for (size_t j = 0; j < c.neighbor_features.size(); ++j) {
      GnnNodeCase candidate = c;
      candidate.neighbor_features.erase(candidate.neighbor_features.begin() +
                                        static_cast<std::ptrdiff_t>(j));
      candidate.offsets.erase(candidate.offsets.begin() +
                              static_cast<std::ptrdiff_t>(j));
      out.push_back(std::move(candidate));
    }
    return out;
  };
  gen.show = [](const GnnNodeCase& c) {
    std::ostringstream os;
    os << "gnn node in=" << c.in << " out=" << c.out
       << " agg=" << (c.max_aggregation ? "max" : "mean")
       << " degree=" << c.neighbor_features.size()
       << " weight_seed=" << c.weight_seed;
    return os.str();
  };
  return gen;
}

std::optional<std::string> diff_simd_gnn_accumulate_vs_scalar(
    const GnnNodeCase& c) {
  Rng rng(c.weight_seed);
  gnn::GraphConv conv(c.in, c.out, rng,
                      c.max_aggregation ? gnn::Aggregation::Max
                                        : gnn::Aggregation::Mean);
  std::vector<gnn::GraphConv::NeighborRef> refs(c.neighbor_features.size());
  for (size_t j = 0; j < refs.size(); ++j) {
    refs[j].features = c.neighbor_features[j].data();
    refs[j].dx = c.offsets[j][0];
    refs[j].dy = c.offsets[j][1];
    refs[j].dz = c.offsets[j][2];
  }
  auto run = [&] {
    std::vector<float> out(static_cast<size_t>(c.out));
    conv.apply_node(c.h_self.data(), refs, out.data());
    return out;
  };
  const std::vector<float> scalar = with_simd_tier(simd::Tier::Scalar, run);
  const std::vector<float> vector = with_simd_tier(simd::detect_best(), run);
  // In practice bitwise (distance 0); the 2-ULP bound is the documented
  // slack for a future faithfully-rounded tier.
  return diff_floats_ulp(tier_pair_label("gnn apply_node output"),
                         scalar.data(), vector.data(), c.out, 2);
}

// ---- hw -------------------------------------------------------------------

Gen<HwCase> hw_case_gen() {
  Gen<HwCase> gen;
  auto lanes = element_of<Index>({1, 16, 128, 256});
  auto vec_lanes = element_of<Index>({1, 4, 8, 16});
  auto dims = element_of<Index>({4, 8, 16});
  auto freq = element_of<double>({100.0, 200.0, 800.0});
  auto efficiency = element_of<double>({0.0, 0.5, 0.8, 1.0});
  auto utilization = element_of<double>({0.5, 0.85, 1.0});
  auto reuse = element_of<double>({1.0, 16.0});
  gen.sample = [=](Rng& rng) {
    HwCase c;
    auto count = [&rng] {
      return static_cast<std::int64_t>(rng.uniform_int(1'000'000'000ULL));
    };
    c.workload.mults = count();
    c.workload.adds = count();
    c.workload.comparisons = count();
    // Deliberately allow zero_skippable > macs() to exercise the clamp.
    c.workload.zero_skippable_mults = count();
    c.workload.param_bytes_read = count();
    c.workload.act_bytes_read = count();
    c.workload.act_bytes_written = count();
    c.workload.state_bytes_rw = count();
    c.systolic.rows = dims.sample(rng);
    c.systolic.cols = dims.sample(rng);
    c.systolic.frequency_mhz = freq.sample(rng);
    c.systolic.utilization = utilization.sample(rng);
    c.systolic.reuse_factor = reuse.sample(rng);
    c.systolic.simd_lanes = vec_lanes.sample(rng);
    c.zero_skip.lanes = lanes.sample(rng);
    c.zero_skip.frequency_mhz = freq.sample(rng);
    c.zero_skip.skip_efficiency = efficiency.sample(rng);
    c.zero_skip.irregular_access_penalty = rng.bernoulli(0.5) ? 1.0 : 1.25;
    c.zero_skip.compression_overhead = rng.bernoulli(0.5) ? 0.0 : 0.10;
    c.zero_skip.reuse_factor = reuse.sample(rng);
    c.zero_skip.simd_lanes = vec_lanes.sample(rng);
    return c;
  };
  gen.shrink = [](const HwCase& c) {
    std::vector<HwCase> out;
    auto halve = [&out, &c](std::int64_t nn::OpCounter::* field) {
      if (c.workload.*field == 0) return;
      HwCase candidate = c;
      candidate.workload.*field /= 2;
      out.push_back(std::move(candidate));
    };
    halve(&nn::OpCounter::mults);
    halve(&nn::OpCounter::adds);
    halve(&nn::OpCounter::comparisons);
    halve(&nn::OpCounter::zero_skippable_mults);
    halve(&nn::OpCounter::param_bytes_read);
    halve(&nn::OpCounter::act_bytes_read);
    halve(&nn::OpCounter::act_bytes_written);
    halve(&nn::OpCounter::state_bytes_rw);
    return out;
  };
  gen.show = [](const HwCase& c) {
    std::ostringstream os;
    os << "workload{mults=" << c.workload.mults << " adds=" << c.workload.adds
       << " cmp=" << c.workload.comparisons
       << " zskip=" << c.workload.zero_skippable_mults
       << " pbytes=" << c.workload.param_bytes_read
       << " abytes=" << c.workload.act_bytes_read << "+"
       << c.workload.act_bytes_written
       << " sbytes=" << c.workload.state_bytes_rw << "} systolic{"
       << c.systolic.rows << "x" << c.systolic.cols << " @"
       << c.systolic.frequency_mhz << "MHz util=" << c.systolic.utilization
       << " vlanes=" << c.systolic.simd_lanes
       << "} zskip{lanes=" << c.zero_skip.lanes << " @"
       << c.zero_skip.frequency_mhz
       << "MHz eff=" << c.zero_skip.skip_efficiency
       << " vlanes=" << c.zero_skip.simd_lanes << "}";
    return os.str();
  };
  return gen;
}

std::optional<std::string> diff_systolic_vs_naive(const HwCase& c) {
  const hw::AcceleratorReport report = hw::run_systolic(c.workload, c.systolic);
  // Naive roll-up straight from the documented model: latency = dense MACs
  // over active PEs, energy = every MAC plus word traffic divided by reuse.
  const auto& w = c.workload;
  const auto& cfg = c.systolic;
  const double macs = static_cast<double>(std::min(w.mults, w.adds));
  const double latency =
      macs /
      (static_cast<double>(cfg.rows * cfg.cols * cfg.simd_lanes) *
       cfg.utilization) /
      cfg.frequency_mhz;
  const std::int64_t vector_ops =
      (std::min(w.mults, w.adds) + cfg.simd_lanes - 1) / cfg.simd_lanes;
  const double compute =
      macs * (cfg.table.add_pj + cfg.table.mult_pj) +
      static_cast<double>(w.comparisons) * cfg.table.compare_pj;
  const double memory =
      (static_cast<double>(w.param_bytes_read) +
       static_cast<double>(w.act_bytes_read + w.act_bytes_written)) /
          cfg.reuse_factor * cfg.table.sram_pj_per_byte +
      static_cast<double>(w.state_bytes_rw) * cfg.table.sram_pj_per_byte;
  if (auto d = diff_scalar("systolic effective MACs",
                           static_cast<double>(report.effective_macs), macs)) {
    return d;
  }
  if (auto d =
          diff_scalar("systolic latency", report.latency_us, latency, 1e-12)) {
    return d;
  }
  if (auto d = diff_scalar("systolic vector ops",
                           static_cast<double>(report.vector_ops),
                           static_cast<double>(vector_ops))) {
    return d;
  }
  return diff_scalar("systolic energy", report.energy.total_pj(),
                     compute + memory, 1e-12);
}

std::optional<std::string> diff_zero_skip_vs_naive(const HwCase& c) {
  const hw::AcceleratorReport report =
      hw::run_zero_skip(c.workload, c.zero_skip);
  const auto& w = c.workload;
  const auto& cfg = c.zero_skip;
  const std::int64_t macs = std::min(w.mults, w.adds);
  const std::int64_t skipped = std::min(w.zero_skippable_mults, macs);
  const std::int64_t executed = macs - skipped;
  const double slots = static_cast<double>(executed) +
                       (1.0 - cfg.skip_efficiency) *
                           static_cast<double>(skipped);
  const double latency = slots /
                         static_cast<double>(cfg.lanes * cfg.simd_lanes) /
                         cfg.frequency_mhz;
  const std::int64_t vector_ops =
      (executed + cfg.simd_lanes - 1) / cfg.simd_lanes;
  const double density =
      macs > 0 ? static_cast<double>(executed) / static_cast<double>(macs)
               : 1.0;
  const double compute =
      static_cast<double>(executed) * (cfg.table.add_pj + cfg.table.mult_pj) +
      static_cast<double>(w.comparisons) * cfg.table.compare_pj;
  const double memory =
      static_cast<double>(w.param_bytes_read) / cfg.reuse_factor *
          cfg.table.sram_pj_per_byte +
      static_cast<double>(w.act_bytes_read + w.act_bytes_written) * density *
          (1.0 + cfg.compression_overhead) * cfg.irregular_access_penalty /
          cfg.reuse_factor * cfg.table.sram_pj_per_byte +
      static_cast<double>(w.state_bytes_rw) * cfg.table.sram_pj_per_byte;
  if (auto d = diff_scalar("zero-skip executed + skipped MACs",
                           static_cast<double>(report.effective_macs +
                                               report.skipped_macs),
                           static_cast<double>(macs))) {
    return d;
  }
  if (auto d =
          diff_scalar("zero-skip latency", report.latency_us, latency, 1e-12)) {
    return d;
  }
  if (auto d = diff_scalar("zero-skip vector ops",
                           static_cast<double>(report.vector_ops),
                           static_cast<double>(vector_ops))) {
    return d;
  }
  return diff_scalar("zero-skip energy", report.energy.total_pj(),
                     compute + memory, 1e-12);
}

// ---- runtime: multiplexed vs sequential session serving -------------------

namespace {

constexpr Index kMuxGeometry = 16;

/// Apply one scheduled op directly to a session (the sequential reference).
void apply_op(core::StreamSession& session, const SessionOp& op) {
  if (op.kind == SessionOp::Kind::Feed) {
    session.feed(op.event);
  } else {
    session.advance_to(op.t);
  }
}

/// The shared diff body: `pipeline` opens one session per schedule entry.
/// Sequential reference first (feed each session's ops directly, one session
/// at a time), then the same ops through a SessionManager pumped at
/// kThreadedCount workers with a tiny burst so sessions interleave across
/// many rounds. Decision streams must match exactly — operator== on
/// core::Decision compares label, timestamp and confidence bit-for-bit.
template <typename Pipeline>
std::optional<std::string> diff_multiplex(Pipeline& pipeline,
                                          const MultiSessionSchedule& c) {
  std::vector<std::vector<core::Decision>> reference;
  reference.reserve(c.sessions.size());
  for (const auto& ops : c.sessions) {
    const auto session = pipeline.open_session(c.width, c.height);
    for (const auto& op : ops) apply_op(*session, op);
    reference.push_back(session->decisions());
  }
  return with_thread_count(
      kThreadedCount, [&]() -> std::optional<std::string> {
        runtime::SessionManager manager(/*burst=*/3);
        std::vector<runtime::SessionId> ids;
        ids.reserve(c.sessions.size());
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          ids.push_back(manager.add(pipeline.open_session(c.width, c.height)));
        }
        // Interleave submission round-robin across sessions, pumping midway,
        // so ops arrive while other sessions are already being served.
        size_t cursor = 0;
        bool more = true;
        while (more) {
          more = false;
          for (size_t s = 0; s < c.sessions.size(); ++s) {
            if (cursor >= c.sessions[s].size()) continue;
            more = true;
            const auto& op = c.sessions[s][cursor];
            if (op.kind == SessionOp::Kind::Feed) {
              manager.submit(ids[s], op.event);
            } else {
              manager.submit_advance(ids[s], op.t);
            }
          }
          ++cursor;
          if (cursor % 5 == 0) manager.pump();
        }
        manager.pump_all();
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          const auto& mux = manager.session(ids[s]).decisions();
          const auto& ref = reference[s];
          if (mux.size() != ref.size()) {
            return "session " + std::to_string(s) + ": " +
                   std::to_string(mux.size()) + " decisions multiplexed vs " +
                   std::to_string(ref.size()) + " sequential";
          }
          for (size_t i = 0; i < ref.size(); ++i) {
            if (!(mux[i] == ref[i])) {
              std::ostringstream os;
              os << "session " << s << " decision " << i << ": multiplexed {t="
                 << mux[i].t << ", label=" << mux[i].label
                 << ", conf=" << mux[i].confidence << "} vs sequential {t="
                 << ref[i].t << ", label=" << ref[i].label
                 << ", conf=" << ref[i].confidence << "}";
              return os.str();
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace

Gen<MultiSessionSchedule> multiplex_case_gen() {
  // Degraded-sensor regimes (leak bursts, HDR flicker) are mixed into the
  // shared schedule generator, so every serving-plane oracle downstream of
  // this gen — multiplex, obs, fault, plan, route, shard — is exercised on
  // the pathological streams real DVS hardware produces, not only on
  // uniform noise.
  MultiScheduleGenConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.max_sessions = 4;
  config.max_ops_per_session = 30;
  config.duration_us = 60000;
  config.degraded_fraction = 0.3;
  return multi_schedule_gen(config);
}

std::optional<std::string> diff_cnn_multiplex_vs_sequential(
    const MultiSessionSchedule& c) {
  cnn::CnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.base_filters = 2;
  config.frame_period_us = 10000;  // several frame closes per schedule
  cnn::CnnPipeline pipeline(config);
  return diff_multiplex(pipeline, c);
}

std::optional<std::string> diff_snn_multiplex_vs_sequential(
    const MultiSessionSchedule& c) {
  snn::SnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.hidden = 16;
  config.encoder.spatial_factor = 2;
  config.timestep_us = 5000;
  snn::SnnPipeline pipeline(config);
  return diff_multiplex(pipeline, c);
}

std::optional<std::string> diff_gnn_multiplex_vs_sequential(
    const MultiSessionSchedule& c) {
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  return diff_multiplex(pipeline, c);
}

// ---- obs: observability must not perturb the decision stream --------------

namespace {

/// Serve schedule `c` through a SessionManager (GNN sessions — decisions on
/// every surviving event, the densest stream of the three paradigms) and
/// return each session's decisions, with observability forced to `obs_on`.
std::vector<std::vector<core::Decision>> serve_with_obs(
    gnn::GnnPipeline& pipeline, const MultiSessionSchedule& c, bool obs_on) {
  struct RestoreObs {
    bool previous;
    ~RestoreObs() { obs::set_enabled(previous); }
  } restore{obs::enabled()};
  obs::set_enabled(obs_on);
  return with_thread_count(kThreadedCount, [&] {
    runtime::SessionManager manager(/*burst=*/3);
    std::vector<runtime::SessionId> ids;
    ids.reserve(c.sessions.size());
    for (size_t s = 0; s < c.sessions.size(); ++s) {
      ids.push_back(manager.add(pipeline.open_session(c.width, c.height)));
    }
    size_t cursor = 0;
    bool more = true;
    while (more) {
      more = false;
      for (size_t s = 0; s < c.sessions.size(); ++s) {
        if (cursor >= c.sessions[s].size()) continue;
        more = true;
        const auto& op = c.sessions[s][cursor];
        if (op.kind == SessionOp::Kind::Feed) {
          manager.submit(ids[s], op.event);
        } else {
          manager.submit_advance(ids[s], op.t);
        }
      }
      ++cursor;
      if (cursor % 5 == 0) manager.pump();
    }
    manager.pump_all();
    std::vector<std::vector<core::Decision>> streams;
    streams.reserve(ids.size());
    for (const auto id : ids) {
      streams.push_back(manager.session(id).decisions());
    }
    return streams;
  });
}

}  // namespace

std::optional<std::string> diff_obs_on_vs_off(const MultiSessionSchedule& c) {
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  const auto on = serve_with_obs(pipeline, c, /*obs_on=*/true);
  const auto off = serve_with_obs(pipeline, c, /*obs_on=*/false);
  for (size_t s = 0; s < on.size(); ++s) {
    if (on[s].size() != off[s].size()) {
      return "session " + std::to_string(s) + ": " +
             std::to_string(on[s].size()) + " decisions with obs on vs " +
             std::to_string(off[s].size()) + " with obs off";
    }
    for (size_t i = 0; i < on[s].size(); ++i) {
      if (!(on[s][i] == off[s][i])) {
        std::ostringstream os;
        os << "session " << s << " decision " << i << ": obs-on {t="
           << on[s][i].t << ", label=" << on[s][i].label
           << ", conf=" << on[s][i].confidence << "} vs obs-off {t="
           << off[s][i].t << ", label=" << off[s][i].label
           << ", conf=" << off[s][i].confidence << "}";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

// ---- fault tolerance: isolation and checkpoint/restore --------------------

namespace {

gnn::GnnPipelineConfig fault_oracle_pipeline_config() {
  // Same tiny GNN the obs oracle serves: a decision on every surviving
  // event, so any perturbation of a healthy session shows immediately.
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  return config;
}

/// Serve `sessions` op lists through a manager at kThreadedCount workers
/// (round-robin submit, pump every 5th cursor — the multiplex shape) and
/// return each session's decision stream. `config` applies to every session.
/// Pass `storage` (a fresh manager) to inspect fault state after the run.
std::vector<std::vector<core::Decision>> serve_sessions(
    gnn::GnnPipeline& pipeline, Index width, Index height,
    const std::vector<std::vector<SessionOp>>& sessions,
    const runtime::ManagedSessionConfig& config,
    runtime::SessionManager* storage = nullptr) {
  return with_thread_count(kThreadedCount, [&] {
    std::optional<runtime::SessionManager> local;
    if (storage == nullptr) local.emplace(/*burst=*/3);
    runtime::SessionManager& manager = storage != nullptr ? *storage : *local;
    std::vector<runtime::SessionId> ids;
    ids.reserve(sessions.size());
    for (size_t s = 0; s < sessions.size(); ++s) {
      ids.push_back(manager.add(pipeline.open_session(width, height), config));
    }
    size_t cursor = 0;
    bool more = true;
    while (more) {
      more = false;
      for (size_t s = 0; s < sessions.size(); ++s) {
        if (cursor >= sessions[s].size()) continue;
        more = true;
        const auto& op = sessions[s][cursor];
        if (op.kind == SessionOp::Kind::Feed) {
          manager.submit(ids[s], op.event);
        } else {
          manager.submit_advance(ids[s], op.t);
        }
      }
      ++cursor;
      if (cursor % 5 == 0) manager.pump();
    }
    manager.pump_all();
    std::vector<std::vector<core::Decision>> streams;
    streams.reserve(ids.size());
    for (const auto id : ids) {
      streams.push_back(manager.session(id).decisions());
    }
    return streams;
  });
}

std::optional<std::string> diff_decision_streams(
    const std::vector<std::vector<core::Decision>>& got,
    const std::vector<std::vector<core::Decision>>& want, size_t count,
    const char* got_name, const char* want_name) {
  for (size_t s = 0; s < count; ++s) {
    if (got[s].size() != want[s].size()) {
      return "session " + std::to_string(s) + ": " +
             std::to_string(got[s].size()) + " decisions " + got_name +
             " vs " + std::to_string(want[s].size()) + " " + want_name;
    }
    for (size_t i = 0; i < got[s].size(); ++i) {
      if (!(got[s][i] == want[s][i])) {
        std::ostringstream os;
        os << "session " << s << " decision " << i << ": " << got_name
           << " {t=" << got[s][i].t << ", label=" << got[s][i].label
           << ", conf=" << got[s][i].confidence << "} vs " << want_name
           << " {t=" << want[s][i].t << ", label=" << want[s][i].label
           << ", conf=" << want[s][i].confidence << "}";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> diff_fault_isolation(const MultiSessionSchedule& c) {
  gnn::GnnPipeline pipeline(fault_oracle_pipeline_config());
  const runtime::ManagedSessionConfig config;  // no checkpoint: fault -> quarantine

  // Clean run: the schedule as generated, no injection.
  const auto clean =
      serve_sessions(pipeline, c.width, c.height, c.sessions, config);

  // Faulted run: append a saboteur session fed a copy of session 0's ops,
  // with a one-shot injected op fault targeted at it. No checkpoint is
  // configured, so the saboteur quarantines; the healthy sessions must not
  // move by a single bit.
  auto with_saboteur = c.sessions;
  const auto saboteur = static_cast<std::int64_t>(with_saboteur.size());
  with_saboteur.push_back(c.sessions.front());
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::SessionThrow;
  plan.target = saboteur;
  plan.after = 2;
  plan.max_fires = 1;
  std::vector<std::vector<core::Decision>> faulted;
  std::int64_t fires = 0;
  runtime::SessionManager manager(/*burst=*/3);
  {
    fault::ScopedInjection injection("runtime.pump.op_fault", plan);
    faulted = serve_sessions(pipeline, c.width, c.height, with_saboteur,
                             config, &manager);
    fires = fault::Injector::instance().fires("runtime.pump.op_fault");
  }
  if (fires > 0) {
    if (manager.state(saboteur) != runtime::SessionState::Faulted) {
      return "saboteur session took an injected fault but is not Faulted";
    }
    if (manager.fault_message(saboteur).empty()) {
      return "quarantined saboteur has an empty fault_message";
    }
    if (manager.stats().faults.quarantined_sessions != 1) {
      return "expected exactly 1 quarantined session, got " +
             std::to_string(manager.stats().faults.quarantined_sessions);
    }
  }
  return diff_decision_streams(faulted, clean, c.sessions.size(),
                               "with faulted neighbor", "clean");
}

std::optional<std::string> diff_checkpoint_replay(
    const MultiSessionSchedule& c) {
  gnn::GnnPipeline pipeline(fault_oracle_pipeline_config());

  // Never-faulted reference: each session's ops fed directly, sequentially.
  std::vector<std::vector<core::Decision>> reference;
  reference.reserve(c.sessions.size());
  for (const auto& ops : c.sessions) {
    const auto session = pipeline.open_session(c.width, c.height);
    for (const auto& op : ops) apply_op(*session, op);
    reference.push_back(session->decisions());
  }

  // Served run: periodic checkpoints, restore-on-fault, and a one-shot
  // injected fault on session 0 mid-stream. The restore must land exactly
  // where the fault struck: checkpoint load + replay + retry, bitwise.
  runtime::ManagedSessionConfig config;
  config.checkpoint_every = 4;
  config.restore_on_fault = true;
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::SessionThrow;
  plan.target = 0;
  plan.after = 5;
  plan.max_fires = 1;
  std::vector<std::vector<core::Decision>> served;
  std::int64_t fires = 0;
  runtime::SessionManager manager(/*burst=*/3);
  {
    fault::ScopedInjection injection("runtime.pump.op_fault", plan);
    served = serve_sessions(pipeline, c.width, c.height, c.sessions, config,
                            &manager);
    fires = fault::Injector::instance().fires("runtime.pump.op_fault");
  }
  if (fires > 0) {
    if (manager.state(0) != runtime::SessionState::Active) {
      return "faulted session did not recover: " + manager.fault_message(0);
    }
    if (manager.stats().faults.restores < 1) {
      return "fault fired but no restore was counted";
    }
  }
  return diff_decision_streams(served, reference, c.sessions.size(),
                               "restored", "sequential reference");
}

// ---- sched: plan-driven pump vs sequential reference ----------------------

namespace {

/// Sequential reference, then the same ops served under an annealer-chosen
/// plan. The plan is derived deterministically from the schedule (seeded by
/// its total op count), so every generated case exercises a different plan
/// and a shrunk schedule carries a correspondingly shrunk witness plan.
template <typename Pipeline>
std::optional<std::string> diff_planned(Pipeline& pipeline,
                                        const std::string& paradigm,
                                        const MultiSessionSchedule& c) {
  std::vector<std::vector<core::Decision>> reference;
  reference.reserve(c.sessions.size());
  std::uint64_t schedule_seed = 0x9E3779B97F4A7C15ULL;
  for (const auto& ops : c.sessions) {
    const auto session = pipeline.open_session(c.width, c.height);
    for (const auto& op : ops) apply_op(*session, op);
    reference.push_back(session->decisions());
    schedule_seed = schedule_seed * 0x100000001B3ULL + ops.size();
  }
  return with_thread_count(
      kThreadedCount, [&]() -> std::optional<std::string> {
        struct RestoreSched {
          bool previous;
          ~RestoreSched() { sched::set_enabled(previous); }
        } restore{sched::enabled()};
        sched::set_enabled(true);
        runtime::SessionManager manager(/*burst=*/3);
        std::vector<runtime::SessionId> ids;
        ids.reserve(c.sessions.size());
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          ids.push_back(manager.add(pipeline.open_session(c.width, c.height)));
        }
        // Anneal a plan for this population: fused stages, re-drawn bursts,
        // re-partitioned regions — whatever the search likes for this seed.
        std::vector<sched::SessionProfile> profiles(
            c.sessions.size(), sched::profile_for(pipeline, paradigm, 16));
        sched::AnnealerConfig search;
        search.seed = schedule_seed;
        search.iterations = 120;
        search.region_count = 2;
        search.burst_cap = 4;
        const sched::AnnealResult annealed =
            sched::anneal_plan(profiles, sched::CostModels{}, search);
        manager.set_plan(annealed.plan);
        size_t cursor = 0;
        bool more = true;
        while (more) {
          more = false;
          for (size_t s = 0; s < c.sessions.size(); ++s) {
            if (cursor >= c.sessions[s].size()) continue;
            more = true;
            const auto& op = c.sessions[s][cursor];
            if (op.kind == SessionOp::Kind::Feed) {
              manager.submit(ids[s], op.event);
            } else {
              manager.submit_advance(ids[s], op.t);
            }
          }
          ++cursor;
          if (cursor % 5 == 0) manager.pump();
        }
        manager.pump_all();
        std::vector<std::vector<core::Decision>> planned;
        planned.reserve(ids.size());
        for (const auto id : ids) {
          planned.push_back(manager.session(id).decisions());
        }
        if (auto d = diff_decision_streams(planned, reference,
                                           c.sessions.size(), "planned",
                                           "sequential reference")) {
          return "under plan " + manager.plan().describe() + "\n" + *d;
        }
        return std::nullopt;
      });
}

}  // namespace

std::optional<std::string> diff_cnn_plan_vs_sequential(
    const MultiSessionSchedule& c) {
  cnn::CnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.base_filters = 2;
  config.frame_period_us = 10000;
  cnn::CnnPipeline pipeline(config);
  return diff_planned(pipeline, "cnn", c);
}

std::optional<std::string> diff_snn_plan_vs_sequential(
    const MultiSessionSchedule& c) {
  snn::SnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.hidden = 16;
  config.encoder.spatial_factor = 2;
  config.timestep_us = 5000;
  snn::SnnPipeline pipeline(config);
  return diff_planned(pipeline, "snn", c);
}

std::optional<std::string> diff_gnn_plan_vs_sequential(
    const MultiSessionSchedule& c) {
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  return diff_planned(pipeline, "gnn", c);
}

// ---- route: forced execution paths vs the default path --------------------

namespace {

/// Default-path sequential reference, then the same ops through sessions
/// pinned to `forced` (route::PathId) and served on 4 workers. This is the
/// per-placement equivalence proof behind PathRegistry::mark_proved: a
/// plan may re-route a paradigm's hot stage onto this variant only because
/// this oracle holds the decision streams bitwise identical (ULP 0).
template <typename Pipeline>
std::optional<std::string> diff_route(Pipeline& pipeline, route::PathId forced,
                                      const MultiSessionSchedule& c) {
  std::vector<std::vector<core::Decision>> reference;
  reference.reserve(c.sessions.size());
  for (const auto& ops : c.sessions) {
    const auto session = pipeline.open_session(c.width, c.height);
    for (const auto& op : ops) apply_op(*session, op);
    reference.push_back(session->decisions());
  }
  return with_thread_count(
      kThreadedCount, [&]() -> std::optional<std::string> {
        struct RestoreRoute {
          bool previous;
          ~RestoreRoute() { route::set_enabled(previous); }
        } restore{route::enabled()};
        route::set_enabled(true);
        runtime::SessionManager manager(/*burst=*/3);
        std::vector<runtime::SessionId> ids;
        ids.reserve(c.sessions.size());
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          auto session = pipeline.open_session(c.width, c.height);
          if (!session->set_execution_path(forced)) {
            return std::string("session declined execution path ") +
                   route::path_name(forced);
          }
          ids.push_back(manager.add(std::move(session)));
        }
        size_t cursor = 0;
        bool more = true;
        while (more) {
          more = false;
          for (size_t s = 0; s < c.sessions.size(); ++s) {
            if (cursor >= c.sessions[s].size()) continue;
            more = true;
            const auto& op = c.sessions[s][cursor];
            if (op.kind == SessionOp::Kind::Feed) {
              manager.submit(ids[s], op.event);
            } else {
              manager.submit_advance(ids[s], op.t);
            }
          }
          ++cursor;
          if (cursor % 5 == 0) manager.pump();
        }
        manager.pump_all();
        std::vector<std::vector<core::Decision>> routed;
        routed.reserve(ids.size());
        for (const auto id : ids) {
          routed.push_back(manager.session(id).decisions());
        }
        return diff_decision_streams(routed, reference, c.sessions.size(),
                                     route::path_name(forced),
                                     "default path");
      });
}

}  // namespace

std::optional<std::string> diff_route_cnn_sparse_vs_dense(
    const MultiSessionSchedule& c) {
  cnn::CnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.base_filters = 2;
  config.frame_period_us = 10000;
  cnn::CnnPipeline pipeline(config);
  return diff_route(pipeline, route::PathId::CnnSparse, c);
}

std::optional<std::string> diff_route_snn_clocked_vs_event(
    const MultiSessionSchedule& c) {
  snn::SnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.hidden = 16;
  config.encoder.spatial_factor = 2;
  config.timestep_us = 5000;
  snn::SnnPipeline pipeline(config);
  return diff_route(pipeline, route::PathId::SnnEventDriven, c);
}

std::optional<std::string> diff_route_gnn_batch_vs_incremental(
    const MultiSessionSchedule& c) {
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  return diff_route(pipeline, route::PathId::GnnBatch, c);
}

// ---- shard: sharded serving vs the sequential reference -------------------

namespace {

/// The shard analogue of diff_multiplex: the same sequential reference,
/// then the same ops served through a ShardManager — 3 shard groups, each a
/// private SessionManager behind its lock-free ingress ring — pumped at
/// kThreadedCount workers with a tiny per-shard burst so sessions interleave
/// across many rounds and shards drain concurrently. Replay transparency
/// demands the partitioning never shows in the decision streams.
///
/// With `migrate_midway`, every session is additionally checkpoint-migrated
/// to the next shard around the ring at its schedule midpoint and once more
/// before the final drain — decisions recorded before the move, across it
/// and after it must still match the never-migrated reference exactly.
template <typename Pipeline>
std::optional<std::string> diff_sharded(Pipeline& pipeline,
                                        const MultiSessionSchedule& c,
                                        bool migrate_midway) {
  std::vector<std::vector<core::Decision>> reference;
  reference.reserve(c.sessions.size());
  for (const auto& ops : c.sessions) {
    const auto session = pipeline.open_session(c.width, c.height);
    for (const auto& op : ops) apply_op(*session, op);
    reference.push_back(session->decisions());
  }
  return with_thread_count(
      kThreadedCount, [&]() -> std::optional<std::string> {
        shard::ShardManagerConfig cfg;
        cfg.shards = 3;
        cfg.burst = 3;
        shard::ShardManager manager(cfg);
        std::vector<shard::ShardManager::SessionId> ids;
        ids.reserve(c.sessions.size());
        size_t longest = 0;
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          ids.push_back(manager.add(
              [&] { return pipeline.open_session(c.width, c.height); }));
          longest = std::max(longest, c.sessions[s].size());
        }
        const auto rotate_all = [&] {
          for (const auto id : ids) {
            manager.migrate(
                id, (manager.shard_of(id) + 1) % manager.shard_count());
          }
        };
        // Round-robin submission with mid-stream pumps, as in the multiplex
        // oracle. A full ingress ring pumps and retries: the oracle asserts
        // equality of complete streams, so shedding here would be noise.
        size_t cursor = 0;
        bool more = true;
        while (more) {
          more = false;
          for (size_t s = 0; s < c.sessions.size(); ++s) {
            if (cursor >= c.sessions[s].size()) continue;
            more = true;
            const auto& op = c.sessions[s][cursor];
            if (op.kind == SessionOp::Kind::Feed) {
              while (!manager.submit(ids[s], op.event)) manager.pump();
            } else {
              while (!manager.submit_advance(ids[s], op.t)) manager.pump();
            }
          }
          ++cursor;
          if (cursor % 5 == 0) manager.pump();
          if (migrate_midway && cursor == (longest + 1) / 2) rotate_all();
        }
        if (migrate_midway) rotate_all();
        manager.pump_all();
        for (size_t s = 0; s < c.sessions.size(); ++s) {
          const auto& got = manager.session(ids[s]).decisions();
          const auto& ref = reference[s];
          if (got.size() != ref.size()) {
            return "session " + std::to_string(s) + ": " +
                   std::to_string(got.size()) + " decisions sharded vs " +
                   std::to_string(ref.size()) + " sequential";
          }
          for (size_t i = 0; i < ref.size(); ++i) {
            if (!(got[i] == ref[i])) {
              std::ostringstream os;
              os << "session " << s << " decision " << i << ": sharded {t="
                 << got[i].t << ", label=" << got[i].label
                 << ", conf=" << got[i].confidence << "} vs sequential {t="
                 << ref[i].t << ", label=" << ref[i].label
                 << ", conf=" << ref[i].confidence << "}";
              return os.str();
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace

std::optional<std::string> diff_cnn_sharded_vs_sequential(
    const MultiSessionSchedule& c) {
  cnn::CnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.base_filters = 2;
  config.frame_period_us = 10000;
  cnn::CnnPipeline pipeline(config);
  return diff_sharded(pipeline, c, /*migrate_midway=*/false);
}

std::optional<std::string> diff_snn_sharded_vs_sequential(
    const MultiSessionSchedule& c) {
  snn::SnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.hidden = 16;
  config.encoder.spatial_factor = 2;
  config.timestep_us = 5000;
  snn::SnnPipeline pipeline(config);
  return diff_sharded(pipeline, c, /*migrate_midway=*/false);
}

std::optional<std::string> diff_gnn_sharded_vs_sequential(
    const MultiSessionSchedule& c) {
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  return diff_sharded(pipeline, c, /*migrate_midway=*/false);
}

std::optional<std::string> diff_shard_migration_replay(
    const MultiSessionSchedule& c) {
  // GNN sessions: a decision on every surviving event, the densest stream
  // of the three paradigms — the strictest witness for migration replay.
  gnn::GnnPipelineConfig config;
  config.width = kMuxGeometry;
  config.height = kMuxGeometry;
  config.num_classes = 2;
  config.model.hidden = 8;
  config.model.layers = 2;
  config.stream_stride = 2;
  gnn::GnnPipeline pipeline(config);
  return diff_sharded(pipeline, c, /*migrate_midway=*/true);
}

// ---- registration ---------------------------------------------------------

void register_builtin_oracles() {
  static const bool registered = [] {
    registry().add(make_diff_oracle<ConvCase>(
        "conv2d.direct_vs_gemm",
        "Conv2d reference loop nest vs im2col + cache-blocked GEMM (exact)",
        conv_case_gen(), diff_conv_direct_vs_gemm));
    registry().add(make_diff_oracle<SnnLayerCase>(
        "snn.clocked_vs_event_driven",
        "Clocked per-step LIF layer vs lazy event-driven execution (exact "
        "spike trains on dyadic constants)",
        snn_layer_case_gen(), diff_snn_clocked_vs_event_driven));
    registry().add(make_diff_oracle<GraphCase>(
        "gnn.batch_vs_incremental",
        "k-d tree batch graph build vs O(1) grid-hash incremental build "
        "(degree + neighbour distance multisets)",
        graph_case_gen(), diff_gnn_batch_vs_incremental));
    registry().add(make_diff_oracle<ConvCase>(
        "par.cnn_conv_1_vs_4_threads",
        "CNN conv hot path is bitwise identical at any EVD_THREADS",
        conv_case_gen(), diff_conv_serial_vs_threads));
    registry().add(make_diff_oracle<SnnNetCase>(
        "par.snn_forward_1_vs_4_threads",
        "SpikingNet forward logits are bitwise identical at any EVD_THREADS",
        snn_net_case_gen(), diff_snn_net_serial_vs_threads));
    registry().add(make_diff_oracle<GraphCase>(
        "par.gnn_build_1_vs_4_threads",
        "Batch graph construction is bitwise identical at any EVD_THREADS",
        graph_case_gen(), diff_gnn_build_serial_vs_threads));
    registry().add(make_diff_oracle<ConvCase>(
        "simd.conv_vs_scalar",
        "Vectorized GEMM microkernel vs the scalar reference kernel "
        "(bitwise — 0 ULPs — under any EVD_SIMD tier)",
        conv_case_gen(), diff_simd_conv_vs_scalar));
    registry().add(make_diff_oracle<SnnNetCase>(
        "simd.snn_step_vs_scalar",
        "Vectorized LIF membrane update + compressed spike emit vs scalar: "
        "bitwise per-step logits, membranes and spike counts",
        snn_net_case_gen(), diff_simd_snn_step_vs_scalar));
    registry().add(make_diff_oracle<GnnNodeCase>(
        "simd.gnn_accumulate_vs_scalar",
        "Gathered neighbor-accumulate (apply_node) vs scalar within 2 ULPs "
        "(bitwise in practice)",
        gnn_node_case_gen(), diff_simd_gnn_accumulate_vs_scalar));
    registry().add(make_diff_oracle<HwCase>(
        "hw.systolic_vs_naive",
        "Systolic-array model vs naive roll-up of the same counters",
        hw_case_gen(), diff_systolic_vs_naive));
    registry().add(make_diff_oracle<HwCase>(
        "hw.zero_skip_vs_naive",
        "Zero-skipping model vs naive roll-up (incl. skippable > MACs clamp)",
        hw_case_gen(), diff_zero_skip_vs_naive));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.multiplex_vs_sequential.cnn",
        "CNN sessions multiplexed on 4 workers emit the exact decision "
        "stream of sequential feeding",
        multiplex_case_gen(), diff_cnn_multiplex_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.multiplex_vs_sequential.snn",
        "SNN sessions multiplexed on 4 workers emit the exact decision "
        "stream of sequential feeding",
        multiplex_case_gen(), diff_snn_multiplex_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.multiplex_vs_sequential.gnn",
        "GNN sessions multiplexed on 4 workers emit the exact decision "
        "stream of sequential feeding",
        multiplex_case_gen(), diff_gnn_multiplex_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.obs_on_vs_off",
        "Observability (spans, counters, latency histograms) never perturbs "
        "the served decision streams — bitwise identical on vs off",
        multiplex_case_gen(), diff_obs_on_vs_off));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.fault_isolation",
        "Healthy sessions' decision streams are bitwise identical with and "
        "without a quarantined (injected-fault) neighbor",
        multiplex_case_gen(), diff_fault_isolation));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "runtime.checkpoint_replay",
        "A session that faults, restores from its checkpoint and replays "
        "emits the exact decision stream of a never-faulted run",
        multiplex_case_gen(), diff_checkpoint_replay));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "sched.plan_vs_sequential.cnn",
        "CNN sessions pumped under an annealer-chosen execution plan emit "
        "the exact decision stream of sequential feeding",
        multiplex_case_gen(), diff_cnn_plan_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "sched.plan_vs_sequential.snn",
        "SNN sessions pumped under an annealer-chosen execution plan emit "
        "the exact decision stream of sequential feeding",
        multiplex_case_gen(), diff_snn_plan_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "sched.plan_vs_sequential.gnn",
        "GNN sessions pumped under an annealer-chosen execution plan emit "
        "the exact decision stream of sequential feeding",
        multiplex_case_gen(), diff_gnn_plan_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "route.cnn_sparse_vs_dense",
        "CNN sessions routed onto the zero-skipping sparse conv path emit "
        "the exact decision stream of the default path",
        multiplex_case_gen(), diff_route_cnn_sparse_vs_dense));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "route.snn_clocked_vs_event",
        "SNN sessions routed onto event-driven stepping emit the exact "
        "decision stream of the default clocked path",
        multiplex_case_gen(), diff_route_snn_clocked_vs_event));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "route.gnn_batch_vs_incremental",
        "GNN sessions routed onto the full-sweep batch message pass emit "
        "the exact decision stream of the default incremental path",
        multiplex_case_gen(), diff_route_gnn_batch_vs_incremental));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "shard.sharded_vs_sequential.cnn",
        "CNN sessions spread over 3 shards (private managers behind "
        "lock-free ingress rings) pumped on 4 workers emit the exact "
        "decision stream of sequential feeding",
        multiplex_case_gen(), diff_cnn_sharded_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "shard.sharded_vs_sequential.snn",
        "SNN sessions spread over 3 shards pumped on 4 workers emit the "
        "exact decision stream of sequential feeding",
        multiplex_case_gen(), diff_snn_sharded_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "shard.sharded_vs_sequential.gnn",
        "GNN sessions spread over 3 shards pumped on 4 workers emit the "
        "exact decision stream of sequential feeding",
        multiplex_case_gen(), diff_gnn_sharded_vs_sequential));
    registry().add(make_diff_oracle<MultiSessionSchedule>(
        "shard.migration_replay",
        "Sessions checkpoint-migrated between shards mid-stream emit the "
        "exact decision stream of a never-migrated run",
        multiplex_case_gen(), diff_shard_migration_replay));
    // Registering the route.* oracles is what entitles the planner to
    // choose these variants: the suite runs them in CI, so the proved
    // marks below are never ahead of an actual equivalence proof.
    route::PathRegistry::instance().mark_proved(route::PathId::CnnSparse);
    route::PathRegistry::instance().mark_proved(route::PathId::SnnEventDriven);
    route::PathRegistry::instance().mark_proved(route::PathId::GnnBatch);
    return true;
  }();
  (void)registered;
}

}  // namespace evd::check
