// Seeded value generators with shrinking — the input half of evd::check.
//
// A Gen<T> bundles three functions:
//   * sample(rng)  — draw a value from the generator's distribution;
//   * shrink(v)    — propose strictly "smaller" candidate values (fewer
//                    events, fewer non-zeros, shorter trains ...). The
//                    forall driver greedily walks these until no candidate
//                    still fails the property, so the reported
//                    counterexample is locally minimal;
//   * show(v)      — render the value for failure reports.
//
// Generators are deterministic: the same Rng seed yields the same value, so
// every failure is reproducible from the (base seed, case index) pair that
// forall prints. Domain generators for tensors, event streams, spike trains,
// graphs and StreamSession schedules live in generators.hpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace evd::check {

template <typename T>
struct Gen {
  std::function<T(Rng&)> sample;
  /// Candidates strictly smaller than `v`, most aggressive first. Empty =>
  /// `v` is minimal. The default shrinks nothing.
  std::function<std::vector<T>(const T&)> shrink = [](const T&) {
    return std::vector<T>{};
  };
  std::function<std::string(const T&)> show = [](const T&) {
    return std::string("<value>");
  };
};

/// Uniform Index in [lo, hi] (inclusive); shrinks toward lo by halving the
/// distance, so the minimal failing value is found in O(log range) steps.
inline Gen<Index> index_in(Index lo, Index hi) {
  Gen<Index> gen;
  gen.sample = [lo, hi](Rng& rng) {
    return lo + static_cast<Index>(
                    rng.uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  };
  gen.shrink = [lo](const Index& v) {
    std::vector<Index> out;
    if (v <= lo) return out;
    out.push_back(lo);
    const Index mid = lo + (v - lo) / 2;
    if (mid != lo && mid != v) out.push_back(mid);
    if (v - 1 != lo && v - 1 != mid) out.push_back(v - 1);
    return out;
  };
  gen.show = [](const Index& v) { return std::to_string(v); };
  return gen;
}

/// Uniform double in [lo, hi); shrinks toward 0 (or lo when 0 is outside).
inline Gen<double> real_in(double lo, double hi) {
  Gen<double> gen;
  gen.sample = [lo, hi](Rng& rng) { return rng.uniform(lo, hi); };
  gen.shrink = [lo, hi](const double& v) {
    std::vector<double> out;
    const double target = (lo <= 0.0 && 0.0 < hi) ? 0.0 : lo;
    if (v == target) return out;
    out.push_back(target);
    const double mid = target + (v - target) / 2.0;
    if (mid != target && mid != v) out.push_back(mid);
    return out;
  };
  gen.show = [](const double& v) { return std::to_string(v); };
  return gen;
}

/// One of a fixed set of values; shrinks to earlier elements (order your
/// candidates simplest-first).
template <typename T>
inline Gen<T> element_of(std::vector<T> values) {
  Gen<T> gen;
  auto shared = std::make_shared<std::vector<T>>(std::move(values));
  gen.sample = [shared](Rng& rng) {
    return (*shared)[static_cast<size_t>(rng.uniform_int(shared->size()))];
  };
  gen.shrink = [shared](const T& v) {
    std::vector<T> out;
    for (const T& candidate : *shared) {
      if (candidate == v) break;
      out.push_back(candidate);
    }
    return out;
  };
  return gen;
}

/// Dyadic float: numerator/denominator with |value| <= bound and denominator
/// a power of two. Sums/differences of a few such values are exact in float,
/// which lets differential oracles demand bitwise equality without fp noise.
inline Gen<float> dyadic_in(float bound, Index denominator) {
  Gen<float> gen;
  gen.sample = [bound, denominator](Rng& rng) {
    const Index steps = static_cast<Index>(bound * static_cast<float>(denominator));
    const Index numerator =
        static_cast<Index>(rng.uniform_int(
            static_cast<std::uint64_t>(2 * steps + 1))) -
        steps;
    return static_cast<float>(numerator) / static_cast<float>(denominator);
  };
  gen.shrink = [denominator](const float& v) {
    std::vector<float> out;
    if (v == 0.0f) return out;
    out.push_back(0.0f);
    const float half = v / 2.0f;  // still dyadic
    if (half != 0.0f && half != v) out.push_back(half);
    return out;
  };
  gen.show = [](const float& v) { return std::to_string(v); };
  return gen;
}

}  // namespace evd::check
