#include "check/generators.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace evd::check {
namespace {

/// Shrink a vector by structural deletion: first half, second half, then
/// (for small vectors) each single element. Order within survivors is kept.
template <typename T>
std::vector<std::vector<T>> drop_candidates(const std::vector<T>& v) {
  std::vector<std::vector<T>> out;
  const size_t n = v.size();
  if (n == 0) return out;
  if (n > 1) {
    out.emplace_back(v.begin() + static_cast<std::ptrdiff_t>(n / 2), v.end());
    out.emplace_back(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n / 2));
  }
  if (n <= 16) {
    for (size_t i = 0; i < n; ++i) {
      std::vector<T> smaller;
      smaller.reserve(n - 1);
      for (size_t j = 0; j < n; ++j) {
        if (j != i) smaller.push_back(v[j]);
      }
      out.push_back(std::move(smaller));
    }
  } else {
    out.emplace_back(v.begin(), v.end() - 1);
  }
  return out;
}

std::string show_event(const events::Event& e) {
  std::ostringstream os;
  os << "(" << e.x << "," << e.y << "," << (e.polarity == Polarity::On ? "+" : "-")
     << ",t=" << e.t << ")";
  return os.str();
}

}  // namespace

std::vector<events::EventStream> shrink_stream(const events::EventStream& s) {
  std::vector<events::EventStream> out;
  for (auto& fewer : drop_candidates(s.events)) {
    events::EventStream candidate;
    candidate.width = s.width;
    candidate.height = s.height;
    candidate.events = std::move(fewer);  // deletion preserves sortedness
    out.push_back(std::move(candidate));
  }
  return out;
}

std::string show_stream(const events::EventStream& stream) {
  std::ostringstream os;
  os << stream.width << "x" << stream.height << " stream, " << stream.size()
     << " events";
  const Index preview = std::min<Index>(stream.size(), 12);
  if (preview > 0) os << ":";
  for (Index i = 0; i < preview; ++i) {
    os << " " << show_event(stream.events[static_cast<size_t>(i)]);
  }
  if (preview < stream.size()) os << " ...";
  return os.str();
}

std::vector<nn::Tensor> shrink_tensor(const nn::Tensor& t) {
  std::vector<nn::Tensor> out;
  std::vector<Index> nonzero;
  for (Index i = 0; i < t.numel(); ++i) {
    if (t[i] != 0.0f) nonzero.push_back(i);
  }
  if (nonzero.empty()) return out;
  if (nonzero.size() > 1) {  // zero out half the non-zeros at once
    nn::Tensor half = t;
    for (size_t j = 0; j < nonzero.size() / 2; ++j) half[nonzero[j]] = 0.0f;
    out.push_back(std::move(half));
  }
  const size_t singles = std::min<size_t>(nonzero.size(), 16);
  for (size_t j = 0; j < singles; ++j) {
    nn::Tensor one = t;
    one[nonzero[j]] = 0.0f;
    out.push_back(std::move(one));
  }
  return out;
}

std::string show_tensor(const nn::Tensor& t) {
  std::ostringstream os;
  Index nonzero = 0;
  for (Index i = 0; i < t.numel(); ++i) nonzero += t[i] != 0.0f ? 1 : 0;
  os << "tensor " << t.shape_string() << ", " << nonzero << " non-zero";
  const Index preview = std::min<Index>(t.numel(), 12);
  if (preview > 0) os << ": [";
  for (Index i = 0; i < preview; ++i) os << (i ? ", " : "") << t[i];
  if (preview > 0) os << (preview < t.numel() ? ", ...]" : "]");
  return os.str();
}

std::vector<snn::SpikeTrain> shrink_spike_train(const snn::SpikeTrain& train) {
  std::vector<snn::SpikeTrain> out;
  // Drop individual spikes (flattened), halves first.
  std::vector<std::pair<Index, Index>> spikes;  // (step, position)
  for (Index t = 0; t < train.steps; ++t) {
    const auto& step = train.active[static_cast<size_t>(t)];
    for (Index j = 0; j < static_cast<Index>(step.size()); ++j) {
      spikes.emplace_back(t, j);
    }
  }
  auto without = [&](size_t from, size_t to) {  // drop spikes [from, to)
    snn::SpikeTrain candidate = train;
    for (size_t s = from; s < to && s < spikes.size(); ++s) {
      const auto [t, j] = spikes[s];
      candidate.active[static_cast<size_t>(t)][static_cast<size_t>(j)] = -1;
    }
    for (auto& step : candidate.active) {
      std::erase(step, Index{-1});
    }
    return candidate;
  };
  if (spikes.size() > 1) {
    out.push_back(without(0, spikes.size() / 2));
    out.push_back(without(spikes.size() / 2, spikes.size()));
  }
  const size_t singles = std::min<size_t>(spikes.size(), 16);
  for (size_t s = 0; s < singles; ++s) out.push_back(without(s, s + 1));
  // Truncate the tail steps once spikes are sparse.
  if (train.steps > 1) {
    snn::SpikeTrain shorter = train;
    shorter.steps = train.steps / 2;
    shorter.active.resize(static_cast<size_t>(shorter.steps));
    out.push_back(std::move(shorter));
  }
  return out;
}

std::string show_spike_train(const snn::SpikeTrain& train) {
  std::ostringstream os;
  os << "spike train " << train.steps << " steps x " << train.size
     << " neurons, " << train.total_spikes() << " spikes:";
  Index shown = 0;
  for (Index t = 0; t < train.steps && shown < 16; ++t) {
    for (const Index i : train.active[static_cast<size_t>(t)]) {
      os << " (t=" << t << ",i=" << i << ")";
      if (++shown >= 16) break;
    }
  }
  if (shown < train.total_spikes()) os << " ...";
  return os.str();
}

Gen<events::EventStream> event_stream_gen(StreamGenConfig config) {
  Gen<events::EventStream> gen;
  gen.sample = [config](Rng& rng) {
    events::EventStream stream;
    stream.width = config.min_width +
                   static_cast<Index>(rng.uniform_int(static_cast<std::uint64_t>(
                       config.max_width - config.min_width + 1)));
    stream.height = config.min_height +
                    static_cast<Index>(rng.uniform_int(static_cast<std::uint64_t>(
                        config.max_height - config.min_height + 1)));
    const Index count =
        config.min_events +
        static_cast<Index>(rng.uniform_int(static_cast<std::uint64_t>(
            config.max_events - config.min_events + 1)));
    stream.events.reserve(static_cast<size_t>(count));
    for (Index i = 0; i < count; ++i) {
      events::Event e;
      e.x = static_cast<std::int16_t>(
          rng.uniform_int(static_cast<std::uint64_t>(stream.width)));
      e.y = static_cast<std::int16_t>(
          rng.uniform_int(static_cast<std::uint64_t>(stream.height)));
      e.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
      e.t = static_cast<TimeUs>(rng.uniform_int(
          static_cast<std::uint64_t>(config.duration_us)));
      stream.events.push_back(e);
    }
    events::sort_by_time(stream.events);
    return stream;
  };
  gen.shrink = shrink_stream;
  gen.show = show_stream;
  return gen;
}

Gen<nn::Tensor> tensor_gen(std::vector<Index> shape, float bound,
                           double zero_fraction) {
  Gen<nn::Tensor> gen;
  gen.sample = [shape, bound, zero_fraction](Rng& rng) {
    nn::Tensor t(shape);
    for (Index i = 0; i < t.numel(); ++i) {
      t[i] = rng.bernoulli(zero_fraction)
                 ? 0.0f
                 : static_cast<float>(rng.uniform(-bound, bound));
    }
    return t;
  };
  gen.shrink = shrink_tensor;
  gen.show = show_tensor;
  return gen;
}

Gen<snn::SpikeTrain> spike_train_gen(Index max_steps, Index size,
                                     double density) {
  Gen<snn::SpikeTrain> gen;
  gen.sample = [max_steps, size, density](Rng& rng) {
    snn::SpikeTrain train;
    train.steps = 1 + static_cast<Index>(
                          rng.uniform_int(static_cast<std::uint64_t>(max_steps)));
    train.size = size;
    train.active.resize(static_cast<size_t>(train.steps));
    for (auto& step : train.active) {
      for (Index i = 0; i < size; ++i) {
        if (rng.bernoulli(density)) step.push_back(i);
      }
    }
    return train;
  };
  gen.shrink = shrink_spike_train;
  gen.show = show_spike_train;
  return gen;
}

Gen<SessionSchedule> schedule_gen(Index width, Index height, Index max_ops,
                                  TimeUs duration_us) {
  Gen<SessionSchedule> gen;
  gen.sample = [width, height, max_ops, duration_us](Rng& rng) {
    SessionSchedule schedule;
    schedule.width = width;
    schedule.height = height;
    const Index count =
        static_cast<Index>(rng.uniform_int(static_cast<std::uint64_t>(max_ops + 1)));
    // Sorted op times; feeds and advances share one monotone clock.
    std::vector<TimeUs> times;
    times.reserve(static_cast<size_t>(count));
    for (Index i = 0; i < count; ++i) {
      times.push_back(static_cast<TimeUs>(
          rng.uniform_int(static_cast<std::uint64_t>(duration_us))));
    }
    std::sort(times.begin(), times.end());
    for (const TimeUs t : times) {
      SessionOp op;
      if (rng.bernoulli(0.75)) {
        op.kind = SessionOp::Kind::Feed;
        op.event.x = static_cast<std::int16_t>(
            rng.uniform_int(static_cast<std::uint64_t>(width)));
        op.event.y = static_cast<std::int16_t>(
            rng.uniform_int(static_cast<std::uint64_t>(height)));
        op.event.polarity = rng.bernoulli(0.5) ? Polarity::On : Polarity::Off;
        op.event.t = t;
      } else {
        op.kind = SessionOp::Kind::Advance;
        op.t = t;
      }
      schedule.ops.push_back(op);
    }
    return schedule;
  };
  gen.shrink = [](const SessionSchedule& schedule) {
    std::vector<SessionSchedule> out;
    for (auto& fewer : drop_candidates(schedule.ops)) {
      SessionSchedule candidate;
      candidate.width = schedule.width;
      candidate.height = schedule.height;
      candidate.ops = std::move(fewer);  // deletion keeps time order
      out.push_back(std::move(candidate));
    }
    return out;
  };
  gen.show = [](const SessionSchedule& schedule) {
    std::ostringstream os;
    os << "schedule on " << schedule.width << "x" << schedule.height << ", "
       << schedule.ops.size() << " ops:";
    size_t shown = 0;
    for (const auto& op : schedule.ops) {
      if (shown++ >= 12) {
        os << " ...";
        break;
      }
      if (op.kind == SessionOp::Kind::Feed) {
        os << " feed" << show_event(op.event);
      } else {
        os << " advance(" << op.t << ")";
      }
    }
    return os.str();
  };
  return gen;
}

Gen<MultiSessionSchedule> multi_schedule_gen(Index width, Index height,
                                             Index max_sessions,
                                             Index max_ops_per_session,
                                             TimeUs duration_us) {
  Gen<MultiSessionSchedule> gen;
  const Gen<SessionSchedule> per_session =
      schedule_gen(width, height, max_ops_per_session, duration_us);
  gen.sample = [width, height, max_sessions, per_session](Rng& rng) {
    MultiSessionSchedule multi;
    multi.width = width;
    multi.height = height;
    const Index count = 1 + static_cast<Index>(rng.uniform_int(
                                static_cast<std::uint64_t>(max_sessions)));
    multi.sessions.reserve(static_cast<size_t>(count));
    for (Index s = 0; s < count; ++s) {
      multi.sessions.push_back(per_session.sample(rng).ops);
    }
    return multi;
  };
  gen.shrink = [](const MultiSessionSchedule& multi) {
    std::vector<MultiSessionSchedule> out;
    // Whole sessions first: the minimal counterexample usually needs fewer
    // concurrent streams, not fewer ops.
    if (multi.sessions.size() > 1) {
      for (size_t s = 0; s < multi.sessions.size(); ++s) {
        MultiSessionSchedule candidate = multi;
        candidate.sessions.erase(candidate.sessions.begin() +
                                 static_cast<std::ptrdiff_t>(s));
        out.push_back(std::move(candidate));
      }
    }
    for (size_t s = 0; s < multi.sessions.size(); ++s) {
      for (auto& fewer : drop_candidates(multi.sessions[s])) {
        MultiSessionSchedule candidate = multi;
        candidate.sessions[s] = std::move(fewer);  // deletion keeps time order
        out.push_back(std::move(candidate));
      }
    }
    return out;
  };
  gen.show = [](const MultiSessionSchedule& multi) {
    std::ostringstream os;
    os << multi.sessions.size() << " sessions on " << multi.width << "x"
       << multi.height << " [";
    for (size_t s = 0; s < multi.sessions.size(); ++s) {
      os << (s ? ", " : "") << multi.sessions[s].size() << " ops";
    }
    os << "]";
    return os.str();
  };
  return gen;
}

namespace {

/// Leak-burst regime: one hot pixel, several same-polarity bursts. Mirrors
/// events::DvsConfig's junction-leak model at the op-schedule level.
std::vector<SessionOp> leak_burst_ops(Rng& rng,
                                      const MultiScheduleGenConfig& cfg) {
  std::vector<SessionOp> ops;
  const auto hx = static_cast<std::int16_t>(
      rng.uniform_int(static_cast<std::uint64_t>(cfg.width)));
  const auto hy = static_cast<std::int16_t>(
      rng.uniform_int(static_cast<std::uint64_t>(cfg.height)));
  const Index bursts = 2 + static_cast<Index>(rng.uniform_int(4));
  for (Index b = 0; b < bursts; ++b) {
    TimeUs t = static_cast<TimeUs>(
        rng.uniform_int(static_cast<std::uint64_t>(cfg.duration_us)));
    const Index len = 4 + static_cast<Index>(rng.uniform_int(9));
    for (Index i = 0; i < len; ++i) {
      SessionOp op;
      op.kind = SessionOp::Kind::Feed;
      op.event.x = hx;
      op.event.y = hy;
      op.event.polarity = Polarity::On;  // leakage fires ON, always
      op.event.t = t;
      ops.push_back(op);
      t += 50 + static_cast<TimeUs>(rng.uniform_int(151));
    }
  }
  // A couple of advance marks so frame/timestep paradigms still tick.
  for (int i = 0; i < 2; ++i) {
    SessionOp op;
    op.kind = SessionOp::Kind::Advance;
    op.t = static_cast<TimeUs>(
        rng.uniform_int(static_cast<std::uint64_t>(cfg.duration_us)));
    ops.push_back(op);
  }
  std::stable_sort(ops.begin(), ops.end(),
                   [](const SessionOp& a, const SessionOp& b) {
                     const TimeUs ta =
                         a.kind == SessionOp::Kind::Feed ? a.event.t : a.t;
                     const TimeUs tb =
                         b.kind == SessionOp::Kind::Feed ? b.event.t : b.t;
                     return ta < tb;
                   });
  return ops;
}

/// HDR-flicker regime: a handful of pixels alternating polarity in lockstep
/// at a fixed period — the fluorescent-lighting stream that floods
/// frame-free paradigms with perfectly periodic, low-information events.
std::vector<SessionOp> hdr_flicker_ops(Rng& rng,
                                       const MultiScheduleGenConfig& cfg) {
  std::vector<SessionOp> ops;
  const Index pixels = 2 + static_cast<Index>(rng.uniform_int(5));
  std::vector<std::pair<std::int16_t, std::int16_t>> flicker;
  flicker.reserve(static_cast<size_t>(pixels));
  for (Index p = 0; p < pixels; ++p) {
    flicker.emplace_back(
        static_cast<std::int16_t>(
            rng.uniform_int(static_cast<std::uint64_t>(cfg.width))),
        static_cast<std::int16_t>(
            rng.uniform_int(static_cast<std::uint64_t>(cfg.height))));
  }
  const TimeUs period = 2000 + static_cast<TimeUs>(rng.uniform_int(8001));
  const size_t cap =
      static_cast<size_t>(cfg.max_ops_per_session) * 2;  // bounded flood
  Index tick = 0;
  for (TimeUs t = period / 2; t < cfg.duration_us && ops.size() < cap;
       t += period, ++tick) {
    for (const auto& [x, y] : flicker) {
      if (ops.size() >= cap) break;
      SessionOp op;
      op.kind = SessionOp::Kind::Feed;
      op.event.x = x;
      op.event.y = y;
      op.event.polarity = (tick % 2 == 0) ? Polarity::On : Polarity::Off;
      op.event.t = t;
      ops.push_back(op);
    }
  }
  return ops;
}

}  // namespace

Gen<MultiSessionSchedule> multi_schedule_gen(
    const MultiScheduleGenConfig& config) {
  // Same shrinker and show as the uniform generator — a degraded session
  // shrinks by structural op deletion like any other.
  Gen<MultiSessionSchedule> gen =
      multi_schedule_gen(config.width, config.height, config.max_sessions,
                         config.max_ops_per_session, config.duration_us);
  if (config.degraded_fraction <= 0.0) return gen;
  const auto base_sample = gen.sample;
  gen.sample = [config, base_sample](Rng& rng) {
    MultiSessionSchedule multi = base_sample(rng);
    for (auto& ops : multi.sessions) {
      if (!rng.bernoulli(config.degraded_fraction)) continue;
      ops = rng.bernoulli(0.5) ? leak_burst_ops(rng, config)
                               : hdr_flicker_ops(rng, config);
    }
    return multi;
  };
  return gen;
}

}  // namespace evd::check
