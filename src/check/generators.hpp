// Domain generators for the evd data types: event streams, tensors, spike
// trains and StreamSession schedules. Each comes with a shrinker that
// preserves the type's invariants (streams stay time-sorted, schedules stay
// time-monotone) so every shrink candidate is a valid input — the minimal
// counterexample is always a well-formed value, never an artefact of the
// shrinking itself.
#pragma once

#include "check/gen.hpp"
#include "events/event.hpp"
#include "nn/tensor.hpp"
#include "snn/encoding.hpp"

namespace evd::check {

struct StreamGenConfig {
  Index min_width = 4, max_width = 32;
  Index min_height = 4, max_height = 32;
  Index min_events = 0, max_events = 200;
  TimeUs duration_us = 100000;
};

/// Random sorted event stream; shrinks by dropping events (halves first,
/// then single events), never reordering.
Gen<events::EventStream> event_stream_gen(StreamGenConfig config = {});

/// Tensor of the given shape with ~zero_fraction exact zeros and the rest
/// uniform in [-bound, bound]. Shrinks by zeroing entries — the minimal
/// failing tensor has the fewest non-zeros that still trigger the failure.
Gen<nn::Tensor> tensor_gen(std::vector<Index> shape, float bound = 1.0f,
                           double zero_fraction = 0.3);

/// Sparse binary spike train; shrinks by dropping spikes, then steps.
Gen<snn::SpikeTrain> spike_train_gen(Index max_steps, Index size,
                                     double density = 0.2);

/// One operation applied to a StreamSession under test.
struct SessionOp {
  enum class Kind { Feed, Advance };
  Kind kind = Kind::Feed;
  events::Event event;  ///< Valid when kind == Feed.
  TimeUs t = 0;         ///< Advance target when kind == Advance.

  friend bool operator==(const SessionOp&, const SessionOp&) = default;
};

/// A time-monotone feed/advance_to script over a sensor geometry — the
/// generated input for StreamSession contract properties.
struct SessionSchedule {
  Index width = 0;
  Index height = 0;
  std::vector<SessionOp> ops;
};

/// Schedules with non-decreasing times mixing feeds and advances; shrinks by
/// dropping operations (time order is preserved by construction).
Gen<SessionSchedule> schedule_gen(Index width, Index height,
                                  Index max_ops = 40,
                                  TimeUs duration_us = 100000);

/// K independent per-session schedules over one shared sensor geometry —
/// the input for the multiplexed-vs-sequential runtime oracles. Each
/// session's op list is time-monotone on its own; how the sessions
/// interleave is exactly what the SessionManager under test decides.
struct MultiSessionSchedule {
  Index width = 0;
  Index height = 0;
  std::vector<std::vector<SessionOp>> sessions;
};

/// 1..max_sessions schedules; shrinks by dropping whole sessions first,
/// then ops within a session (per-session time order is preserved).
Gen<MultiSessionSchedule> multi_schedule_gen(Index width, Index height,
                                             Index max_sessions = 4,
                                             Index max_ops_per_session = 30,
                                             TimeUs duration_us = 100000);

/// multi_schedule_gen with degraded-sensor regimes mixed in: each generated
/// session is, with probability `degraded_fraction`, replaced by one of the
/// pathological streams real DVS hardware produces (the PR 6 fault-recovery
/// scenarios, promoted to first-class generator regimes) —
///
///   leak-burst  a hot pixel firing same-polarity bursts (junction leakage):
///               4..12 events 50..200 us apart, several bursts per schedule;
///   HDR flicker a block of pixels alternating polarity in lockstep at a
///               2..10 ms period (fluorescent / PWM lighting).
///
/// Both regimes stay in-geometry and time-monotone, so every downstream
/// oracle (multiplex, obs, plan, route, shard) serves them unmodified; the
/// shrinker is the plain structural one — a failing degraded stream shrinks
/// to the fewest ops that still fail, regime shape not preserved.
struct MultiScheduleGenConfig {
  Index width = 16, height = 16;
  Index max_sessions = 4;
  Index max_ops_per_session = 30;
  TimeUs duration_us = 100000;
  double degraded_fraction = 0.0;  ///< P(session runs a degraded regime).
};
Gen<MultiSessionSchedule> multi_schedule_gen(
    const MultiScheduleGenConfig& config);

// Re-usable shrinkers for composite case types (oracles wrap a stream or a
// tensor in a larger struct and shrink just that member).
std::vector<nn::Tensor> shrink_tensor(const nn::Tensor& t);
std::vector<events::EventStream> shrink_stream(const events::EventStream& s);
std::vector<snn::SpikeTrain> shrink_spike_train(const snn::SpikeTrain& train);
std::string show_tensor(const nn::Tensor& t);
std::string show_stream(const events::EventStream& s);
std::string show_spike_train(const snn::SpikeTrain& train);

}  // namespace evd::check
