// The built-in differential-oracle pairs — redundant implementations this
// codebase already maintains, now permanently cross-checked on generated
// inputs:
//
//   conv2d.direct_vs_gemm        reference loop nest vs im2col + blocked GEMM
//   snn.clocked_vs_event_driven  per-step update vs lazy analytic decay
//   gnn.batch_vs_incremental     k-d tree rebuild vs O(1) grid-hash insert
//   par.cnn_conv_1_vs_4_threads  bitwise determinism of the conv hot path
//   par.snn_forward_1_vs_4_threads   ... of the spiking forward pass
//   par.gnn_build_1_vs_4_threads     ... of batch graph construction
//   hw.systolic_vs_naive         accelerator model vs naive counter roll-up
//   hw.zero_skip_vs_naive        ditto for the zero-skipping model
//   simd.conv_vs_scalar          vectorized GEMM microkernel vs the scalar
//                                reference kernel (bitwise, any EVD_SIMD)
//   simd.snn_step_vs_scalar      vectorized LIF update + spike scatter vs
//                                scalar (bitwise logits/membranes/spikes)
//   simd.gnn_accumulate_vs_scalar  gathered neighbor accumulate vs scalar
//                                (bounded-ULP; bitwise in practice)
//   runtime.multiplex_vs_sequential.{cnn,snn,gnn}
//                                K sessions pumped through the
//                                SessionManager on 4 workers vs the same op
//                                lists fed directly, one session at a time —
//                                decision streams must match bitwise
//   runtime.fault_isolation      healthy sessions' decision streams with vs
//                                without a quarantined (injected-fault)
//                                neighbor — must match bitwise
//   runtime.checkpoint_replay    a session that faults, restores from its
//                                checkpoint and replays must emit the exact
//                                decision stream of a never-faulted run
//   sched.plan_vs_sequential.{cnn,snn,gnn}
//                                sessions pumped under an annealer-chosen
//                                execution plan (fused stages, per-entry
//                                bursts, re-partitioned worker regions) vs
//                                direct sequential feeding — decision
//                                streams must match bitwise (the planner's
//                                equivalence contract)
//   route.cnn_sparse_vs_dense    CNN sessions pinned to the sparse conv
//                                path vs the default path — bitwise
//   route.snn_clocked_vs_event   SNN sessions pinned to event-driven
//                                stepping vs default clocked — bitwise
//   route.gnn_batch_vs_incremental
//                                GNN sessions pinned to the full-sweep
//                                batch message pass vs default incremental
//                                — bitwise (registration of these three is
//                                what marks the paths proved/routable)
//   shard.sharded_vs_sequential.{cnn,snn,gnn}
//                                sessions spread over N shard groups (each
//                                its own manager + lock-free ingress ring)
//                                pumped on 4 workers vs direct sequential
//                                feeding — decision streams must match
//                                bitwise at any shard/thread count
//   shard.migration_replay       sessions checkpoint-migrated between
//                                shards mid-stream must emit the exact
//                                decision stream of a never-migrated run
//
// Case structs and diff properties are public so the fault-injection
// self-test can perturb one side and verify the harness catches it and
// shrinks the counterexample.
#pragma once

#include <array>
#include <optional>

#include "check/generators.hpp"
#include "check/oracle.hpp"
#include "common/parallel.hpp"
#include "hw/systolic.hpp"
#include "hw/zero_skip.hpp"
#include "nn/conv2d.hpp"
#include "snn/event_driven.hpp"

namespace evd::check {

// ---- conv2d: Direct vs Im2colGemm (and serial vs threaded) ----------------

struct ConvCase {
  nn::Conv2dConfig config;       ///< algo is overridden per run.
  std::uint64_t weight_seed = 1; ///< Both instances init from this seed.
  nn::Tensor input;              ///< [C, H, W], mixed zeros / values.
};

Gen<ConvCase> conv_case_gen();
std::optional<std::string> diff_conv_direct_vs_gemm(const ConvCase& c);
std::optional<std::string> diff_conv_serial_vs_threads(const ConvCase& c);

// ---- SNN: clocked vs event-driven execution -------------------------------

/// Weights / LIF constants are dyadic (exact in float), so both executors'
/// membrane arithmetic is exact and the spike trains must match bit-for-bit.
struct SnnLayerCase {
  Index in = 1;
  Index out = 1;
  std::vector<float> weights;  ///< [out * in], dyadic.
  snn::LifConfig lif;          ///< Dyadic beta / threshold.
  snn::SpikeTrain input;
};

Gen<SnnLayerCase> snn_layer_case_gen();
std::optional<std::string> diff_snn_clocked_vs_event_driven(
    const SnnLayerCase& c);

// ---- SNN: full network forward, serial vs threaded ------------------------

struct SnnNetCase {
  std::vector<Index> layer_sizes;
  std::uint64_t weight_seed = 1;
  snn::SpikeTrain input;
};

Gen<SnnNetCase> snn_net_case_gen();
std::optional<std::string> diff_snn_net_serial_vs_threads(const SnnNetCase& c);

// ---- GNN: batch (k-d tree) vs incremental (grid hash) construction --------

struct GraphCase {
  events::EventStream stream;
  float radius = 3.0f;
  Index max_neighbors = 8;
};

Gen<GraphCase> graph_case_gen();
/// Compares per-node degree and neighbour *distance multisets* (exact float
/// equality) — invariant under permutation of exactly-tied candidates, which
/// is the one legitimate way the two builders may disagree.
std::optional<std::string> diff_gnn_batch_vs_incremental(const GraphCase& c);
/// Bitwise identity of the batch builder across thread counts.
std::optional<std::string> diff_gnn_build_serial_vs_threads(const GraphCase& c);

// ---- simd: vector tiers vs the scalar reference kernels -------------------

/// Generated single-node graph-conv evaluation for the gathered
/// neighbor-accumulate kernel (simd::gnn_apply_node): own feature vector,
/// 0..N neighbors with feature vectors and spatiotemporal offsets, both
/// aggregations, dims spanning full vector widths and scalar tails.
struct GnnNodeCase {
  Index in = 1;
  Index out = 1;
  std::uint64_t weight_seed = 1;
  bool max_aggregation = true;
  std::vector<float> h_self;                          ///< [in]
  std::vector<std::vector<float>> neighbor_features;  ///< each [in]
  std::vector<std::array<float, 3>> offsets;          ///< (dx, dy, dz)
};

Gen<GnnNodeCase> gnn_node_case_gen();
/// Conv2d GEMM forward under the scalar tier vs the best vector tier —
/// bitwise (ULP bound 0) even on non-dyadic He-normal weights, because the
/// lanes replay the scalar accumulation order with unfused mul+add.
std::optional<std::string> diff_simd_conv_vs_scalar(const ConvCase& c);
/// SpikingNet::step driven over a whole spike train under both tiers:
/// per-step logits, membranes and readout sums must match bitwise.
std::optional<std::string> diff_simd_snn_step_vs_scalar(const SnnNetCase& c);
/// GraphConv::apply_node under both tiers, compared within a small ULP
/// bound (the implementation is bitwise; the bound documents the slack a
/// future faithfully-rounded tier would be granted).
std::optional<std::string> diff_simd_gnn_accumulate_vs_scalar(
    const GnnNodeCase& c);

// ---- hw: accelerator models vs naive counter roll-ups ---------------------

struct HwCase {
  nn::OpCounter workload;
  hw::SystolicConfig systolic;
  hw::ZeroSkipConfig zero_skip;
};

Gen<HwCase> hw_case_gen();
std::optional<std::string> diff_systolic_vs_naive(const HwCase& c);
std::optional<std::string> diff_zero_skip_vs_naive(const HwCase& c);

// ---- runtime: multiplexed vs sequential session serving -------------------

/// Generated interleavings for the SessionManager determinism contract:
/// 1..4 sessions, each with its own feed/advance schedule on a 16x16
/// sensor (tiny untrained pipelines — determinism, not accuracy, is the
/// property under test).
Gen<MultiSessionSchedule> multiplex_case_gen();
/// Feed every session's ops directly and sequentially, then the same ops
/// through a SessionManager pumped on 4 workers with a small burst (many
/// interleaved rounds), and require the per-session decision streams to be
/// identical — exact label, timestamp and bit-for-bit confidence.
std::optional<std::string> diff_cnn_multiplex_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_snn_multiplex_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_gnn_multiplex_vs_sequential(
    const MultiSessionSchedule& c);
/// Serve the same multi-session schedule twice through a SessionManager —
/// once with observability enabled (spans, counters, latency histograms all
/// firing) and once with EVD_OBS forced off — and require every session's
/// decision stream to be bitwise identical. Holds the "observers never
/// perturb the observed" contract of evd::obs.
std::optional<std::string> diff_obs_on_vs_off(const MultiSessionSchedule& c);

// ---- fault tolerance: isolation and checkpoint/restore --------------------

/// Serve the schedule twice — clean, and with an extra saboteur session that
/// takes an injected op fault (no checkpoint, so it quarantines) — and
/// require every healthy session's decision stream to be bitwise identical
/// across the two runs. Holds the blast-radius contract of session
/// quarantine: a faulted neighbor is invisible to everyone else.
std::optional<std::string> diff_fault_isolation(const MultiSessionSchedule& c);
/// Feed every session's ops directly (sequential reference), then serve the
/// same schedule through a manager with periodic checkpointing and an
/// injected one-shot op fault on session 0: the faulted session must
/// restore from its last checkpoint, replay, retry, and end with a decision
/// stream bitwise identical to the never-faulted reference.
std::optional<std::string> diff_checkpoint_replay(const MultiSessionSchedule& c);

// ---- sched: plan-driven pump vs sequential reference ----------------------

/// Feed every session's ops directly and sequentially, then serve the same
/// schedule through a SessionManager on 4 workers with an execution plan
/// installed — annealed from the schedule itself (seeded by its op count,
/// so shrinking the schedule shrinks the witness plan with it) — and
/// require bitwise-identical per-session decision streams. A plan may
/// re-partition sessions across workers, reorder visits and change bursts,
/// but must never change a single emitted bit.
std::optional<std::string> diff_cnn_plan_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_snn_plan_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_gnn_plan_vs_sequential(
    const MultiSessionSchedule& c);

// ---- route: forced execution paths vs the default path --------------------

/// Feed every session's ops directly on the default path (sequential
/// reference), then serve the same schedule on 4 workers with every
/// session pinned to the named variant via set_execution_path, and require
/// bitwise-identical decision streams (ULP 0). These are the per-placement
/// equivalence proofs that make a path routable: register_builtin_oracles
/// marks CnnSparse / SnnEventDriven / GnnBatch proved exactly because it
/// registers these oracles into the CI-run suite.
std::optional<std::string> diff_route_cnn_sparse_vs_dense(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_route_snn_clocked_vs_event(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_route_gnn_batch_vs_incremental(
    const MultiSessionSchedule& c);

// ---- shard: sharded serving vs the sequential reference -------------------

/// Feed every session's ops directly and sequentially, then serve the same
/// schedule through a ShardManager (3 shard groups, each with its private
/// SessionManager and MPSC ingress ring) pumped on 4 workers, and require
/// bitwise-identical per-session decision streams — the replay-transparency
/// contract of evd::shard: partitioning the serving plane may change *where*
/// and *when* ops execute, never what they compute.
std::optional<std::string> diff_cnn_sharded_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_snn_sharded_vs_sequential(
    const MultiSessionSchedule& c);
std::optional<std::string> diff_gnn_sharded_vs_sequential(
    const MultiSessionSchedule& c);
/// Same setup (GNN sessions — decisions on every surviving event), but every
/// session is checkpoint-migrated to another shard midway through its
/// schedule and again before the final drain: the moved sessions must emit
/// the exact decision stream of a never-migrated sequential run.
std::optional<std::string> diff_shard_migration_replay(
    const MultiSessionSchedule& c);

/// Run fn at the given pool size, restoring the previous size afterwards.
template <typename Fn>
auto with_thread_count(Index threads, Fn&& fn) {
  struct Restore {
    Index previous;
    ~Restore() { par::set_thread_count(previous); }
  } restore{par::thread_count()};
  par::set_thread_count(threads);
  return fn();
}

/// Register every built-in pair into the global registry (idempotent).
void register_builtin_oracles();

}  // namespace evd::check
