// Golden-snapshot comparison for rendered report tables.
//
// Benchmarks and the comparison harness emit human-readable tables whose
// numbers summarise the whole measurement stack (counters -> cost models ->
// Table rendering). A golden file pins that output: any drift — a changed
// formula, a changed counter, a changed formatter — fails the test with a
// line-level diff instead of silently shifting the paper's reproduced
// numbers.
//
// Comparison is token-level: numeric tokens (including the engineering
// suffixes k/M/G/T/P that Table::eng prints) match when they agree to about
// one unit in the last printed digit, so a golden file survives harmless
// last-digit rounding differences across libm implementations while any real
// change in a measured quantity still fails. Non-numeric tokens must match
// exactly.
//
// Refresh with EVD_UPDATE_GOLDEN=1 (the failure message says so); override
// the directory with EVD_GOLDEN_DIR (default: compiled-in tests/golden path).
#pragma once

#include <optional>
#include <string>

namespace evd::check {

struct GoldenOptions {
  /// Tolerance in units of the last printed decimal digit of each number.
  double last_digit_units = 1.5;
};

/// Directory golden files live in: EVD_GOLDEN_DIR env override, else the
/// compiled-in default (tests/golden under the source tree).
std::string golden_dir();

/// True when EVD_UPDATE_GOLDEN=1: golden_compare rewrites files instead of
/// diffing against them.
bool golden_update_requested();

/// Compare `actual` against `<golden_dir>/<name>.txt`. Returns nullopt on
/// match; otherwise a message naming the first mismatching line/token and
/// the refresh command. In update mode, writes the file and returns nullopt.
std::optional<std::string> golden_compare(const std::string& name,
                                          const std::string& actual,
                                          const GoldenOptions& options = {});

/// Exposed for the self-test: token-level comparison of two rendered texts.
std::optional<std::string> golden_diff_text(const std::string& expected,
                                            const std::string& actual,
                                            const GoldenOptions& options = {});

}  // namespace evd::check
