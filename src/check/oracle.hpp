// Differential-oracle harness: registered pairs of implementations that must
// agree, exercised on generated inputs by the forall driver.
//
// An Oracle bundles a generator with a *diff property*: run both registered
// implementations on the generated input and return a mismatch description
// (or nullopt when they agree within the declared tolerance). The registry
// makes equivalence a one-liner for future PRs:
//
//   register: registry().add(make_diff_oracle<MyCase>(
//                 "mod.fast_vs_reference", "...", my_case_gen(), my_diff));
//   check:    EXPECT_TRUE(oracle->run({}).passed);
//
// The built-in pairs (conv2d Direct vs Im2colGemm, SNN clocked vs
// event-driven, GNN batch vs incremental, serial vs EVD_THREADS=N for every
// pipeline's hot kernel, hw models vs naive counter roll-ups) live in
// oracles.hpp / oracles.cpp.
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/property.hpp"

namespace evd::check {

class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Run the differential property over generated cases.
  virtual CheckResult run(const CheckConfig& config) const = 0;
};

template <typename T>
class DiffOracle final : public Oracle {
 public:
  using Property = std::function<std::optional<std::string>(const T&)>;

  DiffOracle(std::string name, std::string description, Gen<T> gen,
             Property diff)
      : name_(std::move(name)),
        description_(std::move(description)),
        gen_(std::move(gen)),
        diff_(std::move(diff)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  CheckResult run(const CheckConfig& config) const override {
    return forall(gen_, diff_, config);
  }

 private:
  std::string name_;
  std::string description_;
  Gen<T> gen_;
  Property diff_;
};

template <typename T>
std::unique_ptr<Oracle> make_diff_oracle(
    std::string name, std::string description, Gen<T> gen,
    typename DiffOracle<T>::Property diff) {
  return std::make_unique<DiffOracle<T>>(std::move(name),
                                         std::move(description),
                                         std::move(gen), std::move(diff));
}

/// Process-wide oracle registry (tests iterate it; future modules add to it).
class OracleRegistry {
 public:
  static OracleRegistry& instance();

  void add(std::unique_ptr<Oracle> oracle);
  const std::vector<std::unique_ptr<Oracle>>& all() const { return oracles_; }
  /// nullptr when no oracle has that name.
  const Oracle* find(std::string_view name) const;

 private:
  std::vector<std::unique_ptr<Oracle>> oracles_;
};

inline OracleRegistry& registry() { return OracleRegistry::instance(); }

// ---- comparison helpers for diff properties -------------------------------

/// Mismatch message unless |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
/// rel_tol = abs_tol = 0 demands exact equality (NaN always mismatches).
std::optional<std::string> diff_scalar(const std::string& what, double a,
                                       double b, double rel_tol = 0.0,
                                       double abs_tol = 0.0);

/// Element-wise tensor comparison with the same tolerance semantics.
std::optional<std::string> diff_floats(const std::string& what,
                                       const float* a, const float* b,
                                       Index count, double rel_tol = 0.0,
                                       double abs_tol = 0.0);

}  // namespace evd::check
