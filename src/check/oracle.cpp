#include "check/oracle.hpp"

#include <sstream>
#include <stdexcept>

namespace evd::check {

OracleRegistry& OracleRegistry::instance() {
  static OracleRegistry* registry = new OracleRegistry();
  return *registry;
}

void OracleRegistry::add(std::unique_ptr<Oracle> oracle) {
  if (find(oracle->name()) != nullptr) {
    throw std::invalid_argument("OracleRegistry: duplicate oracle '" +
                                oracle->name() + "'");
  }
  oracles_.push_back(std::move(oracle));
}

const Oracle* OracleRegistry::find(std::string_view name) const {
  for (const auto& oracle : oracles_) {
    if (oracle->name() == name) return oracle.get();
  }
  return nullptr;
}

std::optional<std::string> diff_scalar(const std::string& what, double a,
                                       double b, double rel_tol,
                                       double abs_tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  const bool ok = std::abs(a - b) <= abs_tol + rel_tol * scale;
  if (ok && !std::isnan(a) && !std::isnan(b)) return std::nullopt;
  std::ostringstream os;
  os.precision(17);
  os << what << ": " << a << " vs " << b << " (rel_tol " << rel_tol
     << ", abs_tol " << abs_tol << ")";
  return os.str();
}

std::optional<std::string> diff_floats(const std::string& what,
                                       const float* a, const float* b,
                                       Index count, double rel_tol,
                                       double abs_tol) {
  for (Index i = 0; i < count; ++i) {
    const double x = a[i];
    const double y = b[i];
    const double scale = std::max(std::abs(x), std::abs(y));
    if (std::abs(x - y) <= abs_tol + rel_tol * scale && !std::isnan(x) &&
        !std::isnan(y)) {
      continue;
    }
    std::ostringstream os;
    os.precision(9);
    os << what << "[" << i << "]: " << x << " vs " << y << " (of " << count
       << " elements)";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace evd::check
