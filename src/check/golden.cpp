#include "check/golden.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef EVD_GOLDEN_DEFAULT_DIR
#define EVD_GOLDEN_DEFAULT_DIR "tests/golden"
#endif

namespace evd::check {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// A token parsed as <number><suffix-tail>, e.g. "12.40", "3.1M", "85.0%".
struct NumericToken {
  double value = 0.0;          ///< Mantissa scaled by the eng multiplier.
  double last_digit = 1.0;     ///< Weight of the last printed digit, scaled.
  std::string tail;            ///< Non-numeric remainder ("", "%", "us", ...).
};

double eng_multiplier(char c) {
  switch (c) {
    case 'k': return 1e3;
    case 'M': return 1e6;
    case 'G': return 1e9;
    case 'T': return 1e12;
    case 'P': return 1e15;
    default: return 0.0;  // not a suffix
  }
}

std::optional<NumericToken> parse_numeric(const std::string& token) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double mantissa = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  // Weight of the final printed digit: 10^-decimals.
  double last_digit = 1.0;
  const char* dot = nullptr;
  for (const char* p = begin; p < end; ++p) {
    if (*p == '.') dot = p;
    if (*p == 'e' || *p == 'E') {  // scientific: use the printed precision
      dot = nullptr;
      break;
    }
  }
  if (dot != nullptr) {
    for (const char* p = dot + 1; p < end && std::isdigit(*p); ++p) {
      last_digit /= 10.0;
    }
  }
  NumericToken parsed;
  double multiplier = 1.0;
  if (*end != '\0') {
    const double m = eng_multiplier(*end);
    if (m > 0.0) {
      multiplier = m;
      ++end;
    }
  }
  parsed.value = mantissa * multiplier;
  parsed.last_digit = last_digit * multiplier;
  parsed.tail = std::string(end);
  return parsed;
}

bool tokens_match(const std::string& expected, const std::string& actual,
                  const GoldenOptions& options) {
  if (expected == actual) return true;
  const auto e = parse_numeric(expected);
  const auto a = parse_numeric(actual);
  if (!e || !a || e->tail != a->tail) return false;
  const double tolerance = options.last_digit_units *
                           std::max(e->last_digit, a->last_digit);
  return std::abs(e->value - a->value) <= tolerance;
}

}  // namespace

std::string golden_dir() {
  if (const char* env = std::getenv("EVD_GOLDEN_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return EVD_GOLDEN_DEFAULT_DIR;
}

bool golden_update_requested() {
  const char* env = std::getenv("EVD_UPDATE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::optional<std::string> golden_diff_text(const std::string& expected,
                                            const std::string& actual,
                                            const GoldenOptions& options) {
  const auto expected_lines = split_lines(expected);
  const auto actual_lines = split_lines(actual);
  const size_t lines = std::max(expected_lines.size(), actual_lines.size());
  for (size_t i = 0; i < lines; ++i) {
    const std::string want =
        i < expected_lines.size() ? expected_lines[i] : "<missing line>";
    const std::string got =
        i < actual_lines.size() ? actual_lines[i] : "<missing line>";
    const auto want_tokens = split_tokens(want);
    const auto got_tokens = split_tokens(got);
    bool line_ok = want_tokens.size() == got_tokens.size() &&
                   i < expected_lines.size() && i < actual_lines.size();
    for (size_t t = 0; line_ok && t < want_tokens.size(); ++t) {
      line_ok = tokens_match(want_tokens[t], got_tokens[t], options);
    }
    if (!line_ok) {
      std::ostringstream os;
      os << "line " << (i + 1) << " differs\n  golden: " << want
         << "\n  actual: " << got;
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> golden_compare(const std::string& name,
                                          const std::string& actual,
                                          const GoldenOptions& options) {
  const std::string path = golden_dir() + "/" + name + ".txt";
  if (golden_update_requested()) {
    std::ofstream out(path);
    if (!out) return "golden: cannot write " + path;
    out << actual;
    return std::nullopt;
  }
  std::ifstream in(path);
  if (!in) {
    return "golden: missing snapshot " + path +
           " — run with EVD_UPDATE_GOLDEN=1 to create it";
  }
  std::ostringstream content;
  content << in.rdbuf();
  if (auto diff = golden_diff_text(content.str(), actual, options)) {
    return "golden '" + name + "': " + *diff +
           "\n  (intended change? refresh with EVD_UPDATE_GOLDEN=1)";
  }
  return std::nullopt;
}

}  // namespace evd::check
