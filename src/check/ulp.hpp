// ULP-distance comparison for the simd.* oracles.
//
// The vector kernels promise bitwise agreement with their scalar
// references, but the oracle comparisons are written in ULPs so the
// contract is stated in units that survive a future tier whose arithmetic
// is merely faithfully rounded: a bound of 0 *is* bitwise (modulo ±0,
// which compare equal — they are the same real number), and a small bound
// documents exactly how much slack a kernel is granted.
//
// The mapping: a finite float's bit pattern, viewed as sign-magnitude, is
// folded onto a single monotone integer line — non-negative floats map to
// their pattern, negative floats to minus their magnitude bits — so
// adjacent representable values are adjacent integers, +0 and -0 share the
// origin, and ULP distance is plain integer subtraction. NaNs and
// infinities are outside the ordered line and always rejected.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace evd::check {

/// Monotone integer image of a finite float: ordered(a) <= ordered(b) iff
/// a <= b, with ordered(+0) == ordered(-0) == 0. Meaningless for NaN.
inline std::int64_t ulp_ordered(float f) noexcept {
  std::int32_t i;
  std::memcpy(&i, &f, sizeof i);
  return i >= 0 ? static_cast<std::int64_t>(i)
                : -static_cast<std::int64_t>(i & 0x7FFFFFFF);
}

/// Representable values strictly between a and b (plus one when a != b);
/// 0 iff a == b as real numbers (so +0 vs -0 is 0). std::nullopt when
/// either operand is NaN or infinite — those are outside the metric.
inline std::optional<std::int64_t> ulp_distance(float a, float b) noexcept {
  if (!std::isfinite(a) || !std::isfinite(b)) return std::nullopt;
  const std::int64_t d = ulp_ordered(a) - ulp_ordered(b);
  return d < 0 ? -d : d;
}

/// Element-wise comparison bounded by max_ulps, in the style of
/// diff_floats: a mismatch description on the first violation (or a
/// non-finite element on either side), std::nullopt when all elements
/// agree within the bound.
inline std::optional<std::string> diff_floats_ulp(const std::string& what,
                                                  const float* a,
                                                  const float* b, Index count,
                                                  std::int64_t max_ulps) {
  for (Index i = 0; i < count; ++i) {
    const auto d = ulp_distance(a[i], b[i]);
    if (d.has_value() && *d <= max_ulps) continue;
    std::ostringstream os;
    os << what << "[" << i << "]: " << a[i] << " vs " << b[i];
    if (d.has_value()) {
      os << " (" << *d << " ulps > bound " << max_ulps << ")";
    } else {
      os << " (non-finite)";
    }
    return os.str();
  }
  return std::nullopt;
}

}  // namespace evd::check
