#include "check/property.hpp"

#include <cstdlib>

namespace evd::check {

std::uint64_t default_seed() {
  static const std::uint64_t cached = []() -> std::uint64_t {
    const char* value = std::getenv("EVD_TEST_SEED");
    if (value != nullptr && *value != '\0') {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end != value && *end == '\0' && parsed != 0) return parsed;
    }
    return 0x5EEDC0FFEEULL;
  }();
  return cached;
}

std::uint64_t case_seed(std::uint64_t base, Index index) {
  std::uint64_t state = base + 0x9E3779B97F4A7C15ULL *
                                   static_cast<std::uint64_t>(index + 1);
  return splitmix64(state);
}

std::string CheckResult::summary() const {
  if (passed) {
    return "passed " + std::to_string(cases_run) + " cases (seed " +
           std::to_string(base_seed) + ")";
  }
  return "FAILED case " + std::to_string(failing_case) + "/" +
         std::to_string(cases_run) + " (base seed " +
         std::to_string(base_seed) + ", case seed " +
         std::to_string(failing_seed) + ", " + std::to_string(shrink_steps) +
         " shrink steps; rerun with EVD_TEST_SEED=" +
         std::to_string(base_seed) + ")\n  counterexample: " + counterexample +
         "\n  " + message;
}

}  // namespace evd::check
