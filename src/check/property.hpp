// The forall driver — the engine of evd::check.
//
// forall(gen, property) samples `cases` values from the generator, each from
// a per-case seed derived deterministically from the base seed, and runs the
// property on each. A property returns std::nullopt to pass or a failure
// message to fail. On the first failure the driver greedily shrinks the
// value: it walks the generator's shrink candidates, keeps the first one
// that still fails, and repeats until no candidate fails (or the step cap is
// hit). The result reports the base seed, the failing case's seed/index and
// the minimal counterexample — everything needed to reproduce the failure
// with EVD_TEST_SEED.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/gen.hpp"

namespace evd::check {

struct CheckConfig {
  Index cases = 100;
  /// 0 = use default_seed() (the EVD_TEST_SEED env override, if set).
  std::uint64_t seed = 0;
  /// Cap on shrink candidate *evaluations* (not just accepted steps).
  Index max_shrink_steps = 2000;
};

/// Base seed for property runs: EVD_TEST_SEED when set and parseable,
/// otherwise a fixed default. Parsed once.
std::uint64_t default_seed();

/// Per-case seed: SplitMix64 mix of (base, index) — uncorrelated cases.
std::uint64_t case_seed(std::uint64_t base, Index index);

struct CheckResult {
  bool passed = true;
  Index cases_run = 0;
  std::uint64_t base_seed = 0;
  // Populated on failure:
  Index failing_case = -1;
  std::uint64_t failing_seed = 0;
  Index shrink_steps = 0;       ///< Accepted shrink steps to the minimum.
  std::string counterexample;   ///< show() of the minimal failing value.
  std::string message;          ///< Property failure message at the minimum.

  /// One-paragraph human-readable report (used by test assertions).
  std::string summary() const;
};

/// Typed variant: also hands back the minimal failing value itself, for
/// tests that assert on the *structure* of the shrunk counterexample.
template <typename T>
struct TypedResult {
  CheckResult report;
  std::optional<T> minimal;
};

template <typename T, typename Property>
TypedResult<T> forall_typed(const Gen<T>& gen, Property&& property,
                            const CheckConfig& config = {}) {
  TypedResult<T> result;
  CheckResult& report = result.report;
  report.base_seed = config.seed != 0 ? config.seed : default_seed();
  for (Index i = 0; i < config.cases; ++i) {
    const std::uint64_t seed = case_seed(report.base_seed, i);
    Rng rng(seed);
    T value = gen.sample(rng);
    ++report.cases_run;
    std::optional<std::string> failure = property(value);
    if (!failure) continue;

    // Greedy shrink: accept the first candidate that still fails, restart
    // from it; stop when a full candidate sweep passes or the cap is hit.
    Index evaluations = 0;
    bool progressed = true;
    while (progressed && evaluations < config.max_shrink_steps) {
      progressed = false;
      for (const T& candidate : gen.shrink(value)) {
        if (++evaluations > config.max_shrink_steps) break;
        if (auto f = property(candidate)) {
          value = candidate;
          failure = std::move(f);
          ++report.shrink_steps;
          progressed = true;
          break;
        }
      }
    }

    report.passed = false;
    report.failing_case = i;
    report.failing_seed = seed;
    report.counterexample = gen.show(value);
    report.message = *failure;
    result.minimal = std::move(value);
    return result;
  }
  return result;
}

template <typename T, typename Property>
CheckResult forall(const Gen<T>& gen, Property&& property,
                   const CheckConfig& config = {}) {
  return forall_typed(gen, std::forward<Property>(property), config).report;
}

}  // namespace evd::check
