// Event-GNN accelerator sketch (paper §IV, adapting EnGN [73] / HyGCN [74]
// style gather-apply engines to streaming event graphs).
//
// Per-event cost of an asynchronous update:
//  * gather: read the neighbour feature vectors (SRAM traffic, possibly
//    served by a small neighbour cache with hit-rate `cache_hit_rate` —
//    event graphs have high temporal locality, so hits are cheap);
//  * apply: the MACs of the per-node kernel;
//  * scatter: write back the node's features and update the pooled readout.
// Also models the graph-construction side (grid-hash lookups) so the whole
// per-event path — the paper's "latency to incorporate events into a
// continuously evolving event-graph" — is accounted.
#pragma once

#include "hw/energy_model.hpp"

namespace evd::hw {

struct GnnAccelConfig {
  double frequency_mhz = 200.0;
  Index mac_lanes = 32;
  double cache_hit_rate = 0.7;   ///< Neighbour feature cache.
  double cache_hit_pj_per_byte = 0.5;  ///< Register-file-class energy.
  EnergyTable table = EnergyTable::digital_45nm_int8();
};

struct GnnAccelReport {
  double latency_us_per_event = 0.0;
  EnergyBreakdown energy_per_event;
};

/// Per-event accelerator cost for an async update with the given footprint.
/// `macs` and `neighbor_feature_bytes` come from AsyncGnnStats / model dims;
/// `construction_probes` is IncrementalGraphBuilder candidates scanned.
GnnAccelReport run_gnn_accel(std::int64_t macs,
                             std::int64_t neighbor_feature_bytes,
                             std::int64_t output_feature_bytes,
                             std::int64_t construction_probes,
                             const GnnAccelConfig& config);

}  // namespace evd::hw
