#include "hw/report.hpp"

#include <cstdio>

namespace evd::hw {

namespace {
std::string format_energy(double pj) {
  char buf[64];
  if (pj >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fuJ", pj * 1e-6);
  } else if (pj >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fnJ", pj * 1e-3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fpJ", pj);
  }
  return buf;
}
}  // namespace

std::string summary(const EnergyBreakdown& b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "compute %s | mem %s (%.1f%%) | total %s",
                format_energy(b.compute_pj).c_str(),
                format_energy(b.memory_pj()).c_str(),
                b.memory_fraction() * 100.0,
                format_energy(b.total_pj()).c_str());
  return buf;
}

std::string detailed(const EnergyBreakdown& b) {
  const double total = b.total_pj() > 0.0 ? b.total_pj() : 1.0;
  char buf[400];
  std::snprintf(buf, sizeof buf,
                "  compute : %12s (%5.1f%%)\n"
                "  params  : %12s (%5.1f%%)\n"
                "  acts    : %12s (%5.1f%%)\n"
                "  state   : %12s (%5.1f%%)\n"
                "  total   : %12s\n",
                format_energy(b.compute_pj).c_str(), b.compute_pj / total * 100,
                format_energy(b.param_memory_pj).c_str(),
                b.param_memory_pj / total * 100,
                format_energy(b.act_memory_pj).c_str(),
                b.act_memory_pj / total * 100,
                format_energy(b.state_memory_pj).c_str(),
                b.state_memory_pj / total * 100,
                format_energy(b.total_pj()).c_str());
  return buf;
}

}  // namespace evd::hw
