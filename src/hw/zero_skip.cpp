#include "hw/zero_skip.hpp"

#include <algorithm>
#include <stdexcept>

namespace evd::hw {

AcceleratorReport run_zero_skip(const nn::OpCounter& workload,
                                const ZeroSkipConfig& config) {
  if (config.lanes <= 0 || config.frequency_mhz <= 0.0 ||
      config.simd_lanes <= 0) {
    throw std::invalid_argument("run_zero_skip: bad config");
  }
  AcceleratorReport report;
  const std::int64_t total_macs = workload.macs();
  const std::int64_t skippable =
      std::min(workload.zero_skippable_mults, total_macs);
  report.skipped_macs = skippable;
  report.effective_macs = total_macs - skippable;
  report.vector_ops =
      (report.effective_macs + config.simd_lanes - 1) / config.simd_lanes;

  // Cycles: executed MACs plus the fraction of skipped slots the scheduler
  // could not reclaim, spread over lanes * simd_lanes values per cycle.
  const double effective_slots =
      static_cast<double>(report.effective_macs) +
      (1.0 - config.skip_efficiency) * static_cast<double>(skippable);
  report.latency_us = effective_slots /
                      (static_cast<double>(config.lanes) *
                       static_cast<double>(config.simd_lanes)) /
                      config.frequency_mhz;

  report.energy.compute_pj =
      static_cast<double>(report.effective_macs) *
          (config.table.add_pj + config.table.mult_pj) +
      static_cast<double>(workload.comparisons) * config.table.compare_pj;

  // Weights stream with the same on-chip reuse a systolic design achieves.
  report.energy.param_memory_pj =
      static_cast<double>(workload.param_bytes_read) / config.reuse_factor *
      config.table.sram_pj_per_byte;

  // Activations are stored compressed: traffic scales with the non-zero
  // fraction (+ index overhead), each access paying the irregularity penalty.
  const double act_bytes = static_cast<double>(workload.act_bytes_read +
                                               workload.act_bytes_written);
  const double density =
      total_macs > 0 ? static_cast<double>(report.effective_macs) /
                           static_cast<double>(total_macs)
                     : 1.0;
  report.energy.act_memory_pj = act_bytes * density *
                                (1.0 + config.compression_overhead) *
                                config.irregular_access_penalty /
                                config.reuse_factor *
                                config.table.sram_pj_per_byte;
  report.energy.state_memory_pj =
      static_cast<double>(workload.state_bytes_rw) *
      config.table.sram_pj_per_byte;
  return report;
}

double compressed_bytes(std::int64_t total, double sparsity,
                        double bytes_per_value, double overhead) {
  const double nz = static_cast<double>(total) * (1.0 - sparsity);
  return nz * bytes_per_value * (1.0 + overhead);
}

}  // namespace evd::hw
