// Zero-skipping CNN accelerator model (paper §III-B, NullHop [62],
// Cambricon-X [63], Eyeriss v2 [64]).
//
// Two mechanisms, with their costs:
//  * skip multiplications whose activation operand is zero — saves exactly
//    the OpCounter's `zero_skippable_mults` (and the matching adds), but
//    scheduling irregularity means only `skip_efficiency` of the saved
//    cycles convert into real time savings;
//  * compressed activation storage (non-zero list + index mask) — saves
//    activation bytes proportional to sparsity, at an `irregular_access
//    penalty` per remaining access because the SRAM pattern is no longer
//    deterministic.
#pragma once

#include "hw/systolic.hpp"

namespace evd::hw {

struct ZeroSkipConfig {
  Index lanes = 128;             ///< Parallel MAC lanes.
  double frequency_mhz = 200.0;
  double skip_efficiency = 0.8;  ///< Fraction of skipped MACs that save cycles.
  double irregular_access_penalty = 1.25;  ///< Energy factor on compressed reads.
  double compression_overhead = 0.10;      ///< Index/mask bytes per data byte.
  double reuse_factor = 16.0;    ///< On-chip reuse, same as the systolic array.
  /// MAC values each lane retires per cycle (per-lane SIMD width). Latency
  /// divides by this; skipped-slot accounting is unchanged — a vector slot
  /// the scheduler fails to reclaim wastes all of its lanes.
  Index simd_lanes = 1;
  EnergyTable table = EnergyTable::digital_45nm_int8();
};

AcceleratorReport run_zero_skip(const nn::OpCounter& workload,
                                const ZeroSkipConfig& config);

/// Bytes to store a feature map of `total` elements with `sparsity` zeros,
/// element size `bytes_per_value`, in non-zero-list compressed form
/// (Fig. 2's "compressed format"): data + index overhead.
double compressed_bytes(std::int64_t total, double sparsity,
                        double bytes_per_value, double overhead = 0.10);

}  // namespace evd::hw
