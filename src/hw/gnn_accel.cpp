#include "hw/gnn_accel.hpp"

#include <stdexcept>

namespace evd::hw {

GnnAccelReport run_gnn_accel(std::int64_t macs,
                             std::int64_t neighbor_feature_bytes,
                             std::int64_t output_feature_bytes,
                             std::int64_t construction_probes,
                             const GnnAccelConfig& config) {
  if (config.frequency_mhz <= 0.0 || config.mac_lanes <= 0) {
    throw std::invalid_argument("run_gnn_accel: bad config");
  }
  GnnAccelReport report;

  // Apply phase.
  report.energy_per_event.compute_pj =
      static_cast<double>(macs) * (config.table.add_pj + config.table.mult_pj);

  // Gather phase: hits from the near cache, misses from SRAM. Each
  // construction probe reads one node record (~16 B) from the grid hash.
  const double gather_bytes = static_cast<double>(neighbor_feature_bytes);
  report.energy_per_event.act_memory_pj =
      gather_bytes * config.cache_hit_rate * config.cache_hit_pj_per_byte +
      gather_bytes * (1.0 - config.cache_hit_rate) *
          config.table.sram_pj_per_byte;

  // Scatter phase + graph-structure maintenance count as state.
  report.energy_per_event.state_memory_pj =
      (static_cast<double>(output_feature_bytes) +
       static_cast<double>(construction_probes) * 16.0) *
      config.table.sram_pj_per_byte;

  // Parameters: small kernels resident in register files — charged at the
  // cheap rate, once per event.
  report.energy_per_event.param_memory_pj =
      static_cast<double>(macs) * 0.0;  // weight-stationary: amortised to ~0

  const double mac_cycles =
      static_cast<double>(macs) / static_cast<double>(config.mac_lanes);
  const double gather_cycles = gather_bytes / 8.0;  // 8 B/cycle SRAM port
  const double probe_cycles = static_cast<double>(construction_probes);
  report.latency_us_per_event =
      (mac_cycles + gather_cycles + probe_cycles) / config.frequency_mhz;
  return report;
}

}  // namespace evd::hw
