#include "hw/energy_model.hpp"

namespace evd::hw {

EnergyTable EnergyTable::digital_45nm_fp32() { return EnergyTable{}; }

EnergyTable EnergyTable::digital_45nm_int8() {
  EnergyTable t;
  t.add_pj = 0.03;
  t.mult_pj = 0.2;
  t.compare_pj = 0.01;
  return t;
}

EnergyTable EnergyTable::analog_neuromorphic() {
  EnergyTable t;
  t.add_pj = 0.09;    // physical summation on membrane capacitance
  t.mult_pj = 0.37;   // conductance-based weighting (Ohm's law)
  t.compare_pj = 0.02;
  t.sram_pj_per_byte = 0.25;  // state held in analogue circuit dynamics
  t.dram_pj_per_byte = 325.0;
  return t;
}

EnergyBreakdown energy_of(const nn::OpCounter& counter,
                          const EnergyTable& table) {
  EnergyBreakdown breakdown;
  breakdown.compute_pj =
      static_cast<double>(counter.adds) * table.add_pj +
      static_cast<double>(counter.mults) * table.mult_pj +
      static_cast<double>(counter.comparisons) * table.compare_pj;
  breakdown.param_memory_pj =
      static_cast<double>(counter.param_bytes_read) * table.sram_pj_per_byte;
  breakdown.act_memory_pj =
      static_cast<double>(counter.act_bytes_read +
                          counter.act_bytes_written) *
      table.sram_pj_per_byte;
  breakdown.state_memory_pj =
      static_cast<double>(counter.state_bytes_rw) * table.sram_pj_per_byte;
  return breakdown;
}

double power_mw(double energy_pj, double interval_us) {
  if (interval_us <= 0.0) return 0.0;
  // pJ / us = uW; /1000 -> mW.
  return energy_pj / interval_us * 1e-3;
}

}  // namespace evd::hw
