// Pretty-printing helpers for hardware model outputs.
#pragma once

#include <string>

#include "hw/energy_model.hpp"

namespace evd::hw {

/// One-line summary: "compute 1.2uJ | mem 8.3uJ (87%) | total 9.5uJ".
std::string summary(const EnergyBreakdown& breakdown);

/// Multi-line component breakdown with percentages.
std::string detailed(const EnergyBreakdown& breakdown);

}  // namespace evd::hw
