// Time-multiplexed neuromorphic (SNN) core model (paper §III-A, [41],[42]).
//
// A digital SNN core keeps neuron membranes and synaptic weights in SRAM and
// serialises updates through shared arithmetic. Per timestep:
//   * every neuron's state word is read, decayed and written back (clocked
//     update policy), and
//   * every synaptic event (input spike x fan-out) reads one weight and
//     performs one addition.
// Because arithmetic is cheap (adds) and every single operation drags a
// memory access with it, memory dominates the energy — the model reproduces
// the ">= 99% of total" figure of [42] directly from the counted traffic.
// The event-driven policy variant [44] charges extra state (timestamps) and
// a decay computation per touched neuron instead of per-step sweeps.
#pragma once

#include "hw/energy_model.hpp"
#include "snn/event_driven.hpp"

namespace evd::hw {

struct SnnCoreConfig {
  double frequency_mhz = 100.0;
  Index parallel_lanes = 8;     ///< Neuron updates processed per cycle.
  EnergyTable table = EnergyTable::digital_45nm_int8();
  bool analog = false;          ///< Analogue core: see EnergyTable preset.
};

struct SnnCoreReport {
  double latency_us = 0.0;
  EnergyBreakdown energy;
  std::int64_t neuron_updates = 0;
  std::int64_t synaptic_events = 0;
};

/// Evaluate an instrumented SNN workload (captured OpCounter) on the core.
/// `state_word_bytes` is the membrane state width (int16 = 2 typical).
SnnCoreReport run_snn_core(const nn::OpCounter& workload,
                           const SnnCoreConfig& config);

/// Evaluate an ExecutionCost (from snn::run_clocked / run_event_driven)
/// on the core — used to compare the two update policies at equal output.
SnnCoreReport run_snn_core(const snn::ExecutionCost& cost,
                           const SnnCoreConfig& config);

}  // namespace evd::hw
