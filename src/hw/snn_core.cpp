#include "hw/snn_core.hpp"

#include <stdexcept>

namespace evd::hw {

SnnCoreReport run_snn_core(const nn::OpCounter& workload,
                           const SnnCoreConfig& config) {
  if (config.frequency_mhz <= 0.0 || config.parallel_lanes <= 0) {
    throw std::invalid_argument("run_snn_core: bad config");
  }
  SnnCoreReport report;
  EnergyTable table =
      config.analog ? EnergyTable::analog_neuromorphic() : config.table;

  report.energy = energy_of(workload, table);
  if (config.analog) {
    // Weights are non-volatile conductances: no parameter SRAM traffic.
    report.energy.param_memory_pj = 0.0;
  }
  // State updates dominate the serialised schedule: one state word per
  // cycle-lane, plus one cycle per synaptic add.
  report.neuron_updates = workload.state_bytes_rw / 8;  // V read+write = 8 B
  report.synaptic_events = workload.adds;
  const double cycles =
      (static_cast<double>(report.neuron_updates) +
       static_cast<double>(report.synaptic_events)) /
      static_cast<double>(config.parallel_lanes);
  report.latency_us = cycles / config.frequency_mhz;
  return report;
}

SnnCoreReport run_snn_core(const snn::ExecutionCost& cost,
                           const SnnCoreConfig& config) {
  nn::OpCounter workload;
  workload.adds = cost.adds;
  workload.mults = cost.mults;
  workload.comparisons = cost.neuron_updates;  // one threshold per update
  // memory_accesses are word-granular (4-byte words: weights + state).
  workload.state_bytes_rw = cost.memory_accesses * 4;
  return run_snn_core(workload, config);
}

}  // namespace evd::hw
