// Systolic processing-element array model (paper §III-B, TPU-like [60]).
//
// A rows x cols grid of MACs with weight-stationary dataflow: deterministic
// access pattern, high data reuse, massive parallelism — but *no* sparsity
// exploitation: zero-valued activations occupy PE slots like any other.
// Latency = total (dense) MACs / active PEs / frequency; energy charges
// every MAC, with parameter and activation traffic divided by the reuse
// factor the array achieves.
#pragma once

#include "hw/energy_model.hpp"

namespace evd::hw {

struct SystolicConfig {
  Index rows = 16;
  Index cols = 16;
  double frequency_mhz = 200.0;
  double utilization = 0.85;   ///< Fraction of PE-cycles doing real work.
  double reuse_factor = 16.0;  ///< On-chip reuse: bytes cross SRAM 1/reuse.
  /// MAC values each PE retires per cycle (SIMD width of one PE datapath,
  /// mirroring the host kernels' vector lanes). 1 = the classic scalar-PE
  /// array; latency divides by this, energy per MAC does not.
  Index simd_lanes = 1;
  EnergyTable table = EnergyTable::digital_45nm_int8();
};

struct AcceleratorReport {
  double latency_us = 0.0;
  EnergyBreakdown energy;
  std::int64_t effective_macs = 0;  ///< MACs actually executed.
  std::int64_t skipped_macs = 0;    ///< MACs elided (zero-skipping only).
  /// Vector instructions issued for the executed MACs:
  /// ceil(effective_macs / simd_lanes). Equals effective_macs when
  /// simd_lanes == 1.
  std::int64_t vector_ops = 0;
};

/// Evaluate a workload (an OpCounter captured from a pipeline) on the array.
AcceleratorReport run_systolic(const nn::OpCounter& workload,
                               const SystolicConfig& config);

}  // namespace evd::hw
