// Per-operation / per-access energy tables and the basic energy roll-up.
//
// Numbers follow the 45 nm survey the paper's energy argument rests on
// (Horowitz, ISSCC'14 — the source of ref [40]'s "additions require around
// four times less energy than multiplications"):
//
//   fp32 add   0.9 pJ     fp32 mult  3.7 pJ     (ratio ~4.1x)
//   int32 add  0.1 pJ     int32 mult 3.1 pJ
//   int8  add  0.03 pJ    int8  mult 0.2 pJ
//   SRAM (64-bit word, 32 KB bank)   ~20 pJ
//   DRAM (64-bit word)               ~2600 pJ   (>100x SRAM)
//
// Presets model the three hardware families of §V: a digital edge
// accelerator, a digital neuromorphic core, and an analogue neuromorphic
// core (in-memory compute: an order of magnitude lower compute and state
// energy, per [46]).
#pragma once

#include <string>

#include "nn/counters.hpp"

namespace evd::hw {

struct EnergyTable {
  // Compute, pJ per operation.
  double add_pj = 0.9;
  double mult_pj = 3.7;
  double compare_pj = 0.05;
  // Memory, pJ per byte (word energy / word bytes).
  double sram_pj_per_byte = 2.5;    ///< ~20 pJ / 8-byte word.
  double dram_pj_per_byte = 325.0;  ///< ~2.6 nJ / 8-byte word.

  static EnergyTable digital_45nm_fp32();
  static EnergyTable digital_45nm_int8();
  /// Analogue in-memory neuromorphic core: compute and state energy scaled
  /// down by ~10x; parameters live in non-volatile conductances (no
  /// per-access parameter read energy).
  static EnergyTable analog_neuromorphic();
};

struct EnergyBreakdown {
  double compute_pj = 0.0;
  double param_memory_pj = 0.0;
  double act_memory_pj = 0.0;
  double state_memory_pj = 0.0;

  double memory_pj() const noexcept {
    return param_memory_pj + act_memory_pj + state_memory_pj;
  }
  double total_pj() const noexcept { return compute_pj + memory_pj(); }
  double memory_fraction() const noexcept {
    const double t = total_pj();
    return t > 0.0 ? memory_pj() / t : 0.0;
  }
  double total_uj() const noexcept { return total_pj() * 1e-6; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) noexcept {
    compute_pj += other.compute_pj;
    param_memory_pj += other.param_memory_pj;
    act_memory_pj += other.act_memory_pj;
    state_memory_pj += other.state_memory_pj;
    return *this;
  }
};

/// Idealised roll-up: every counted operation at table energy, every counted
/// byte from SRAM. Accelerator models refine this with their own policies.
EnergyBreakdown energy_of(const nn::OpCounter& counter,
                          const EnergyTable& table);

/// Average power (milliwatts) when the given energy is spent every
/// `interval_us` microseconds.
double power_mw(double energy_pj, double interval_us);

}  // namespace evd::hw
