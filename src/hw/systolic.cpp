#include "hw/systolic.hpp"

#include <stdexcept>

namespace evd::hw {

AcceleratorReport run_systolic(const nn::OpCounter& workload,
                               const SystolicConfig& config) {
  if (config.rows <= 0 || config.cols <= 0 || config.frequency_mhz <= 0.0 ||
      config.simd_lanes <= 0) {
    throw std::invalid_argument("run_systolic: bad config");
  }
  AcceleratorReport report;
  const std::int64_t macs = workload.macs();
  report.effective_macs = macs;  // dense: everything executes
  report.skipped_macs = 0;
  report.vector_ops = (macs + config.simd_lanes - 1) / config.simd_lanes;

  const double pe_throughput = static_cast<double>(config.rows * config.cols) *
                               static_cast<double>(config.simd_lanes) *
                               config.utilization;
  const double cycles = static_cast<double>(macs) / pe_throughput;
  report.latency_us = cycles / config.frequency_mhz;  // cycles / (MHz) = us

  report.energy.compute_pj =
      static_cast<double>(macs) * (config.table.add_pj + config.table.mult_pj) +
      static_cast<double>(workload.comparisons) * config.table.compare_pj;
  report.energy.param_memory_pj =
      static_cast<double>(workload.param_bytes_read) / config.reuse_factor *
      config.table.sram_pj_per_byte;
  report.energy.act_memory_pj =
      static_cast<double>(workload.act_bytes_read +
                          workload.act_bytes_written) /
      config.reuse_factor * config.table.sram_pj_per_byte;
  report.energy.state_memory_pj =
      static_cast<double>(workload.state_bytes_rw) *
      config.table.sram_pj_per_byte;
  return report;
}

}  // namespace evd::hw
