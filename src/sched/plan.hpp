// Execution-plan representation for the cost-model-driven planner
// (`evd::sched`, DESIGN.md section 13).
//
// A Plan answers the four scheduling questions the SessionManager's blind
// round-robin never asks:
//
//   * thread-region assignment — which worker region owns which sessions
//     (one region is pumped by exactly one worker per round, preserving the
//     one-worker-per-session determinism contract);
//   * visit order — the order a region's worker visits its sessions within
//     a round;
//   * per-visit burst — how many queued ops each visit processes before
//     yielding (per session, replacing the single global burst);
//   * paradigm placement — which evd::hw cost model each paradigm is priced
//     on (systolic vs. zero-skip for the CNN, digital vs. analogue core for
//     the SNN, small vs. large gather-apply engine for the GNN) and which
//     adjacent declared stages are fused (intermediate activations stay
//     on-chip, see core/stages.hpp).
//
// The equivalence contract — enforced bitwise by the
// sched.plan_vs_sequential oracles: a Plan redistributes and re-orders
// *visits*, never ops. Every session still applies its own ops in FIFO
// submission order on a single worker per round, so each session's decision
// stream is bit-for-bit the stream direct sequential feeding produces,
// whatever plan runs it. Placement and fusion exist purely on the modeled
// side: they change the plan's cost and the obs span labels, not the host
// arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "route/route.hpp"

namespace evd::sched {

/// Hardware cost model a paradigm's stages are priced on (paper §III-§IV
/// families; two placement choices per paradigm).
enum class HwModel : std::uint8_t {
  Systolic = 0,        ///< Dense weight-stationary PE array (CNN).
  ZeroSkip = 1,        ///< Sparsity-exploiting CNN accelerator.
  SnnCoreDigital = 2,  ///< Time-multiplexed digital neuromorphic core.
  SnnCoreAnalog = 3,   ///< Analogue in-memory neuromorphic core.
  GnnAccelSmall = 4,   ///< Gather-apply engine, 16 MAC lanes.
  GnnAccelLarge = 5,   ///< Gather-apply engine, 64 MAC lanes.
};

const char* hw_model_name(HwModel hw) noexcept;

/// The two models a paradigm label ("cnn" / "snn" / "gnn") may be placed
/// on. Unknown paradigms get the dense default {Systolic, Systolic}.
std::pair<HwModel, HwModel> allowed_models(const std::string& paradigm);

/// One scheduled visit: session `session` processes up to `burst` queued
/// ops when its region's worker reaches this entry.
struct PlanEntry {
  Index session = 0;
  Index burst = 1;
};

/// The sessions one worker pumps each round, in visit order. `label` is the
/// obs span every visit in this region runs under — owned by the plan so
/// the const char* handed to obs::Span stays valid for the plan's lifetime.
struct PlanRegion {
  std::vector<PlanEntry> entries;
  std::string label;
};

/// Modeled placement of one paradigm's declared stage chain.
struct ParadigmPlacement {
  std::string paradigm;  ///< SessionBaseConfig.paradigm label ("cnn", ...).
  HwModel hw = HwModel::Systolic;
  /// Execution path this paradigm's sessions run under the plan (see
  /// route/route.hpp). Unlike hw/fuse_group — which exist only on the
  /// modeled side — the path IS applied to live sessions by
  /// SessionManager::set_plan; the route.* oracles hold every routable
  /// path to the bitwise decision-stream contract, so the placement still
  /// never changes what a session computes. Default = the paradigm's
  /// built-in behavior.
  route::PathId path = route::PathId::Default;
  /// fuse_group[i] is the fusion group of declared stage i: non-decreasing,
  /// starts at 0, steps by at most 1. Stages sharing a group are fused —
  /// their boundary activation traffic is not charged by the cost model.
  std::vector<Index> fuse_group;
};

struct Plan {
  Index session_count = 0;
  Index burst_cap = 1;  ///< Upper bound every entry's burst respects.
  std::vector<PlanRegion> regions;
  std::vector<ParadigmPlacement> placements;
  double modeled_cost_us = 0.0;  ///< Objective value of the chosen plan.
  std::uint64_t seed = 0;        ///< Annealer seed that produced it.

  /// Structural validity: every session 0..session_count-1 scheduled
  /// exactly once, every burst in [1, burst_cap], at least one region when
  /// any session exists, no empty region, fuse groups well-formed. On
  /// failure returns false and (when `why` is non-null) says what broke.
  bool validate(std::string* why = nullptr) const;

  /// FNV-1a over the serialized bytes — stable across platforms, used as
  /// the planner cache key component and in span labels.
  std::uint64_t fingerprint() const;

  /// Human-readable one-plan summary (tests, golden snapshots, logs).
  std::string describe() const;

  /// Rebuild each region's obs span label ("sched.r<k>.p<fp>"). Call after
  /// any structural mutation; serialize()/deserialize() and the annealer do
  /// so themselves.
  void refresh_labels();

  /// Checkpoint-framed serialization (fault/checkpoint.hpp writer/reader,
  /// own magic + version) so a plan rides inside the existing
  /// checkpoint/restore machinery and restored managers resume under the
  /// same plan. deserialize() throws Error(CheckpointMismatch/Corrupt) on
  /// bad bytes and re-validates the decoded plan.
  void serialize(std::vector<std::uint8_t>& out) const;
  static Plan deserialize(std::span<const std::uint8_t> bytes);

  /// The do-nothing-clever baseline: sessions dealt round-robin across
  /// `regions` regions (session s -> region s % regions, preserving id
  /// order within each region), every burst = `burst`, default placements,
  /// no fusion. This is exactly the schedule the legacy pump executes.
  static Plan round_robin(Index session_count, Index region_count,
                          Index burst);
};

bool operator==(const Plan& a, const Plan& b);
inline bool operator!=(const Plan& a, const Plan& b) { return !(a == b); }

/// EVD_SCHED kill-switch (default on, mirrors EVD_OBS / EVD_SIMD): when
/// off, the SessionManager ignores any installed plan and runs the legacy
/// round-robin pump byte-identically to a build without this subsystem.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

}  // namespace evd::sched
