// Simulated-annealing search over the Plan space (DESIGN.md section 13;
// SET-style neighbourhood moves on a scheduling table).
//
// The search is deliberately boring where it matters:
//
//   * fully deterministic — one evd::Rng seeded from the config, no time,
//     no thread-dependent state. Same seed + same profiles => bitwise the
//     same plan whatever evd::par's pool size is (the annealer itself is
//     single-threaded; the property suite pins this);
//   * libm-free acceptance — the Metropolis exp() is replaced by the
//     rational approximation 1 / (1 + r + r^2/2) of e^-r, computed with
//     only +,*,/ so no libm implementation difference can flip an accept
//     decision and restructure a golden plan across platforms;
//   * geometric cooling — T *= cooling each iteration from
//     initial_temperature (a fraction of the starting cost, so acceptance
//     behaves identically across workloads of different magnitude);
//   * deterministic restarts — `restarts` independent walks from the same
//     round-robin start, seeds derived from config.seed by a golden-ratio
//     stride; the best plan across walks wins, which keeps one frozen walk
//     from dictating the answer.
//
// Neighbour moves (uniformly chosen): move a session to another region,
// swap two visit positions within a region, swap two entries across
// regions, re-draw one entry's burst, flip a paradigm's hw placement,
// toggle fusion at one legal (fusable_with_next) stage boundary. Every
// proposed plan satisfies Plan::validate() by construction.
#pragma once

#include <span>
#include <vector>

#include "sched/cost.hpp"
#include "sched/plan.hpp"

namespace evd::sched {

struct AnnealerConfig {
  std::uint64_t seed = 1;
  Index iterations = 600;
  double initial_temperature = 0.25;  ///< Fraction of the starting cost.
  double cooling = 0.985;             ///< Geometric per-iteration factor.
  Index region_count = 4;  ///< Worker regions to plan for (pool size).
  Index burst_cap = 8;     ///< Largest per-visit burst the search may pick.
  /// Independent Metropolis walks; the best plan across all of them wins.
  /// The geometric cooling schedule is effectively greedy after a few
  /// hundred iterations, so a single walk can freeze into a poor local
  /// optimum on lopsided populations — restarts decorrelate the walks
  /// (each gets its own seed derived from `seed`) while staying fully
  /// deterministic. Walk 0 reproduces the single-walk trajectory exactly.
  Index restarts = 4;
};

struct AnnealResult {
  Plan plan;  ///< Best plan visited; modeled_cost_us/seed filled in.
  /// Best-so-far modeled cost recorded after every *accepted* move —
  /// monotone non-increasing by construction (the property suite checks
  /// it), and its last element equals plan.modeled_cost_us.
  std::vector<double> trajectory;
  Index proposed = 0;
  Index accepted = 0;
  double initial_cost_us = 0.0;  ///< Cost of the round-robin start plan.
};

AnnealResult anneal_plan(std::span<const SessionProfile> profiles,
                         const CostModels& models,
                         const AnnealerConfig& config);

}  // namespace evd::sched
