// Plan objective: modeled serving makespan of one backlog drain, priced
// through the evd::hw accelerator models.
//
// The planner does not predict wall time — it *ranks* candidate plans on
// the same hardware cost models the paper's Table I comparisons rest on.
// The objective simulates the pump loop's structure exactly:
//
//   round time(region) = sum over entries with backlog of
//                          visit_overhead_us + served_ops * per_op_cost_us
//   round makespan     = max over regions      (workers run regions in
//                                               parallel, rounds barrier)
//   plan cost          = sum over rounds of (round_overhead_us + makespan)
//                        until every backlog drains
//
// per_op_cost_us prices a session's declared stage chain (core/stages.hpp)
// on the paradigm's placed HwModel, duty-weighted. Unfused stage
// boundaries additionally pay their intermediate activation traffic
// through SRAM at `sram_bytes_per_us`; fusing removes that charge but a
// fused group whose working set exceeds `fused_sram_budget_bytes` spills
// and pays `spill_penalty` on its compute instead — which is what makes
// fusion a genuine search decision rather than a free win.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/stages.hpp"
#include "hw/gnn_accel.hpp"
#include "hw/snn_core.hpp"
#include "hw/systolic.hpp"
#include "hw/zero_skip.hpp"
#include "sched/plan.hpp"

namespace evd::sched {

/// What the planner knows about one managed session: its paradigm label,
/// the pipeline's declared stage chain, and the expected backlog (ops per
/// planning quantum) — the workload-mix axis of the plan cache key.
struct SessionProfile {
  std::string paradigm;  ///< "cnn" / "snn" / "gnn" (SessionBaseConfig label).
  std::vector<core::StageInfo> stages;
  Index queued_ops = 64;
  /// Fraction of the paradigm's nominal dense work that is live on this
  /// session's input (1.0 = fully dense). Activity-scaled execution paths
  /// (sparse conv, event-driven stepping — route::CostShape) price their
  /// compute and parameter traffic against this; clamped to [0.05, 1] so a
  /// silent stream can never model a free path.
  double activity = 1.0;
};

/// Cost-model parameter set: one config per placeable HwModel plus the
/// boundary-traffic / fusion constants. Defaults model a single edge SoC
/// hosting all three accelerator families.
struct CostModels {
  hw::SystolicConfig systolic;
  hw::ZeroSkipConfig zero_skip;
  hw::SnnCoreConfig snn_digital;
  hw::SnnCoreConfig snn_analog;
  hw::GnnAccelConfig gnn_small;
  hw::GnnAccelConfig gnn_large;
  double sram_bytes_per_us = 8192.0;  ///< Boundary activation drain rate.
  double visit_overhead_us = 0.5;     ///< Scheduling cost per region visit.
  /// Fork-join cost of one pump() round (the pool dispatch + barrier every
  /// round pays regardless of how little it serves). This is what makes
  /// burst size a real decision: tiny bursts minimise per-round makespan
  /// imbalance but multiply the round count, and the round overhead is how
  /// the model sees that trade.
  double round_overhead_us = 10.0;
  double fused_sram_budget_bytes = 65536.0;  ///< On-chip working-set cap.
  double spill_penalty = 2.0;  ///< Compute factor once a fused group spills.
  /// Host workers available to pump regions. plan_cost_us models the
  /// executor's static region->worker assignment (region r on worker
  /// r % W, W = min(regions, host_workers)) instead of assuming every
  /// region gets its own core. 0 = resolve from the live pool
  /// (par::thread_count()) at costing time; tests and golden snapshots pin
  /// an explicit value so fingerprints do not depend on the build host.
  Index host_workers = 0;
  /// Compute/traffic multiplier a FullSweep path (route::CostShape) pays
  /// relative to the declared per-op counters: the batch message pass
  /// re-touches the whole graph per event where the declared counters
  /// describe the incremental frontier.
  double full_sweep_factor = 8.0;

  CostModels();  ///< Fills the paradigm-specific defaults.
};

/// Price `work` (an aggregated, duty-weighted OpCounter) on one model.
double model_latency_us(const nn::OpCounter& work, HwModel hw,
                        const CostModels& models);

/// Modeled cost of one op flowing through `profile`'s stage chain under
/// `placement` (hw choice + fusion groups). Sessions whose paradigm has no
/// placement use the first allowed model, unfused.
double per_op_cost_us(const SessionProfile& profile,
                      const ParadigmPlacement* placement,
                      const CostModels& models);

/// The plan objective (see file comment). `profiles[i]` describes session
/// i; profiles.size() must equal plan.session_count.
double plan_cost_us(const Plan& plan,
                    std::span<const SessionProfile> profiles,
                    const CostModels& models);

}  // namespace evd::sched
