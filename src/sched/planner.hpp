// Plan selection front door: profile extraction, the annealing search, and
// a process-wide cache keyed by (paradigm mix + geometry-derived stage
// counters + workload mix + search config).
//
// open_session-time planning must not cost an anneal per session: serving
// front-ends describe their session population once (profiles_key), and
// identical populations — same paradigms, same declared stage counters
// (which encode the pipeline geometry), same queued-op mix, same search
// config — get the cached plan back. The cache is thread-safe and bounded.
//
// Everything here is deterministic: the key is an FNV-1a fingerprint of
// the profile bytes, the search is the seeded annealer, so the same inputs
// return the same plan object on every platform and thread count.
#pragma once

#include <mutex>
#include <span>
#include <unordered_map>

#include "sched/annealer.hpp"

namespace evd::core {
class EventPipeline;
}

namespace evd::sched {

/// Deterministic fingerprint of a session population + search config — the
/// plan cache key.
std::uint64_t profiles_key(std::span<const SessionProfile> profiles,
                           const AnnealerConfig& config);

/// Build a session profile from a pipeline's declared stages. `paradigm`
/// is the SessionBaseConfig label ("cnn"/"snn"/"gnn"); `queued_ops` the
/// expected backlog per planning quantum (the workload-mix axis);
/// `activity` the live fraction of the paradigm's nominal dense work on
/// this population's input (see SessionProfile.activity — what the
/// activity-scaled execution paths are priced against).
SessionProfile profile_for(const core::EventPipeline& pipeline,
                           const std::string& paradigm, Index queued_ops,
                           double activity = 1.0);

class Planner {
 public:
  static Planner& instance();

  /// The plan for this session population: cached when seen before,
  /// annealed (and cached) otherwise.
  Plan plan_for(std::span<const SessionProfile> profiles,
                const AnnealerConfig& config = {});

  void clear_cache();
  Index cache_size() const;

 private:
  Planner();
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Plan> cache_;
};

}  // namespace evd::sched
