#include "sched/plan.hpp"

#include <algorithm>
#include <atomic>

#include "common/env.hpp"
#include "common/error.hpp"
#include "fault/checkpoint.hpp"

namespace evd::sched {
namespace {

constexpr std::uint32_t kPlanMagic = 0x53434845u;  // "SCHE"
// v2: each placement carries an execution-path byte (route::PathId) after
// its hw model. Reads are strict v2-only — a v1 plan predates routing and
// re-planning is cheaper than a migration path nothing would exercise.
constexpr std::uint32_t kPlanVersion = 2;
constexpr std::size_t kPlanMaxBytes = 1u << 20;

std::atomic<bool>& enabled_state() {
  static std::atomic<bool> state{env_flag("EVD_SCHED", true)};
  return state;
}

}  // namespace

bool enabled() noexcept {
  return enabled_state().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_state().store(on, std::memory_order_relaxed);
}

const char* hw_model_name(HwModel hw) noexcept {
  switch (hw) {
    case HwModel::Systolic: return "systolic";
    case HwModel::ZeroSkip: return "zero_skip";
    case HwModel::SnnCoreDigital: return "snn_core_digital";
    case HwModel::SnnCoreAnalog: return "snn_core_analog";
    case HwModel::GnnAccelSmall: return "gnn_accel_small";
    case HwModel::GnnAccelLarge: return "gnn_accel_large";
  }
  return "unknown";
}

std::pair<HwModel, HwModel> allowed_models(const std::string& paradigm) {
  if (paradigm == "cnn") return {HwModel::Systolic, HwModel::ZeroSkip};
  if (paradigm == "snn") return {HwModel::SnnCoreDigital, HwModel::SnnCoreAnalog};
  if (paradigm == "gnn") return {HwModel::GnnAccelSmall, HwModel::GnnAccelLarge};
  return {HwModel::Systolic, HwModel::Systolic};
}

bool Plan::validate(std::string* why) const {
  const auto fail = [why](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  if (session_count < 0) return fail("negative session_count");
  if (burst_cap < 1) return fail("burst_cap must be >= 1");
  if (session_count > 0 && regions.empty()) {
    return fail("sessions exist but no regions");
  }
  std::vector<Index> seen(static_cast<size_t>(session_count), 0);
  for (size_t r = 0; r < regions.size(); ++r) {
    const PlanRegion& region = regions[r];
    if (region.entries.empty()) {
      return fail("region " + std::to_string(r) + " is empty");
    }
    for (const PlanEntry& e : region.entries) {
      if (e.session < 0 || e.session >= session_count) {
        return fail("entry session " + std::to_string(e.session) +
                    " out of range [0, " + std::to_string(session_count) + ")");
      }
      if (e.burst < 1 || e.burst > burst_cap) {
        return fail("entry burst " + std::to_string(e.burst) +
                    " outside [1, " + std::to_string(burst_cap) + "]");
      }
      ++seen[static_cast<size_t>(e.session)];
    }
  }
  for (Index s = 0; s < session_count; ++s) {
    if (seen[static_cast<size_t>(s)] != 1) {
      return fail("session " + std::to_string(s) + " scheduled " +
                  std::to_string(seen[static_cast<size_t>(s)]) +
                  " times (want exactly 1)");
    }
  }
  for (const ParadigmPlacement& p : placements) {
    if (p.paradigm.empty()) return fail("placement with empty paradigm");
    if (p.path != route::PathId::Default &&
        !route::path_valid_for(p.path, p.paradigm)) {
      return fail("placement '" + p.paradigm + "' routes to path '" +
                  route::path_name(p.path) + "' owned by another paradigm");
    }
    Index prev = -1;
    for (size_t i = 0; i < p.fuse_group.size(); ++i) {
      const Index g = p.fuse_group[i];
      const Index expected_min = prev;
      const Index expected_max = prev + 1;
      if (i == 0 ? g != 0 : (g < expected_min || g > expected_max)) {
        return fail("placement '" + p.paradigm +
                    "' fuse_group is not a contiguous non-decreasing "
                    "grouping starting at 0");
      }
      prev = g;
    }
  }
  return true;
}

std::uint64_t Plan::fingerprint() const {
  std::vector<std::uint8_t> bytes;
  serialize(bytes);
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64-bit offset basis
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
std::string hex8(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return s;
}
}  // namespace

void Plan::refresh_labels() {
  // Fingerprint without the labels themselves (serialize skips them), so
  // the label is a pure function of the plan's decisions.
  const std::string fp = hex8(fingerprint());
  for (size_t r = 0; r < regions.size(); ++r) {
    regions[r].label = "sched.r" + std::to_string(r) + ".p" + fp;
  }
}

std::string Plan::describe() const {
  std::string s = "plan{sessions=" + std::to_string(session_count) +
                  " regions=" + std::to_string(regions.size()) +
                  " cost_us=" + std::to_string(modeled_cost_us) + "\n";
  for (size_t r = 0; r < regions.size(); ++r) {
    s += "  r" + std::to_string(r) + ":";
    for (const PlanEntry& e : regions[r].entries) {
      s += " s" + std::to_string(e.session) + "x" + std::to_string(e.burst);
    }
    s += "\n";
  }
  for (const ParadigmPlacement& p : placements) {
    s += "  " + p.paradigm + " -> " + hw_model_name(p.hw) + " path=" +
         route::path_name(p.path) + " fuse=[";
    for (size_t i = 0; i < p.fuse_group.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(p.fuse_group[i]);
    }
    s += "]\n";
  }
  s += "}";
  return s;
}

void Plan::serialize(std::vector<std::uint8_t>& out) const {
  fault::CheckpointWriter w(out, kPlanMaxBytes);
  w.u32(kPlanMagic);
  w.u32(kPlanVersion);
  w.i64(session_count);
  w.i64(burst_cap);
  w.i64(static_cast<std::int64_t>(seed));
  w.f64(modeled_cost_us);
  w.i64(static_cast<std::int64_t>(regions.size()));
  for (const PlanRegion& region : regions) {
    // Labels are derived (refresh_labels), not stored.
    w.pod_vector(region.entries);
  }
  w.i64(static_cast<std::int64_t>(placements.size()));
  for (const ParadigmPlacement& p : placements) {
    w.str(p.paradigm);
    w.u32(static_cast<std::uint32_t>(p.hw));
    w.u8(static_cast<std::uint8_t>(p.path));
    w.pod_vector(p.fuse_group);
  }
}

Plan Plan::deserialize(std::span<const std::uint8_t> bytes) {
  fault::CheckpointReader r(bytes);
  if (r.u32() != kPlanMagic) {
    throw Error(ErrorCode::CheckpointMismatch,
                "Plan::deserialize: bad magic (not a serialized plan)");
  }
  if (const auto version = r.u32(); version != kPlanVersion) {
    throw Error(ErrorCode::CheckpointMismatch,
                "Plan::deserialize: unsupported version " +
                    std::to_string(version));
  }
  Plan plan;
  plan.session_count = r.i64();
  // Bound before anything sizes off it: validate() allocates a seen-count
  // per session, so a corrupt count must die here as a typed error, not as
  // a multi-terabyte allocation. A 1 MiB frame cannot describe more
  // sessions than it has PlanEntry bytes.
  if (plan.session_count < 0 ||
      plan.session_count >
          static_cast<Index>(kPlanMaxBytes / sizeof(PlanEntry))) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "Plan::deserialize: implausible session count");
  }
  plan.burst_cap = r.i64();
  plan.seed = static_cast<std::uint64_t>(r.i64());
  plan.modeled_cost_us = r.f64();
  const std::int64_t nregions = r.i64();
  if (nregions < 0 || nregions > plan.session_count) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "Plan::deserialize: implausible region count");
  }
  plan.regions.resize(static_cast<size_t>(nregions));
  for (PlanRegion& region : plan.regions) {
    r.pod_vector(region.entries);
  }
  const std::int64_t nplacements = r.i64();
  if (nplacements < 0 || nplacements > 64) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "Plan::deserialize: implausible placement count");
  }
  plan.placements.resize(static_cast<size_t>(nplacements));
  for (ParadigmPlacement& p : plan.placements) {
    p.paradigm = r.str();
    const std::uint32_t hw = r.u32();
    if (hw > static_cast<std::uint32_t>(HwModel::GnnAccelLarge)) {
      throw Error(ErrorCode::CheckpointCorrupt,
                  "Plan::deserialize: unknown hw model " + std::to_string(hw));
    }
    p.hw = static_cast<HwModel>(hw);
    const std::uint8_t path_byte = r.u8();
    const auto path = route::path_from_byte(path_byte);
    if (!path) {
      throw Error(ErrorCode::CheckpointCorrupt,
                  "Plan::deserialize: unknown execution path " +
                      std::to_string(path_byte));
    }
    p.path = *path;
    r.pod_vector(p.fuse_group);
  }
  r.expect_end();
  if (std::string why; !plan.validate(&why)) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "Plan::deserialize: decoded plan invalid: " + why);
  }
  plan.refresh_labels();
  return plan;
}

Plan Plan::round_robin(Index session_count, Index region_count, Index burst) {
  Plan plan;
  plan.session_count = session_count;
  plan.burst_cap = burst < 1 ? 1 : burst;
  if (session_count <= 0) return plan;
  if (region_count < 1) region_count = 1;
  if (region_count > session_count) region_count = session_count;
  plan.regions.resize(static_cast<size_t>(region_count));
  // session s -> region s % W in id order: exactly the visit pattern the
  // legacy grain-1 parallel_for produces with W workers.
  for (Index s = 0; s < session_count; ++s) {
    plan.regions[static_cast<size_t>(s % region_count)].entries.push_back(
        PlanEntry{s, plan.burst_cap});
  }
  plan.refresh_labels();
  return plan;
}

bool operator==(const Plan& a, const Plan& b) {
  if (a.session_count != b.session_count || a.burst_cap != b.burst_cap ||
      a.regions.size() != b.regions.size() ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (size_t r = 0; r < a.regions.size(); ++r) {
    const auto& ra = a.regions[r].entries;
    const auto& rb = b.regions[r].entries;
    if (ra.size() != rb.size()) return false;
    for (size_t i = 0; i < ra.size(); ++i) {
      if (ra[i].session != rb[i].session || ra[i].burst != rb[i].burst) {
        return false;
      }
    }
  }
  for (size_t p = 0; p < a.placements.size(); ++p) {
    const auto& pa = a.placements[p];
    const auto& pb = b.placements[p];
    if (pa.paradigm != pb.paradigm || pa.hw != pb.hw || pa.path != pb.path ||
        pa.fuse_group != pb.fuse_group) {
      return false;
    }
  }
  return true;
}

}  // namespace evd::sched
