#include "sched/cost.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "route/route.hpp"

namespace evd::sched {
namespace {

/// Scale a stage's per-op counter by its duty cycle. Counters are integral;
/// the planner works in expected ops, so scale in double and round to
/// nearest — the models only see aggregated counts.
nn::OpCounter scaled(const nn::OpCounter& c, double duty) {
  const auto s = [duty](std::int64_t v) {
    return static_cast<std::int64_t>(static_cast<double>(v) * duty + 0.5);
  };
  nn::OpCounter out;
  out.mults = s(c.mults);
  out.adds = s(c.adds);
  out.comparisons = s(c.comparisons);
  out.zero_skippable_mults = s(c.zero_skippable_mults);
  out.param_bytes_read = s(c.param_bytes_read);
  out.act_bytes_read = s(c.act_bytes_read);
  out.act_bytes_written = s(c.act_bytes_written);
  out.state_bytes_rw = s(c.state_bytes_rw);
  return out;
}

/// Re-price a group's aggregated work for the placement's execution path.
/// The declared counters describe the paradigm's default path; the other
/// routable paths are the paper's dichotomy made searchable:
///
///   * ActivityScaled (sparse conv, event-driven stepping) — compute and
///     parameter traffic shrink to the live fraction of the input, but
///     every skipped operand still pays its zero test (one comparison per
///     declared mult), so dense inputs price *worse* than the default.
///   * FullSweep (batch message pass) — everything the declared counters
///     touch is re-touched for the whole state, modeled as a constant
///     factor over the frontier counters.
nn::OpCounter shape_for_path(const nn::OpCounter& c, route::CostShape shape,
                             double activity, const CostModels& models) {
  const auto s = [](double v) {
    return static_cast<std::int64_t>(v + 0.5);
  };
  switch (shape) {
    case route::CostShape::AsDeclared:
      return c;
    case route::CostShape::ActivityScaled: {
      const double a = std::clamp(activity, 0.05, 1.0);
      nn::OpCounter out = c;
      out.mults = s(static_cast<double>(c.mults) * a);
      out.adds = s(static_cast<double>(c.adds) * a);
      out.zero_skippable_mults =
          s(static_cast<double>(c.zero_skippable_mults) * a);
      out.param_bytes_read = s(static_cast<double>(c.param_bytes_read) * a);
      out.act_bytes_read = s(static_cast<double>(c.act_bytes_read) * a);
      out.comparisons = c.comparisons + c.mults;  // per-operand zero tests
      return out;
    }
    case route::CostShape::FullSweep: {
      const double f = std::max(1.0, models.full_sweep_factor);
      nn::OpCounter out = c;
      out.mults = s(static_cast<double>(c.mults) * f);
      out.adds = s(static_cast<double>(c.adds) * f);
      out.zero_skippable_mults =
          s(static_cast<double>(c.zero_skippable_mults) * f);
      out.param_bytes_read = s(static_cast<double>(c.param_bytes_read) * f);
      out.act_bytes_read = s(static_cast<double>(c.act_bytes_read) * f);
      out.act_bytes_written = s(static_cast<double>(c.act_bytes_written) * f);
      out.state_bytes_rw = s(static_cast<double>(c.state_bytes_rw) * f);
      return out;
    }
  }
  return c;
}

route::CostShape placement_shape(const ParadigmPlacement* placement) {
  if (placement == nullptr || placement->path == route::PathId::Default) {
    return route::CostShape::AsDeclared;
  }
  const route::ExecutionPath* path =
      route::PathRegistry::instance().find(placement->path);
  // is_default variants alias the built-in behavior, so their descriptors
  // carry AsDeclared; unknown ids (never produced by validate()d plans)
  // price as declared too.
  return path != nullptr ? path->cost : route::CostShape::AsDeclared;
}

}  // namespace

CostModels::CostModels() {
  snn_digital.analog = false;
  snn_analog.analog = true;
  snn_analog.table = hw::EnergyTable::analog_neuromorphic();
  gnn_small.mac_lanes = 16;
  gnn_large.mac_lanes = 64;
  // The large engine buys lanes with a bigger, slightly slower array and a
  // better neighbour cache — so small-vs-large is geometry-dependent, not
  // a dominated choice.
  gnn_large.frequency_mhz = 150.0;
  gnn_large.cache_hit_rate = 0.85;
  zero_skip.lanes = 64;
}

double model_latency_us(const nn::OpCounter& work, HwModel hw,
                        const CostModels& models) {
  switch (hw) {
    case HwModel::Systolic:
      return hw::run_systolic(work, models.systolic).latency_us;
    case HwModel::ZeroSkip:
      return hw::run_zero_skip(work, models.zero_skip).latency_us;
    case HwModel::SnnCoreDigital:
      return hw::run_snn_core(work, models.snn_digital).latency_us;
    case HwModel::SnnCoreAnalog:
      return hw::run_snn_core(work, models.snn_analog).latency_us;
    case HwModel::GnnAccelSmall:
    case HwModel::GnnAccelLarge: {
      const auto& cfg =
          hw == HwModel::GnnAccelSmall ? models.gnn_small : models.gnn_large;
      // Map the aggregated counter onto the gather/apply/scatter engine:
      // reads are neighbour gathers, writes the scatter, comparisons the
      // grid-hash construction probes.
      return hw::run_gnn_accel(work.macs(), work.act_bytes_read,
                               work.act_bytes_written, work.comparisons, cfg)
          .latency_us_per_event;
    }
  }
  return 0.0;
}

double per_op_cost_us(const SessionProfile& profile,
                      const ParadigmPlacement* placement,
                      const CostModels& models) {
  if (profile.stages.empty()) {
    // Opaque pipeline: charge a nominal dense op so the planner still
    // balances it across regions rather than treating it as free.
    nn::OpCounter nominal;
    nominal.mults = nominal.adds = 1024;
    nominal.act_bytes_read = 256;
    return model_latency_us(nominal, HwModel::Systolic, models);
  }
  const HwModel hw = placement != nullptr
                         ? placement->hw
                         : allowed_models(profile.paradigm).first;
  const std::vector<Index>* groups =
      placement != nullptr && placement->fuse_group.size() ==
                                  profile.stages.size()
          ? &placement->fuse_group
          : nullptr;

  double total = 0.0;
  size_t i = 0;
  while (i < profile.stages.size()) {
    // Collect the fused group starting at stage i (a single stage when no
    // placement or the identity grouping applies).
    size_t j = i + 1;
    if (groups != nullptr) {
      while (j < profile.stages.size() && (*groups)[j] == (*groups)[i]) ++j;
    }
    nn::OpCounter work;
    double group_bytes = 0.0;
    for (size_t k = i; k < j; ++k) {
      const core::StageInfo& stage = profile.stages[k];
      work += scaled(stage.per_op, stage.duty);
      group_bytes += static_cast<double>(stage.per_op.act_bytes_written) *
                     stage.duty;
    }
    work = shape_for_path(work, placement_shape(placement), profile.activity,
                          models);
    double group_us = model_latency_us(work, hw, models);
    // A fused group must hold every member's output resident; past the
    // SRAM budget it spills and the fusion win turns into a penalty.
    if (j - i > 1 && group_bytes > models.fused_sram_budget_bytes) {
      group_us *= models.spill_penalty;
    }
    total += group_us;
    // Boundary to the next group: the intermediate activations cross SRAM.
    if (j < profile.stages.size()) {
      const core::StageInfo& last = profile.stages[j - 1];
      const double boundary_bytes =
          static_cast<double>(last.per_op.act_bytes_written) * last.duty;
      total += boundary_bytes / models.sram_bytes_per_us;
    }
    i = j;
  }
  return total;
}

double plan_cost_us(const Plan& plan,
                    std::span<const SessionProfile> profiles,
                    const CostModels& models) {
  if (static_cast<Index>(profiles.size()) != plan.session_count) {
    throw Error(ErrorCode::InvalidArgument,
                "plan_cost_us: profiles/session_count mismatch");
  }
  // Per-session op price under the plan's placements.
  std::vector<double> op_us(profiles.size(), 0.0);
  std::vector<std::int64_t> backlog(profiles.size(), 0);
  for (size_t s = 0; s < profiles.size(); ++s) {
    const ParadigmPlacement* placement = nullptr;
    for (const ParadigmPlacement& p : plan.placements) {
      if (p.paradigm == profiles[s].paradigm) {
        placement = &p;
        break;
      }
    }
    op_us[s] = per_op_cost_us(profiles[s], placement, models);
    backlog[s] = std::max<Index>(0, profiles[s].queued_ops);
  }
  // Simulate the pump: rounds barrier on the slowest WORKER, not the
  // slowest region. The executor's grain-1 parallel_for deals region r to
  // worker r % W, so a host with fewer workers than regions serializes
  // several regions onto one core — pretending every region owns a core
  // would make the annealer buy region counts the host cannot pay for.
  const Index resolved_workers =
      models.host_workers > 0 ? models.host_workers : par::thread_count();
  const auto workers = static_cast<size_t>(
      std::clamp<Index>(resolved_workers, 1,
                        std::max<Index>(1, static_cast<Index>(
                                               plan.regions.size()))));
  std::vector<double> worker_us(workers, 0.0);
  double total_us = 0.0;
  std::int64_t remaining = 0;
  for (std::int64_t b : backlog) remaining += b;
  while (remaining > 0) {
    std::fill(worker_us.begin(), worker_us.end(), 0.0);
    double makespan = 0.0;
    for (size_t r = 0; r < plan.regions.size(); ++r) {
      double region_us = 0.0;
      for (const PlanEntry& e : plan.regions[r].entries) {
        std::int64_t& left = backlog[static_cast<size_t>(e.session)];
        if (left <= 0) continue;
        const std::int64_t served = std::min<std::int64_t>(left, e.burst);
        region_us += models.visit_overhead_us +
                     static_cast<double>(served) *
                         op_us[static_cast<size_t>(e.session)];
        left -= served;
        remaining -= served;
      }
      worker_us[r % workers] += region_us;
    }
    for (const double w : worker_us) makespan = std::max(makespan, w);
    if (makespan <= 0.0) break;  // nothing servable: plan misses sessions
    total_us += models.round_overhead_us + makespan;
  }
  return total_us;
}

}  // namespace evd::sched
