#include "sched/planner.hpp"

#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "route/route.hpp"

namespace evd::sched {
namespace {

constexpr size_t kCacheCap = 64;  ///< Distinct populations kept.

void fnv_bytes(std::uint64_t& h, const void* data, size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
}

void fnv_i64(std::uint64_t& h, std::int64_t v) { fnv_bytes(h, &v, sizeof(v)); }

}  // namespace

std::uint64_t profiles_key(std::span<const SessionProfile> profiles,
                           const AnnealerConfig& config) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const SessionProfile& profile : profiles) {
    fnv_bytes(h, profile.paradigm.data(), profile.paradigm.size());
    fnv_i64(h, profile.queued_ops);
    fnv_bytes(h, &profile.activity, sizeof(profile.activity));
    for (const core::StageInfo& stage : profile.stages) {
      fnv_bytes(h, stage.name.data(), stage.name.size());
      fnv_bytes(h, &stage.per_op, sizeof(stage.per_op));
      fnv_bytes(h, &stage.duty, sizeof(stage.duty));
      fnv_i64(h, stage.fusable_with_next ? 1 : 0);
    }
  }
  fnv_bytes(h, &config.seed, sizeof(config.seed));
  fnv_i64(h, config.iterations);
  fnv_bytes(h, &config.initial_temperature, sizeof(config.initial_temperature));
  fnv_bytes(h, &config.cooling, sizeof(config.cooling));
  fnv_i64(h, config.region_count);
  fnv_i64(h, config.burst_cap);
  fnv_i64(h, config.restarts);
  // Axes outside the profiles that still change the annealed plan: the
  // host parallelism the default CostModels resolves (satellite of the
  // worker-aware makespan) and the set of proved execution paths the path
  // move may draw from (grows as route.* oracles register).
  fnv_i64(h, par::thread_count());
  for (const route::ExecutionPath& path :
       route::PathRegistry::instance().paths()) {
    fnv_i64(h, static_cast<std::int64_t>(path.id));
    fnv_i64(h, route::PathRegistry::instance().proved(path.id) ? 1 : 0);
  }
  return h;
}

SessionProfile profile_for(const core::EventPipeline& pipeline,
                           const std::string& paradigm, Index queued_ops,
                           double activity) {
  SessionProfile profile;
  profile.paradigm = paradigm;
  profile.stages = pipeline.stream_stages();
  profile.queued_ops = queued_ops < 1 ? 1 : queued_ops;
  profile.activity = activity;
  return profile;
}

Planner& Planner::instance() {
  static Planner planner;
  return planner;
}

Planner::Planner() = default;

Plan Planner::plan_for(std::span<const SessionProfile> profiles,
                       const AnnealerConfig& config) {
  static obs::Counter hits = obs::counter("evd_sched_plan_cache_hits_total");
  static obs::Counter built = obs::counter("evd_sched_plans_built_total");
  static obs::Gauge cost = obs::gauge("evd_sched_plan_cost_us");
  const std::uint64_t key = profiles_key(profiles, config);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      hits.add(1);
      return it->second;
    }
  }
  const AnnealResult result = anneal_plan(profiles, CostModels{}, config);
  built.add(1);
  cost.set(result.plan.modeled_cost_us);
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.size() >= kCacheCap) cache_.clear();  // crude but bounded
  cache_.emplace(key, result.plan);
  return result.plan;
}

void Planner::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
}

Index Planner::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<Index>(cache_.size());
}

}  // namespace evd::sched
