#include "sched/annealer.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "route/route.hpp"

namespace evd::sched {
namespace {

/// e^-r approximated with +,*,/ only (2nd-order Padé-style denominator):
/// monotone decreasing in r on [0, inf), 1 at r = 0 — the properties the
/// Metropolis rule needs — and bitwise identical on every platform, which
/// std::exp is not required to be.
double accept_probability(double delta, double temperature) {
  if (delta <= 0.0) return 1.0;
  if (temperature <= 0.0) return 0.0;
  const double r = delta / temperature;
  return 1.0 / (1.0 + r + 0.5 * r * r);
}

/// Deduplicated paradigms of `profiles`, in first-appearance order, with
/// default placements (first allowed model, identity fusion groups).
std::vector<ParadigmPlacement> default_placements(
    std::span<const SessionProfile> profiles) {
  std::vector<ParadigmPlacement> placements;
  for (const SessionProfile& profile : profiles) {
    bool known = false;
    for (const ParadigmPlacement& p : placements) {
      if (p.paradigm == profile.paradigm) {
        known = true;
        break;
      }
    }
    if (known) continue;
    ParadigmPlacement p;
    p.paradigm = profile.paradigm;
    p.hw = allowed_models(profile.paradigm).first;
    p.path = route::PathId::Default;  // the legacy pump's behavior
    p.fuse_group.resize(profile.stages.size());
    for (size_t i = 0; i < p.fuse_group.size(); ++i) {
      p.fuse_group[i] = static_cast<Index>(i);  // nothing fused
    }
    placements.push_back(std::move(p));
  }
  return placements;
}

/// Stage chain a placement's fuse decisions refer to (first profile with
/// that paradigm — all sessions of a paradigm share the pipeline config in
/// a planning quantum).
const SessionProfile* profile_for_paradigm(
    std::span<const SessionProfile> profiles, const std::string& paradigm) {
  for (const SessionProfile& p : profiles) {
    if (p.paradigm == paradigm) return &p;
  }
  return nullptr;
}

/// Renumber a fuse grouping so it is contiguous and 0-based again after a
/// merge/split edit expressed as "boundary b fused yes/no".
void rebuild_groups(std::vector<Index>& groups,
                    const std::vector<bool>& fused_boundary) {
  Index g = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0 && !fused_boundary[i - 1]) ++g;
    groups[i] = g;
  }
}

struct MoveContext {
  Plan& plan;
  std::span<const SessionProfile> profiles;
  Rng& rng;
};

/// Move kind 0: relocate one entry to another region (at a drawn position).
bool move_relocate(MoveContext& ctx) {
  if (ctx.plan.regions.size() < 2) return false;
  const auto from =
      static_cast<size_t>(ctx.rng.uniform_int(ctx.plan.regions.size()));
  auto& src = ctx.plan.regions[from].entries;
  if (src.size() < 2) return false;  // regions must stay non-empty
  auto to = static_cast<size_t>(ctx.rng.uniform_int(ctx.plan.regions.size() - 1));
  if (to >= from) ++to;  // uniform over the *other* regions
  auto& dst = ctx.plan.regions[to].entries;
  const auto at = static_cast<size_t>(ctx.rng.uniform_int(src.size()));
  const PlanEntry entry = src[at];
  src.erase(src.begin() + static_cast<std::ptrdiff_t>(at));
  const auto pos = static_cast<size_t>(ctx.rng.uniform_int(dst.size() + 1));
  dst.insert(dst.begin() + static_cast<std::ptrdiff_t>(pos), entry);
  return true;
}

/// Move kind 1: swap two visit positions within one region.
bool move_swap_within(MoveContext& ctx) {
  if (ctx.plan.regions.empty()) return false;
  auto& entries =
      ctx.plan.regions[static_cast<size_t>(
                           ctx.rng.uniform_int(ctx.plan.regions.size()))]
          .entries;
  if (entries.size() < 2) return false;
  const auto a = static_cast<size_t>(ctx.rng.uniform_int(entries.size()));
  auto b = static_cast<size_t>(ctx.rng.uniform_int(entries.size() - 1));
  if (b >= a) ++b;
  std::swap(entries[a], entries[b]);
  return true;
}

/// Move kind 2: swap two entries across two regions (balances load without
/// changing region sizes).
bool move_swap_across(MoveContext& ctx) {
  if (ctx.plan.regions.size() < 2) return false;
  const auto ra =
      static_cast<size_t>(ctx.rng.uniform_int(ctx.plan.regions.size()));
  auto rb =
      static_cast<size_t>(ctx.rng.uniform_int(ctx.plan.regions.size() - 1));
  if (rb >= ra) ++rb;
  auto& ea = ctx.plan.regions[ra].entries;
  auto& eb = ctx.plan.regions[rb].entries;
  const auto a = static_cast<size_t>(ctx.rng.uniform_int(ea.size()));
  const auto b = static_cast<size_t>(ctx.rng.uniform_int(eb.size()));
  std::swap(ea[a], eb[b]);
  return true;
}

/// Move kind 3: re-draw one entry's burst in [1, burst_cap].
bool move_burst(MoveContext& ctx) {
  if (ctx.plan.regions.empty() || ctx.plan.burst_cap < 2) return false;
  auto& entries =
      ctx.plan.regions[static_cast<size_t>(
                           ctx.rng.uniform_int(ctx.plan.regions.size()))]
          .entries;
  auto& entry = entries[static_cast<size_t>(ctx.rng.uniform_int(entries.size()))];
  const Index burst =
      1 + static_cast<Index>(
              ctx.rng.uniform_int(static_cast<std::uint64_t>(ctx.plan.burst_cap)));
  if (burst == entry.burst) return false;
  entry.burst = burst;
  return true;
}

/// Move kind 4: flip one paradigm's hardware placement to its alternative.
bool move_placement(MoveContext& ctx) {
  if (ctx.plan.placements.empty()) return false;
  auto& p = ctx.plan.placements[static_cast<size_t>(
      ctx.rng.uniform_int(ctx.plan.placements.size()))];
  const auto [first, second] = allowed_models(p.paradigm);
  if (first == second) return false;
  p.hw = (p.hw == first) ? second : first;
  return true;
}

/// Move kind 6: re-draw one paradigm's execution path among its routable
/// set — Default plus the variants whose route.* equivalence oracle has
/// marked them proved (PathRegistry). The annealer can therefore explore
/// the paper's dense-vs-event-driven dichotomy, but only over paths whose
/// decision streams are pinned bitwise-identical to the default.
bool move_path(MoveContext& ctx) {
  if (ctx.plan.placements.empty()) return false;
  auto& p = ctx.plan.placements[static_cast<size_t>(
      ctx.rng.uniform_int(ctx.plan.placements.size()))];
  const std::vector<route::PathId> routable =
      route::PathRegistry::instance().routable(p.paradigm);
  if (routable.size() < 2) return false;  // only Default: nothing to draw
  const route::PathId drawn =
      routable[static_cast<size_t>(ctx.rng.uniform_int(routable.size()))];
  if (drawn == p.path) return false;
  p.path = drawn;
  return true;
}

/// Move kind 5: toggle fusion at one *legal* stage boundary (the stage
/// before the boundary must declare fusable_with_next).
bool move_fusion(MoveContext& ctx) {
  if (ctx.plan.placements.empty()) return false;
  auto& p = ctx.plan.placements[static_cast<size_t>(
      ctx.rng.uniform_int(ctx.plan.placements.size()))];
  const SessionProfile* profile =
      profile_for_paradigm(ctx.profiles, p.paradigm);
  if (profile == nullptr || p.fuse_group.size() != profile->stages.size() ||
      p.fuse_group.size() < 2) {
    return false;
  }
  std::vector<size_t> legal;
  for (size_t b = 0; b + 1 < p.fuse_group.size(); ++b) {
    if (profile->stages[b].fusable_with_next) legal.push_back(b);
  }
  if (legal.empty()) return false;
  const size_t boundary =
      legal[static_cast<size_t>(ctx.rng.uniform_int(legal.size()))];
  std::vector<bool> fused(p.fuse_group.size() - 1);
  for (size_t b = 0; b + 1 < p.fuse_group.size(); ++b) {
    fused[b] = p.fuse_group[b] == p.fuse_group[b + 1];
  }
  fused[boundary] = !fused[boundary];
  rebuild_groups(p.fuse_group, fused);
  return true;
}

}  // namespace

AnnealResult anneal_plan(std::span<const SessionProfile> profiles,
                         const CostModels& models,
                         const AnnealerConfig& config) {
  const auto n = static_cast<Index>(profiles.size());
  AnnealResult result;
  // Start from exactly the legacy schedule so the search can only improve
  // on what the blind pump would do.
  Plan current = Plan::round_robin(
      n, config.region_count,
      std::clamp<Index>(3, 1, std::max<Index>(1, config.burst_cap)));
  current.burst_cap = std::max<Index>(1, config.burst_cap);
  current.placements = default_placements(profiles);
  current.seed = config.seed;
  if (std::string why; !current.validate(&why)) {
    throw Error(ErrorCode::InvalidArgument, "anneal_plan: seed plan: " + why);
  }
  const double initial_cost = plan_cost_us(current, profiles, models);
  result.initial_cost_us = initial_cost;

  Plan best = current;
  double best_cost = initial_cost;

  // The cooling schedule is effectively greedy once the temperature has
  // decayed (0.985^300 ~ 1%), so each walk freezes into whichever basin its
  // early accepted moves picked. Independent restarts — each a fresh walk
  // from the round-robin start with a decorrelated rng — turn "one walk got
  // stuck" from a plan-quality cliff into a per-walk coin toss the best-of
  // reduction absorbs. Walk 0 uses config.seed itself, so restarts = 1 is
  // bit-for-bit the historical single-walk search.
  const Index restarts = std::max<Index>(1, config.restarts);
  for (Index walk = 0; walk < restarts; ++walk) {
    Plan current_walk = current;
    double current_cost = initial_cost;
    Rng rng(config.seed +
            0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(walk));
    double temperature =
        config.initial_temperature * std::max(initial_cost, 1e-9);
    for (Index it = 0; it < config.iterations;
         ++it, temperature *= config.cooling) {
      Plan candidate = current_walk;
      MoveContext ctx{candidate, profiles, rng};
      bool changed = false;
      switch (rng.uniform_int(7)) {
        case 0: changed = move_relocate(ctx); break;
        case 1: changed = move_swap_within(ctx); break;
        case 2: changed = move_swap_across(ctx); break;
        case 3: changed = move_burst(ctx); break;
        case 4: changed = move_placement(ctx); break;
        case 5: changed = move_fusion(ctx); break;
        case 6: changed = move_path(ctx); break;
      }
      if (!changed) continue;
      ++result.proposed;
      const double candidate_cost = plan_cost_us(candidate, profiles, models);
      const double p =
          accept_probability(candidate_cost - current_cost, temperature);
      if (p >= 1.0 || rng.uniform() < p) {
        current_walk = std::move(candidate);
        current_cost = candidate_cost;
        ++result.accepted;
        if (current_cost < best_cost) {
          best = current_walk;
          best_cost = current_cost;
        }
        result.trajectory.push_back(best_cost);
      }
    }
  }
  // A non-default execution path must pay for itself: the cost model prices
  // AsDeclared variants identically to Default, so the Metropolis walk can
  // leave cost-tied flips (e.g. cnn.direct) in the winning plan. At runtime
  // the default path is the one the pipeline's own heuristics optimize, so
  // any placement whose path does not strictly beat Default reverts.
  for (ParadigmPlacement& p : best.placements) {
    if (p.path == route::PathId::Default) continue;
    const route::PathId routed = p.path;
    p.path = route::PathId::Default;
    const double default_cost = plan_cost_us(best, profiles, models);
    if (default_cost <= best_cost) {
      best_cost = default_cost;
    } else {
      p.path = routed;
    }
  }
  // Keep the documented trajectory invariants (monotone non-increasing,
  // last element == modeled_cost_us) if the revert lowered the cost.
  if (!result.trajectory.empty() && result.trajectory.back() != best_cost) {
    result.trajectory.push_back(best_cost);
  }
  best.modeled_cost_us = best_cost;
  best.seed = config.seed;
  best.refresh_labels();
  result.plan = std::move(best);
  return result;
}

}  // namespace evd::sched
