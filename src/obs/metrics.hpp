// Low-overhead metrics registry (`evd::obs`).
//
// Three instrument kinds, one registry:
//
//   Counter    monotone int64 totals (ops processed, drops, evictions);
//   Gauge      last-write-wins double (pool size, active sessions);
//   Histogram  log2-bucketed int64 value distribution (latencies in µs),
//              with count/sum and approximate quantiles at snapshot time.
//
// Hot-path discipline — the whole point of the design:
//
//   * Counter/Histogram writes go to a per-thread shard: a flat array of
//     relaxed atomics indexed by metric id. Only the owning thread ever
//     writes its shard, so increments are single-writer relaxed ops (plain
//     load/add/store on x86) with no contention, no locks, no allocation
//     after the shard's first growth on that thread.
//   * snapshot() merges shards by integer summation. Integer addition is
//     associative and commutative, so the merged totals are identical for
//     any thread count and any interleaving — enabling metrics can never
//     perturb `evd::par`'s bitwise-reproducibility guarantee (instrument
//     writes never feed back into computation; merge order cannot matter).
//   * The EVD_OBS=off kill-switch short-circuits every record call to one
//     predictable branch on a process-global flag.
//
// Threads that exit fold their shard into a retained "retired" accumulator,
// so totals survive worker churn. Metric names are stable registration keys:
// registering the same name twice returns the same instrument.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace evd::obs {

/// Number of log2 buckets a histogram keeps. Bucket b counts values v with
/// bit_width(v) == b, i.e. bucket 0 holds v <= 0, bucket b >= 1 holds
/// [2^(b-1), 2^b). 44 buckets cover ~2.7 hours in microseconds.
inline constexpr Index kHistogramBuckets = 44;

/// Process-wide enable flag. Initialised once from EVD_OBS (default on,
/// "EVD_OBS=off" disables); set_enabled() overrides it at runtime (benches
/// measure both sides, tests pin it).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {

/// Cell storage for one thread. Single-writer: only the owning thread
/// stores; snapshot() loads concurrently (hence relaxed atomics).
struct ThreadShard {
  std::atomic<std::int64_t>* cells = nullptr;
  Index size = 0;
};

/// The calling thread's shard, grown (and registered on first use) so that
/// at least `needed` cells exist. Slow path — called only when the inline
/// fast path finds the shard missing or too small.
ThreadShard& grow_shard(Index needed);

ThreadShard*& shard_slot() noexcept;

/// Fast path: cells array of the calling thread, sized for `needed`.
inline std::atomic<std::int64_t>* cells_for(Index needed) {
  ThreadShard* shard = shard_slot();
  if (shard == nullptr || shard->size < needed) {
    shard = &grow_shard(needed);
  }
  return shard->cells;
}

inline void bump(Index cell, std::int64_t by) {
  std::atomic<std::int64_t>* cells = cells_for(cell + 1);
  cells[cell].store(cells[cell].load(std::memory_order_relaxed) + by,
                    std::memory_order_relaxed);
}

}  // namespace detail

/// Monotone counter handle. Copyable, trivially destructible; a
/// default-constructed handle is inert (records nothing).
class Counter {
 public:
  Counter() = default;
  void add(std::int64_t n = 1) const {
    if (cell_ < 0 || !enabled()) return;
    detail::bump(cell_, n);
  }
  bool valid() const noexcept { return cell_ >= 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(Index cell) : cell_(cell) {}
  Index cell_ = -1;
};

/// Last-write-wins gauge. Not sharded (a per-thread "last write" has no
/// meaningful merge); writes go straight to a registry-owned atomic.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  bool valid() const noexcept { return slot_ >= 0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(Index slot) : slot_(slot) {}
  Index slot_ = -1;
};

/// Log2-bucketed histogram handle. record() clamps negatives to bucket 0.
class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t value) const {
    if (cell_ < 0 || !enabled()) return;
    std::atomic<std::int64_t>* cells =
        detail::cells_for(cell_ + kHistogramBuckets + 2);
    const Index bucket = bucket_of(value);
    const auto bump = [&](Index c, std::int64_t by) {
      cells[c].store(cells[c].load(std::memory_order_relaxed) + by,
                     std::memory_order_relaxed);
    };
    bump(cell_ + bucket, 1);
    bump(cell_ + kHistogramBuckets, 1);                       // count
    bump(cell_ + kHistogramBuckets + 1, value > 0 ? value : 0);  // sum
  }
  bool valid() const noexcept { return cell_ >= 0; }

  static Index bucket_of(std::int64_t value) noexcept;
  /// Exclusive upper bound of bucket b (2^b; bucket 0 covers v <= 0 and
  /// reports bound 1).
  static std::int64_t bucket_bound(Index b) noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(Index cell) : cell_(cell) {}
  Index cell_ = -1;
};

struct HistogramSnapshot {
  std::vector<std::int64_t> buckets;  ///< kHistogramBuckets entries.
  std::int64_t count = 0;
  std::int64_t sum = 0;

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// covering log2 bucket; 0 when empty.
  double quantile(double q) const;
  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Point-in-time merged view, sorted by name within each kind — byte-stable
/// for a given set of recorded values regardless of thread count.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// nullptr when absent.
  const std::int64_t* counter(const std::string& name) const;
  const double* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// A named snapshot contributor (e.g. the evd::par pool collector): called
/// during snapshot() to append externally-held totals.
using Collector = void (*)(MetricsSnapshot&);

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Instrument factories. Names follow Prometheus conventions with an
  /// optional {label="value"} suffix (the exporters understand it), e.g.
  /// "evd_feed_to_decision_us{session=\"3\"}". Re-registering a name of the
  /// same kind returns a handle to the same instrument; a kind clash throws.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Register a snapshot contributor once per (name, fn) pair.
  void add_collector(const std::string& name, Collector fn);

  /// Merge all shards + retired totals + collectors into one view.
  MetricsSnapshot snapshot() const;

  /// Zero every cell (live shards, retired totals, gauges). Tests and the
  /// overhead bench use this between phases; live Counter handles stay valid.
  void reset();

 private:
  MetricsRegistry() = default;
};

/// Convenience forwarding to the process registry.
inline Counter counter(const std::string& name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge gauge(const std::string& name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram histogram(const std::string& name) {
  return MetricsRegistry::instance().histogram(name);
}
inline MetricsSnapshot snapshot() {
  return MetricsRegistry::instance().snapshot();
}

}  // namespace evd::obs
