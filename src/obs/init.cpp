#include "obs/obs.hpp"

#include "common/parallel.hpp"

namespace evd::obs {
namespace {

/// Surfaces the evd::par pool's utilisation ledger as registry counters.
/// Busy vs idle is the serving-capacity question: idle-heavy regions mean
/// the pool is starved (too few sessions, too-small bursts), busy-heavy
/// wall time means it is the bottleneck.
void par_collector(MetricsSnapshot& out) {
  const par::PoolStats stats = par::pool_stats();
  out.counters.emplace_back("evd_par_regions_total", stats.regions);
  out.counters.emplace_back("evd_par_region_wall_ns_total",
                            stats.region_wall_ns);
  out.counters.emplace_back("evd_par_worker_busy_ns_total",
                            stats.worker_busy_ns);
  out.counters.emplace_back("evd_par_worker_idle_ns_total",
                            stats.worker_idle_ns);
  out.gauges.emplace_back("evd_par_threads",
                          static_cast<double>(par::thread_count()));
}

}  // namespace

bool init() {
  MetricsRegistry::instance().add_collector("par", par_collector);
  return true;
}

}  // namespace evd::obs
