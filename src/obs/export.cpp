#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace evd::obs {
namespace {

/// Split "name{label=\"x\"}" into ("name", "label=\"x\""); labels empty when
/// there is no suffix.
void split_labels(const std::string& full, std::string& name,
                  std::string& labels) {
  const auto brace = full.find('{');
  if (brace == std::string::npos || full.back() != '}') {
    name = full;
    labels.clear();
    return;
  }
  name = full.substr(0, brace);
  labels = full.substr(brace + 1, full.size() - brace - 2);
}

std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

void json_escape_into(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::string name, labels, last_typed;
  const auto type_line = [&](const std::string& metric, const char* kind) {
    if (metric != last_typed) {
      os << "# TYPE " << metric << " " << kind << "\n";
      last_typed = metric;
    }
  };
  for (const auto& [full, value] : snapshot.counters) {
    split_labels(full, name, labels);
    type_line(name, "counter");
    os << name;
    if (!labels.empty()) os << "{" << labels << "}";
    os << " " << value << "\n";
  }
  for (const auto& [full, value] : snapshot.gauges) {
    split_labels(full, name, labels);
    type_line(name, "gauge");
    os << name;
    if (!labels.empty()) os << "{" << labels << "}";
    os << " " << fmt_double(value) << "\n";
  }
  for (const auto& [full, hist] : snapshot.histograms) {
    split_labels(full, name, labels);
    type_line(name, "histogram");
    // Cumulative buckets; log2 upper bounds. Skip runs of empty leading /
    // trailing buckets to keep exposition readable, but always emit +Inf.
    std::int64_t cumulative = 0;
    Index highest = -1;
    for (Index b = 0; b < static_cast<Index>(hist.buckets.size()); ++b) {
      if (hist.buckets[static_cast<size_t>(b)] > 0) highest = b;
    }
    for (Index b = 0; b <= highest; ++b) {
      cumulative += hist.buckets[static_cast<size_t>(b)];
      os << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
         << "le=\"" << Histogram::bucket_bound(b) << "\"} " << cumulative
         << "\n";
    }
    os << name << "_bucket{" << labels << (labels.empty() ? "" : ",")
       << "le=\"+Inf\"} " << hist.count << "\n";
    os << name << "_sum";
    if (!labels.empty()) os << "{" << labels << "}";
    os << " " << hist.sum << "\n";
    os << name << "_count";
    if (!labels.empty()) os << "{" << labels << "}";
    os << " " << hist.count << "\n";
  }
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape_into(os, name);
    os << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape_into(os, name);
    // JSON numbers cannot be NaN/Inf; clamp to null.
    if (std::isnan(value) || std::isinf(value)) {
      os << "\":null";
    } else {
      os << "\":" << fmt_double(value);
    }
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape_into(os, name);
    os << "\":{\"count\":" << hist.count << ",\"sum\":" << hist.sum
       << ",\"mean\":" << fmt_double(hist.mean())
       << ",\"p50\":" << fmt_double(hist.quantile(0.50))
       << ",\"p95\":" << fmt_double(hist.quantile(0.95))
       << ",\"p99\":" << fmt_double(hist.quantile(0.99)) << ",\"buckets\":[";
    for (size_t b = 0; b < hist.buckets.size(); ++b) {
      if (b > 0) os << ",";
      os << hist.buckets[b];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

// ---- minimal structural JSON checker --------------------------------------

namespace {

struct JsonCursor {
  std::string_view text;
  size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

bool parse_value(JsonCursor& c);

bool parse_literal(JsonCursor& c, std::string_view word) {
  if (c.text.substr(c.pos, word.size()) != word) return false;
  c.pos += word.size();
  return true;
}

bool parse_string(JsonCursor& c) {
  if (!c.eat('"')) return false;
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.done()) return false;
      const char esc = c.text[c.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (c.done() || !std::isxdigit(static_cast<unsigned char>(
                              c.text[c.pos]))) {
            return false;
          }
          ++c.pos;
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
  }
  return false;
}

bool parse_number(JsonCursor& c) {
  const size_t start = c.pos;
  c.eat('-');
  if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek()))) {
    return false;
  }
  if (c.peek() == '0') {
    ++c.pos;
  } else {
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek()))) {
      ++c.pos;
    }
  }
  if (!c.done() && c.peek() == '.') {
    ++c.pos;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek()))) {
      return false;
    }
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek()))) {
      ++c.pos;
    }
  }
  if (!c.done() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.pos;
    if (!c.done() && (c.peek() == '+' || c.peek() == '-')) ++c.pos;
    if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek()))) {
      return false;
    }
    while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek()))) {
      ++c.pos;
    }
  }
  return c.pos > start;
}

bool parse_object(JsonCursor& c) {
  if (!c.eat('{')) return false;
  c.skip_ws();
  if (c.eat('}')) return true;
  for (;;) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.eat(':')) return false;
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

bool parse_array(JsonCursor& c) {
  if (!c.eat('[')) return false;
  c.skip_ws();
  if (c.eat(']')) return true;
  for (;;) {
    if (!parse_value(c)) return false;
    c.skip_ws();
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
    c.skip_ws();
  }
}

bool parse_value(JsonCursor& c) {
  c.skip_ws();
  if (c.done()) return false;
  switch (c.peek()) {
    case '{': return parse_object(c);
    case '[': return parse_array(c);
    case '"': return parse_string(c);
    case 't': return parse_literal(c, "true");
    case 'f': return parse_literal(c, "false");
    case 'n': return parse_literal(c, "null");
    default: return parse_number(c);
  }
}

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  JsonCursor cursor{text};
  const bool ok = parse_value(cursor);
  cursor.skip_ws();
  if (ok && cursor.done()) return true;
  if (error != nullptr) {
    *error = "JSON syntax error at byte " + std::to_string(cursor.pos);
  }
  return false;
}

}  // namespace evd::obs
