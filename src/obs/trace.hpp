// Span tracing (`evd::obs`): nestable named spans recorded into
// fixed-capacity per-thread ring buffers, exported as Chrome trace-event
// JSON (load it at https://ui.perfetto.dev or chrome://tracing).
//
// Hot-path discipline mirrors the runtime's zero-alloc arenas: a thread's
// ring is allocated once, on that thread's first span; recording a span is
// two raw cycle-counter reads (rdtsc / cntvct_el0 — a steady_clock read
// costs ~30 ns through the vDSO, an order of magnitude too much for
// per-event spans) plus one ring slot write under an uncontended per-ring
// mutex (the mutex exists for the collector, never for another recorder —
// rings are single-writer). Tick counts are calibrated against the steady
// clock once per collect(), so exported timestamps are nanoseconds even
// though the hot path never touches the kernel clock. When the ring wraps,
// the oldest spans are overwritten and counted as dropped; a trace is a
// window onto the recent past, not an unbounded log.
//
// Spans never feed back into computation, so tracing cannot perturb
// decision streams — the `runtime.obs_on_vs_off` oracle enforces exactly
// that, bitwise. With the EVD_OBS kill-switch off, constructing a Span is a
// single branch.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace evd::obs {

/// One completed span ("X" phase in the Chrome trace-event format). `name`
/// must be a string literal (or otherwise outlive the tracer) — the hot
/// path stores the pointer, never copies.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< Start, relative to the tracer epoch.
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< Dense per-thread id, registration order.
  std::uint32_t depth = 0;  ///< Nesting depth at record time.
};

class Tracer {
 public:
  static Tracer& instance();

  /// Ring capacity (spans) for threads that register *after* the call.
  /// Default 8192 per thread.
  void set_ring_capacity(Index spans);

  /// Copy out every recorded span, all threads, sorted by start time.
  std::vector<TraceEvent> collect() const;

  /// Spans overwritten before any collect() copied them.
  std::int64_t dropped() const;

  /// Forget everything recorded so far (rings stay allocated).
  void clear();

  /// Serialise collect() as Chrome trace-event JSON:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":µs,"dur":µs,...}, ...]}.
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace_json() const;

  /// Nanoseconds since the tracer epoch (steady clock).
  static std::int64_t now_ns();
};

namespace detail {

/// Raw monotone tick counter — the span clock. On x86-64 this is rdtsc
/// (invariant TSC: constant-rate and core-synchronised on every CPU this
/// project targets); on AArch64 the generic counter-timer. The fallback is
/// the steady clock itself, which keeps the calibration in collect() an
/// identity. Ticks are meaningless until calibrated; only differences and
/// the per-collect tick→ns ratio are ever used.
inline std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(Tracer::now_ns());
#endif
}

void record_span(const char* name, std::uint64_t start_ticks,
                 std::uint64_t end_ticks);
std::uint32_t& span_depth() noexcept;

}  // namespace detail

/// RAII span: records [construction, destruction) under `name`. Cheap to
/// construct when disabled; safe to use on any thread.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (!enabled()) return;
    start_ticks_ = detail::now_ticks();
    armed_ = true;
    ++detail::span_depth();
  }
  ~Span() {
    if (!armed_) return;
    --detail::span_depth();
    detail::record_span(name_, start_ticks_, detail::now_ticks());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ticks_ = 0;
  bool armed_ = false;
};

}  // namespace evd::obs
