// Umbrella for the observability subsystem (`evd::obs`).
//
//   metrics.hpp  counters / gauges / log2 histograms, per-thread shards
//   trace.hpp    nestable spans, per-thread rings, Chrome trace export
//   export.hpp   Prometheus text + JSON snapshot exposition
//
// init() wires the cross-subsystem collectors (currently: the evd::par
// pool's busy/idle accounting) into the registry. It is idempotent and
// cheap; anything that serves snapshots calls it first. The EVD_OBS
// environment variable is the kill-switch: "off" short-circuits every
// instrument to a single branch (see obs::enabled()).
#pragma once

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evd::obs {

/// Register built-in collectors (idempotent). Returns true for convenient
/// use in static initialisers.
bool init();

}  // namespace evd::obs
