// Exposition formats for `evd::obs` snapshots.
//
//   to_prometheus(snapshot)  Prometheus text format 0.0.4: counters as
//                            `_total`-style samples, gauges as-is,
//                            histograms as cumulative `_bucket{le=...}`
//                            series plus `_sum` / `_count`. Metric names may
//                            carry a `{label="value"}` suffix (the runtime's
//                            per-session instruments do); it is merged with
//                            the `le` label correctly.
//   to_json(snapshot)        One JSON object with "counters" / "gauges" /
//                            "histograms" maps — the machine-readable
//                            snapshot API (histograms carry count, sum,
//                            mean, p50/p95/p99 and the raw log2 buckets).
//
// json_valid() is a strict structural JSON checker (RFC 8259 grammar, no
// DOM) used by the tests to prove the JSON snapshot and the Chrome trace
// export are well-formed without growing a parser dependency.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace evd::obs {

std::string to_prometheus(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

/// True iff `text` is exactly one well-formed JSON value (with surrounding
/// whitespace allowed). On failure `error`, when non-null, names the first
/// offending byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace evd::obs
