#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/env.hpp"

namespace evd::obs {
namespace {

std::atomic<bool> g_enabled{env_flag("EVD_OBS", true)};

enum class Kind { Counter, Gauge, Histogram };

struct Def {
  std::string name;
  Kind kind;
  Index slot;  ///< Shard cell offset (counter/histogram) or gauge index.
};

/// Shard bookkeeping shared between the registry and thread exit hooks.
struct Core {
  mutable std::mutex mutex;
  std::vector<Def> defs;
  Index total_cells = 0;                ///< Shard cells allocated so far.
  std::vector<detail::ThreadShard*> shards;
  std::vector<std::int64_t> retired;    ///< Folded cells of exited threads.
  std::deque<std::atomic<std::int64_t>> gauges;  ///< Bit-cast doubles.
};

Core& core() {
  // Leaked on purpose: exiting threads fold into `retired` during static
  // destruction; a destructed registry would be a use-after-free trap.
  static Core* c = new Core();
  return *c;
}

/// Owns one thread's shard storage; the destructor (thread exit) retires the
/// totals into the core so they keep counting toward snapshots.
struct ShardOwner {
  detail::ThreadShard shard;
  std::unique_ptr<std::atomic<std::int64_t>[]> storage;

  ~ShardOwner() {
    Core& c = core();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.retired.size() < static_cast<size_t>(shard.size)) {
      c.retired.resize(static_cast<size_t>(shard.size), 0);
    }
    for (Index i = 0; i < shard.size; ++i) {
      c.retired[static_cast<size_t>(i)] +=
          shard.cells[i].load(std::memory_order_relaxed);
    }
    c.shards.erase(std::remove(c.shards.begin(), c.shards.end(), &shard),
                   c.shards.end());
    detail::shard_slot() = nullptr;
  }
};

const Def* find_def(const Core& c, const std::string& name) {
  for (const auto& def : c.defs) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

Index register_sharded(const std::string& name, Kind kind, Index cells) {
  Core& c = core();
  std::lock_guard<std::mutex> lock(c.mutex);
  if (const Def* def = find_def(c, name)) {
    if (def->kind != kind) {
      throw std::invalid_argument("obs: metric '" + name +
                                  "' already registered with another kind");
    }
    return def->slot;
  }
  const Index slot = c.total_cells;
  c.total_cells += cells;
  c.defs.push_back({name, kind, slot});
  return slot;
}

double gauge_value(const std::atomic<std::int64_t>& slot) {
  return std::bit_cast<double>(slot.load(std::memory_order_relaxed));
}

struct CollectorEntry {
  std::string name;
  Collector fn;
};

std::vector<CollectorEntry>& collectors() {
  static std::vector<CollectorEntry>* v = new std::vector<CollectorEntry>();
  return *v;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

ThreadShard*& shard_slot() noexcept {
  thread_local ThreadShard* slot = nullptr;
  return slot;
}

ThreadShard& grow_shard(Index needed) {
  // One ShardOwner per thread; its destructor retires the cells at exit.
  thread_local ShardOwner owner;
  Core& c = core();
  std::lock_guard<std::mutex> lock(c.mutex);
  // Size to the full registry so steady-state recording never regrows, and
  // over-allocate headroom so instruments registered later (per-session
  // histograms) usually fit without another growth.
  Index size = c.total_cells > needed ? c.total_cells : needed;
  size += 256;
  auto storage = std::make_unique<std::atomic<std::int64_t>[]>(
      static_cast<size_t>(size));
  for (Index i = 0; i < size; ++i) {
    storage[i].store(i < owner.shard.size
                         ? owner.shard.cells[i].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
  }
  const bool fresh = owner.shard.cells == nullptr;
  // Publish the new cells before the old storage dies: snapshot() holds the
  // same mutex, so no concurrent reader can see the stale pointer.
  owner.shard.cells = storage.get();
  owner.shard.size = size;
  owner.storage = std::move(storage);
  if (fresh) c.shards.push_back(&owner.shard);
  shard_slot() = &owner.shard;
  return owner.shard;
}

}  // namespace detail

Index Histogram::bucket_of(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  const Index width = static_cast<Index>(
      std::bit_width(static_cast<std::uint64_t>(value)));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

std::int64_t Histogram::bucket_bound(Index b) noexcept {
  if (b <= 0) return 1;
  if (b >= 62) return std::int64_t{1} << 62;
  return std::int64_t{1} << b;
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  std::int64_t cumulative = 0;
  for (Index b = 0; b < static_cast<Index>(buckets.size()); ++b) {
    const std::int64_t in_bucket = buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lo =
          b == 0 ? 0.0 : static_cast<double>(Histogram::bucket_bound(b - 1));
      const double hi = static_cast<double>(Histogram::bucket_bound(b));
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * within;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(Histogram::bucket_bound(
      static_cast<Index>(buckets.size()) - 1));
}

const std::int64_t* MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(const std::string& name) {
  return Counter(register_sharded(name, Kind::Counter, 1));
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  return Histogram(
      register_sharded(name, Kind::Histogram, kHistogramBuckets + 2));
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  Core& c = core();
  std::lock_guard<std::mutex> lock(c.mutex);
  if (const Def* def = find_def(c, name)) {
    if (def->kind != Kind::Gauge) {
      throw std::invalid_argument("obs: metric '" + name +
                                  "' already registered with another kind");
    }
    return Gauge(def->slot);
  }
  const Index slot = static_cast<Index>(c.gauges.size());
  c.gauges.emplace_back(std::bit_cast<std::int64_t>(0.0));
  c.defs.push_back({name, Kind::Gauge, slot});
  return Gauge(slot);
}

void Gauge::set(double v) const {
  if (slot_ < 0 || !enabled()) return;
  Core& c = core();
  // Gauge slots are stable (deque) — no lock needed for the store itself.
  c.gauges[static_cast<size_t>(slot_)].store(std::bit_cast<std::int64_t>(v),
                                             std::memory_order_relaxed);
}

void MetricsRegistry::add_collector(const std::string& name, Collector fn) {
  Core& c = core();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& entry : collectors()) {
    if (entry.name == name) return;
  }
  collectors().push_back({name, fn});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  Core& c = core();
  std::vector<CollectorEntry> to_run;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    // Merge: retired totals plus every live shard, cell by cell. Integer
    // sums — identical for any thread count or merge order.
    std::vector<std::int64_t> cells(static_cast<size_t>(c.total_cells), 0);
    for (size_t i = 0; i < c.retired.size() && i < cells.size(); ++i) {
      cells[i] += c.retired[i];
    }
    for (const detail::ThreadShard* shard : c.shards) {
      const Index n = shard->size < c.total_cells ? shard->size : c.total_cells;
      for (Index i = 0; i < n; ++i) {
        cells[static_cast<size_t>(i)] +=
            shard->cells[i].load(std::memory_order_relaxed);
      }
    }
    for (const Def& def : c.defs) {
      switch (def.kind) {
        case Kind::Counter:
          out.counters.emplace_back(def.name,
                                    cells[static_cast<size_t>(def.slot)]);
          break;
        case Kind::Gauge:
          out.gauges.emplace_back(
              def.name, gauge_value(c.gauges[static_cast<size_t>(def.slot)]));
          break;
        case Kind::Histogram: {
          HistogramSnapshot h;
          h.buckets.assign(cells.begin() + def.slot,
                           cells.begin() + def.slot + kHistogramBuckets);
          h.count = cells[static_cast<size_t>(def.slot + kHistogramBuckets)];
          h.sum = cells[static_cast<size_t>(def.slot + kHistogramBuckets + 1)];
          out.histograms.emplace_back(def.name, std::move(h));
          break;
        }
      }
    }
    to_run = collectors();
  }
  // Collectors run outside the lock (they may touch other subsystems).
  for (const auto& entry : to_run) entry.fn(out);
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsRegistry::reset() {
  Core& c = core();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::fill(c.retired.begin(), c.retired.end(), 0);
  for (detail::ThreadShard* shard : c.shards) {
    for (Index i = 0; i < shard->size; ++i) {
      shard->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : c.gauges) {
    gauge.store(std::bit_cast<std::int64_t>(0.0), std::memory_order_relaxed);
  }
}

}  // namespace evd::obs
