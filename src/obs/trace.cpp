#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace evd::obs {
namespace {

constexpr Index kDefaultRingCapacity = 8192;

/// One thread's span ring. Single-writer (the owning thread); the mutex
/// serialises that writer against collect()/clear() from other threads.
struct SpanRing {
  mutable std::mutex mutex;
  std::vector<TraceEvent> slots;
  std::int64_t total = 0;      ///< Spans ever recorded into this ring.
  std::int64_t collected = 0;  ///< High-water mark a collect() has seen.
  std::uint32_t tid = 0;

  explicit SpanRing(Index capacity, std::uint32_t id) : tid(id) {
    slots.resize(static_cast<size_t>(capacity < 1 ? 1 : capacity));
  }

  void push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    slots[static_cast<size_t>(total % static_cast<std::int64_t>(slots.size()))] =
        event;
    ++total;
  }
};

struct TraceCore {
  mutable std::mutex mutex;
  std::vector<std::shared_ptr<SpanRing>> rings;  ///< Never shrinks; rings of
                                                 ///< exited threads persist.
  Index ring_capacity = kDefaultRingCapacity;
  // Paired (steady clock, tick counter) epoch: collect() reads both again
  // and derives the tick→ns ratio from the two elapsed intervals, so span
  // timestamps come out in nanoseconds without the hot path ever paying for
  // a kernel clock read.
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::uint64_t epoch_ticks = detail::now_ticks();
};

TraceCore& trace_core() {
  static TraceCore* core = new TraceCore();
  return *core;
}

SpanRing& local_ring() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    TraceCore& core = trace_core();
    std::lock_guard<std::mutex> lock(core.mutex);
    auto r = std::make_shared<SpanRing>(
        core.ring_capacity, static_cast<std::uint32_t>(core.rings.size()));
    core.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

namespace detail {

std::uint32_t& span_depth() noexcept {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void record_span(const char* name, std::uint64_t start_ticks,
                 std::uint64_t end_ticks) {
  // ts_ns/dur_ns hold *raw ticks* while the event sits in the ring;
  // collect() converts to nanoseconds with the calibrated ratio.
  TraceEvent event;
  event.name = name;
  event.ts_ns = static_cast<std::int64_t>(start_ticks);
  event.dur_ns = static_cast<std::int64_t>(end_ticks - start_ticks);
  event.depth = span_depth();
  SpanRing& ring = local_ring();
  event.tid = ring.tid;
  ring.push(event);
}

}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::int64_t Tracer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_core().epoch)
      .count();
}

void Tracer::set_ring_capacity(Index spans) {
  TraceCore& core = trace_core();
  std::lock_guard<std::mutex> lock(core.mutex);
  core.ring_capacity = spans < 1 ? 1 : spans;
}

std::vector<TraceEvent> Tracer::collect() const {
  TraceCore& core = trace_core();
  std::vector<std::shared_ptr<SpanRing>> rings;
  std::uint64_t epoch_ticks = 0;
  {
    std::lock_guard<std::mutex> lock(core.mutex);
    rings = core.rings;
    epoch_ticks = core.epoch_ticks;
  }
  // Calibrate: both epochs were captured together, so the elapsed steady
  // time over the elapsed ticks is the tick period. The ratio drifts only
  // with clock granularity, not with trace length.
  const std::int64_t elapsed_ns = now_ns();
  const std::uint64_t elapsed_ticks = detail::now_ticks() - epoch_ticks;
  const double ns_per_tick =
      elapsed_ticks > 0 && elapsed_ns > 0
          ? static_cast<double>(elapsed_ns) / static_cast<double>(elapsed_ticks)
          : 1.0;
  const auto to_ns = [&](std::int64_t raw_ticks) {
    const std::int64_t rel = raw_ticks - static_cast<std::int64_t>(epoch_ticks);
    return rel > 0
               ? static_cast<std::int64_t>(static_cast<double>(rel) *
                                           ns_per_tick)
               : 0;
  };
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    const auto capacity = static_cast<std::int64_t>(ring->slots.size());
    const std::int64_t kept = ring->total < capacity ? ring->total : capacity;
    const std::int64_t first = ring->total - kept;
    for (std::int64_t i = first; i < ring->total; ++i) {
      TraceEvent event = ring->slots[static_cast<size_t>(i % capacity)];
      event.ts_ns = to_ns(event.ts_ns);
      event.dur_ns = static_cast<std::int64_t>(
          static_cast<double>(event.dur_ns) * ns_per_tick);
      out.push_back(event);
    }
    ring->collected = ring->total;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_ns > b.dur_ns;  // enclosing span first
  });
  return out;
}

std::int64_t Tracer::dropped() const {
  TraceCore& core = trace_core();
  std::lock_guard<std::mutex> lock(core.mutex);
  std::int64_t dropped = 0;
  for (const auto& ring : core.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const auto capacity = static_cast<std::int64_t>(ring->slots.size());
    const std::int64_t window_start =
        ring->total > capacity ? ring->total - capacity : 0;
    // Everything before the current window that no collect() copied.
    dropped += window_start > ring->collected ? window_start - ring->collected
                                              : 0;
  }
  return dropped;
}

void Tracer::clear() {
  TraceCore& core = trace_core();
  std::lock_guard<std::mutex> lock(core.mutex);
  for (const auto& ring : core.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->total = 0;
    ring->collected = 0;
  }
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = collect();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) os << ",";
    first = false;
    // ts/dur are microseconds in the trace-event format; keep ns precision
    // via fractional µs. Names are literals from our own call sites —
    // escaping is for robustness, not expectation.
    os << "{\"name\":\"";
    for (const char* p = event.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') os << '\\';
      os << *p;
    }
    char times[96];
    std::snprintf(times, sizeof(times), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(event.ts_ns) / 1e3,
                  static_cast<double>(event.dur_ns) / 1e3);
    os << "\",\"cat\":\"evd\",\"ph\":\"X\"" << times
       << ",\"pid\":1,\"tid\":" << event.tid << ",\"args\":{\"depth\":"
       << event.depth << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

}  // namespace evd::obs
