// evd — the event-camera CNN / SNN / GNN dichotomy laboratory.
//
// Umbrella header: pulls in the whole public API. Prefer including the
// individual module headers in real code; this exists for quick
// experiments and examples.
//
//   events/  sensor substrate (DVS simulator, AER, filters, datasets, flow)
//   nn/      from-scratch network stack with op/byte instrumentation
//   cnn/     dense-frame pipeline + sub-manifold sparse conv + recurrence
//   snn/     spiking pipeline (BPTT, e-prop, conversion, event-driven)
//   gnn/     event-graph pipeline (incremental construction, async updates)
//   hw/      analytical hardware cost models
//   core/    the EventPipeline interface and the Table-I comparison harness
//   runtime/ multi-session streaming runtime over the shared pool
//   obs/     observability: metrics registry, span tracing, exporters
#pragma once

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

#include "events/aer.hpp"
#include "events/dataset.hpp"
#include "events/downsample.hpp"
#include "events/dvs_simulator.hpp"
#include "events/event.hpp"
#include "events/event_io.hpp"
#include "events/filters.hpp"
#include "events/foveation.hpp"
#include "events/hybrid_sensor.hpp"
#include "events/optical_flow.hpp"
#include "events/rate_controller.hpp"
#include "events/scene.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/counters.hpp"
#include "nn/init.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/model_io.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/pruning.hpp"
#include "nn/quantization.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"
#include "nn/tensor.hpp"

#include "cnn/cnn_pipeline.hpp"
#include "cnn/dense_model.hpp"
#include "cnn/recurrent.hpp"
#include "cnn/representation.hpp"
#include "cnn/sparse_conv.hpp"

#include "snn/conversion.hpp"
#include "snn/encoding.hpp"
#include "snn/eprop.hpp"
#include "snn/event_driven.hpp"
#include "snn/lif.hpp"
#include "snn/snn_model.hpp"
#include "snn/snn_pipeline.hpp"
#include "snn/stdp.hpp"
#include "snn/surrogate.hpp"

#include "gnn/async_update.hpp"
#include "gnn/gnn_model.hpp"
#include "gnn/gnn_pipeline.hpp"
#include "gnn/graph.hpp"
#include "gnn/graph_builder.hpp"
#include "gnn/graph_conv.hpp"
#include "gnn/graph_pool.hpp"
#include "gnn/incremental.hpp"
#include "gnn/kdtree.hpp"

#include "hw/energy_model.hpp"
#include "hw/gnn_accel.hpp"
#include "hw/report.hpp"
#include "hw/snn_core.hpp"
#include "hw/systolic.hpp"
#include "hw/zero_skip.hpp"

#include "core/comparison.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "core/rating.hpp"
#include "core/workload.hpp"

#include "runtime/decision_sink.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/session_base.hpp"
#include "runtime/session_manager.hpp"

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
