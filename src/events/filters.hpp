// Event-stream denoising filters used between the sensor and any processing
// pipeline. All filters are single-pass, causal and allocation-light, as
// they model logic that runs in (or immediately next to) the sensor readout.
#pragma once

#include <span>
#include <vector>

#include "events/event.hpp"

namespace evd::events {

/// Suppress events from a pixel closer than `refractory_us` to that pixel's
/// previous *kept* event. Models an output-side refractory stage.
std::vector<Event> refractory_filter(std::span<const Event> events,
                                     Index width, Index height,
                                     TimeUs refractory_us);

/// Background-activity filter (Delbruck-style): keep an event only if one of
/// its 8 spatial neighbours produced an event within `support_window_us`.
/// Isolated shot-noise events have no such support and are dropped.
std::vector<Event> background_activity_filter(std::span<const Event> events,
                                              Index width, Index height,
                                              TimeUs support_window_us);

/// Detect hot pixels: pixels whose event count exceeds `sigma` standard
/// deviations above the mean count of active pixels. Returns the pixel
/// indices (y * width + x).
std::vector<Index> detect_hot_pixels(std::span<const Event> events,
                                     Index width, Index height, double sigma);

/// Remove all events originating from the given pixels.
std::vector<Event> mask_pixels(std::span<const Event> events, Index width,
                               std::span<const Index> pixels);

}  // namespace evd::events
