// Event stream file I/O: a simple CSV format (x,y,polarity,t_us) for
// interoperability and a compact binary format for speed.
#pragma once

#include <string>

#include "events/event.hpp"

namespace evd::events {

/// Write "x,y,p,t" lines with a header. p is -1 / +1.
void write_csv(const std::string& path, const EventStream& stream);

/// Read the CSV format written by write_csv. Throws on malformed input.
EventStream read_csv(const std::string& path);

/// Compact binary container (magic "EVD1", geometry, raw event records).
void write_binary(const std::string& path, const EventStream& stream);
EventStream read_binary(const std::string& path);

}  // namespace evd::events
