#include "events/event_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/serialization.hpp"

namespace evd::events {

namespace {
constexpr std::uint32_t kMagic = 0x31445645;  // "EVD1" little-endian
}

void write_csv(const std::string& path, const EventStream& stream) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv: cannot open " + path);
  out << "# width=" << stream.width << " height=" << stream.height << "\n";
  out << "x,y,p,t_us\n";
  for (const auto& e : stream.events) {
    out << e.x << ',' << e.y << ',' << polarity_sign(e.polarity) << ',' << e.t
        << '\n';
  }
  if (!out) throw std::runtime_error("write_csv: write failure");
}

EventStream read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  EventStream stream;
  std::string line;
  if (!std::getline(in, line) || line.rfind("# width=", 0) != 0) {
    throw std::runtime_error("read_csv: missing geometry header");
  }
  if (std::sscanf(line.c_str(), "# width=%lld height=%lld",
                  reinterpret_cast<long long*>(&stream.width),
                  reinterpret_cast<long long*>(&stream.height)) != 2) {
    throw std::runtime_error("read_csv: malformed geometry header");
  }
  std::getline(in, line);  // column header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    long long x, y, p, t;
    if (std::sscanf(line.c_str(), "%lld,%lld,%lld,%lld", &x, &y, &p, &t) !=
        4) {
      throw std::runtime_error("read_csv: malformed row: " + line);
    }
    stream.events.push_back(Event{static_cast<std::int16_t>(x),
                                  static_cast<std::int16_t>(y),
                                  p > 0 ? Polarity::On : Polarity::Off,
                                  static_cast<TimeUs>(t)});
  }
  return stream;
}

void write_binary(const std::string& path, const EventStream& stream) {
  BinaryWriter writer(path);
  writer.write_u32(kMagic);
  writer.write_i64(stream.width);
  writer.write_i64(stream.height);
  writer.write_i64(stream.size());
  for (const auto& e : stream.events) {
    writer.write_bytes(&e, sizeof(Event));
  }
}

EventStream read_binary(const std::string& path) {
  BinaryReader reader(path);
  if (reader.read_u32() != kMagic) {
    throw std::runtime_error("read_binary: bad magic in " + path);
  }
  EventStream stream;
  stream.width = reader.read_i64();
  stream.height = reader.read_i64();
  const auto count = reader.read_i64();
  stream.events.resize(static_cast<size_t>(count));
  for (auto& e : stream.events) {
    reader.read_bytes(&e, sizeof(Event));
  }
  return stream;
}

}  // namespace evd::events
