// Electronically foveated readout and centre-surround suppression
// (paper §II mitigation strategies [22], [23]).
//
// Foveation keeps full resolution inside a (movable) region of interest and
// block-pools the periphery — reducing peripheral event rate while keeping
// foveal detail. The fovea can be driven externally (e.g. by a tracker) or
// follow event activity itself (activity-driven saccades).
//
// Centre-surround suppression emulates the retina-inspired readout of [23]:
// an event passes only if its local neighbourhood (centre) is more active
// than the surrounding annulus over a sliding window — suppressing
// full-field flicker and ego-motion-induced background firing.
#pragma once

#include <span>
#include <vector>

#include "events/event.hpp"

namespace evd::events {

struct FoveationConfig {
  Index fovea_width = 16;
  Index fovea_height = 16;
  Index periphery_factor = 4;  ///< Block size for peripheral pooling.
  bool activity_driven = false;
  TimeUs saccade_interval_us = 20000;  ///< Fovea re-centre period.
};

struct FoveationResult {
  std::vector<Event> events;  ///< Full-resolution coordinates retained.
  Index foveal_events = 0;
  Index peripheral_in = 0;    ///< Peripheral events before pooling.
  Index peripheral_out = 0;   ///< Peripheral events after pooling.
  std::vector<std::pair<Index, Index>> fovea_track;  ///< Centre per saccade.
};

/// Apply foveated readout. Fovea starts at the geometric centre; when
/// activity-driven, it re-centres on the event centroid of the previous
/// saccade interval.
FoveationResult foveate(const EventStream& stream,
                        const FoveationConfig& config);

struct CentreSurroundConfig {
  Index centre_radius = 1;     ///< Chebyshev radius of the centre block.
  Index surround_radius = 3;   ///< Outer radius of the surround annulus.
  TimeUs window_us = 10000;    ///< Activity integration window.
  double gain = 1.0;           ///< Pass if centre_rate > gain * surround_rate.
};

/// Centre-surround antagonism filter; returns the passing events.
std::vector<Event> centre_surround_filter(const EventStream& stream,
                                          const CentreSurroundConfig& config);

}  // namespace evd::events
