// Hybrid active-pixel + event-pixel readout (paper §II: "the dual active
// and event pixel paradigm [13],[16] ... has recently gained momentum").
//
// Models a DAVIS/ATIS-class sensor: the same pixel array produces the
// asynchronous event stream *and* conventional intensity frames at a fixed
// frame rate (with exposure integration and read noise). Downstream, this
// is what lets frame-based and event-based algorithms run side by side on
// one device.
#pragma once

#include <vector>

#include "events/dvs_simulator.hpp"
#include "events/scene.hpp"

namespace evd::events {

struct ApsConfig {
  TimeUs frame_period_us = 25000;  ///< 40 fps.
  TimeUs exposure_us = 10000;
  Index exposure_samples = 4;      ///< Scene samples averaged per exposure.
  double read_noise = 0.01;        ///< Stddev of additive readout noise.
};

struct HybridRecording {
  EventStream events;
  std::vector<Image> frames;
  std::vector<TimeUs> frame_times;  ///< End-of-exposure timestamps.
};

/// Run the DVS model and the APS readout over the same scene and interval.
HybridRecording simulate_hybrid(DvsSimulator& dvs, const Scene& scene,
                                TimeUs duration_us, const ApsConfig& aps,
                                Rng rng);

}  // namespace evd::events
