// In-sensor event down-sampling (paper §II mitigation strategies [21]).
//
// Spatial pooling merges factor x factor pixel blocks into one super-pixel.
// Two variants are modelled:
//
//  * Passthrough — remap every event to the super-pixel (cheap OR-pooling;
//    the rate is reduced only by the optional refractory stage).
//  * Accumulate  — a super-pixel emits one event per `count_threshold`
//    same-polarity child events inside a time window (integrate-and-fire
//    pooling, an actual rate reducer as in the NPU of [21]).
//
// Temporal down-sampling quantises timestamps to a coarser tick.
#pragma once

#include <span>
#include <vector>

#include "events/event.hpp"

namespace evd::events {

struct SpatialDownsampleConfig {
  Index factor = 2;            ///< Block side; output is width/factor.
  bool accumulate = false;     ///< Integrate-and-fire pooling if true.
  Index count_threshold = 2;   ///< Child events per emitted super-event.
  TimeUs window_us = 10000;    ///< Accumulation counter reset interval.
};

/// Down-sample a stream spatially. The returned stream has the reduced
/// geometry (floor division).
EventStream spatial_downsample(const EventStream& stream,
                               const SpatialDownsampleConfig& config);

/// Quantise timestamps to multiples of tick_us (floor). Order is preserved.
std::vector<Event> temporal_quantize(std::span<const Event> events,
                                     TimeUs tick_us);

}  // namespace evd::events
