// Event-based optical flow by local plane fitting.
//
// One of the flagship event-camera applications the paper cites ([53],[57]
// frame-based, [72] graph-based): because events trace moving edges, the
// per-pixel last-event-time map ("surface of active events") is locally a
// plane whose gradient is the inverse of the edge's velocity. For each
// incoming event we least-squares-fit t = a x + b y + c over the recent
// neighbourhood and read the flow as v = g / |g|^2 with g = (a, b) — fully
// event-driven, O(window) per event, no frames anywhere.
#pragma once

#include <vector>

#include "events/event.hpp"

namespace evd::events {

struct FlowConfig {
  Index window_radius = 3;    ///< Spatial fitting neighbourhood.
  TimeUs dt_max_us = 30000;   ///< Ignore surface entries older than this.
  Index min_points = 6;       ///< Minimum samples for a valid fit.
  double min_gradient = 1e-6; ///< |g|^2 below this -> invalid (no motion).
};

struct FlowVector {
  float vx = 0.0f;  ///< Pixels per second.
  float vy = 0.0f;
  bool valid = false;
};

class PlaneFitFlow {
 public:
  PlaneFitFlow(Index width, Index height, FlowConfig config);

  /// Incorporate one event (updating the time surface) and estimate the
  /// local flow at it.
  FlowVector update(const Event& event);

  void reset();

 private:
  Index width_, height_;
  FlowConfig config_;
  /// Per-pixel, per-polarity last event time (-1 = never).
  std::vector<TimeUs> last_[2];
};

/// Convenience: run the estimator over a stream; returns the valid flow
/// vectors (one per event that yielded a fit).
std::vector<FlowVector> estimate_flow(const EventStream& stream,
                                      const FlowConfig& config);

}  // namespace evd::events
