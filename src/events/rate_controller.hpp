// Event-Rate Controller (ERC).
//
// High-resolution sensors can exceed link/processor capacity under ego-motion
// [20]; Gen4-class sensors therefore integrate a programmable event-rate
// controller [10] that caps the output rate. We model the common policies:
//
//  * Drop      — random thinning to the budget within each reference window.
//  * Decimate  — keep every k-th event (deterministic subsampling).
//  * Suppress  — once the window budget is exhausted, drop the remainder
//                (models FIFO back-pressure; biases against late events).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "events/event.hpp"

namespace evd::events {

enum class RatePolicy { Drop, Decimate, Suppress };

struct RateControllerConfig {
  double max_rate_eps = 1e6;       ///< Output budget, events/second.
  TimeUs window_us = 1000;         ///< Reference window for budgeting.
  RatePolicy policy = RatePolicy::Drop;
};

struct RateControllerStats {
  Index in_events = 0;
  Index out_events = 0;
  Index windows = 0;
  Index saturated_windows = 0;  ///< Windows where the budget was hit.

  double keep_fraction() const noexcept {
    return in_events > 0 ? static_cast<double>(out_events) /
                               static_cast<double>(in_events)
                         : 1.0;
  }
};

class RateController {
 public:
  RateController(RateControllerConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  /// Apply the policy to a sorted stream; returns the thinned stream.
  std::vector<Event> process(std::span<const Event> events);

  /// Causal single-event admission for streaming ingress (the runtime feeds
  /// sessions one event at a time and cannot look ahead to the end of the
  /// reference window). Only Suppress is causal — first `budget` events of
  /// each aligned window pass, the rest are refused — and admit() matches
  /// process() event-for-event on the same sorted stream, sharing stats().
  /// Drop and Decimate need the window's total count before deciding, so
  /// admit() throws std::logic_error under those policies.
  bool admit(const Event& event);

  const RateControllerStats& stats() const noexcept { return stats_; }

 private:
  RateControllerConfig config_;
  Rng rng_;
  RateControllerStats stats_;
  // admit() window tracking.
  TimeUs admit_window_start_ = 0;
  Index admit_window_count_ = 0;
  bool admit_window_open_ = false;
};

}  // namespace evd::events
