// Core event-camera data types.
//
// An event-camera pixel emits an *event* when the log-luminance at that pixel
// changes by more than a contrast threshold since the pixel's last event
// (Lichtsteiner 2008 [6]). Each event carries the pixel address, a
// microsecond timestamp and a polarity. A recording is a time-ordered stream
// of such events.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace evd::events {

/// A single DVS event. 16-byte POD; streams of millions are common.
struct Event {
  std::int16_t x = 0;       ///< Pixel column.
  std::int16_t y = 0;       ///< Pixel row.
  Polarity polarity = Polarity::On;
  TimeUs t = 0;             ///< Timestamp in microseconds.

  friend bool operator==(const Event&, const Event&) = default;
};

/// Time-ordered sequence of events plus the sensor geometry that produced it.
struct EventStream {
  Index width = 0;
  Index height = 0;
  std::vector<Event> events;

  Index size() const noexcept { return static_cast<Index>(events.size()); }
  bool empty() const noexcept { return events.empty(); }

  /// Duration between first and last event (0 if fewer than 2 events).
  TimeUs duration_us() const noexcept {
    return events.size() < 2 ? 0 : events.back().t - events.front().t;
  }

  /// Mean event rate in events/second (0 for degenerate streams).
  double rate_eps() const noexcept {
    const auto d = duration_us();
    return d > 0 ? static_cast<double>(size()) * 1e6 / static_cast<double>(d)
                 : 0.0;
  }
};

/// True if events are sorted by non-decreasing timestamp.
inline bool is_time_sorted(std::span<const Event> events) noexcept {
  return std::is_sorted(
      events.begin(), events.end(),
      [](const Event& a, const Event& b) { return a.t < b.t; });
}

/// Stable sort by timestamp (simulator output is already sorted; this is for
/// merged or filtered streams).
inline void sort_by_time(std::vector<Event>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
}

/// View of the events with t in [t_begin, t_end). Requires a sorted stream.
inline std::span<const Event> time_slice(std::span<const Event> events,
                                         TimeUs t_begin, TimeUs t_end) {
  const auto lo = std::lower_bound(
      events.begin(), events.end(), t_begin,
      [](const Event& e, TimeUs t) { return e.t < t; });
  const auto hi = std::lower_bound(
      lo, events.end(), t_end, [](const Event& e, TimeUs t) { return e.t < t; });
  return events.subspan(static_cast<size_t>(lo - events.begin()),
                        static_cast<size_t>(hi - lo));
}

/// Fraction of ON-polarity events.
inline double on_fraction(std::span<const Event> events) noexcept {
  if (events.empty()) return 0.0;
  Index on = 0;
  for (const auto& e : events) on += (e.polarity == Polarity::On) ? 1 : 0;
  return static_cast<double>(on) / static_cast<double>(events.size());
}

/// Fraction of sensor pixels that emitted at least one event — the spatial
/// sparsity measure used throughout the comparison harness.
double active_pixel_fraction(const EventStream& stream);

/// Merge two sorted streams into one sorted stream (same geometry assumed).
std::vector<Event> merge_streams(std::span<const Event> a,
                                 std::span<const Event> b);

}  // namespace evd::events
