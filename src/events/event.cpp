#include "events/event.hpp"

namespace evd::events {

double active_pixel_fraction(const EventStream& stream) {
  if (stream.width <= 0 || stream.height <= 0) return 0.0;
  std::vector<char> touched(
      static_cast<size_t>(stream.width * stream.height), 0);
  for (const auto& e : stream.events) {
    touched[static_cast<size_t>(e.y) * static_cast<size_t>(stream.width) +
            static_cast<size_t>(e.x)] = 1;
  }
  Index active = 0;
  for (const char c : touched) active += c;
  return static_cast<double>(active) /
         static_cast<double>(stream.width * stream.height);
}

std::vector<Event> merge_streams(std::span<const Event> a,
                                 std::span<const Event> b) {
  std::vector<Event> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out),
             [](const Event& x, const Event& y) { return x.t < y.t; });
  return out;
}

}  // namespace evd::events
