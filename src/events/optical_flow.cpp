#include "events/optical_flow.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::events {

PlaneFitFlow::PlaneFitFlow(Index width, Index height, FlowConfig config)
    : width_(width), height_(height), config_(config) {
  if (width <= 0 || height <= 0 || config.window_radius <= 0) {
    throw std::invalid_argument("PlaneFitFlow: bad configuration");
  }
  reset();
}

void PlaneFitFlow::reset() {
  for (auto& surface : last_) {
    surface.assign(static_cast<size_t>(width_ * height_), -1);
  }
}

FlowVector PlaneFitFlow::update(const Event& event) {
  if (event.x < 0 || event.y < 0 || event.x >= width_ || event.y >= height_) {
    throw std::invalid_argument("PlaneFitFlow: event outside geometry");
  }
  auto& surface = last_[polarity_channel(event.polarity)];
  surface[static_cast<size_t>(event.y) * static_cast<size_t>(width_) +
          static_cast<size_t>(event.x)] = event.t;

  // Gather (dx, dy, dt) samples from the same-polarity surface.
  // Least squares for t = a x + b y + c over centred coordinates.
  double sxx = 0, sxy = 0, syy = 0, sxt = 0, syt = 0;
  double sx = 0, sy = 0, st = 0;
  Index n = 0;
  for (Index dy = -config_.window_radius; dy <= config_.window_radius; ++dy) {
    const Index y = event.y + dy;
    if (y < 0 || y >= height_) continue;
    for (Index dx = -config_.window_radius; dx <= config_.window_radius;
         ++dx) {
      const Index x = event.x + dx;
      if (x < 0 || x >= width_) continue;
      const TimeUs t =
          surface[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                  static_cast<size_t>(x)];
      if (t < 0 || event.t - t > config_.dt_max_us) continue;
      const double fx = dx;
      const double fy = dy;
      const double ft = static_cast<double>(t - event.t) * 1e-6;  // seconds
      sxx += fx * fx;
      sxy += fx * fy;
      syy += fy * fy;
      sxt += fx * ft;
      syt += fy * ft;
      sx += fx;
      sy += fy;
      st += ft;
      ++n;
    }
  }
  FlowVector flow;
  if (n < config_.min_points) return flow;

  // Normal equations with the centroid removed (accounts for c).
  const double inv_n = 1.0 / static_cast<double>(n);
  const double cxx = sxx - sx * sx * inv_n;
  const double cxy = sxy - sx * sy * inv_n;
  const double cyy = syy - sy * sy * inv_n;
  const double cxt = sxt - sx * st * inv_n;
  const double cyt = syt - sy * st * inv_n;
  const double det = cxx * cyy - cxy * cxy;
  if (std::abs(det) < 1e-9) return flow;
  const double a = (cxt * cyy - cyt * cxy) / det;  // dt/dx [s/px]
  const double b = (cyt * cxx - cxt * cxy) / det;  // dt/dy [s/px]
  const double g2 = a * a + b * b;
  if (g2 < config_.min_gradient) return flow;
  flow.vx = static_cast<float>(a / g2);
  flow.vy = static_cast<float>(b / g2);
  flow.valid = true;
  return flow;
}

std::vector<FlowVector> estimate_flow(const EventStream& stream,
                                      const FlowConfig& config) {
  PlaneFitFlow estimator(stream.width, stream.height, config);
  std::vector<FlowVector> flows;
  for (const auto& e : stream.events) {
    const FlowVector flow = estimator.update(e);
    if (flow.valid) flows.push_back(flow);
  }
  return flows;
}

}  // namespace evd::events
