#include "events/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::events {

MovingShape ShapeDataset::random_shape(int label, Rng& rng) const {
  MovingShape shape;
  shape.kind = static_cast<ShapeKind>(label);
  shape.radius = rng.uniform(config_.min_radius, config_.max_radius);

  // Pick a start and end point well inside the sensor and derive velocity so
  // the shape stays in view for the whole sample.
  const double margin = shape.radius + 1.0;
  const double w = static_cast<double>(config_.width);
  const double h = static_cast<double>(config_.height);
  const double duration_s = static_cast<double>(config_.duration_us) * 1e-6;
  const double x_start = rng.uniform(margin, w - margin);
  const double y_start = rng.uniform(margin, h - margin);

  const double speed = rng.uniform(config_.min_speed, config_.max_speed);
  // Try directions until the end point stays in view (bounded retry).
  double vx = speed, vy = 0.0;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const double theta = rng.uniform(0.0, 6.28318530717958647692);
    vx = speed * std::cos(theta);
    vy = speed * std::sin(theta);
    const double xe = x_start + vx * duration_s;
    const double ye = y_start + vy * duration_s;
    if (xe > margin && xe < w - margin && ye > margin && ye < h - margin) {
      break;
    }
  }
  shape.x0 = x_start;
  shape.y0 = y_start;
  shape.vx = vx;
  shape.vy = vy;
  shape.angle0 = rng.uniform(0.0, 6.28318530717958647692);
  shape.angular_velocity =
      rng.uniform(-config_.max_angular_velocity, config_.max_angular_velocity);
  shape.luminance = 0.9f;
  return shape;
}

std::uint64_t ShapeDataset::sample_seed(Index index) const {
  std::uint64_t mix = config_.seed;
  splitmix64(mix);
  return mix ^ static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ULL;
}

LabelledSample ShapeDataset::make_sample(Index index) const {
  if (config_.num_classes <= 0 || config_.num_classes > kShapeKindCount) {
    throw std::invalid_argument("ShapeDataset: bad num_classes");
  }
  const int label = static_cast<int>(index % config_.num_classes);
  Rng rng(sample_seed(index));

  Scene scene(config_.width, config_.height, 0.1f);
  scene.add_shape(random_shape(label, rng));

  DvsSimulator simulator(config_.width, config_.height, config_.dvs,
                         rng.fork());
  LabelledSample sample;
  sample.stream = simulator.simulate(scene, config_.duration_us);
  sample.label = label;
  return sample;
}

std::vector<LabelledSample> ShapeDataset::make_batch(Index first_index,
                                                     Index count) const {
  std::vector<LabelledSample> batch;
  batch.reserve(static_cast<size_t>(count));
  for (Index i = 0; i < count; ++i) {
    batch.push_back(make_sample(first_index + i));
  }
  return batch;
}

void ShapeDataset::make_split(Index train_per_class, Index test_per_class,
                              std::vector<LabelledSample>& train,
                              std::vector<LabelledSample>& test) const {
  // Indices cycle through classes, so consecutive blocks are balanced.
  const Index train_count = train_per_class * config_.num_classes;
  const Index test_count = test_per_class * config_.num_classes;
  train = make_batch(0, train_count);
  test = make_batch(train_count, test_count);
}

LabelledSample make_rotation_sample(const ShapeDatasetConfig& config,
                                    Index index) {
  const int label = static_cast<int>(index % 2);
  std::uint64_t mix = config.seed ^ 0x0707ULL;
  splitmix64(mix);
  mix ^= static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ULL;
  Rng rng(mix);

  MovingShape shape;
  shape.kind = ShapeKind::Cross;  // anisotropic: rotation is visible
  shape.radius = rng.uniform(config.min_radius + 1.0, config.max_radius);
  const double margin = shape.radius + 2.0;
  shape.x0 = rng.uniform(margin, static_cast<double>(config.width) - margin);
  shape.y0 = rng.uniform(margin, static_cast<double>(config.height) - margin);
  // Slow drift only — the signal is the spin, not the trajectory.
  shape.vx = rng.uniform(-10.0, 10.0);
  shape.vy = rng.uniform(-10.0, 10.0);
  shape.angle0 = rng.uniform(0.0, 6.28318530717958647692);
  const double spin = rng.uniform(3.0, 6.0);
  shape.angular_velocity = label == 0 ? -spin : spin;
  shape.luminance = 0.9f;

  Scene scene(config.width, config.height, 0.1f);
  scene.add_shape(shape);
  DvsSimulator simulator(config.width, config.height, config.dvs, rng.fork());
  LabelledSample sample;
  sample.stream = simulator.simulate(scene, config.duration_us);
  sample.label = label;
  return sample;
}

void make_rotation_split(const ShapeDatasetConfig& config,
                         Index train_per_class, Index test_per_class,
                         std::vector<LabelledSample>& train,
                         std::vector<LabelledSample>& test) {
  train.clear();
  test.clear();
  const Index train_count = 2 * train_per_class;
  for (Index i = 0; i < train_count; ++i) {
    train.push_back(make_rotation_sample(config, i));
  }
  for (Index i = 0; i < 2 * test_per_class; ++i) {
    test.push_back(make_rotation_sample(config, train_count + i));
  }
}

LabelledSample make_order_sample(const ShapeDatasetConfig& config,
                                 Index index) {
  const int label = static_cast<int>(index % 2);
  std::uint64_t mix = config.seed ^ 0x0BDE0BDEULL;
  splitmix64(mix);
  mix ^= static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ULL;
  Rng rng(mix);

  const double duration_s = static_cast<double>(config.duration_us) * 1e-6;
  const double half = duration_s / 2.0;
  const double radius =
      rng.uniform(config.min_radius, config.max_radius) * 0.8;
  const double jitter_y = rng.uniform(-3.0, 3.0);

  auto make = [&](double x_frac, double t_on, double t_off) {
    MovingShape shape;
    shape.kind = ShapeKind::Square;
    shape.radius = radius;
    shape.x0 = x_frac * static_cast<double>(config.width);
    shape.y0 = static_cast<double>(config.height) / 2.0 + jitter_y;
    shape.luminance = 0.9f;
    shape.t_on = t_on;
    shape.t_off = t_off;
    return shape;
  };
  // Margins keep both appearance AND disappearance bursts inside the
  // recording (a shape present at t = 0 is baked into the pixel reference
  // and would emit no appearance burst — an unintended static cue).
  const double margin = 0.1 * half;
  Scene scene(config.width, config.height, 0.1f);
  if (label == 0) {
    scene.add_shape(make(0.28, margin, half));                // left first
    scene.add_shape(make(0.72, half, duration_s - margin));   // right second
  } else {
    scene.add_shape(make(0.72, margin, half));                // right first
    scene.add_shape(make(0.28, half, duration_s - margin));   // left second
  }

  DvsSimulator simulator(config.width, config.height, config.dvs, rng.fork());
  LabelledSample sample;
  sample.stream = simulator.simulate(scene, config.duration_us);
  sample.label = label;
  return sample;
}

void make_order_split(const ShapeDatasetConfig& config, Index train_per_class,
                      Index test_per_class,
                      std::vector<LabelledSample>& train,
                      std::vector<LabelledSample>& test) {
  train.clear();
  test.clear();
  const Index train_count = 2 * train_per_class;
  for (Index i = 0; i < train_count; ++i) {
    train.push_back(make_order_sample(config, i));
  }
  for (Index i = 0; i < 2 * test_per_class; ++i) {
    test.push_back(make_order_sample(config, train_count + i));
  }
}

LocalizationSample make_localization_sample(const ShapeDatasetConfig& config,
                                            Index index) {
  // Reuse the classification generator; the ground truth is re-derived by
  // replaying the same per-index RNG stream through random_shape().
  ShapeDataset dataset(config);
  LabelledSample generated = dataset.make_sample(index);

  Rng truth_rng(dataset.sample_seed(index));
  const int label = static_cast<int>(index % config.num_classes);
  const MovingShape shape = dataset.random_shape(label, truth_rng);
  const double half_duration_s =
      static_cast<double>(config.duration_us) * 0.5e-6;

  LocalizationSample sample;
  sample.stream = std::move(generated.stream);
  sample.cx = static_cast<float>(shape.x0 + shape.vx * half_duration_s);
  sample.cy = static_cast<float>(shape.y0 + shape.vy * half_duration_s);
  sample.radius = static_cast<float>(shape.radius);
  return sample;
}

void make_localization_split(const ShapeDatasetConfig& config,
                             Index train_count, Index test_count,
                             std::vector<LocalizationSample>& train,
                             std::vector<LocalizationSample>& test) {
  train.clear();
  test.clear();
  for (Index i = 0; i < train_count; ++i) {
    train.push_back(make_localization_sample(config, i));
  }
  for (Index i = 0; i < test_count; ++i) {
    test.push_back(make_localization_sample(config, train_count + i));
  }
}

OnsetStream make_onset_stream(const ShapeDatasetConfig& config, int label,
                              TimeUs onset_us, TimeUs total_duration_us,
                              std::uint64_t seed) {
  if (onset_us >= total_duration_us) {
    throw std::invalid_argument("make_onset_stream: onset beyond duration");
  }
  Rng rng(seed);
  ShapeDataset dataset(config);

  // The shape sweeps in from the left so its leading (anti-aliased) edge
  // reaches the first pixel column exactly at onset_us — stimulus onset is
  // the first moment the sensor can register any signal.
  MovingShape shape;
  shape.kind = static_cast<ShapeKind>(label);
  shape.radius = 0.5 * (config.min_radius + config.max_radius);
  const double speed = 0.5 * (config.min_speed + config.max_speed);
  shape.vx = speed;
  shape.vy = 0.0;
  shape.y0 = static_cast<double>(config.height) / 2.0;
  // Centre sits radius + 1 px (one extra pixel covers the AA band) left of
  // the sensor at onset.
  shape.x0 = -(shape.radius + 1.0) -
             speed * static_cast<double>(onset_us) * 1e-6;
  shape.luminance = 0.9f;

  Scene scene(config.width, config.height, 0.1f);
  scene.add_shape(shape);

  DvsSimulator simulator(config.width, config.height, config.dvs, rng.fork());
  OnsetStream result;
  result.stream = simulator.simulate(scene, total_duration_us);
  result.onset_us = onset_us;
  result.label = label;
  return result;
}

}  // namespace evd::events
