#include "events/hybrid_sensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace evd::events {

HybridRecording simulate_hybrid(DvsSimulator& dvs, const Scene& scene,
                                TimeUs duration_us, const ApsConfig& aps,
                                Rng rng) {
  if (aps.frame_period_us <= 0 || aps.exposure_us <= 0 ||
      aps.exposure_us > aps.frame_period_us || aps.exposure_samples <= 0) {
    throw std::invalid_argument("simulate_hybrid: bad APS configuration");
  }
  HybridRecording recording;
  recording.events = dvs.simulate(scene, duration_us);

  for (TimeUs frame_end = aps.frame_period_us; frame_end <= duration_us;
       frame_end += aps.frame_period_us) {
    const TimeUs exposure_start = frame_end - aps.exposure_us;
    Image frame(scene.width(), scene.height());
    // Box-integrate the scene over the exposure window.
    for (Index s = 0; s < aps.exposure_samples; ++s) {
      const double t =
          static_cast<double>(exposure_start) +
          (static_cast<double>(s) + 0.5) /
              static_cast<double>(aps.exposure_samples) *
              static_cast<double>(aps.exposure_us);
      const Image sample = scene.render(t * 1e-6);
      for (size_t i = 0; i < frame.pixels.size(); ++i) {
        frame.pixels[i] += sample.pixels[i];
      }
    }
    const float inv = 1.0f / static_cast<float>(aps.exposure_samples);
    for (auto& v : frame.pixels) {
      v = std::clamp(
          v * inv + static_cast<float>(rng.normal(0.0, aps.read_noise)),
          0.0f, 1.0f);
    }
    recording.frames.push_back(std::move(frame));
    recording.frame_times.push_back(frame_end);
  }
  return recording;
}

}  // namespace evd::events
