// Synthetic scene renderer.
//
// Substitutes for physical scenes in front of a real event camera: renders a
// grayscale luminance image of moving geometric shapes over a (optionally
// textured) background at any time t, with sub-pixel anti-aliased edges so
// that motion produces smooth luminance ramps — the signal a DVS pixel
// differentiates. Ego-motion is modelled as a global translation of the
// whole scene (camera pan), the dominant cause of event floods in
// high-resolution sensors [20].
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace evd::events {

/// Row-major grayscale image, luminance values in [0, 1].
struct Image {
  Index width = 0;
  Index height = 0;
  std::vector<float> pixels;

  Image() = default;
  Image(Index w, Index h) : width(w), height(h) {
    pixels.assign(static_cast<size_t>(w * h), 0.0f);
  }

  float& at(Index x, Index y) {
    return pixels[static_cast<size_t>(y * width + x)];
  }
  float at(Index x, Index y) const {
    return pixels[static_cast<size_t>(y * width + x)];
  }
};

/// Shape kinds used by the classification dataset (one class per kind).
enum class ShapeKind : int {
  Circle = 0,
  Square = 1,
  Triangle = 2,
  Bar = 3,
  Cross = 4,
  Ring = 5,
};

constexpr int kShapeKindCount = 6;
const char* shape_kind_name(ShapeKind kind);

/// A moving shape: position is linear in time, with optional rotation for
/// anisotropic shapes.
struct MovingShape {
  ShapeKind kind = ShapeKind::Circle;
  double x0 = 0.0, y0 = 0.0;        ///< Centre at t = 0 (pixels).
  double vx = 0.0, vy = 0.0;        ///< Velocity (pixels / second).
  double radius = 5.0;              ///< Characteristic half-size (pixels).
  double angle0 = 0.0;              ///< Orientation at t = 0 (radians).
  double angular_velocity = 0.0;    ///< rad / second.
  float luminance = 1.0f;           ///< Shape brightness.
  /// Visibility window (seconds): the shape contributes only while
  /// t_on <= t < t_off. Appearing/disappearing objects generate ON/OFF
  /// event bursts, enabling purely temporal-order workloads.
  double t_on = -1e30;
  double t_off = 1e30;

  /// Signed distance-like coverage of pixel (px,py) at time t_seconds,
  /// in [0,1] with anti-aliased edges.
  float coverage(double px, double py, double t_seconds) const;
};

/// Scene = background + shapes + optional global ego-motion pan.
class Scene {
 public:
  Scene(Index width, Index height, float background_luminance = 0.1f);

  void add_shape(MovingShape shape) { shapes_.push_back(shape); }

  /// Add a random static texture (per-pixel luminance noise) which, combined
  /// with ego-motion, makes the *whole frame* generate events [20].
  void set_texture(double amplitude, Rng& rng);

  /// Global camera pan in pixels/second.
  void set_ego_motion(double vx, double vy) {
    ego_vx_ = vx;
    ego_vy_ = vy;
  }

  Index width() const noexcept { return width_; }
  Index height() const noexcept { return height_; }
  const std::vector<MovingShape>& shapes() const noexcept { return shapes_; }

  /// Render luminance at absolute time t (seconds since stream start).
  Image render(double t_seconds) const;

 private:
  float sample_background(double x, double y) const;

  Index width_, height_;
  float background_;
  double ego_vx_ = 0.0, ego_vy_ = 0.0;
  std::vector<MovingShape> shapes_;
  std::vector<float> texture_;  ///< Empty when untextured.
};

}  // namespace evd::events
