#include "events/downsample.hpp"

#include <stdexcept>

namespace evd::events {

EventStream spatial_downsample(const EventStream& stream,
                               const SpatialDownsampleConfig& config) {
  if (config.factor <= 0) {
    throw std::invalid_argument("spatial_downsample: factor must be positive");
  }
  EventStream out;
  out.width = stream.width / config.factor;
  out.height = stream.height / config.factor;
  if (out.width <= 0 || out.height <= 0) {
    throw std::invalid_argument("spatial_downsample: factor exceeds geometry");
  }

  if (!config.accumulate) {
    out.events.reserve(stream.events.size());
    for (const auto& e : stream.events) {
      const Index sx = e.x / config.factor;
      const Index sy = e.y / config.factor;
      if (sx >= out.width || sy >= out.height) continue;  // ragged edge
      out.events.push_back(Event{static_cast<std::int16_t>(sx),
                                 static_cast<std::int16_t>(sy), e.polarity,
                                 e.t});
    }
    return out;
  }

  // Integrate-and-fire pooling: per super-pixel, per polarity counters that
  // reset on window boundaries.
  struct Counter {
    Index count[2] = {0, 0};
    TimeUs window_start = 0;
  };
  std::vector<Counter> counters(static_cast<size_t>(out.width * out.height));
  for (const auto& e : stream.events) {
    const Index sx = e.x / config.factor;
    const Index sy = e.y / config.factor;
    if (sx >= out.width || sy >= out.height) continue;
    auto& c = counters[static_cast<size_t>(sy * out.width + sx)];
    if (e.t - c.window_start >= config.window_us) {
      c.count[0] = c.count[1] = 0;
      c.window_start = e.t - (e.t % config.window_us);
    }
    const int channel = polarity_channel(e.polarity);
    if (++c.count[channel] >= config.count_threshold) {
      c.count[channel] = 0;
      out.events.push_back(Event{static_cast<std::int16_t>(sx),
                                 static_cast<std::int16_t>(sy), e.polarity,
                                 e.t});
    }
  }
  return out;
}

std::vector<Event> temporal_quantize(std::span<const Event> events,
                                     TimeUs tick_us) {
  if (tick_us <= 0) {
    throw std::invalid_argument("temporal_quantize: tick must be positive");
  }
  std::vector<Event> out(events.begin(), events.end());
  for (auto& e : out) e.t -= e.t % tick_us;
  return out;
}

}  // namespace evd::events
