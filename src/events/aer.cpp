#include "events/aer.hpp"

#include <stdexcept>

namespace evd::events {
namespace {

// RAW32 address word layout: [31:18] x, [17:4] y, [3] polarity, [2:0] unused.
constexpr std::uint32_t kXShift = 18;
constexpr std::uint32_t kYShift = 4;
constexpr std::uint32_t kPolBit = 1u << 3;
constexpr std::uint32_t kAddrMask = 0x3FFF;  // 14 bits

// Delta word tags (top 2 of 16 bits).
enum class Tag : std::uint16_t {
  TimeLow = 0b00,   ///< payload: 14-bit time increment (us)
  TimeExt = 0b01,   ///< payload: 14-bit value, time += value << 14
  AddrY = 0b10,     ///< payload: 14-bit row address
  AddrX = 0b11,     ///< payload: [13] polarity, [12:0] column address
};

constexpr std::uint16_t word(Tag tag, std::uint16_t payload) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(tag) << 14 |
                                    (payload & 0x3FFF));
}

constexpr Tag tag_of(std::uint16_t w) { return static_cast<Tag>(w >> 14); }
constexpr std::uint16_t payload_of(std::uint16_t w) {
  return static_cast<std::uint16_t>(w & 0x3FFF);
}

}  // namespace

Raw32Packet raw32_encode(std::span<const Event> events) {
  Raw32Packet packet;
  packet.words.reserve(events.size() * 2);
  packet.event_count = static_cast<Index>(events.size());
  for (const auto& e : events) {
    std::uint32_t addr = (static_cast<std::uint32_t>(e.x) & kAddrMask)
                             << kXShift |
                         (static_cast<std::uint32_t>(e.y) & kAddrMask)
                             << kYShift;
    if (e.polarity == Polarity::On) addr |= kPolBit;
    packet.words.push_back(addr);
    packet.words.push_back(static_cast<std::uint32_t>(e.t));
  }
  return packet;
}

std::vector<Event> raw32_decode(const Raw32Packet& packet) {
  if (packet.words.size() != static_cast<size_t>(packet.event_count) * 2) {
    throw std::runtime_error("raw32_decode: word count mismatch");
  }
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(packet.event_count));
  for (size_t i = 0; i + 1 < packet.words.size(); i += 2) {
    const std::uint32_t addr = packet.words[i];
    Event e;
    e.x = static_cast<std::int16_t>((addr >> kXShift) & kAddrMask);
    e.y = static_cast<std::int16_t>((addr >> kYShift) & kAddrMask);
    e.polarity = (addr & kPolBit) ? Polarity::On : Polarity::Off;
    e.t = static_cast<TimeUs>(packet.words[i + 1]);
    events.push_back(e);
  }
  return events;
}

DeltaPacket delta_encode(std::span<const Event> events) {
  if (!is_time_sorted(events)) {
    throw std::invalid_argument("delta_encode: stream must be time-sorted");
  }
  DeltaPacket packet;
  packet.event_count = static_cast<Index>(events.size());
  if (events.empty()) return packet;

  packet.base_time = events.front().t;
  TimeUs current_time = packet.base_time;
  std::int32_t current_y = -1;

  for (const auto& e : events) {
    TimeUs dt = e.t - current_time;
    while (dt >> 14 != 0) {
      const auto hi = static_cast<std::uint16_t>(
          std::min<TimeUs>(dt >> 14, 0x3FFF));
      packet.words.push_back(word(Tag::TimeExt, hi));
      dt -= static_cast<TimeUs>(hi) << 14;
    }
    if (dt > 0) {
      packet.words.push_back(word(Tag::TimeLow,
                                  static_cast<std::uint16_t>(dt)));
    }
    current_time = e.t;

    if (e.y != current_y) {
      packet.words.push_back(
          word(Tag::AddrY, static_cast<std::uint16_t>(e.y)));
      current_y = e.y;
    }
    std::uint16_t xw = static_cast<std::uint16_t>(e.x) & 0x1FFF;
    if (e.polarity == Polarity::On) xw |= 1u << 13;
    packet.words.push_back(word(Tag::AddrX, xw));
  }
  return packet;
}

std::vector<Event> delta_decode(const DeltaPacket& packet) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(packet.event_count));
  TimeUs current_time = packet.base_time;
  std::int16_t current_y = 0;
  for (const std::uint16_t w : packet.words) {
    switch (tag_of(w)) {
      case Tag::TimeLow:
        current_time += payload_of(w);
        break;
      case Tag::TimeExt:
        current_time += static_cast<TimeUs>(payload_of(w)) << 14;
        break;
      case Tag::AddrY:
        current_y = static_cast<std::int16_t>(payload_of(w));
        break;
      case Tag::AddrX: {
        const std::uint16_t payload = payload_of(w);
        Event e;
        e.x = static_cast<std::int16_t>(payload & 0x1FFF);
        e.y = current_y;
        e.polarity = (payload & (1u << 13)) ? Polarity::On : Polarity::Off;
        e.t = current_time;
        events.push_back(e);
        break;
      }
    }
  }
  if (static_cast<Index>(events.size()) != packet.event_count) {
    throw std::runtime_error("delta_decode: event count mismatch");
  }
  return events;
}

}  // namespace evd::events
