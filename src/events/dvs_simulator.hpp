// DVS (Dynamic Vision Sensor) pixel-array simulator.
//
// Each pixel tracks the log-luminance at the time of its last event and
// emits an ON/OFF event whenever the current log-luminance deviates by more
// than a contrast threshold, after which the reference is updated
// (Lichtsteiner 2008 [6]). Modelled non-idealities, all documented in the
// sensor literature the paper cites:
//
//  * per-pixel threshold mismatch (FPN)              [14]
//  * refractory period after each event              [6]
//  * shot-noise "background activity" events         [13]
//  * hot pixels (stuck, high-rate)                   common in practice
//  * finite timestamp resolution + in-window jitter
//
// The simulator is driven by a Scene sampled at a configurable internal
// frame interval; multiple threshold crossings within one interval generate
// multiple events with interpolated timestamps, preserving the fine
// temporal structure a real sensor would produce.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "events/event.hpp"
#include "events/scene.hpp"

namespace evd::events {

struct DvsConfig {
  double contrast_threshold = 0.15;   ///< Nominal log-intensity step.
  double threshold_mismatch = 0.03;   ///< Stddev of per-pixel threshold FPN.
  TimeUs refractory_us = 100;         ///< Pixel dead-time after an event.
  double background_rate_hz = 0.5;    ///< Noise events per pixel per second.
  double hot_pixel_fraction = 0.0;    ///< Fraction of stuck high-rate pixels.
  double hot_pixel_rate_hz = 2000.0;  ///< Event rate of a hot pixel.
  TimeUs sim_step_us = 1000;          ///< Internal scene sampling interval.
  double log_eps = 0.02;              ///< Offset inside log() for dark pixels.

  // Degraded-sensor regimes, all off by default. These model the failure
  // modes the fault suite injects through the serving stack: leak-noise
  // bursts (junction leakage firing a pixel repeatedly, BA noise's bursty
  // cousin) and HDR flicker (mains-powered illumination modulating
  // log-intensity, a classic source of correlated ON/OFF storms).
  double leak_burst_rate_hz = 0.0;  ///< Array-wide burst onsets per second.
  Index leak_burst_length = 12;     ///< ON events per leak burst.
  TimeUs leak_burst_spacing_us = 200;  ///< Intra-burst event spacing.
  double flicker_hz = 0.0;          ///< Illumination flicker frequency.
  double flicker_amplitude = 0.0;   ///< Log-intensity modulation depth.
  double flicker_fraction = 0.0;    ///< Fraction of pixels under flicker.
};

class DvsSimulator {
 public:
  DvsSimulator(Index width, Index height, DvsConfig config, Rng rng);

  /// Run the simulator over [0, duration_us] against the scene and return
  /// the (time-sorted) event stream.
  EventStream simulate(const Scene& scene, TimeUs duration_us);

  /// Reset pixel state (reference levels, refractory clocks, noise phase).
  void reset();

  const DvsConfig& config() const noexcept { return config_; }
  Index width() const noexcept { return width_; }
  Index height() const noexcept { return height_; }

 private:
  double log_intensity(float luminance) const;
  void emit_pixel_events(Index x, Index y, double new_log, TimeUs t_prev,
                         TimeUs t_now, std::vector<Event>& out);
  void emit_noise(TimeUs t_begin, TimeUs t_end, std::vector<Event>& out);

  Index width_, height_;
  DvsConfig config_;
  Rng rng_;
  std::vector<double> reference_;       ///< Per-pixel log ref at last event.
  std::vector<double> threshold_on_;    ///< Per-pixel ON threshold (with FPN).
  std::vector<double> threshold_off_;   ///< Per-pixel OFF threshold.
  std::vector<TimeUs> refractory_until_;
  std::vector<char> hot_;               ///< Hot-pixel mask.
  std::vector<char> flicker_;           ///< Pixels under flickering light.
  std::vector<double> prev_log_;        ///< Log intensity at previous step.
  bool initialized_ = false;
};

}  // namespace evd::events
