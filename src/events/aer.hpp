// Address-Event Representation (AER) codec.
//
// AER is the time-multiplexed digital protocol event sensors use to ship
// events off-chip [7]. We implement two wire formats used by real readout
// pipelines:
//
//  * RAW32: one 32-bit word per event — 14-bit x, 14-bit y (enough for the
//    1280x720 Gen4 sensor [10]), 1-bit polarity, plus a separate absolute
//    timestamp channel. Models the uncompressed readout.
//  * EVT-delta: variable-length compressed format in the spirit of the Gen4
//    "compressive data-formatting pipeline" [10]: a vector-ised encoding with
//    time-delta words inserted only when the timestamp advances, and 16-bit
//    per-event address words relative to a row base.
//
// The codec is lossless; bandwidth accounting (bits/event) feeds the Table I
// "Memory - Bandwidth" axis for the sensor interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "events/event.hpp"

namespace evd::events {

/// Fixed 32-bit word per event plus one 32-bit timestamp word per event.
struct Raw32Packet {
  std::vector<std::uint32_t> words;
  Index event_count = 0;

  double bits_per_event() const noexcept {
    return event_count > 0 ? static_cast<double>(words.size()) * 32.0 /
                                 static_cast<double>(event_count)
                           : 0.0;
  }
};

/// Encode a stream into RAW32 (address word + timestamp word per event).
Raw32Packet raw32_encode(std::span<const Event> events);

/// Decode RAW32; throws std::runtime_error on malformed input.
std::vector<Event> raw32_decode(const Raw32Packet& packet);

/// Variable-length compressed packet (EVT-delta).
struct DeltaPacket {
  std::vector<std::uint16_t> words;
  Index event_count = 0;
  TimeUs base_time = 0;

  double bits_per_event() const noexcept {
    return event_count > 0 ? static_cast<double>(words.size()) * 16.0 /
                                 static_cast<double>(event_count)
                           : 0.0;
  }
};

/// Encode a *time-sorted* stream into the delta format.
/// Throws std::invalid_argument if the stream is not sorted.
DeltaPacket delta_encode(std::span<const Event> events);

/// Decode a delta packet; exact inverse of delta_encode.
std::vector<Event> delta_decode(const DeltaPacket& packet);

}  // namespace evd::events
