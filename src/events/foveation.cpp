#include "events/foveation.hpp"

#include <algorithm>
#include <tuple>

namespace evd::events {
namespace {

struct BlockCounter {
  Index count[2] = {0, 0};
};

}  // namespace

FoveationResult foveate(const EventStream& stream,
                        const FoveationConfig& config) {
  FoveationResult result;
  const Index pw = std::max<Index>(stream.width / config.periphery_factor, 1);
  const Index ph = std::max<Index>(stream.height / config.periphery_factor, 1);
  std::vector<BlockCounter> blocks(static_cast<size_t>(pw * ph));

  Index fx = stream.width / 2;   // fovea centre
  Index fy = stream.height / 2;
  auto clamp_fovea = [&](Index cx, Index cy) {
    const Index hw = config.fovea_width / 2;
    const Index hh = config.fovea_height / 2;
    return std::pair<Index, Index>{
        std::clamp<Index>(cx, hw, stream.width - 1 - hw),
        std::clamp<Index>(cy, hh, stream.height - 1 - hh)};
  };
  std::tie(fx, fy) = clamp_fovea(fx, fy);
  result.fovea_track.emplace_back(fx, fy);

  TimeUs saccade_end =
      stream.events.empty()
          ? config.saccade_interval_us
          : stream.events.front().t + config.saccade_interval_us;
  double cx_sum = 0.0, cy_sum = 0.0;
  Index interval_count = 0;

  for (const auto& e : stream.events) {
    if (e.t >= saccade_end) {
      if (config.activity_driven && interval_count > 0) {
        std::tie(fx, fy) = clamp_fovea(
            static_cast<Index>(cx_sum / static_cast<double>(interval_count)),
            static_cast<Index>(cy_sum / static_cast<double>(interval_count)));
        result.fovea_track.emplace_back(fx, fy);
      }
      cx_sum = cy_sum = 0.0;
      interval_count = 0;
      while (e.t >= saccade_end) saccade_end += config.saccade_interval_us;
      // Saccades also reset peripheral accumulators.
      std::fill(blocks.begin(), blocks.end(), BlockCounter{});
    }
    cx_sum += static_cast<double>(e.x);
    cy_sum += static_cast<double>(e.y);
    ++interval_count;

    const bool in_fovea = std::abs(e.x - fx) <= config.fovea_width / 2 &&
                          std::abs(e.y - fy) <= config.fovea_height / 2;
    if (in_fovea) {
      result.events.push_back(e);
      ++result.foveal_events;
      continue;
    }
    ++result.peripheral_in;
    const Index bx = std::min<Index>(e.x / config.periphery_factor, pw - 1);
    const Index by = std::min<Index>(e.y / config.periphery_factor, ph - 1);
    auto& block = blocks[static_cast<size_t>(by * pw + bx)];
    const int channel = polarity_channel(e.polarity);
    if (++block.count[channel] >= config.periphery_factor) {
      block.count[channel] = 0;
      // Emit at the block centre in full-resolution coordinates.
      Event pooled = e;
      pooled.x = static_cast<std::int16_t>(bx * config.periphery_factor +
                                           config.periphery_factor / 2);
      pooled.y = static_cast<std::int16_t>(by * config.periphery_factor +
                                           config.periphery_factor / 2);
      result.events.push_back(pooled);
      ++result.peripheral_out;
    }
  }
  return result;
}

std::vector<Event> centre_surround_filter(const EventStream& stream,
                                          const CentreSurroundConfig& config) {
  struct PixelActivity {
    Index count = 0;
    TimeUs window_start = 0;
  };
  std::vector<PixelActivity> activity(
      static_cast<size_t>(stream.width * stream.height));
  auto read = [&](Index x, Index y, TimeUs now) -> double {
    const auto& a = activity[static_cast<size_t>(y * stream.width + x)];
    return (now - a.window_start < config.window_us)
               ? static_cast<double>(a.count)
               : 0.0;
  };

  std::vector<Event> passed;
  for (const auto& e : stream.events) {
    double centre = 1.0;  // the event itself
    double surround = 0.0;
    Index centre_area = 0, surround_area = 0;
    for (Index dy = -config.surround_radius; dy <= config.surround_radius;
         ++dy) {
      for (Index dx = -config.surround_radius; dx <= config.surround_radius;
           ++dx) {
        const Index nx = e.x + dx;
        const Index ny = e.y + dy;
        if (nx < 0 || ny < 0 || nx >= stream.width || ny >= stream.height) {
          continue;
        }
        const Index chebyshev = std::max(std::abs(dx), std::abs(dy));
        if (chebyshev <= config.centre_radius) {
          centre += read(nx, ny, e.t);
          ++centre_area;
        } else {
          surround += read(nx, ny, e.t);
          ++surround_area;
        }
      }
    }
    const double centre_density =
        centre / std::max<double>(static_cast<double>(centre_area), 1.0);
    const double surround_density =
        surround / std::max<double>(static_cast<double>(surround_area), 1.0);
    if (centre_density > config.gain * surround_density) {
      passed.push_back(e);
    }
    auto& a =
        activity[static_cast<size_t>(e.y) * static_cast<size_t>(stream.width) +
                 static_cast<size_t>(e.x)];
    if (e.t - a.window_start >= config.window_us) {
      a.count = 0;
      a.window_start = e.t;
    }
    ++a.count;
  }
  return passed;
}

}  // namespace evd::events
