#include "events/scene.hpp"

#include <cmath>

namespace evd::events {
namespace {

/// Smooth step from 0 at d >= 0.5 to 1 at d <= -0.5; d is a signed distance
/// to the shape boundary in pixels (negative inside). One-pixel-wide
/// anti-aliasing band.
float edge_coverage(double signed_distance) {
  const double t = 0.5 - signed_distance;
  if (t <= 0.0) return 0.0f;
  if (t >= 1.0) return 1.0f;
  return static_cast<float>(t * t * (3.0 - 2.0 * t));
}

}  // namespace

const char* shape_kind_name(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::Circle: return "circle";
    case ShapeKind::Square: return "square";
    case ShapeKind::Triangle: return "triangle";
    case ShapeKind::Bar: return "bar";
    case ShapeKind::Cross: return "cross";
    case ShapeKind::Ring: return "ring";
  }
  return "unknown";
}

float MovingShape::coverage(double px, double py, double t_seconds) const {
  if (t_seconds < t_on || t_seconds >= t_off) return 0.0f;
  // Transform into the shape's local frame (translate then rotate back).
  const double cx = x0 + vx * t_seconds;
  const double cy = y0 + vy * t_seconds;
  const double angle = angle0 + angular_velocity * t_seconds;
  const double ca = std::cos(-angle);
  const double sa = std::sin(-angle);
  const double dx0 = px - cx;
  const double dy0 = py - cy;
  const double dx = dx0 * ca - dy0 * sa;
  const double dy = dx0 * sa + dy0 * ca;

  double d = 1e9;  // signed distance to boundary, negative inside
  switch (kind) {
    case ShapeKind::Circle:
      d = std::sqrt(dx * dx + dy * dy) - radius;
      break;
    case ShapeKind::Square: {
      const double qx = std::abs(dx) - radius;
      const double qy = std::abs(dy) - radius;
      const double ox = std::max(qx, 0.0);
      const double oy = std::max(qy, 0.0);
      d = std::sqrt(ox * ox + oy * oy) + std::min(std::max(qx, qy), 0.0);
      break;
    }
    case ShapeKind::Triangle: {
      // Equilateral triangle SDF (Inigo Quilez), size = radius.
      const double k = std::sqrt(3.0);
      double x = std::abs(dx) - radius;
      double y = dy + radius / k;
      if (x + k * y > 0.0) {
        const double nx = (x - k * y) / 2.0;
        const double ny = (-k * x - y) / 2.0;
        x = nx;
        y = ny;
      }
      x -= std::min(std::max(x, -2.0 * radius), 0.0);
      d = -std::sqrt(x * x + y * y) * (y > 0.0 ? 1.0 : -1.0);
      break;
    }
    case ShapeKind::Bar: {
      const double qx = std::abs(dx) - radius;
      const double qy = std::abs(dy) - radius * 0.3;
      const double ox = std::max(qx, 0.0);
      const double oy = std::max(qy, 0.0);
      d = std::sqrt(ox * ox + oy * oy) + std::min(std::max(qx, qy), 0.0);
      break;
    }
    case ShapeKind::Cross: {
      auto box = [](double bx, double by, double hx, double hy) {
        const double qx = std::abs(bx) - hx;
        const double qy = std::abs(by) - hy;
        const double ox = std::max(qx, 0.0);
        const double oy = std::max(qy, 0.0);
        return std::sqrt(ox * ox + oy * oy) +
               std::min(std::max(qx, qy), 0.0);
      };
      d = std::min(box(dx, dy, radius, radius * 0.3),
                   box(dx, dy, radius * 0.3, radius));
      break;
    }
    case ShapeKind::Ring: {
      const double r = std::sqrt(dx * dx + dy * dy);
      d = std::abs(r - radius) - radius * 0.3;
      break;
    }
  }
  return edge_coverage(d);
}

Scene::Scene(Index width, Index height, float background_luminance)
    : width_(width), height_(height), background_(background_luminance) {}

void Scene::set_texture(double amplitude, Rng& rng) {
  texture_.assign(static_cast<size_t>(width_ * height_), 0.0f);
  for (auto& v : texture_) {
    v = static_cast<float>(rng.uniform(-amplitude, amplitude));
  }
}

float Scene::sample_background(double x, double y) const {
  if (texture_.empty()) return background_;
  // Bilinear sample with wrap-around so ego-motion never runs off the map.
  auto wrap = [](Index v, Index n) { return ((v % n) + n) % n; };
  const auto x0i = static_cast<Index>(std::floor(x));
  const auto y0i = static_cast<Index>(std::floor(y));
  const double fx = x - static_cast<double>(x0i);
  const double fy = y - static_cast<double>(y0i);
  auto tex = [&](Index xi, Index yi) {
    return texture_[static_cast<size_t>(wrap(yi, height_) * width_ +
                                        wrap(xi, width_))];
  };
  const double v =
      (1 - fx) * (1 - fy) * tex(x0i, y0i) + fx * (1 - fy) * tex(x0i + 1, y0i) +
      (1 - fx) * fy * tex(x0i, y0i + 1) + fx * fy * tex(x0i + 1, y0i + 1);
  return background_ + static_cast<float>(v);
}

Image Scene::render(double t_seconds) const {
  Image img(width_, height_);
  const double ox = ego_vx_ * t_seconds;
  const double oy = ego_vy_ * t_seconds;
  for (Index y = 0; y < height_; ++y) {
    for (Index x = 0; x < width_; ++x) {
      // Ego-motion shifts the background sample position.
      float lum = sample_background(static_cast<double>(x) + ox,
                                    static_cast<double>(y) + oy);
      for (const auto& shape : shapes_) {
        // Shapes live in world coordinates; ego-motion shifts them too.
        const float cov = shape.coverage(static_cast<double>(x) + ox,
                                         static_cast<double>(y) + oy,
                                         t_seconds);
        lum = lum * (1.0f - cov) + shape.luminance * cov;
      }
      img.at(x, y) = std::min(std::max(lum, 0.0f), 1.0f);
    }
  }
  return img;
}

}  // namespace evd::events
