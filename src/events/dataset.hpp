// Synthetic event-camera datasets.
//
// ShapeDataset substitutes for recorded benchmarks (N-MNIST / N-Caltech101
// class of tasks): each sample is the event stream produced by one moving,
// rotating geometric shape observed by the DVS simulator. Class = shape
// kind. Difficulty is controlled by sensor noise, shape size/speed ranges
// and the number of classes. Generation is deterministic per (seed, index),
// so train/test splits are exactly reproducible and identical across the
// CNN / SNN / GNN pipelines being compared.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "events/dvs_simulator.hpp"
#include "events/event.hpp"
#include "events/scene.hpp"

namespace evd::events {

struct LabelledSample {
  EventStream stream;
  int label = 0;
};

struct ShapeDatasetConfig {
  Index width = 32;
  Index height = 32;
  int num_classes = 4;              ///< Uses the first N ShapeKinds.
  TimeUs duration_us = 100000;      ///< 100 ms per sample.
  double min_speed = 40.0;          ///< pixels / second
  double max_speed = 120.0;
  double min_radius = 5.0;
  double max_radius = 9.0;
  double max_angular_velocity = 3.0;  ///< rad / s
  DvsConfig dvs;                    ///< Sensor non-idealities.
  std::uint64_t seed = 42;
};

class ShapeDataset {
 public:
  explicit ShapeDataset(ShapeDatasetConfig config) : config_(config) {}

  /// Generate sample `index` (deterministic in (seed, index)).
  LabelledSample make_sample(Index index) const;

  /// Generate `count` samples starting at `first_index`.
  std::vector<LabelledSample> make_batch(Index first_index,
                                         Index count) const;

  /// Balanced train/test split: `train_per_class` + `test_per_class`
  /// samples per class, disjoint index ranges.
  void make_split(Index train_per_class, Index test_per_class,
                  std::vector<LabelledSample>& train,
                  std::vector<LabelledSample>& test) const;

  const ShapeDatasetConfig& config() const noexcept { return config_; }

  /// The deterministic per-sample RNG seed for `index`.
  std::uint64_t sample_seed(Index index) const;

  /// Build the randomized moving shape for (label, rng). Public so ground
  /// truth can be re-derived from the same RNG stream (localization).
  MovingShape random_shape(int label, Rng& rng) const;

 private:
  ShapeDatasetConfig config_;
};

/// Streaming workload for latency experiments: the scene is empty (noise
/// only) until `onset_us`, when a shape appears and starts moving. Returns
/// the stream and the exact onset time.
struct OnsetStream {
  EventStream stream;
  TimeUs onset_us = 0;
  int label = 0;
};

OnsetStream make_onset_stream(const ShapeDatasetConfig& config, int label,
                              TimeUs onset_us, TimeUs total_duration_us,
                              std::uint64_t seed);

/// Temporal-memory workload: a rotating anisotropic shape (cross), class =
/// rotation direction (0 = clockwise, 1 = counter-clockwise). Over the full
/// recording both classes smear into statistically identical count frames,
/// so any classifier without temporal memory is at chance — the probe
/// behind the paper's §V claim that recurrence (or spiking/graph state)
/// supplies what single dense frames cannot.
LabelledSample make_rotation_sample(const ShapeDatasetConfig& config,
                                    Index index);

void make_rotation_split(const ShapeDatasetConfig& config,
                         Index train_per_class, Index test_per_class,
                         std::vector<LabelledSample>& train,
                         std::vector<LabelledSample>& test);

/// Pure temporal-order workload: two shapes at mirrored positions, one
/// visible in the first half of the recording, the other in the second.
/// Class = which side appears first (0 = left, 1 = right). Both classes
/// produce *identical* time-integrated event frames (each location sees one
/// ON burst and one OFF burst either way) — only the order differs, so any
/// memoryless classifier is at chance by construction.
LabelledSample make_order_sample(const ShapeDatasetConfig& config,
                                 Index index);

void make_order_split(const ShapeDatasetConfig& config, Index train_per_class,
                      Index test_per_class,
                      std::vector<LabelledSample>& train,
                      std::vector<LabelledSample>& test);

/// Localization workload (the detection application domain, [35],[70]):
/// same moving shapes, ground truth = the shape's centre at the midpoint of
/// the recording plus its radius.
struct LocalizationSample {
  EventStream stream;
  float cx = 0.0f;  ///< Centre x at t = duration/2 (pixels).
  float cy = 0.0f;
  float radius = 0.0f;
};

LocalizationSample make_localization_sample(const ShapeDatasetConfig& config,
                                            Index index);

void make_localization_split(const ShapeDatasetConfig& config,
                             Index train_count, Index test_count,
                             std::vector<LocalizationSample>& train,
                             std::vector<LocalizationSample>& test);

}  // namespace evd::events
