#include "events/dvs_simulator.hpp"

#include <cmath>

#include "common/parallel.hpp"

namespace evd::events {

DvsSimulator::DvsSimulator(Index width, Index height, DvsConfig config,
                           Rng rng)
    : width_(width), height_(height), config_(config), rng_(rng) {
  const auto n = static_cast<size_t>(width_ * height_);
  reference_.assign(n, 0.0);
  threshold_on_.assign(n, config_.contrast_threshold);
  threshold_off_.assign(n, config_.contrast_threshold);
  refractory_until_.assign(n, 0);
  hot_.assign(n, 0);
  flicker_.assign(n, 0);
  prev_log_.assign(n, 0.0);

  for (size_t i = 0; i < n; ++i) {
    // Threshold mismatch is multiplicative FPN, clamped away from zero so no
    // pixel becomes pathologically sensitive.
    threshold_on_[i] = std::max(
        0.25 * config_.contrast_threshold,
        config_.contrast_threshold + rng_.normal(0.0, config_.threshold_mismatch));
    threshold_off_[i] = std::max(
        0.25 * config_.contrast_threshold,
        config_.contrast_threshold + rng_.normal(0.0, config_.threshold_mismatch));
    if (rng_.bernoulli(config_.hot_pixel_fraction)) hot_[i] = 1;
    // Flicker is a property of the scene geometry (which surfaces face the
    // mains-powered light), so the affected-pixel mask is fixed at
    // construction, like the FPN draw.
    if (config_.flicker_hz > 0.0 &&
        rng_.bernoulli(config_.flicker_fraction)) {
      flicker_[i] = 1;
    }
  }
}

void DvsSimulator::reset() {
  std::fill(refractory_until_.begin(), refractory_until_.end(), 0);
  initialized_ = false;
}

double DvsSimulator::log_intensity(float luminance) const {
  return std::log(static_cast<double>(luminance) + config_.log_eps);
}

void DvsSimulator::emit_pixel_events(Index x, Index y, double new_log,
                                     TimeUs t_prev, TimeUs t_now,
                                     std::vector<Event>& out) {
  const auto idx = static_cast<size_t>(y * width_ + x);
  const double old_log = prev_log_[idx];
  double ref = reference_[idx];
  const double span = new_log - old_log;

  // Walk threshold crossings inside [t_prev, t_now], linearly interpolating
  // the event time within the step — this is what preserves microsecond
  // structure beyond the internal frame rate.
  while (true) {
    const double delta = new_log - ref;
    Polarity polarity;
    double threshold;
    if (delta >= threshold_on_[idx]) {
      polarity = Polarity::On;
      threshold = threshold_on_[idx];
    } else if (delta <= -threshold_off_[idx]) {
      polarity = Polarity::Off;
      threshold = -threshold_off_[idx];
    } else {
      break;
    }
    const double crossing_level = ref + threshold;
    double frac = 0.5;
    if (std::abs(span) > 1e-12) {
      frac = (crossing_level - old_log) / span;
      frac = std::min(std::max(frac, 0.0), 1.0);
    }
    const auto t_event = static_cast<TimeUs>(
        static_cast<double>(t_prev) +
        frac * static_cast<double>(t_now - t_prev));
    ref = crossing_level;
    if (t_event >= refractory_until_[idx]) {
      out.push_back(Event{static_cast<std::int16_t>(x),
                          static_cast<std::int16_t>(y), polarity, t_event});
      refractory_until_[idx] = t_event + config_.refractory_us;
    }
    // The reference still tracks the crossing even during refractory dead
    // time — the comparator fired, only the output was suppressed.
  }
  reference_[idx] = ref;
  prev_log_[idx] = new_log;
}

void DvsSimulator::emit_noise(TimeUs t_begin, TimeUs t_end,
                              std::vector<Event>& out) {
  const double window_s =
      static_cast<double>(t_end - t_begin) * 1e-6;
  const auto n = static_cast<size_t>(width_ * height_);
  // Background activity: Poisson count over the whole array, then uniform
  // placement — equivalent to independent per-pixel Poisson processes and
  // much cheaper at high resolution.
  const double ba_lambda =
      config_.background_rate_hz * window_s * static_cast<double>(n);
  const Index ba_count = rng_.poisson(ba_lambda);
  for (Index i = 0; i < ba_count; ++i) {
    Event e;
    e.x = static_cast<std::int16_t>(rng_.uniform_int(
        static_cast<std::uint64_t>(width_)));
    e.y = static_cast<std::int16_t>(rng_.uniform_int(
        static_cast<std::uint64_t>(height_)));
    e.polarity = rng_.bernoulli(0.5) ? Polarity::On : Polarity::Off;
    e.t = t_begin + static_cast<TimeUs>(rng_.uniform() *
                                        static_cast<double>(t_end - t_begin));
    out.push_back(e);
  }
  // Leak-noise bursts: junction leakage fires one pixel repeatedly. Burst
  // onsets are Poisson over the window; each burst is a run of ON events at
  // fixed spacing from a uniformly drawn pixel, truncated at the window end
  // (so timestamps never escape [t_begin, t_end]).
  if (config_.leak_burst_rate_hz > 0.0) {
    const Index bursts = rng_.poisson(config_.leak_burst_rate_hz * window_s);
    for (Index b = 0; b < bursts; ++b) {
      Event e;
      e.x = static_cast<std::int16_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(width_)));
      e.y = static_cast<std::int16_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(height_)));
      e.polarity = Polarity::On;  // leakage discharges one way
      TimeUs t = t_begin + static_cast<TimeUs>(
                               rng_.uniform() *
                               static_cast<double>(t_end - t_begin));
      for (Index i = 0; i < config_.leak_burst_length && t <= t_end;
           ++i, t += config_.leak_burst_spacing_us) {
        e.t = t;
        out.push_back(e);
      }
    }
  }
  // Hot pixels fire at a fixed high rate regardless of the scene.
  for (Index y = 0; y < height_; ++y) {
    for (Index x = 0; x < width_; ++x) {
      if (!hot_[static_cast<size_t>(y * width_ + x)]) continue;
      const Index k = rng_.poisson(config_.hot_pixel_rate_hz * window_s);
      for (Index i = 0; i < k; ++i) {
        Event e;
        e.x = static_cast<std::int16_t>(x);
        e.y = static_cast<std::int16_t>(y);
        e.polarity = Polarity::On;
        e.t = t_begin +
              static_cast<TimeUs>(rng_.uniform() *
                                  static_cast<double>(t_end - t_begin));
        out.push_back(e);
      }
    }
  }
}

EventStream DvsSimulator::simulate(const Scene& scene, TimeUs duration_us) {
  EventStream stream;
  stream.width = width_;
  stream.height = height_;

  // Initialise references from the scene at t = 0 (sensor settled).
  const Image first = scene.render(0.0);
  if (!initialized_) {
    for (Index y = 0; y < height_; ++y) {
      for (Index x = 0; x < width_; ++x) {
        const auto idx = static_cast<size_t>(y * width_ + x);
        const double v = log_intensity(first.at(x, y));
        reference_[idx] = v;
        prev_log_[idx] = v;
      }
    }
    initialized_ = true;
  }

  std::vector<Event>& out = stream.events;
  TimeUs t_prev = 0;
  // The threshold walk is per-pixel state + deterministic arithmetic (no
  // RNG), so rows partition freely across the pool. Chunk buffers
  // concatenate in row order — the exact serial emission order — and the
  // final stable sort therefore yields an identical stream for any thread
  // count. Noise synthesis consumes the RNG and stays on the caller.
  constexpr Index kRowGrain = 4;
  const Index nchunks = par::chunk_count(0, height_, kRowGrain);
  std::vector<std::vector<Event>> chunk_events(static_cast<size_t>(nchunks));
  for (TimeUs t = config_.sim_step_us; t <= duration_us;
       t += config_.sim_step_us) {
    const Image frame = scene.render(static_cast<double>(t) * 1e-6);
    // HDR flicker: sinusoidal log-intensity modulation of the masked pixels,
    // a pure function of the step time — RNG-free, so it parallelises with
    // the threshold walk (and vanishes at t=0, matching the reference init).
    const double flicker_mod =
        config_.flicker_hz > 0.0
            ? config_.flicker_amplitude *
                  std::sin(2.0 * 3.14159265358979323846 * config_.flicker_hz *
                           static_cast<double>(t) * 1e-6)
            : 0.0;
    par::parallel_for_chunks(0, height_, kRowGrain, [&](Index chunk,
                                                        Index y_begin,
                                                        Index y_end) {
      auto& local = chunk_events[static_cast<size_t>(chunk)];
      for (Index y = y_begin; y < y_end; ++y) {
        for (Index x = 0; x < width_; ++x) {
          const auto idx = static_cast<size_t>(y * width_ + x);
          const double mod = flicker_[idx] != 0 ? flicker_mod : 0.0;
          emit_pixel_events(x, y, log_intensity(frame.at(x, y)) + mod, t_prev,
                            t, local);
        }
      }
    });
    for (auto& local : chunk_events) {
      out.insert(out.end(), local.begin(), local.end());
      local.clear();
    }
    emit_noise(t_prev, t, out);
    t_prev = t;
  }
  sort_by_time(out);
  return stream;
}

}  // namespace evd::events
