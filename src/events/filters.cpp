#include "events/filters.hpp"

#include <cmath>
#include <unordered_set>

namespace evd::events {

std::vector<Event> refractory_filter(std::span<const Event> events,
                                     Index width, Index height,
                                     TimeUs refractory_us) {
  std::vector<TimeUs> last(static_cast<size_t>(width * height),
                           -refractory_us - 1);
  std::vector<Event> kept;
  kept.reserve(events.size());
  for (const auto& e : events) {
    const auto idx = static_cast<size_t>(e.y) * static_cast<size_t>(width) +
                     static_cast<size_t>(e.x);
    if (e.t - last[idx] > refractory_us) {
      kept.push_back(e);
      last[idx] = e.t;
    }
  }
  return kept;
}

std::vector<Event> background_activity_filter(std::span<const Event> events,
                                              Index width, Index height,
                                              TimeUs support_window_us) {
  // Timestamp map of the most recent event per pixel (any polarity).
  std::vector<TimeUs> last(static_cast<size_t>(width * height),
                           -support_window_us - 1);
  std::vector<Event> kept;
  kept.reserve(events.size());
  for (const auto& e : events) {
    bool supported = false;
    for (Index dy = -1; dy <= 1 && !supported; ++dy) {
      for (Index dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const Index nx = e.x + dx;
        const Index ny = e.y + dy;
        if (nx < 0 || ny < 0 || nx >= width || ny >= height) continue;
        if (e.t - last[static_cast<size_t>(ny * width + nx)] <=
            support_window_us) {
          supported = true;
          break;
        }
      }
    }
    last[static_cast<size_t>(e.y) * static_cast<size_t>(width) +
         static_cast<size_t>(e.x)] = e.t;
    if (supported) kept.push_back(e);
  }
  return kept;
}

std::vector<Index> detect_hot_pixels(std::span<const Event> events,
                                     Index width, Index height, double sigma) {
  std::vector<Index> counts(static_cast<size_t>(width * height), 0);
  for (const auto& e : events) {
    ++counts[static_cast<size_t>(e.y) * static_cast<size_t>(width) +
             static_cast<size_t>(e.x)];
  }
  double sum = 0.0, sum2 = 0.0;
  Index active = 0;
  for (const auto c : counts) {
    if (c > 0) {
      sum += static_cast<double>(c);
      sum2 += static_cast<double>(c) * static_cast<double>(c);
      ++active;
    }
  }
  std::vector<Index> hot;
  if (active < 2) return hot;
  const double mean = sum / static_cast<double>(active);
  const double var =
      sum2 / static_cast<double>(active) - mean * mean;
  const double cutoff = mean + sigma * std::sqrt(std::max(var, 0.0));
  for (size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(counts[i]) > cutoff) {
      hot.push_back(static_cast<Index>(i));
    }
  }
  return hot;
}

std::vector<Event> mask_pixels(std::span<const Event> events, Index width,
                               std::span<const Index> pixels) {
  std::unordered_set<Index> masked(pixels.begin(), pixels.end());
  std::vector<Event> kept;
  kept.reserve(events.size());
  for (const auto& e : events) {
    const Index idx = static_cast<Index>(e.y) * width + e.x;
    if (!masked.contains(idx)) kept.push_back(e);
  }
  return kept;
}

}  // namespace evd::events
