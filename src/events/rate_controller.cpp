#include "events/rate_controller.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::events {

std::vector<Event> RateController::process(std::span<const Event> events) {
  if (!is_time_sorted(events)) {
    throw std::invalid_argument("RateController: stream must be time-sorted");
  }
  std::vector<Event> out;
  out.reserve(events.size());
  const auto budget_per_window = static_cast<Index>(
      config_.max_rate_eps * static_cast<double>(config_.window_us) * 1e-6);
  if (budget_per_window <= 0) {
    stats_.in_events += static_cast<Index>(events.size());
    return out;
  }

  size_t i = 0;
  while (i < events.size()) {
    const TimeUs window_start =
        events[i].t - (events[i].t % config_.window_us);
    const TimeUs window_end = window_start + config_.window_us;
    size_t j = i;
    while (j < events.size() && events[j].t < window_end) ++j;
    const auto in_window = static_cast<Index>(j - i);
    ++stats_.windows;
    stats_.in_events += in_window;

    if (in_window <= budget_per_window) {
      out.insert(out.end(), events.begin() + static_cast<std::ptrdiff_t>(i),
                 events.begin() + static_cast<std::ptrdiff_t>(j));
      stats_.out_events += in_window;
    } else {
      ++stats_.saturated_windows;
      switch (config_.policy) {
        case RatePolicy::Drop: {
          const double keep_p = static_cast<double>(budget_per_window) /
                                static_cast<double>(in_window);
          for (size_t k = i; k < j; ++k) {
            if (rng_.bernoulli(keep_p)) {
              out.push_back(events[k]);
              ++stats_.out_events;
            }
          }
          break;
        }
        case RatePolicy::Decimate: {
          // Keep every stride-th event: deterministic, preserves time span.
          const double stride = static_cast<double>(in_window) /
                                static_cast<double>(budget_per_window);
          double next = 0.0;
          for (Index k = 0; k < in_window; ++k) {
            if (static_cast<double>(k) >= next) {
              out.push_back(events[i + static_cast<size_t>(k)]);
              ++stats_.out_events;
              next += stride;
            }
          }
          break;
        }
        case RatePolicy::Suppress: {
          for (Index k = 0; k < budget_per_window; ++k) {
            out.push_back(events[i + static_cast<size_t>(k)]);
          }
          stats_.out_events += budget_per_window;
          break;
        }
      }
    }
    i = j;
  }
  return out;
}

bool RateController::admit(const Event& event) {
  if (config_.policy != RatePolicy::Suppress) {
    throw std::logic_error(
        "RateController::admit: only the Suppress policy is causal; Drop and "
        "Decimate need the whole window (use process())");
  }
  const auto budget_per_window = static_cast<Index>(
      config_.max_rate_eps * static_cast<double>(config_.window_us) * 1e-6);
  ++stats_.in_events;
  if (budget_per_window <= 0) return false;

  const TimeUs window_start = event.t - (event.t % config_.window_us);
  if (!admit_window_open_ || window_start != admit_window_start_) {
    admit_window_open_ = true;
    admit_window_start_ = window_start;
    admit_window_count_ = 0;
    ++stats_.windows;
  }
  ++admit_window_count_;
  if (admit_window_count_ <= budget_per_window) {
    ++stats_.out_events;
    return true;
  }
  if (admit_window_count_ == budget_per_window + 1) ++stats_.saturated_windows;
  return false;
}

}  // namespace evd::events
