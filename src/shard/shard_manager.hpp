// Sharded serving: per-core shard groups over the single-manager runtime.
//
// The SessionManager (runtime/session_manager.hpp) is deterministic and
// parallel *within* a pump round, but its submit side shares one admission
// pipeline and one set of queues — every producer thread funnels through
// the same structure the pump loop reads. The ShardManager partitions the
// serving plane instead (DESIGN.md section 15):
//
//   shard k owns   a private SessionManager (its own sessions, queues,
//                  admission ladder, plan — obs instruments labeled
//                  shard="k"), a private ArenaAllocator backing
//   an ingress     a fixed-capacity lock-free MPSC ring (mpsc_ring.hpp):
//   ring           producers try_push ops from any thread; the shard's
//                  slice of pump() drains them into the inner manager,
//                  where admission / validation / latency stamping run
//                  exactly as they always have.
//
// Session → shard placement is a consistent-hash ring over virtual nodes
// (hash_ring.hpp): deterministic in the placement seed, balanced to the
// ring's max/mean bound, and monotone under shard-count changes — so
// rebalance() migrates the minimal set of sessions.
//
// Migration rides the PR 6 checkpoint framing end to end: flush the source
// shard (ring + backlog), save_state the session, retire() the source slot
// (its ledgers come back to the ShardManager so totals stay conserved),
// rebuild from the factory at the target, load_state, seed the monotone
// watermark. The shard.migration_replay oracle proves the decision streams
// bitwise unaffected. Migrating a quarantined session is refused with
// Error(SessionFaulted): quarantine is shard-local containment, and a
// faulted session's backlog is loss-accounted where it faulted, not moved.
//
// Determinism (the shard.sharded_vs_sequential oracles pin this bitwise):
// a session's decision stream depends only on its own op order. The ring
// preserves per-producer FIFO, the inner managers are the already-proved
// deterministic runtime, and sessions never share mutable state across
// shards — so N shards at any thread count replay exactly the sequential
// stream.
//
// Concurrency contract: with shards > 1, submit()/submit_advance() are safe
// from any thread, concurrently with pump(). Everything else — add,
// migrate, rebalance, stats, pump itself — is control-plane: one thread at
// a time, serialized with each other (the usual single-owner pump loop).
// With shards == 1 the ShardManager collapses to a byte-identical facade
// over one legacy unlabeled SessionManager: no rings, no extra instruments,
// submit delegates directly — EVD_SHARDS=1 is the kill switch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/session_manager.hpp"
#include "shard/hash_ring.hpp"
#include "shard/mpsc_ring.hpp"

namespace evd::shard {

/// Recreates a session of the right pipeline/config for checkpoint
/// restoration at a migration target. Must produce a session whose
/// paradigm, geometry and arena layout match what save_state captured.
using SessionFactory = std::function<std::unique_ptr<core::StreamSession>()>;

struct ShardManagerConfig {
  /// Shard count; 0 resolves EVD_SHARDS (default 1 — sharding is opt-in).
  Index shards = 0;
  /// Per-shard pump burst, forwarded to each inner SessionManager.
  Index burst = 256;
  /// Per-shard ingress ring capacity in ops (rounded up to a power of two).
  Index ingress_capacity = 4096;
  /// Consistent-hash ring shape (see hash_ring.hpp).
  Index vnodes_per_shard = kDefaultVnodesPerShard;
  std::uint64_t placement_seed = kDefaultPlacementSeed;
};

/// EVD_SHARDS resolution: strictly positive integer, warn-and-fallback on
/// garbage, clamped to kMaxShards — the same discipline (and parser) as
/// EVD_THREADS. `configured` > 0 bypasses the environment.
inline constexpr Index kMaxShards = 64;
Index resolve_shard_count(Index configured);

class ShardManager {
 public:
  using SessionId = runtime::SessionId;

  explicit ShardManager(ShardManagerConfig config = {});

  /// Open a session from `factory` and place it on the hash ring. Returns a
  /// dense global id (stable across migrations — callers never see inner
  /// ids). The factory is retained for checkpoint rebuilds at migration
  /// targets.
  SessionId add(SessionFactory factory,
                const runtime::ManagedSessionConfig& config = {});

  /// Queue an op for the session, from any thread (shards > 1). False when
  /// not admitted: a full ingress ring (accounted in stats().ingress_dropped
  /// and the shard's evd_shard_ingress_dropped_total counter) or, on the
  /// shards == 1 direct path, whatever the inner manager refused.
  bool submit(SessionId id, const events::Event& event);
  bool submit_advance(SessionId id, TimeUs t);

  /// One scheduling round: every shard, in parallel over the evd::par pool
  /// (grain 1 — one worker owns one shard's drain + pump per round), drains
  /// its ingress ring into its manager and pumps a round. Returns ops
  /// processed plus ops drained (0 == fully idle).
  Index pump();
  /// pump() until idle.
  void pump_all();

  Index shard_count() const noexcept {
    return static_cast<Index>(shards_.size());
  }
  Index session_count() const noexcept {
    return static_cast<Index>(entries_.size());
  }

  /// Current shard of a session / where the hash ring says it belongs.
  /// They differ only between a topology change and the next rebalance().
  Index shard_of(SessionId id) const { return entry(id).shard; }
  Index planned_shard_of(SessionId id) const {
    return ring_.shard_of(entry(id).key);
  }

  /// The shard's inner manager (plans, admission, restore — all per-shard).
  runtime::SessionManager& shard(Index s) { return shard_at(s).manager; }
  const runtime::SessionManager& shard(Index s) const {
    return shard_at(s).manager;
  }

  // Session accessors, delegating to the owning shard.
  core::StreamSession& session(SessionId id) {
    Entry& e = entry(id);
    return shards_[static_cast<size_t>(e.shard)]->manager.session(e.inner);
  }
  runtime::SessionState state(SessionId id) const {
    const Entry& e = entry(id);
    return shards_[static_cast<size_t>(e.shard)]->manager.state(e.inner);
  }
  core::SessionStats stats(SessionId id) const {
    const Entry& e = entry(id);
    return shards_[static_cast<size_t>(e.shard)]->manager.stats(e.inner);
  }
  Index queued(SessionId id) const {
    const Entry& e = entry(id);
    return shards_[static_cast<size_t>(e.shard)]->manager.queued(e.inner);
  }
  Index drain(SessionId id, std::vector<core::Decision>& out) {
    Entry& e = entry(id);
    return shards_[static_cast<size_t>(e.shard)]->manager.drain(e.inner, out);
  }

  /// Move a session to `target_shard` through checkpoint/restore (see the
  /// header comment for the exact sequence). Throws Error(SessionFaulted)
  /// for a quarantined session, Error(CheckpointUnsupported) when the
  /// session cannot serialize, Error(InvalidArgument) on a bad target.
  /// No-op when the session already lives there.
  void migrate(SessionId id, Index target_shard);

  /// Migrate every Active session whose current shard disagrees with the
  /// hash ring (faulted sessions stay put — quarantine is shard-local).
  /// Returns the number of sessions moved.
  Index rebalance();

  std::int64_t migrations() const noexcept { return migrations_; }

  /// The serving-plane dashboard, aggregated across shards: inner manager
  /// aggregates (with every retired slot's carried-over ledger folded back
  /// in, so migration never changes a total), the ingress-ring ledgers, and
  /// the migration count. Ring drops are charged to totals.events_dropped —
  /// an op lost at the ring is exactly as lost as one the queue shed.
  struct Stats {
    core::SessionStats totals;
    runtime::EventQueue::Stats queues;
    runtime::SessionManager::SheddingStats shedding;
    runtime::SessionManager::FaultStats faults;
    Index sessions = 0;
    Index shards = 0;
    std::int64_t migrations = 0;
    std::int64_t ingress_ops = 0;      ///< Ops accepted by the rings.
    std::int64_t ingress_dropped = 0;  ///< Ops rejected by full rings.
  };
  Stats stats() const;

 private:
  /// One queued ingress op: resolved global id + the op. Admission (and its
  /// deterministic stream-time token buckets) runs at drain, in the inner
  /// manager, where it has always run.
  struct IngressOp {
    SessionId global = 0;
    runtime::StreamOp op{};
  };

  struct ShardState {
    runtime::SessionManager manager;
    /// Backs the ring cells: per-shard ownership of the hot ingress memory.
    std::unique_ptr<runtime::ArenaAllocator> arena;
    std::unique_ptr<MpscRing<IngressOp>> ring;  ///< Null when shards == 1.
    obs::Counter ingress_ops;      ///< evd_shard_ingress_ops_total{shard=...}
    obs::Counter ingress_dropped;  ///< evd_shard_ingress_dropped_total{...}
    /// Ring ledger mirrors of the counters (stats() must not depend on the
    /// obs kill switch). Written by producers — hence atomic.
    std::atomic<std::int64_t> ops_accepted{0};
    std::atomic<std::int64_t> ops_dropped{0};
    explicit ShardState(Index burst, std::string label)
        : manager(burst, std::move(label)) {}
  };

  struct Entry {
    Index shard = 0;
    runtime::SessionId inner = 0;
    SessionFactory factory;
    runtime::ManagedSessionConfig config;
    std::uint64_t key = 0;  ///< Placement key (the global id).
  };

  Entry& entry(SessionId id);
  const Entry& entry(SessionId id) const;
  ShardState& shard_at(Index s);
  const ShardState& shard_at(Index s) const;

  bool submit_op(SessionId id, const runtime::StreamOp& op);
  /// Drain shard s's ring into its inner manager; returns ops drained.
  Index drain_ring(Index s);
  /// Drain + pump shard s until its ring and queues are empty.
  void flush_shard(Index s);

  ShardManagerConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<Entry> entries_;
  std::vector<Index> round_ops_;  ///< Per-shard scratch for pump().
  std::int64_t migrations_ = 0;
  obs::Counter migrations_counter_;  ///< evd_shard_migrations_total
  /// Ledgers of retired (migrated-out) slots, folded into stats() so a
  /// migration conserves every total.
  runtime::EventQueue::Stats retired_queues_;
  runtime::SessionManager::SheddingStats retired_shed_;
  std::int64_t retired_faults_ = 0;
  std::int64_t retired_restores_ = 0;
  std::int64_t retired_checkpoints_ = 0;
  std::int64_t retired_quarantine_dropped_ = 0;
};

}  // namespace evd::shard
