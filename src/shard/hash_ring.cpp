#include "shard/hash_ring.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace evd::shard {

std::uint64_t HashRing::point_hash(std::uint64_t seed, Index shard,
                                   Index replica) noexcept {
  // Mix (seed, shard, replica) through two splitmix64 rounds. The odd
  // multiplier keeps distinct (shard, replica) pairs in distinct states for
  // any realistic replica count; two rounds decorrelate the low bits that a
  // single round leaves structured for small inputs. Deliberately
  // independent of the shard *count* — see the header's consistency note.
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(shard) *
                                0x632BE59BD9B4E019ULL) ^
                        static_cast<std::uint64_t>(replica);
  (void)splitmix64(state);
  return splitmix64(state);
}

std::uint64_t HashRing::key_hash(std::uint64_t seed,
                                 std::uint64_t key) noexcept {
  // Different pre-mix than point_hash so keys and virtual nodes occupy
  // decorrelated streams of the same circle.
  std::uint64_t state = key + (seed ^ 0x9E3779B97F4A7C15ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

HashRing::HashRing(Index shards, Index vnodes_per_shard, std::uint64_t seed)
    : shards_(shards), vnodes_(vnodes_per_shard), seed_(seed) {
  if (shards < 1 || vnodes_per_shard < 1) {
    throw Error(ErrorCode::InvalidArgument,
                "HashRing: shards and vnodes_per_shard must be >= 1 (got " +
                    std::to_string(shards) + ", " +
                    std::to_string(vnodes_per_shard) + ")");
  }
  points_.reserve(static_cast<size_t>(shards) *
                  static_cast<size_t>(vnodes_per_shard));
  for (Index s = 0; s < shards; ++s) {
    for (Index r = 0; r < vnodes_per_shard; ++r) {
      points_.push_back(Point{point_hash(seed, s, r), s});
    }
  }
  // Hash ties (astronomically rare, but the placement must be a function)
  // break toward the lower shard id, deterministically.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

Index HashRing::shard_of(std::uint64_t key) const noexcept {
  const std::uint64_t h = key_hash(seed_, key);
  // First point at or clockwise of h, wrapping to the circle's start.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  return it != points_.end() ? it->shard : points_.front().shard;
}

}  // namespace evd::shard
