#include "shard/shard_manager.hpp"

#include <string>
#include <utility>

#include "common/env.hpp"
#include "common/parallel.hpp"

namespace evd::shard {

Index resolve_shard_count(Index configured) {
  if (configured > 0) {
    return configured > kMaxShards ? kMaxShards : configured;
  }
  // Default 1: sharding is opt-in, and EVD_SHARDS=1 is the kill switch back
  // to the byte-identical single-manager path.
  return env_count("EVD_SHARDS", std::getenv("EVD_SHARDS"), 1, kMaxShards,
                   "single-manager serving");
}

ShardManager::ShardManager(ShardManagerConfig config)
    : config_(config),
      ring_(resolve_shard_count(config.shards),
            config.vnodes_per_shard < 1 ? kDefaultVnodesPerShard
                                        : config.vnodes_per_shard,
            config.placement_seed) {
  const Index n = ring_.shards();
  config_.shards = n;
  shards_.reserve(static_cast<size_t>(n));
  for (Index s = 0; s < n; ++s) {
    // One shard keeps the legacy unlabeled instruments (and no ring): the
    // facade must be indistinguishable from a bare SessionManager.
    std::string label =
        n > 1 ? "shard=\"" + std::to_string(s) + "\"" : std::string();
    auto state = std::make_unique<ShardState>(config_.burst, label);
    if (n > 1) {
      state->arena = std::make_unique<runtime::ArenaAllocator>(
          MpscRing<IngressOp>::bytes_for(config_.ingress_capacity));
      state->ring = std::make_unique<MpscRing<IngressOp>>(
          config_.ingress_capacity, state->arena.get());
      state->ingress_ops =
          obs::counter("evd_shard_ingress_ops_total{" + label + "}");
      state->ingress_dropped =
          obs::counter("evd_shard_ingress_dropped_total{" + label + "}");
    }
    shards_.push_back(std::move(state));
  }
  if (n > 1) {
    migrations_counter_ = obs::counter("evd_shard_migrations_total");
    round_ops_.assign(static_cast<size_t>(n), 0);
  }
}

ShardManager::Entry& ShardManager::entry(SessionId id) {
  if (id < 0 || id >= static_cast<Index>(entries_.size())) {
    throw Error(ErrorCode::InvalidSessionId,
                "ShardManager: session " + std::to_string(id) +
                    " outside [0, " + std::to_string(entries_.size()) + ")");
  }
  return entries_[static_cast<size_t>(id)];
}

const ShardManager::Entry& ShardManager::entry(SessionId id) const {
  return const_cast<ShardManager*>(this)->entry(id);
}

ShardManager::ShardState& ShardManager::shard_at(Index s) {
  if (s < 0 || s >= shard_count()) {
    throw Error(ErrorCode::InvalidArgument,
                "ShardManager: shard " + std::to_string(s) + " outside [0, " +
                    std::to_string(shard_count()) + ")");
  }
  return *shards_[static_cast<size_t>(s)];
}

const ShardManager::ShardState& ShardManager::shard_at(Index s) const {
  return const_cast<ShardManager*>(this)->shard_at(s);
}

ShardManager::SessionId ShardManager::add(
    SessionFactory factory, const runtime::ManagedSessionConfig& config) {
  if (!factory) {
    throw Error(ErrorCode::InvalidArgument,
                "ShardManager::add: null session factory");
  }
  std::unique_ptr<core::StreamSession> session = factory();
  if (!session) {
    throw Error(ErrorCode::InvalidArgument,
                "ShardManager::add: factory produced no session");
  }
  const auto id = static_cast<SessionId>(entries_.size());
  Entry e;
  e.key = static_cast<std::uint64_t>(id);
  e.shard = shard_count() > 1 ? ring_.shard_of(e.key) : 0;
  e.factory = std::move(factory);
  e.config = config;
  e.inner = shards_[static_cast<size_t>(e.shard)]->manager.add(
      std::move(session), config);
  entries_.push_back(std::move(e));
  return id;
}

bool ShardManager::submit_op(SessionId id, const runtime::StreamOp& op) {
  const Entry& e = entry(id);
  ShardState& st = *shards_[static_cast<size_t>(e.shard)];
  if (!st.ring) {
    // shards == 1: the legacy direct path, admission and all.
    return op.kind == runtime::StreamOp::Kind::Feed
               ? st.manager.submit(e.inner, op.event)
               : st.manager.submit_advance(e.inner, op.t);
  }
  if (!st.ring->try_push(IngressOp{id, op})) {
    st.ops_dropped.fetch_add(1, std::memory_order_relaxed);
    st.ingress_dropped.add(1);
    return false;
  }
  st.ops_accepted.fetch_add(1, std::memory_order_relaxed);
  st.ingress_ops.add(1);
  return true;
}

bool ShardManager::submit(SessionId id, const events::Event& event) {
  return submit_op(id, runtime::StreamOp::feed(event));
}

bool ShardManager::submit_advance(SessionId id, TimeUs t) {
  return submit_op(id, runtime::StreamOp::advance(t));
}

Index ShardManager::drain_ring(Index s) {
  ShardState& st = *shards_[static_cast<size_t>(s)];
  if (!st.ring) return 0;
  Index drained = 0;
  IngressOp in;
  while (st.ring->try_pop(in)) {
    // Resolve the entry at drain time: after a migration a straggler op can
    // sit on the old shard's ring, and it must follow its session rather
    // than hit a retired slot. Forwarding re-enqueues (multi-producer push
    // is safe from here); a full target ring accounts the loss like any
    // other ring rejection.
    const Entry& e = entries_[static_cast<size_t>(in.global)];
    if (e.shard != s) {
      ShardState& home = *shards_[static_cast<size_t>(e.shard)];
      if (home.ring && !home.ring->try_push(in)) {
        home.ops_dropped.fetch_add(1, std::memory_order_relaxed);
        home.ingress_dropped.add(1);
      }
      ++drained;
      continue;
    }
    // Inner submit runs admission / stamping exactly as the direct path
    // would; a refusal is already accounted in the inner manager's ledgers.
    if (in.op.kind == runtime::StreamOp::Kind::Feed) {
      (void)st.manager.submit(e.inner, in.op.event);
    } else {
      (void)st.manager.submit_advance(e.inner, in.op.t);
    }
    ++drained;
  }
  return drained;
}

Index ShardManager::pump() {
  const Index n = shard_count();
  if (n == 1) return shards_[0]->manager.pump();
  // Grain 1 over shards: shard s is chunk s, so one worker owns a shard's
  // entire drain + inner pump per round (static chunk assignment, the same
  // single-owner argument the SessionManager makes per session). The inner
  // pump's own parallel_for nests inside a region and therefore runs
  // inline on this worker — per-shard pumps stay strictly serial per shard.
  par::parallel_for(0, n, 1, [&](Index begin, Index end) {
    for (Index s = begin; s < end; ++s) {
      const Index drained = drain_ring(s);
      const Index processed = shards_[static_cast<size_t>(s)]->manager.pump();
      round_ops_[static_cast<size_t>(s)] = drained + processed;
    }
  });
  Index total = 0;
  for (const Index ops : round_ops_) total += ops;
  return total;
}

void ShardManager::pump_all() {
  while (pump() > 0) {
  }
}

void ShardManager::flush_shard(Index s) {
  ShardState& st = *shards_[static_cast<size_t>(s)];
  // Ring first, then queues; repeat in case the drain refilled a queue the
  // pump had already passed. Stops when a full round moves nothing.
  for (;;) {
    Index moved = drain_ring(s);
    st.manager.pump_all();
    if (moved == 0) break;
  }
}

void ShardManager::migrate(SessionId id, Index target_shard) {
  Entry& e = entry(id);
  ShardState& dst = shard_at(target_shard);
  if (target_shard == e.shard) return;
  ShardState& src = *shards_[static_cast<size_t>(e.shard)];
  if (src.manager.state(e.inner) == runtime::SessionState::Faulted) {
    throw Error(ErrorCode::SessionFaulted,
                "ShardManager::migrate: session " + std::to_string(id) +
                    " is quarantined on shard " + std::to_string(e.shard) +
                    "; quarantine is shard-local and does not migrate");
  }
  // Flush everything in flight, then re-check: the flush itself can fault
  // the session (that is the point of applying the backlog before moving).
  flush_shard(e.shard);
  if (src.manager.state(e.inner) == runtime::SessionState::Faulted) {
    throw Error(ErrorCode::SessionFaulted,
                "ShardManager::migrate: session " + std::to_string(id) +
                    " faulted while flushing for migration");
  }
  std::vector<std::uint8_t> bytes;
  if (!src.manager.session(e.inner).save_state(bytes)) {
    throw Error(ErrorCode::CheckpointUnsupported,
                "ShardManager::migrate: session " + std::to_string(id) +
                    " cannot serialize its state");
  }
  std::unique_ptr<core::StreamSession> fresh = e.factory();
  if (!fresh) {
    throw Error(ErrorCode::InvalidArgument,
                "ShardManager::migrate: factory produced no session");
  }
  fresh->load_state(bytes);
  const TimeUs watermark = src.manager.last_feed_time(e.inner);
  // Add at the target *before* retiring the source: if the target refuses
  // (overload ladder at RejectAdmits) the session is still live where it
  // was and the migration simply failed.
  const runtime::SessionId new_inner =
      dst.manager.add(std::move(fresh), e.config);
  dst.manager.seed_feed_watermark(new_inner, watermark);
  const runtime::SessionManager::RetiredLedger ledger =
      src.manager.retire(e.inner);
  retired_queues_.pushed += ledger.queue.pushed;
  retired_queues_.dropped += ledger.queue.dropped;
  retired_queues_.popped += ledger.queue.popped;
  retired_shed_.rate_limited += ledger.shed.rate_limited;
  retired_shed_.shed_noise += ledger.shed.shed_noise;
  retired_shed_.rejected_overload += ledger.shed.rejected_overload;
  retired_shed_.rejected_faulted += ledger.shed.rejected_faulted;
  retired_faults_ += ledger.faults;
  retired_restores_ += ledger.restores;
  retired_checkpoints_ += ledger.checkpoints;
  retired_quarantine_dropped_ += ledger.quarantine_dropped;
  e.shard = target_shard;
  e.inner = new_inner;
  ++migrations_;
  migrations_counter_.add(1);
}

Index ShardManager::rebalance() {
  Index moved = 0;
  for (SessionId id = 0; id < session_count(); ++id) {
    const Entry& e = entries_[static_cast<size_t>(id)];
    const Index planned = ring_.shard_of(e.key);
    if (planned == e.shard) continue;
    if (shards_[static_cast<size_t>(e.shard)]->manager.state(e.inner) ==
        runtime::SessionState::Faulted) {
      continue;  // quarantine is shard-local; the tombstone stays put
    }
    migrate(id, planned);
    ++moved;
  }
  return moved;
}

ShardManager::Stats ShardManager::stats() const {
  Stats out;
  out.shards = shard_count();
  out.migrations = migrations_;
  for (const auto& st : shards_) {
    const runtime::SessionManager::AggregateStats a = st->manager.stats();
    out.totals.events_fed += a.totals.events_fed;
    out.totals.decisions_emitted += a.totals.decisions_emitted;
    out.totals.decisions_dropped += a.totals.decisions_dropped;
    out.totals.events_dropped += a.totals.events_dropped;
    out.queues.pushed += a.queues.pushed;
    out.queues.dropped += a.queues.dropped;
    out.queues.popped += a.queues.popped;
    out.shedding.rate_limited += a.shedding.rate_limited;
    out.shedding.shed_noise += a.shedding.shed_noise;
    out.shedding.rejected_overload += a.shedding.rejected_overload;
    out.shedding.rejected_faulted += a.shedding.rejected_faulted;
    out.shedding.coarsened_rounds += a.shedding.coarsened_rounds;
    out.faults.faults += a.faults.faults;
    out.faults.restores += a.faults.restores;
    out.faults.checkpoints += a.faults.checkpoints;
    out.faults.quarantine_dropped += a.faults.quarantine_dropped;
    out.faults.quarantined_sessions += a.faults.quarantined_sessions;
    out.sessions += a.sessions;
    out.ingress_ops += st->ops_accepted.load(std::memory_order_relaxed);
    out.ingress_dropped += st->ops_dropped.load(std::memory_order_relaxed);
  }
  // Fold every retired slot's carried-over ledger back in, mirroring how
  // the inner managers fold the same fields for live slots — a migration
  // therefore never changes any aggregate.
  out.queues.pushed += retired_queues_.pushed;
  out.queues.dropped += retired_queues_.dropped;
  out.queues.popped += retired_queues_.popped;
  out.shedding.rate_limited += retired_shed_.rate_limited;
  out.shedding.shed_noise += retired_shed_.shed_noise;
  out.shedding.rejected_overload += retired_shed_.rejected_overload;
  out.shedding.rejected_faulted += retired_shed_.rejected_faulted;
  out.faults.faults += retired_faults_;
  out.faults.restores += retired_restores_;
  out.faults.checkpoints += retired_checkpoints_;
  out.faults.quarantine_dropped += retired_quarantine_dropped_;
  out.totals.events_dropped +=
      retired_queues_.dropped + retired_shed_.rate_limited +
      retired_shed_.shed_noise + retired_shed_.rejected_overload +
      retired_shed_.rejected_faulted + retired_quarantine_dropped_;
  // Ring rejections are losses in front of everything else.
  out.totals.events_dropped += out.ingress_dropped;
  return out;
}

}  // namespace evd::shard
