// Bounded lock-free MPSC ring — the ingress lane between producer threads
// and a shard's pump loop.
//
// This is the classic bounded sequence-number queue (Vyukov's MPMC design,
// restricted here to a single consumer): each cell carries an atomic
// sequence number that encodes, relative to the head/tail tickets, whether
// the cell is free to write or ready to read. Producers claim a ticket with
// one CAS and then publish their cell independently — no producer ever
// waits on another producer's store, and the consumer never takes a lock.
//
// Why the runtime wants it (DESIGN.md section 15): SessionManager::submit
// runs the admission pipeline under the assumption that submit and pump are
// externally serialized per manager. The sharded runtime keeps that
// assumption *per shard* by making this ring the only structure producers
// touch — any thread may feed any session while the shard's pump drains on
// another, and the manager lock discipline is unchanged.
//
// Progress/ordering contract:
//   * try_push is lock-free and safe from any number of threads; per
//     producer, pushes are FIFO (a producer's own ops drain in the order it
//     pushed them — exactly the guarantee replay-transparency needs).
//   * try_pop must only be called from one thread at a time (the shard's
//     pump). Single-consumer lets the pop side skip its CAS.
//   * Capacity is fixed at construction (rounded up to a power of two) and
//     a full ring rejects the push — explicit back-pressure, accounted by
//     the caller, never silent loss.
//
// Storage is optionally arena-backed: the sharded runtime carves each
// shard's cells from that shard's own ArenaAllocator, so the hot
// producer/consumer memory of different shards never shares an allocation
// (or, given the 64-byte cell alignment, a cache line).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/types.hpp"
#include "runtime/arena.hpp"

namespace evd::shard {

/// Smallest power of two >= n (n >= 1). Ring capacities are rounded up so
/// index masking replaces modulo on the hot path.
constexpr Index ceil_pow2(Index n) noexcept {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <typename T>
class MpscRing {
  static_assert(std::is_trivially_destructible_v<T>,
                "cells may live in an arena, which never runs destructors");

 public:
  /// One cache line per cell: a producer publishing cell i and the consumer
  /// reading cell j never false-share, whatever i and j.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  /// Capacity is rounded up to a power of two. When `arena` is non-null the
  /// cells are carved from it (sized via bytes_for — the arena must have
  /// room); otherwise the ring owns heap storage.
  explicit MpscRing(Index capacity, runtime::ArenaAllocator* arena = nullptr) {
    const Index cap = ceil_pow2(capacity < 1 ? 1 : capacity);
    mask_ = static_cast<std::uint64_t>(cap) - 1;
    if (arena != nullptr) {
      cells_ = arena->allocate_span<Cell>(cap).data();
    } else {
      owned_.reset(new Cell[static_cast<std::size_t>(cap)]);
      cells_ = owned_.get();
    }
    for (Index i = 0; i < cap; ++i) {
      cells_[i].seq.store(static_cast<std::uint64_t>(i),
                          std::memory_order_relaxed);
    }
  }

  /// Arena bytes needed for a ring of `capacity` (post-rounding), including
  /// the alignment slack the arena may burn reaching a cell boundary.
  static std::size_t bytes_for(Index capacity) {
    return static_cast<std::size_t>(ceil_pow2(capacity < 1 ? 1 : capacity)) *
               sizeof(Cell) +
           alignof(Cell);
  }

  /// Multi-producer enqueue. False iff the ring is full (the op is the
  /// caller's to account as shed).
  bool try_push(const T& value) {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `pos` was reloaded by compare_exchange, retry there.
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed lap: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue. False when the ring is (currently) empty.
  bool try_pop(T& out) {
    const std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(pos + 1) < 0) {
      return false;  // producer has not published this cell yet
    }
    out = cell.value;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  Index capacity() const noexcept { return static_cast<Index>(mask_ + 1); }

  /// Approximate occupancy — exact only when producers and the consumer are
  /// quiescent. Good enough for stats and tests; never used for control.
  Index size_approx() const noexcept {
    const std::uint64_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<Index>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  Cell* cells_ = nullptr;
  std::unique_ptr<Cell[]> owned_;  ///< Null when arena-backed.
  std::uint64_t mask_ = 0;
  /// Head and tail tickets on their own cache lines: producers hammer the
  /// tail CAS, the consumer owns the head — sharing a line would put every
  /// push in the consumer's coherence traffic.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace evd::shard
