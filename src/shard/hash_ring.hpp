// Consistent-hash placement ring for session → shard assignment.
//
// Each shard contributes `vnodes_per_shard` virtual nodes — points on a
// 64-bit hash circle — and a key lands on the shard owning the first point
// at or clockwise of the key's own hash. Virtual nodes smooth the
// partition: with V points per shard the max/mean load imbalance
// concentrates near 1 + O(sqrt(log S / V)) instead of the factor-of-several
// spread single points give (the balance property test pins a concrete
// bound).
//
// The property that makes this *consistent* hashing rather than `key % S`:
// a point's position depends only on (seed, shard, replica) — never on the
// shard count. Growing S -> S+1 therefore only inserts the new shard's
// points; every key either keeps its old owner or moves to the new shard,
// and in expectation only ~1/(S+1) of keys move at all (the monotone
// remapping property test). The rebalance path leans on exactly this:
// resizing migrates the minimal set of sessions, not a full reshuffle.
//
// Everything is deterministic in (seed, shards, vnodes_per_shard): two
// processes configured alike place every key identically, which the
// sharded-vs-sequential oracles depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace evd::shard {

/// Default virtual nodes per shard: enough to hold the max/mean imbalance
/// under ~1.35 for the shard counts the runtime uses (<= 64), cheap enough
/// that ring rebuilds stay trivial (a 64-shard ring is 4096 points).
inline constexpr Index kDefaultVnodesPerShard = 64;

/// Default placement seed (the 64-bit golden ratio, same constant the
/// splitmix64 increment uses). Deterministic by design — every process
/// computes the same placements; override for placement-sensitivity tests.
inline constexpr std::uint64_t kDefaultPlacementSeed = 0x9E3779B97F4A7C15ULL;

class HashRing {
 public:
  /// Throws Error(InvalidArgument) when shards < 1 or vnodes_per_shard < 1.
  explicit HashRing(Index shards,
                    Index vnodes_per_shard = kDefaultVnodesPerShard,
                    std::uint64_t seed = kDefaultPlacementSeed);

  /// Owning shard for `key`, in [0, shards).
  Index shard_of(std::uint64_t key) const noexcept;

  Index shards() const noexcept { return shards_; }
  Index vnodes_per_shard() const noexcept { return vnodes_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Position of shard `s`'s replica `r` on the circle. Exposed so the
  /// monotone-remapping test can state its claim against the same hashes
  /// the ring uses; depends only on (seed, s, r), never on shard count.
  static std::uint64_t point_hash(std::uint64_t seed, Index shard,
                                  Index replica) noexcept;
  /// Position of a key on the circle (same domain as point_hash).
  static std::uint64_t key_hash(std::uint64_t seed,
                                std::uint64_t key) noexcept;

 private:
  struct Point {
    std::uint64_t hash;
    Index shard;
  };

  std::vector<Point> points_;  ///< Sorted by (hash, shard).
  Index shards_;
  Index vnodes_;
  std::uint64_t seed_;
};

}  // namespace evd::shard
