// Sub-manifold sparse convolution with asynchronous per-event updates
// (paper §III-B, Messikommer et al. [59]).
//
// A sub-manifold convolution restricts outputs to the *active sites* — the
// pixels that have received at least one event — so activity cannot dilate
// layer by layer, and the network's cost scales with the number of active
// sites rather than the frame area. The asynchronous mode goes further: when
// a single event arrives, only the sites whose receptive field contains the
// changed pixel are recomputed, layer by layer, and only those whose value
// actually changed propagate further.
//
// All convolutions here are 3x3, stride 1, padding 1 with ReLU after every
// layer; feature buffers keep the full spatial resolution so results are
// bit-identical to a dense convolution evaluated at the active sites (the
// property the unit tests assert).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "events/event.hpp"
#include "nn/tensor.hpp"

namespace evd::cnn {

struct AsyncUpdateStats {
  std::int64_t macs = 0;             ///< Multiply-accumulates performed.
  std::int64_t sites_recomputed = 0; ///< Output sites re-evaluated, all layers.
  std::int64_t sites_changed = 0;    ///< Sites whose value actually changed.
};

class SubmanifoldConvNet {
 public:
  /// channels = {in, hidden..., out}; one 3x3 conv per adjacent pair.
  SubmanifoldConvNet(Index height, Index width, std::vector<Index> channels,
                     Rng& rng);

  /// Clear all activity and feature buffers (weights retained).
  void reset();

  /// Incorporate one event (input channel = polarity, +1 saturating count)
  /// and propagate the change through all layers incrementally.
  AsyncUpdateStats update(const events::Event& event);

  /// Recompute everything from the current input buffer (reference path and
  /// cost baseline for the async-vs-dense benchmark). Returns total MACs
  /// a dense conv over the full frame would perform.
  std::int64_t forward_full();

  /// Final-layer feature buffer [C_out, H, W].
  const nn::Tensor& output() const noexcept { return buffers_.back(); }
  /// Sum of final features over active sites: [C_out].
  nn::Tensor pooled_output() const;

  Index active_site_count() const noexcept { return active_count_; }
  bool is_active(Index y, Index x) const noexcept {
    return active_[static_cast<size_t>(y * width_ + x)] != 0;
  }

  Index layer_count() const noexcept {
    return static_cast<Index>(weights_.size());
  }
  nn::Tensor& layer_weight(Index l) { return weights_.at(static_cast<size_t>(l)); }
  nn::Tensor& layer_bias(Index l) { return biases_.at(static_cast<size_t>(l)); }

  Index height() const noexcept { return height_; }
  Index width() const noexcept { return width_; }

 private:
  /// Recompute the output of layer `l` at site (y, x); returns true if any
  /// channel changed by more than kEps, and adds MACs to `macs`.
  bool recompute_site(Index l, Index y, Index x, std::int64_t& macs);

  static constexpr float kEps = 1e-6f;

  Index height_, width_;
  std::vector<Index> channels_;
  std::vector<nn::Tensor> weights_;  ///< [OC, IC, 3, 3] per layer.
  std::vector<nn::Tensor> biases_;   ///< [OC] per layer.
  /// buffers_[0] is the input volume; buffers_[l+1] is the output of layer l.
  std::vector<nn::Tensor> buffers_;
  std::vector<char> active_;
  Index active_count_ = 0;
};

}  // namespace evd::cnn
