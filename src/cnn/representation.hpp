// Event-to-frame representations (paper §III-B, refs [53]-[58]).
//
// Converts a time window of events into the stacked-2D-matrix input a CNN
// expects. All variants return a [C, H, W] tensor. The conversion cost
// (operations + buffer traffic) is reported through the active OpCounter —
// it is exactly the "Data - Preparation" axis of Table I.
#pragma once

#include <span>
#include <string>

#include "events/event.hpp"
#include "nn/tensor.hpp"

namespace evd::cnn {

enum class Representation {
  CountSigned,     ///< 1 channel: #ON - #OFF per pixel [53].
  CountTwoChannel, ///< 2 channels: #ON, #OFF per pixel [54].
  TimeSurface,     ///< 2 channels: normalised time since last event [56].
  ExpTimeSurface,  ///< 2 channels: exp(-(t_end - t_last)/tau) [56].
  Combined,        ///< 4 channels: counts + exp time surface [57].
};

const char* representation_name(Representation repr);

/// Channel count of a representation.
Index representation_channels(Representation repr);

struct FrameOptions {
  Representation repr = Representation::CountTwoChannel;
  /// Normalise count channels by this value (events saturate above it).
  float count_scale = 4.0f;
  /// Time constant for exponential surfaces, as a fraction of the window.
  double tau_fraction = 0.3;
};

/// Build the dense frame for events in [t_begin, t_end) over a W x H sensor.
nn::Tensor build_frame(std::span<const events::Event> window, Index width,
                       Index height, TimeUs t_begin, TimeUs t_end,
                       const FrameOptions& options);

/// Caller-owned scratch for build_frame_into: per-pixel last-event-time
/// maps, `width * height` entries each. Only surface representations read
/// them; pass empty spans otherwise.
struct FrameScratch {
  std::span<TimeUs> last_on;
  std::span<TimeUs> last_off;
};

/// build_frame writing into a caller-owned `frame` ([C, H, W], already
/// shaped) reusing caller-owned scratch: allocation-free and bitwise
/// identical to build_frame. The streaming session keeps frame + scratch in
/// its arena workspace and rebuilds in place every frame period.
void build_frame_into(std::span<const events::Event> window, Index width,
                      Index height, TimeUs t_begin, TimeUs t_end,
                      const FrameOptions& options, nn::Tensor& frame,
                      const FrameScratch& scratch);

/// Slice a full recording into fixed-period frames and build each one.
std::vector<nn::Tensor> build_frame_sequence(const events::EventStream& stream,
                                             TimeUs frame_period_us,
                                             const FrameOptions& options);

/// HATS — Histograms of Averaged Time Surfaces (Sironi et al. [56]).
///
/// The sensor is tiled into `cell` x `cell` cells; every event contributes
/// the exponential time-surface patch of its (2R+1)^2 neighbourhood to its
/// cell's per-polarity histogram, which is normalised by the cell's event
/// count. Output is conv-compatible: [2 * (2R+1)^2, H/cell, W/cell].
struct HatsOptions {
  Index cell = 8;          ///< Cell side in pixels.
  Index radius = 2;        ///< Time-surface patch radius R.
  double tau_us = 50000.0; ///< Exponential decay constant.
};

nn::Tensor build_hats(std::span<const events::Event> window, Index width,
                      Index height, const HatsOptions& options);

}  // namespace evd::cnn
