// EventPipeline adapter for the dense-frame CNN paradigm.
//
// Classification: one dense frame per recording, fed to the CNN.
// Streaming: events accumulate into a frame buffer that is closed and
// classified every `frame_period_us` — which is exactly why the paper argues
// frame-based CNNs put a lower bound on reaction latency (§V): no decision
// can precede the end of the frame that contains the stimulus.
#pragma once

#include <memory>
#include <optional>

#include "cnn/dense_model.hpp"
#include "cnn/representation.hpp"
#include "core/pipeline.hpp"

namespace evd::cnn {

struct CnnPipelineConfig {
  Index width = 32;
  Index height = 32;
  Index num_classes = 4;
  Index base_filters = 8;
  FrameOptions frame;
  TimeUs frame_period_us = 20000;  ///< Streaming frame period (20 ms).
  /// Streaming session sizing (runtime::SessionBase): max events buffered
  /// per open frame — arrivals beyond this within one period are dropped
  /// (counted in SessionStats.events_dropped) — and how many decisions the
  /// bounded sink retains for decisions().
  Index stream_window_capacity = 32768;
  Index decision_retain = 8192;
  std::uint64_t seed = 7;
  float default_lr = 1e-3f;   ///< Used when TrainOptions.lr <= 0.
  Index default_epochs = 50;  ///< Used when TrainOptions.epochs <= 0.
};

class CnnPipeline : public core::EventPipeline {
 public:
  explicit CnnPipeline(CnnPipelineConfig config);

  std::string name() const override { return "CNN"; }
  void train(std::span<const events::LabelledSample> samples,
             const core::TrainOptions& options) override;
  int classify(const events::EventStream& stream) override;
  std::unique_ptr<core::StreamSession> open_session(Index width,
                                                    Index height) override;
  std::vector<core::StageInfo> stream_stages() const override;
  Index param_count() const override;
  Index state_bytes() const override;
  Index input_preparation_bytes() const override;
  double input_sparsity(const events::EventStream& probe) override;
  double computation_sparsity(const events::EventStream& probe) override;

  nn::Sequential& model() noexcept { return model_; }
  const CnnPipelineConfig& config() const noexcept { return config_; }

  /// Build this pipeline's input representation for a full recording.
  nn::Tensor frame_for(const events::EventStream& stream) const;

 private:
  CnnPipelineConfig config_;
  Rng rng_;
  nn::Sequential model_;
};

}  // namespace evd::cnn
