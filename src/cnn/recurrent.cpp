#include "cnn/recurrent.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/softmax.hpp"

namespace evd::cnn {

RecurrentCnn::RecurrentCnn(RecurrentCnnConfig config)
    : config_(config),
      rng_(config.seed),
      feature_size_(config.base_filters * 2),
      w_input_("w_input",
               nn::he_normal({config.hidden, config.base_filters * 2},
                             config.base_filters * 2, rng_)),
      w_hidden_("w_hidden",
                nn::xavier_uniform({config.hidden, config.hidden},
                                   config.hidden, config.hidden, rng_)),
      bias_("bias", nn::Tensor({config.hidden})),
      head_(config.hidden, config.num_classes, rng_) {
  nn::Conv2dConfig stem_conv{config.in_channels, config.base_filters, 3, 1, 1};
  stem_conv.frame_input = true;  // fed the event frame directly
  stem_.emplace<nn::Conv2d>(stem_conv, rng_);
  stem_.emplace<nn::ReLU>();
  stem_.emplace<nn::MaxPool2d>(2);
  stem_.emplace<nn::Conv2d>(
      nn::Conv2dConfig{config.base_filters, config.base_filters * 2, 3, 1, 1},
      rng_);
  stem_.emplace<nn::ReLU>();
  stem_.emplace<nn::GlobalAvgPool>();
}

nn::Tensor RecurrentCnn::stem_forward(const nn::Tensor& frame, bool train) {
  return stem_.forward(frame, train);
}

nn::Tensor RecurrentCnn::forward(std::span<const nn::Tensor> frames,
                                 bool train) {
  if (frames.empty()) {
    throw std::invalid_argument("RecurrentCnn::forward: empty sequence");
  }
  const Index hidden = config_.hidden;
  if (train) {
    cached_frames_ = frames;
    cached_features_.clear();
    cached_state_.clear();
  }
  nn::Tensor h({hidden});
  for (const auto& frame : frames) {
    const nn::Tensor f = stem_forward(frame, false);
    nn::Tensor next({hidden});
    for (Index j = 0; j < hidden; ++j) {
      float acc = bias_.value[j];
      const float* wx = w_input_.value.data() + j * feature_size_;
      for (Index i = 0; i < feature_size_; ++i) acc += wx[i] * f[i];
      const float* wh = w_hidden_.value.data() + j * hidden;
      for (Index i = 0; i < hidden; ++i) acc += wh[i] * h[i];
      next[j] = std::tanh(acc);
    }
    if (train) {
      cached_features_.push_back(f);
      cached_state_.push_back(next);
    }
    h = std::move(next);
  }
  return head_.forward(h, train);
}

void RecurrentCnn::backward(const nn::Tensor& grad_logits) {
  if (cached_state_.empty()) {
    throw std::logic_error("RecurrentCnn::backward: no cached forward");
  }
  const Index hidden = config_.hidden;
  const auto steps = static_cast<Index>(cached_state_.size());

  nn::Tensor grad_h = head_.backward(grad_logits);
  for (Index t = steps - 1; t >= 0; --t) {
    const nn::Tensor& h_t = cached_state_[static_cast<size_t>(t)];
    const nn::Tensor& f_t = cached_features_[static_cast<size_t>(t)];
    // Previous state (zeros at t = 0).
    nn::Tensor h_prev({hidden});
    if (t > 0) h_prev = cached_state_[static_cast<size_t>(t - 1)];

    // du = dh * (1 - h^2)  (tanh').
    nn::Tensor du({hidden});
    for (Index j = 0; j < hidden; ++j) {
      du[j] = grad_h[j] * (1.0f - h_t[j] * h_t[j]);
    }
    nn::Tensor grad_h_prev({hidden});
    nn::Tensor grad_f({feature_size_});
    for (Index j = 0; j < hidden; ++j) {
      const float d = du[j];
      if (d == 0.0f) continue;
      bias_.grad[j] += d;
      float* dwx = w_input_.grad.data() + j * feature_size_;
      const float* wx = w_input_.value.data() + j * feature_size_;
      for (Index i = 0; i < feature_size_; ++i) {
        dwx[i] += d * f_t[i];
        grad_f[i] += d * wx[i];
      }
      float* dwh = w_hidden_.grad.data() + j * hidden;
      const float* wh = w_hidden_.value.data() + j * hidden;
      for (Index i = 0; i < hidden; ++i) {
        dwh[i] += d * h_prev[i];
        grad_h_prev[i] += d * wh[i];
      }
    }
    // Backprop through the stem for this frame: recompute activations,
    // then run the stem's backward with dL/df_t.
    (void)stem_forward(cached_frames_[static_cast<size_t>(t)], true);
    (void)stem_.backward(grad_f);
    grad_h = std::move(grad_h_prev);
  }
  cached_state_.clear();
  cached_features_.clear();
}

std::vector<nn::Param*> RecurrentCnn::params() {
  std::vector<nn::Param*> all = stem_.params();
  all.push_back(&w_input_);
  all.push_back(&w_hidden_);
  all.push_back(&bias_);
  for (auto* p : head_.params()) all.push_back(p);
  return all;
}

Index RecurrentCnn::param_count() {
  Index n = 0;
  for (auto* p : params()) n += p->value.numel();
  return n;
}

RecurrentFitReport fit_recurrent(
    RecurrentCnn& model, std::span<const std::vector<nn::Tensor>> sequences,
    std::span<const Index> labels, Index epochs, float lr,
    std::uint64_t shuffle_seed, bool verbose) {
  if (sequences.size() != labels.size()) {
    throw std::invalid_argument("fit_recurrent: sequences/labels mismatch");
  }
  nn::Adam optimizer(model.params(), lr);
  Rng rng(shuffle_seed);
  std::vector<size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  RecurrentFitReport report;
  for (Index epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    double loss_sum = 0.0;
    Index correct = 0;
    for (const size_t idx : order) {
      const nn::Tensor logits = model.forward(sequences[idx], true);
      const auto ce = nn::softmax_cross_entropy(logits, labels[idx]);
      model.backward(ce.grad);
      nn::clip_grad_norm(model.params(), 5.0f);
      optimizer.step();
      loss_sum += ce.loss;
      correct += (logits.argmax() == labels[idx]) ? 1 : 0;
    }
    report.epoch_loss.push_back(loss_sum /
                                static_cast<double>(sequences.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(sequences.size()));
    if (verbose) {
      std::printf("  [rcnn] epoch %lld loss %.4f acc %.3f\n",
                  static_cast<long long>(epoch), report.epoch_loss.back(),
                  report.epoch_accuracy.back());
    }
  }
  return report;
}

double evaluate_recurrent(RecurrentCnn& model,
                          std::span<const std::vector<nn::Tensor>> sequences,
                          std::span<const Index> labels) {
  if (sequences.empty()) return 0.0;
  Index correct = 0;
  for (size_t i = 0; i < sequences.size(); ++i) {
    correct +=
        (model.forward(sequences[i], false).argmax() == labels[i]) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(sequences.size());
}

}  // namespace evd::cnn
