// Recurrent dense-frame CNN (paper §V, ref [76]).
//
// The paper's rebuttal to "SNNs are required for tasks relying on temporal
// memory": feed the CNN a *sequence* of short frames and carry state across
// them with a recurrent block. Architecture:
//
//   per frame:  conv stem (conv-relu-pool-conv-relu-GAP) -> feature f_t
//   recurrence: h_t = tanh(W_x f_t + W_h h_{t-1} + b)
//   head:       logits = W_o h_T + b_o
//
// Training is BPTT through the recurrence; the conv stem's activations are
// recomputed per frame during the backward pass (activation recomputation)
// so the stem needs no per-frame cache.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"

namespace evd::cnn {

struct RecurrentCnnConfig {
  Index in_channels = 2;
  Index height = 32;
  Index width = 32;
  Index num_classes = 2;
  Index base_filters = 6;
  Index hidden = 32;  ///< Recurrent state size.
  std::uint64_t seed = 21;
};

class RecurrentCnn {
 public:
  explicit RecurrentCnn(RecurrentCnnConfig config);

  /// Forward over a frame sequence; returns logits. Caches for backward
  /// when train = true (frames must stay alive until backward()).
  nn::Tensor forward(std::span<const nn::Tensor> frames, bool train);

  /// BPTT from dL/dlogits; accumulates parameter gradients.
  void backward(const nn::Tensor& grad_logits);

  std::vector<nn::Param*> params();
  Index param_count();

  Index feature_size() const noexcept { return feature_size_; }
  const RecurrentCnnConfig& config() const noexcept { return config_; }

 private:
  /// Stem forward for one frame; returns the GAP feature vector.
  nn::Tensor stem_forward(const nn::Tensor& frame, bool train);

  RecurrentCnnConfig config_;
  Rng rng_;
  nn::Sequential stem_;
  Index feature_size_;
  nn::Param w_input_;   ///< [hidden, feature]
  nn::Param w_hidden_;  ///< [hidden, hidden]
  nn::Param bias_;      ///< [hidden]
  nn::Linear head_;

  // BPTT caches.
  std::span<const nn::Tensor> cached_frames_;
  std::vector<nn::Tensor> cached_features_;  ///< f_t
  std::vector<nn::Tensor> cached_state_;     ///< h_t (post-tanh)
};

struct RecurrentFitReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

/// Fit over (frame-sequence, label) samples with Adam.
RecurrentFitReport fit_recurrent(
    RecurrentCnn& model, std::span<const std::vector<nn::Tensor>> sequences,
    std::span<const Index> labels, Index epochs, float lr,
    std::uint64_t shuffle_seed = 1, bool verbose = false);

double evaluate_recurrent(RecurrentCnn& model,
                          std::span<const std::vector<nn::Tensor>> sequences,
                          std::span<const Index> labels);

}  // namespace evd::cnn
