#include "cnn/sparse_conv.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "nn/init.hpp"

namespace evd::cnn {

SubmanifoldConvNet::SubmanifoldConvNet(Index height, Index width,
                                       std::vector<Index> channels, Rng& rng)
    : height_(height), width_(width), channels_(std::move(channels)) {
  if (channels_.size() < 2) {
    throw std::invalid_argument("SubmanifoldConvNet: need >= 2 channel sizes");
  }
  for (size_t l = 0; l + 1 < channels_.size(); ++l) {
    const Index ic = channels_[l];
    const Index oc = channels_[l + 1];
    weights_.push_back(nn::he_normal({oc, ic, 3, 3}, ic * 9, rng));
    biases_.push_back(nn::Tensor({oc}));
  }
  for (const Index c : channels_) {
    buffers_.emplace_back(std::vector<Index>{c, height_, width_});
  }
  active_.assign(static_cast<size_t>(height_ * width_), 0);
}

void SubmanifoldConvNet::reset() {
  for (auto& buffer : buffers_) buffer.zero();
  std::fill(active_.begin(), active_.end(), 0);
  active_count_ = 0;
}

bool SubmanifoldConvNet::recompute_site(Index l, Index y, Index x,
                                        std::int64_t& macs) {
  const Index ic = channels_[static_cast<size_t>(l)];
  const Index oc = channels_[static_cast<size_t>(l + 1)];
  const auto& w = weights_[static_cast<size_t>(l)];
  const auto& b = biases_[static_cast<size_t>(l)];
  const auto& in = buffers_[static_cast<size_t>(l)];
  auto& out = buffers_[static_cast<size_t>(l + 1)];

  bool changed = false;
  for (Index o = 0; o < oc; ++o) {
    float acc = b[o];
    for (Index dy = -1; dy <= 1; ++dy) {
      const Index ny = y + dy;
      if (ny < 0 || ny >= height_) continue;
      for (Index dx = -1; dx <= 1; ++dx) {
        const Index nx = x + dx;
        if (nx < 0 || nx >= width_) continue;
        // Sub-manifold property: only active sites contribute (inactive
        // sites hold zeros, so skipping them is exact).
        if (!active_[static_cast<size_t>(ny * width_ + nx)]) continue;
        for (Index i = 0; i < ic; ++i) {
          acc += w[((o * ic + i) * 3 + (dy + 1)) * 3 + (dx + 1)] *
                 in.at3(i, ny, nx);
          ++macs;
        }
      }
    }
    acc = acc > 0.0f ? acc : 0.0f;  // ReLU
    if (std::fabs(acc - out.at3(o, y, x)) > kEps) {
      out.at3(o, y, x) = acc;
      changed = true;
    }
  }
  return changed;
}

AsyncUpdateStats SubmanifoldConvNet::update(const events::Event& event) {
  if (event.x < 0 || event.y < 0 || event.x >= width_ || event.y >= height_) {
    throw std::invalid_argument("SubmanifoldConvNet::update: event outside");
  }
  AsyncUpdateStats stats;
  const auto site = static_cast<size_t>(event.y) * static_cast<size_t>(width_) +
                    static_cast<size_t>(event.x);
  const bool newly_active = active_[site] == 0;
  if (newly_active) {
    active_[site] = 1;
    ++active_count_;
  }
  auto& input = buffers_.front();
  const Index channel = polarity_channel(event.polarity);
  if (channel < channels_[0]) {
    input.at3(channel, event.y, event.x) =
        std::min(input.at3(channel, event.y, event.x) + 0.25f, 1.0f);
  }

  // Changed sites at the input of the current layer.
  std::vector<Index> changed = {static_cast<Index>(site)};
  std::unordered_set<Index> affected;
  for (Index l = 0; l < layer_count(); ++l) {
    affected.clear();
    for (const Index s : changed) {
      const Index cy = s / width_;
      const Index cx = s % width_;
      for (Index dy = -1; dy <= 1; ++dy) {
        const Index y = cy + dy;
        if (y < 0 || y >= height_) continue;
        for (Index dx = -1; dx <= 1; ++dx) {
          const Index x = cx + dx;
          if (x < 0 || x >= width_) continue;
          if (active_[static_cast<size_t>(y * width_ + x)]) {
            affected.insert(y * width_ + x);
          }
        }
      }
    }
    // A newly activated site's whole history is zero in every layer, and the
    // site itself is in `affected` via the loop above.
    std::vector<Index> next_changed;
    for (const Index s : affected) {
      ++stats.sites_recomputed;
      if (recompute_site(l, s / width_, s % width_, stats.macs)) {
        next_changed.push_back(s);
        ++stats.sites_changed;
      }
    }
    if (next_changed.empty()) break;  // change absorbed; stop propagating
    changed = std::move(next_changed);
  }
  return stats;
}

std::int64_t SubmanifoldConvNet::forward_full() {
  std::int64_t macs = 0;
  for (Index l = 0; l < layer_count(); ++l) {
    auto& out = buffers_[static_cast<size_t>(l + 1)];
    out.zero();
    for (Index y = 0; y < height_; ++y) {
      for (Index x = 0; x < width_; ++x) {
        if (!active_[static_cast<size_t>(y * width_ + x)]) continue;
        recompute_site(l, y, x, macs);
      }
    }
  }
  // Dense baseline cost: every output site, every tap, no skipping.
  std::int64_t dense_macs = 0;
  for (Index l = 0; l < layer_count(); ++l) {
    dense_macs += channels_[static_cast<size_t>(l)] *
                  channels_[static_cast<size_t>(l + 1)] * 9 * height_ * width_;
  }
  return dense_macs;
}

nn::Tensor SubmanifoldConvNet::pooled_output() const {
  const Index oc = channels_.back();
  nn::Tensor pooled({oc});
  const auto& out = buffers_.back();
  for (Index y = 0; y < height_; ++y) {
    for (Index x = 0; x < width_; ++x) {
      if (!active_[static_cast<size_t>(y * width_ + x)]) continue;
      for (Index c = 0; c < oc; ++c) pooled[c] += out.at3(c, y, x);
    }
  }
  return pooled;
}

}  // namespace evd::cnn
