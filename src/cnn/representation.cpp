#include "cnn/representation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/counters.hpp"

namespace evd::cnn {

const char* representation_name(Representation repr) {
  switch (repr) {
    case Representation::CountSigned: return "count_signed";
    case Representation::CountTwoChannel: return "count_2ch";
    case Representation::TimeSurface: return "time_surface";
    case Representation::ExpTimeSurface: return "exp_time_surface";
    case Representation::Combined: return "combined";
  }
  return "unknown";
}

Index representation_channels(Representation repr) {
  switch (repr) {
    case Representation::CountSigned: return 1;
    case Representation::CountTwoChannel: return 2;
    case Representation::TimeSurface: return 2;
    case Representation::ExpTimeSurface: return 2;
    case Representation::Combined: return 4;
  }
  return 0;
}

nn::Tensor build_frame(std::span<const events::Event> window, Index width,
                       Index height, TimeUs t_begin, TimeUs t_end,
                       const FrameOptions& options) {
  if (width <= 0 || height <= 0 || t_end <= t_begin) {
    throw std::invalid_argument("build_frame: bad geometry or window");
  }
  const Index channels = representation_channels(options.repr);
  nn::Tensor frame({channels, height, width});
  const bool needs_surface = options.repr == Representation::TimeSurface ||
                             options.repr == Representation::ExpTimeSurface ||
                             options.repr == Representation::Combined;
  std::vector<TimeUs> last_on, last_off;
  if (needs_surface) {
    last_on.resize(static_cast<size_t>(width * height));
    last_off.resize(static_cast<size_t>(width * height));
  }
  build_frame_into(window, width, height, t_begin, t_end, options, frame,
                   FrameScratch{last_on, last_off});
  return frame;
}

void build_frame_into(std::span<const events::Event> window, Index width,
                      Index height, TimeUs t_begin, TimeUs t_end,
                      const FrameOptions& options, nn::Tensor& frame,
                      const FrameScratch& scratch) {
  if (width <= 0 || height <= 0 || t_end <= t_begin) {
    throw std::invalid_argument("build_frame: bad geometry or window");
  }
  const Index channels = representation_channels(options.repr);
  if (frame.numel() != channels * height * width) {
    throw std::invalid_argument("build_frame_into: frame shape mismatch");
  }
  frame.zero();
  const double window_us = static_cast<double>(t_end - t_begin);
  const double tau_us = options.tau_fraction * window_us;
  const float inv_scale = 1.0f / options.count_scale;

  // Last-event-timestamp maps for surface representations.
  const bool needs_surface = options.repr == Representation::TimeSurface ||
                             options.repr == Representation::ExpTimeSurface ||
                             options.repr == Representation::Combined;
  std::span<TimeUs> last_on = scratch.last_on;
  std::span<TimeUs> last_off = scratch.last_off;
  if (needs_surface) {
    if (last_on.size() < static_cast<size_t>(width * height) ||
        last_off.size() < static_cast<size_t>(width * height)) {
      throw std::invalid_argument("build_frame_into: scratch too small");
    }
    std::fill(last_on.begin(), last_on.end(), t_begin - 1);
    std::fill(last_off.begin(), last_off.end(), t_begin - 1);
  }

  std::int64_t prep_adds = 0;
  for (const auto& e : window) {
    if (e.x < 0 || e.y < 0 || e.x >= width || e.y >= height) {
      throw std::invalid_argument("build_frame: event outside geometry");
    }
    const auto pix = static_cast<size_t>(e.y) * static_cast<size_t>(width) +
                     static_cast<size_t>(e.x);
    switch (options.repr) {
      case Representation::CountSigned:
        frame.at3(0, e.y, e.x) +=
            static_cast<float>(polarity_sign(e.polarity)) * inv_scale;
        ++prep_adds;
        break;
      case Representation::CountTwoChannel:
      case Representation::Combined:
        frame.at3(polarity_channel(e.polarity), e.y, e.x) += inv_scale;
        ++prep_adds;
        [[fallthrough]];
      case Representation::TimeSurface:
      case Representation::ExpTimeSurface:
        if (needs_surface) {
          (e.polarity == Polarity::On ? last_on : last_off)[pix] = e.t;
          ++prep_adds;  // timestamp store counted as one op
        }
        break;
    }
  }

  if (needs_surface) {
    const Index surface_base =
        options.repr == Representation::Combined ? 2 : 0;
    for (Index y = 0; y < height; ++y) {
      for (Index x = 0; x < width; ++x) {
        const auto pix = static_cast<size_t>(y * width + x);
        for (int ch = 0; ch < 2; ++ch) {
          const TimeUs last = (ch == 1 ? last_on : last_off)[pix];
          if (last < t_begin) continue;  // pixel never fired in window
          float v;
          if (options.repr == Representation::TimeSurface) {
            v = static_cast<float>(
                static_cast<double>(last - t_begin) / window_us);
          } else {
            v = static_cast<float>(
                std::exp(-static_cast<double>(t_end - last) / tau_us));
          }
          frame.at3(surface_base + ch, y, x) = v;
          ++prep_adds;
        }
      }
    }
  }

  // Clamp count channels into [-1, 1] (saturating accumulation).
  const Index count_channels =
      options.repr == Representation::CountSigned      ? 1
      : options.repr == Representation::CountTwoChannel ? 2
      : options.repr == Representation::Combined        ? 2
                                                         : 0;
  for (Index c = 0; c < count_channels; ++c) {
    for (Index y = 0; y < height; ++y) {
      for (Index x = 0; x < width; ++x) {
        frame.at3(c, y, x) =
            std::min(std::max(frame.at3(c, y, x), -1.0f), 1.0f);
      }
    }
  }

  nn::count_add(prep_adds);
  nn::count_act_write(frame.numel() * 4);
}

nn::Tensor build_hats(std::span<const events::Event> window, Index width,
                      Index height, const HatsOptions& options) {
  if (width <= 0 || height <= 0 || options.cell <= 0 || options.radius < 0 ||
      options.tau_us <= 0.0) {
    throw std::invalid_argument("build_hats: bad options");
  }
  const Index cells_x = width / options.cell;
  const Index cells_y = height / options.cell;
  if (cells_x <= 0 || cells_y <= 0) {
    throw std::invalid_argument("build_hats: cell larger than sensor");
  }
  const Index patch = 2 * options.radius + 1;
  const Index channels = 2 * patch * patch;
  nn::Tensor hats({channels, cells_y, cells_x});

  // Per-pixel, per-polarity last-event-time surfaces.
  std::vector<TimeUs> last[2];
  last[0].assign(static_cast<size_t>(width * height), -1);
  last[1].assign(static_cast<size_t>(width * height), -1);
  std::vector<Index> cell_counts(static_cast<size_t>(cells_x * cells_y), 0);

  std::int64_t prep_ops = 0;
  for (const auto& e : window) {
    if (e.x < 0 || e.y < 0 || e.x >= width || e.y >= height) {
      throw std::invalid_argument("build_hats: event outside geometry");
    }
    const int channel = polarity_channel(e.polarity);
    auto& surface = last[channel];
    surface[static_cast<size_t>(e.y) * static_cast<size_t>(width) +
            static_cast<size_t>(e.x)] = e.t;

    const Index cx = e.x / options.cell;
    const Index cy = e.y / options.cell;
    if (cx >= cells_x || cy >= cells_y) continue;  // ragged edge
    ++cell_counts[static_cast<size_t>(cy * cells_x + cx)];

    // Accumulate the local exponential time-surface patch.
    for (Index dy = -options.radius; dy <= options.radius; ++dy) {
      const Index y = e.y + dy;
      if (y < 0 || y >= height) continue;
      for (Index dx = -options.radius; dx <= options.radius; ++dx) {
        const Index x = e.x + dx;
        if (x < 0 || x >= width) continue;
        const TimeUs t_last = surface[static_cast<size_t>(y) *
                                          static_cast<size_t>(width) +
                                      static_cast<size_t>(x)];
        if (t_last < 0) continue;
        const double value = std::exp(
            -static_cast<double>(e.t - t_last) / options.tau_us);
        const Index patch_index =
            (dy + options.radius) * patch + (dx + options.radius);
        hats.at3(channel * patch * patch + patch_index, cy, cx) +=
            static_cast<float>(value);
        ++prep_ops;
      }
    }
  }

  // Normalise each cell's histogram by its event count (the "averaged" in
  // HATS — robustness to event-rate variation).
  for (Index cy = 0; cy < cells_y; ++cy) {
    for (Index cx = 0; cx < cells_x; ++cx) {
      const Index count = cell_counts[static_cast<size_t>(cy * cells_x + cx)];
      if (count == 0) continue;
      const float inv = 1.0f / static_cast<float>(count);
      for (Index c = 0; c < channels; ++c) hats.at3(c, cy, cx) *= inv;
    }
  }
  nn::count_add(prep_ops);
  nn::count_act_write(hats.numel() * 4);
  return hats;
}

std::vector<nn::Tensor> build_frame_sequence(const events::EventStream& stream,
                                             TimeUs frame_period_us,
                                             const FrameOptions& options) {
  if (frame_period_us <= 0) {
    throw std::invalid_argument("build_frame_sequence: bad period");
  }
  std::vector<nn::Tensor> frames;
  if (stream.events.empty()) return frames;
  const TimeUs t0 = stream.events.front().t;
  const TimeUs t_last = stream.events.back().t;
  for (TimeUs t = t0; t <= t_last; t += frame_period_us) {
    const auto window = events::time_slice(stream.events, t, t + frame_period_us);
    frames.push_back(build_frame(window, stream.width, stream.height, t,
                                 t + frame_period_us, options));
  }
  return frames;
}

}  // namespace evd::cnn
