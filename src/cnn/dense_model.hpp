// Dense-frame CNN classifier and its training loop.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "events/dataset.hpp"
#include "nn/sequential.hpp"

namespace evd::cnn {

struct CnnModelConfig {
  Index in_channels = 2;
  Index height = 32;
  Index width = 32;
  Index num_classes = 4;
  Index base_filters = 8;  ///< Filters in the first conv block.
};

/// Two conv blocks (conv-relu-maxpool) + linear head. Sized for 32x32-ish
/// inputs; asserts the geometry divides cleanly.
nn::Sequential make_event_cnn(const CnnModelConfig& config, Rng& rng);

struct FitOptions {
  Index epochs = 10;
  float lr = 1e-3f;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

struct FitReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

/// Generic classifier fit over (input tensor, label) pairs with Adam.
FitReport fit_classifier(nn::Sequential& model,
                         std::span<const nn::Tensor> inputs,
                         std::span<const Index> labels,
                         const FitOptions& options);

/// Accuracy over a labelled set.
double evaluate_classifier(nn::Sequential& model,
                           std::span<const nn::Tensor> inputs,
                           std::span<const Index> labels);

}  // namespace evd::cnn
