#include "cnn/cnn_pipeline.hpp"

#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/softmax.hpp"
#include "obs/trace.hpp"
#include "route/route.hpp"
#include "runtime/session_base.hpp"

namespace evd::cnn {

CnnPipeline::CnnPipeline(CnnPipelineConfig config)
    : config_(config),
      rng_(config.seed),
      model_(make_event_cnn(
          CnnModelConfig{representation_channels(config.frame.repr),
                         config.height, config.width, config.num_classes,
                         config.base_filters},
          rng_)) {}

nn::Tensor CnnPipeline::frame_for(const events::EventStream& stream) const {
  TimeUs t0 = 0, t1 = 1;
  if (!stream.events.empty()) {
    t0 = stream.events.front().t;
    t1 = stream.events.back().t + 1;
  }
  return build_frame(stream.events, config_.width, config_.height, t0, t1,
                     config_.frame);
}

void CnnPipeline::train(std::span<const events::LabelledSample> samples,
                        const core::TrainOptions& options) {
  std::vector<nn::Tensor> inputs;
  std::vector<Index> labels;
  inputs.reserve(samples.size());
  labels.reserve(samples.size());
  for (const auto& sample : samples) {
    inputs.push_back(frame_for(sample.stream));
    labels.push_back(sample.label);
  }
  FitOptions fit;
  fit.epochs = options.epochs > 0 ? options.epochs : config_.default_epochs;
  fit.lr = options.lr > 0.0f ? options.lr : config_.default_lr;
  fit.shuffle_seed = options.shuffle_seed;
  fit.verbose = options.verbose;
  fit_classifier(model_, inputs, labels, fit);
}

int CnnPipeline::classify(const events::EventStream& stream) {
  return static_cast<int>(nn::predict(model_, frame_for(stream)));
}

std::vector<core::StageInfo> CnnPipeline::stream_stages() const {
  // Planning estimates for the evd::sched cost models (see core/stages.hpp):
  // analytic per-op work derived from the configured geometry, not measured
  // counters. The frame-rate stages amortise over a nominal 256 events per
  // frame period — the density the serving benches run at.
  constexpr std::int64_t kOpsPerFrame = 256;
  const Index channels = representation_channels(config_.frame.repr);
  const Index hw = config_.height * config_.width;
  const Index bf = config_.base_filters;

  core::StageInfo accumulate;
  accumulate.name = "cnn.accumulate";
  accumulate.per_op.adds = 2;  // window append + surface-map update
  accumulate.per_op.act_bytes_written = sizeof(events::Event);

  core::StageInfo repr;
  repr.name = "cnn.representation_build";
  repr.duty = 1.0 / static_cast<double>(kOpsPerFrame);
  repr.per_op.adds = 4 * kOpsPerFrame + channels * hw;  // binning + clear
  repr.per_op.act_bytes_read =
      kOpsPerFrame * static_cast<std::int64_t>(sizeof(events::Event));
  repr.per_op.act_bytes_written = channels * hw * 4;
  repr.fusable_with_next = true;  // the frame could stream into the conv stem

  core::StageInfo conv;
  conv.name = "cnn.conv_forward";
  conv.duty = repr.duty;
  // make_event_cnn stem: 3x3 convs at full / half / quarter resolution plus
  // the GAP head's linear.
  const std::int64_t macs =
      static_cast<std::int64_t>(hw) * bf * channels * 9 +
      static_cast<std::int64_t>(hw / 4) * (2 * bf) * bf * 9 +
      static_cast<std::int64_t>(hw / 16) * (4 * bf) * (2 * bf) * 9 +
      static_cast<std::int64_t>(4 * bf) * config_.num_classes;
  conv.per_op.mults = macs;
  conv.per_op.adds = macs;
  conv.per_op.param_bytes_read = param_count() * 4;
  conv.per_op.act_bytes_read = channels * hw * 4;
  conv.per_op.act_bytes_written = (bf * hw + config_.num_classes) * 4;

  return {accumulate, repr, conv};
}

Index CnnPipeline::param_count() const {
  Index n = 0;
  for (auto* p : const_cast<nn::Sequential&>(model_).params()) {
    n += p->value.numel();
  }
  return n;
}

Index CnnPipeline::state_bytes() const {
  // Streaming state: the open frame accumulator.
  return representation_channels(config_.frame.repr) * config_.height *
         config_.width * static_cast<Index>(sizeof(float));
}

Index CnnPipeline::input_preparation_bytes() const {
  // One dense frame must be materialised per classification.
  return representation_channels(config_.frame.repr) * config_.height *
         config_.width * static_cast<Index>(sizeof(float));
}

double CnnPipeline::input_sparsity(const events::EventStream&) {
  // The CNN reads every element of the dense frame regardless of content:
  // input sparsity is not exploited at all.
  return 0.0;
}

double CnnPipeline::computation_sparsity(const events::EventStream& probe) {
  // Fraction of MACs whose activation operand is zero — skippable on sparse
  // hardware, executed on dense hardware.
  nn::OpCounter counter;
  {
    nn::ScopedCounter scope(counter);
    (void)classify(probe);
  }
  const auto macs = counter.macs();
  return macs > 0 ? static_cast<double>(counter.zero_skippable_mults) /
                        static_cast<double>(macs)
                  : 0.0;
}

namespace {

runtime::SessionBaseConfig cnn_session_config(const CnnPipelineConfig& c) {
  runtime::SessionBaseConfig sc;
  // Event window + two last-event-time surface maps, all arena-resident.
  sc.arena_bytes =
      static_cast<std::size_t>(c.stream_window_capacity) *
          sizeof(events::Event) +
      2 * static_cast<std::size_t>(c.width) * static_cast<std::size_t>(c.height) *
          sizeof(TimeUs) +
      256;  // alignment slack
  sc.decision_retain = c.decision_retain;
  sc.paradigm = "cnn";
  // Windowed activity estimator over the configured sensor plane, so the
  // re-plan hook can re-price cnn.sparse when a stream turns dense.
  sc.width = c.width;
  sc.height = c.height;
  return sc;
}

class CnnStreamSession : public runtime::SessionBase {
 public:
  CnnStreamSession(CnnPipeline& pipeline, Index width, Index height)
      : runtime::SessionBase(cnn_session_config(pipeline.config())),
        pipeline_(pipeline),
        width_(width),
        height_(height),
        frame_end_(pipeline.config().frame_period_us),
        frame_({representation_channels(pipeline.config().frame.repr), height,
                width}) {
    window_ = arena().allocate_span<events::Event>(
        pipeline.config().stream_window_capacity);
    last_on_ = arena().allocate_span<TimeUs>(width * height);
    last_off_ = arena().allocate_span<TimeUs>(width * height);
  }

 private:
  void on_event(const events::Event& event) override {
    maybe_close_frames(event.t);
    if (window_count_ < static_cast<Index>(window_.size())) {
      window_[static_cast<size_t>(window_count_++)] = event;
    } else {
      // Saturating window: a frame period denser than the capacity sheds
      // the excess (explicit back-pressure, visible in stats()).
      note_events_dropped(1);
    }
  }

  void on_advance(TimeUs t) override { maybe_close_frames(t); }

  // Checkpoint payload: the open frame window and its clock. The surface
  // maps (last_on_/last_off_) and the dense frame are pure scratch —
  // build_frame_into re-derives both from the window on every close — so
  // they are not serialized.
  bool checkpoint_supported() const override { return true; }

  void on_save(fault::CheckpointWriter& w) const override {
    w.i64(frame_start_);
    w.i64(frame_end_);
    w.pod_span(std::span<const events::Event>(
        window_.data(), static_cast<size_t>(window_count_)));
  }

  void on_load(fault::CheckpointReader& r) override {
    frame_start_ = r.i64();
    frame_end_ = r.i64();
    window_count_ = r.pod_span_into(window_);
  }

  void maybe_close_frames(TimeUs now) {
    const TimeUs period = pipeline_.config().frame_period_us;
    while (now >= frame_end_) {
      classify_window();
      frame_start_ = frame_end_;
      frame_end_ += period;
    }
  }

  void classify_window() {
    // A frame with no events still gets classified by a frame-based system
    // (it cannot know the frame is empty before building it); we skip the
    // network call but still mark the decision slot for latency accounting.
    // The dense forward itself allocates, which is fine: frame closes are
    // bounded by the frame period, not the event rate.
    core::Decision decision;
    decision.t = frame_end_;
    if (window_count_ > 0) {
      {
        obs::Span span("cnn.representation_build");
        build_frame_into(window_.first(static_cast<size_t>(window_count_)),
                         width_, height_, frame_start_, frame_end_,
                         pipeline_.config().frame, frame_,
                         FrameScratch{last_on_, last_off_});
      }
      obs::Span span("cnn.conv_forward");
      // Routed conv-algo selection: the installed execution path (if any)
      // is translated into a thread-local ConvAlgo override for exactly
      // this forward. The model is shared across sessions and threads, so
      // its Conv2dConfig is never mutated; layers whose config pins an
      // algo explicitly ignore the override.
      const nn::ScopedConvAlgo algo_scope(conv_algo_for_path());
      const nn::Tensor logits = pipeline_.model().forward(frame_, false);
      const nn::Tensor probs = nn::softmax(logits);
      decision.label = static_cast<int>(probs.argmax());
      decision.confidence = probs[probs.argmax()];
    }
    emit(decision);
    window_count_ = 0;
  }

  nn::ConvAlgo conv_algo_for_path() const {
    if (!route::enabled()) return nn::ConvAlgo::Auto;
    switch (execution_path()) {
      case route::PathId::CnnDirect:
        return nn::ConvAlgo::Direct;
      case route::PathId::CnnGemm:
        return nn::ConvAlgo::Gemm;
      case route::PathId::CnnSparse:
        return nn::ConvAlgo::Sparse;
      default:
        return nn::ConvAlgo::Auto;  // Default path = the shape heuristic.
    }
  }

  CnnPipeline& pipeline_;
  Index width_, height_;
  std::span<events::Event> window_;  ///< Arena-backed frame accumulator.
  Index window_count_ = 0;
  std::span<TimeUs> last_on_, last_off_;  ///< Arena-backed surface scratch.
  TimeUs frame_start_ = 0;
  TimeUs frame_end_;
  nn::Tensor frame_;  ///< Reused dense frame, rebuilt in place per close.
};

}  // namespace

std::unique_ptr<core::StreamSession> CnnPipeline::open_session(Index width,
                                                               Index height) {
  runtime::SessionBase::check_geometry("CnnPipeline", width, height,
                                       config_.width, config_.height);
  return std::make_unique<CnnStreamSession>(*this, width, height);
}

}  // namespace evd::cnn
