#include "cnn/dense_model.hpp"

#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace evd::cnn {

nn::Sequential make_event_cnn(const CnnModelConfig& config, Rng& rng) {
  if (config.height % 4 != 0 || config.width % 4 != 0) {
    throw std::invalid_argument("make_event_cnn: geometry must be /4");
  }
  // Conv stem + global average pooling: the GAP head makes the classifier
  // translation-invariant, which matters because event recordings place the
  // object along an arbitrary trajectory.
  nn::Sequential model;
  nn::Conv2dConfig stem{config.in_channels, config.base_filters, 3, 1, 1};
  stem.frame_input = true;  // fed the event frame: the sparse route's target
  model.emplace<nn::Conv2d>(stem, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Conv2d>(
      nn::Conv2dConfig{config.base_filters, config.base_filters * 2, 3, 1, 1},
      rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Conv2d>(
      nn::Conv2dConfig{config.base_filters * 2, config.base_filters * 4, 3, 1,
                       1},
      rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::GlobalAvgPool>();
  model.emplace<nn::Linear>(config.base_filters * 4, config.num_classes, rng);
  return model;
}

FitReport fit_classifier(nn::Sequential& model,
                         std::span<const nn::Tensor> inputs,
                         std::span<const Index> labels,
                         const FitOptions& options) {
  if (inputs.size() != labels.size()) {
    throw std::invalid_argument("fit_classifier: inputs/labels mismatch");
  }
  nn::Adam optimizer(model.params(), options.lr);
  Rng rng(options.shuffle_seed);
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);

  FitReport report;
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    double loss_sum = 0.0;
    Index correct = 0;
    for (const size_t idx : order) {
      const auto [loss, ok] =
          nn::train_step(model, inputs[idx], labels[idx]);
      loss_sum += loss;
      correct += ok ? 1 : 0;
      optimizer.step();
    }
    report.epoch_loss.push_back(loss_sum / static_cast<double>(inputs.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(inputs.size()));
    if (options.verbose) {
      std::printf("  epoch %lld loss %.4f acc %.3f\n",
                  static_cast<long long>(epoch), report.epoch_loss.back(),
                  report.epoch_accuracy.back());
    }
  }
  return report;
}

double evaluate_classifier(nn::Sequential& model,
                           std::span<const nn::Tensor> inputs,
                           std::span<const Index> labels) {
  if (inputs.empty()) return 0.0;
  Index correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    correct += (nn::predict(model, inputs[i]) == labels[i]) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace evd::cnn
