#include "core/rating.hpp"

#include <algorithm>
#include <cmath>

namespace evd::core {

const char* rating_symbol(Rating rating) {
  switch (rating) {
    case Rating::Minus: return "-";
    case Rating::Plus: return "+";
    case Rating::PlusPlus: return "++";
    case Rating::Unknown: return "?";
  }
  return "?";
}

std::vector<Rating> grade_larger_better(const std::vector<double>& values,
                                        double tie_factor,
                                        double fail_factor) {
  std::vector<Rating> grades(values.size(), Rating::Unknown);
  double best = -1e300;
  bool any = false;
  for (const double v : values) {
    if (std::isfinite(v)) {
      best = std::max(best, v);
      any = true;
    }
  }
  if (!any) return grades;
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (!std::isfinite(v)) continue;
    if (v * tie_factor >= best) {
      grades[i] = Rating::PlusPlus;
    } else if (v * fail_factor < best) {
      grades[i] = Rating::Minus;
    } else {
      grades[i] = Rating::Plus;
    }
  }
  return grades;
}

std::vector<Rating> grade_smaller_better(const std::vector<double>& values,
                                         double tie_factor,
                                         double fail_factor) {
  std::vector<double> inverted(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    inverted[i] = values[i] > 0.0 ? 1.0 / values[i]
                                  : (values[i] == 0.0 ? 1e300 : NAN);
  }
  return grade_larger_better(inverted, tie_factor, fail_factor);
}

const std::vector<PaperRow>& paper_table1() {
  static const std::vector<PaperRow> rows = {
      {"Data - Exploit temporal information", "++", "-", "++"},
      {"Data - Sparsity", "++", "-", "++"},
      {"Data - Preparation (v)", "++", "+", ""},
      {"Computation - Sparsity", "++", "+", "++"},
      {"Computation - # Operations (v)", "+", "-", "++"},
      {"Application - Accuracy", "-", "+", "++"},
      {"Hardware - Maturity", "+", "++", ""},
      {"Memory - Footprint (v)", "+", "++", "?"},
      {"Memory - Bandwidth (v)", "+", "-", "?"},
      {"System - Energy Efficiency", "++", "+", "?"},
      {"System - Configurability / Scalability", "-", "++", "++ (?)"},
      {"System - Latency (v)", "++", "-", "++ (?)"},
  };
  return rows;
}

}  // namespace evd::core
