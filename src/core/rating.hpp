// Mapping measurements to the paper's qualitative {-, +, ++} scale.
//
// Table I is qualitative; to regenerate it from measurements we rank the
// three pipelines per axis and assign ++/+/- by documented rules (ties share
// a grade; order-of-magnitude gaps force a '-'). "Hardware maturity" cannot
// be measured from software — it is the one axis kept as a documented
// constant, with the paper's citation counts as justification.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace evd::core {

enum class Rating { Minus, Plus, PlusPlus, Unknown };

const char* rating_symbol(Rating rating);

/// Grade `values` (one per pipeline) where larger is better: best gets ++,
/// anything within `tie_factor` of best also ++; worse than best by more
/// than `fail_factor` gets -, else +. Non-finite values -> Unknown.
std::vector<Rating> grade_larger_better(const std::vector<double>& values,
                                        double tie_factor = 1.15,
                                        double fail_factor = 8.0);

/// Same with smaller-is-better semantics (the table's "(v)" axes).
std::vector<Rating> grade_smaller_better(const std::vector<double>& values,
                                         double tie_factor = 1.15,
                                         double fail_factor = 8.0);

/// The paper's published Table I ratings for {SNN, CNN, GNN}, by axis name —
/// printed alongside our measured grades for comparison.
struct PaperRow {
  const char* axis;
  const char* snn;
  const char* cnn;
  const char* gnn;
};
const std::vector<PaperRow>& paper_table1();

}  // namespace evd::core
