// The quantitative metric set behind Table I's twelve axes.
#pragma once

#include <string>

#include "common/types.hpp"

namespace evd::core {

struct MetricSet {
  std::string pipeline;

  // Data axes.
  double temporal_delta_accuracy = 0.0;  ///< acc - acc(time-shuffled input).
  double data_sparsity = 0.0;            ///< 1 - consumed/dense input elements.
  Index preparation_bytes = 0;           ///< Input-format bytes materialised.

  // Computation axes.
  double compute_sparsity = 0.0;   ///< Fraction of nominal ops avoided.
  std::int64_t ops_per_inference = 0;

  // Application.
  double accuracy = 0.0;

  // Memory axes.
  Index param_count = 0;
  Index memory_footprint_bytes = 0;     ///< Params + persistent state.
  std::int64_t bandwidth_bytes = 0;     ///< Bytes moved per inference.

  // System axes.
  double energy_uj = 0.0;               ///< Per inference, hw model.
  double memory_energy_fraction = 0.0;  ///< Memory share of that energy.
  bool resolution_flexible = false;     ///< Retrain-free geometry change.
  double first_decision_latency_us = 0.0;  ///< Stimulus onset -> any decision.
  double first_correct_latency_us = 0.0;   ///< Onset -> correct decision.
};

}  // namespace evd::core
