// The comparison harness: trains every registered pipeline on the identical
// split, measures all twelve Table I axes, and renders both the raw
// measurements and the derived {-, +, ++} grades next to the paper's
// published ratings.
#pragma once

#include <vector>

#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/rating.hpp"
#include "core/workload.hpp"

namespace evd::core {

struct ComparisonConfig {
  ClassificationWorkload classification;
  StreamingWorkload streaming;
  Index probe_samples = 8;  ///< Test samples used for per-inference counters.
  bool verbose = false;
};

struct ComparisonResult {
  std::vector<MetricSet> metrics;  ///< One per registered pipeline, in order.

  /// Raw measurement table (rows = axes, columns = pipelines).
  Table measurement_table() const;
  /// Derived grades next to the paper's Table I.
  Table rating_table() const;
};

class ComparisonHarness {
 public:
  explicit ComparisonHarness(ComparisonConfig config)
      : config_(std::move(config)) {}

  /// Register a pipeline (non-owning; must outlive run()).
  void add(EventPipeline* pipeline) { pipelines_.push_back(pipeline); }

  /// Train + measure everything. Deterministic for fixed configs/seeds.
  ComparisonResult run();

 private:
  MetricSet measure(EventPipeline& pipeline,
                    std::span<const events::LabelledSample> test);

  ComparisonConfig config_;
  std::vector<EventPipeline*> pipelines_;
};

}  // namespace evd::core
