// Workload descriptors shared by the comparison harness and the benches.
#pragma once

#include "core/pipeline.hpp"
#include "events/dataset.hpp"

namespace evd::core {

/// Classification workload: the identical split every pipeline trains and
/// tests on.
struct ClassificationWorkload {
  events::ShapeDatasetConfig dataset;
  Index train_per_class = 40;
  Index test_per_class = 15;
  TrainOptions training;
};

/// Streaming workload for latency measurement: quiet sensor, stimulus onset
/// at a known time.
struct StreamingWorkload {
  TimeUs onset_us = 30000;
  TimeUs duration_us = 100000;
  Index trials = 5;            ///< Distinct onset streams (different labels).
  double confidence_gate = 0.0;  ///< Min confidence for a decision to count.
};

/// Shuffle event timestamps uniformly within each recording (destroys
/// temporal structure while preserving spatial statistics) — the probe
/// behind the "exploits temporal information" axis.
events::EventStream shuffle_timestamps(const events::EventStream& stream,
                                       std::uint64_t seed);

}  // namespace evd::core
