// The EventPipeline interface — the common contract all three paradigms
// (dense-frame CNN, SNN, event-graph GNN) implement so the comparison
// harness can measure them on identical workloads.
//
// Two modes of use mirror the paper's two workload classes:
//  * batch classification (train / classify)           -> accuracy axes
//  * streaming, event-driven processing (StreamSession) -> latency axes
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/stages.hpp"
#include "events/dataset.hpp"
#include "events/event.hpp"
#include "nn/counters.hpp"
#include "route/route.hpp"

namespace evd::core {

struct TrainOptions {
  /// Epoch budget; <= 0 means "use the pipeline's own default".
  Index epochs = 10;
  /// Learning rate; <= 0 means "use the pipeline's own default" (each
  /// paradigm trains best at a different rate — the harness trains every
  /// pipeline with its own recipe on the identical split).
  float lr = 0.0f;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

/// A decision emitted while streaming (event-driven pipelines may emit many;
/// frame-based pipelines emit one per frame period).
struct Decision {
  TimeUs t = 0;        ///< Time at which the decision became available.
  int label = -1;      ///< Predicted class.
  double confidence = 0.0;
};

/// Exact equality — the runtime's determinism oracle compares decision
/// streams bitwise, so confidence is compared as-is, not within a tolerance.
inline bool operator==(const Decision& a, const Decision& b) {
  return a.t == b.t && a.label == b.label && a.confidence == b.confidence;
}
inline bool operator!=(const Decision& a, const Decision& b) {
  return !(a == b);
}

/// Counters a session keeps while streaming. All are totals since open.
struct SessionStats {
  std::int64_t events_fed = 0;
  std::int64_t decisions_emitted = 0;
  /// Decisions evicted from bounded storage before any drain() saw them.
  std::int64_t decisions_dropped = 0;
  /// Events the ingress queue lost to its overflow policy (managed
  /// sessions only; directly-fed sessions never drop).
  std::int64_t events_dropped = 0;
};

/// Incremental processing session. feed() pushes events in time order;
/// decisions() returns everything decided so far.
///
/// Long-running consumers should prefer drain() — decisions() retains only
/// a bounded tail on runtime-backed sessions (see runtime::DecisionSink),
/// while drain() hands over every decision exactly once.
class StreamSession {
 public:
  virtual ~StreamSession() = default;
  virtual void feed(const events::Event& event) = 0;
  /// Signal that stream time has advanced to `t` with no further events
  /// before it (lets clocked pipelines tick on silence).
  virtual void advance_to(TimeUs t) = 0;
  virtual const std::vector<Decision>& decisions() const = 0;

  /// Move decisions emitted since the last drain() into `out` (appended);
  /// returns how many. The default is a cursor over decisions() so legacy
  /// sessions satisfy the contract without bounded storage.
  virtual Index drain(std::vector<Decision>& out) {
    const auto& all = decisions();
    const Index n = static_cast<Index>(all.size()) - drain_cursor_;
    out.insert(out.end(), all.begin() + drain_cursor_, all.end());
    drain_cursor_ = static_cast<Index>(all.size());
    return n;
  }

  virtual SessionStats stats() const {
    SessionStats s;
    s.decisions_emitted = static_cast<std::int64_t>(decisions().size());
    return s;
  }

  /// Checkpoint support (see fault/checkpoint.hpp for the format). A session
  /// that can serialize its full streaming state writes it into `out` and
  /// returns true; the default declines (returns false) so legacy sessions
  /// remain valid. Restoring into a session requires it to have been opened
  /// with the same pipeline configuration (the serialized header is
  /// validated); a successful load_state makes the session bitwise-continue
  /// exactly where save_state left off.
  virtual bool save_state(std::vector<std::uint8_t>& out) const {
    (void)out;
    return false;
  }
  virtual bool load_state(std::span<const std::uint8_t> bytes) {
    (void)bytes;
    return false;
  }

  /// Windowed online activity estimate in [0, 1]: the fraction of the
  /// sensor plane this session's recent events actually touch (the live
  /// share of its nominal dense work). Feeds sched::SessionProfile.activity
  /// through the SessionManager's re-plan hook so a stream that turns dense
  /// mid-run re-prices — and re-routes off — the sparse execution paths.
  /// Purely observational: the estimate never changes what a session
  /// computes. The default (no estimator) reports fully dense.
  virtual double activity_estimate() const { return 1.0; }

  /// Execution routing (see route/route.hpp). A routable session reports its
  /// paradigm tag and accepts an ExecutionPath id selecting one of the
  /// proved-equivalent execution variants for that paradigm; every variant
  /// must produce a bitwise-identical decision stream (the route.* oracles
  /// enforce this), so routing is a performance decision, never a semantic
  /// one. The defaults make legacy sessions unroutable: empty paradigm,
  /// set_execution_path declines, execution_path reports Default.
  virtual std::string_view paradigm() const { return {}; }
  virtual bool set_execution_path(route::PathId path) {
    (void)path;
    return false;
  }
  virtual route::PathId execution_path() const {
    return route::PathId::Default;
  }

 private:
  Index drain_cursor_ = 0;  ///< Default drain() position; unused by overrides.
};

class EventPipeline {
 public:
  virtual ~EventPipeline() = default;

  virtual std::string name() const = 0;

  /// Fit on labelled samples (identical splits across pipelines).
  virtual void train(std::span<const events::LabelledSample> samples,
                     const TrainOptions& options) = 0;

  /// Classify a complete recording.
  virtual int classify(const events::EventStream& stream) = 0;

  /// Open an event-driven session over a stream geometry.
  virtual std::unique_ptr<StreamSession> open_session(Index width,
                                                      Index height) = 0;

  /// Declared streaming-stage structure for the execution planner (see
  /// core/stages.hpp). The default — no stages — makes the pipeline opaque
  /// to the planner: it is scheduled as a single unfusable unit of unknown
  /// cost. All three built-in paradigms override this.
  virtual std::vector<StageInfo> stream_stages() const { return {}; }

  /// Learnable parameter count.
  virtual Index param_count() const = 0;

  /// Persistent state bytes required at inference time beyond parameters
  /// (membrane potentials, graph buffers, frame accumulators...).
  virtual Index state_bytes() const = 0;

  /// Bytes of input-format data prepared per classification (dense frames,
  /// spike tensors, graph structures) — the Table I "Data preparation" axis.
  virtual Index input_preparation_bytes() const = 0;

  /// Fraction of the dense input volume this paradigm avoids touching on
  /// `probe` (Table I "Data - Sparsity"): 0 for anything that reads a dense
  /// frame, close to 1 for event-driven consumers.
  virtual double input_sparsity(const events::EventStream& probe) = 0;

  /// Fraction of the paradigm's *nominal dense* compute that is skipped or
  /// never issued on `probe` (Table I "Computation - Sparsity").
  virtual double computation_sparsity(const events::EventStream& probe) = 0;
};

}  // namespace evd::core
