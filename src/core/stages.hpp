// Declared streaming-stage structure of an EventPipeline — the planning
// surface the execution planner (evd::sched) searches over.
//
// A pipeline's streaming path is a short linear dataflow of stages (the same
// ones its sessions wrap in obs spans: accumulate -> representation -> conv
// for the CNN, encode -> lif step for the SNN, graph insert -> message pass
// for the GNN). The planner needs two things from each stage:
//
//   * a *planning estimate* of the work one queued op causes there, as an
//     nn::OpCounter the evd::hw cost models can price. These are analytic
//     estimates derived from the pipeline's configuration — dimensions,
//     hidden sizes, neighbour caps — not measured counters: the planner
//     ranks candidate plans, it does not predict wall time;
//   * whether the stage's output may stay on-chip when the next stage is
//     fused with it (fusable_with_next), which is what gives stage fusion a
//     modeled payoff (the intermediate activation traffic disappears).
//
// Stages never constrain *execution semantics*: every session applies its
// ops in submission order whatever the plan says. Fusion and ordering
// decisions change the modeled cost and the obs span labelling, not the
// arithmetic — that is the planner's equivalence contract, enforced bitwise
// by the sched.plan_vs_sequential oracles. The one degree of freedom a plan
// DOES exercise inside a session is the execution path (route/route.hpp):
// a placement may select among proved-equivalent kernel variants for the
// session's paradigm, and the route.* oracles hold those to the same
// bitwise bar, so the contract survives routing unchanged.
#pragma once

#include <string>
#include <vector>

#include "nn/counters.hpp"

namespace evd::core {

struct StageInfo {
  /// Stable stage name, prefixed with the paradigm ("cnn.conv_forward") —
  /// matches the obs span the stage runs under where one exists.
  std::string name;
  /// Modeled work per op that *reaches* the stage (see duty).
  nn::OpCounter per_op;
  /// Fraction of queued ops that actually run the stage. Amortised stages
  /// (a frame close, a timestep tick) declare the nominal ops-per-firing
  /// the pipeline expects, e.g. duty = 1/256 for "fires every ~256 events".
  double duty = 1.0;
  /// True when the stage's output can stay resident if the next stage is
  /// fused into the same group (saves the boundary activation traffic).
  bool fusable_with_next = false;
};

}  // namespace evd::core
