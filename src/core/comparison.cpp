#include "core/comparison.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "hw/energy_model.hpp"
#include "hw/snn_core.hpp"
#include "hw/zero_skip.hpp"

namespace evd::core {
namespace {

/// Per-family hardware energy model: the paper's §V pairs each paradigm with
/// its natural accelerator class.
hw::EnergyBreakdown pipeline_energy(const std::string& name,
                                    const nn::OpCounter& counter) {
  if (name == "CNN") {
    return hw::run_zero_skip(counter, hw::ZeroSkipConfig{}).energy;
  }
  if (name == "SNN") {
    return hw::run_snn_core(counter, hw::SnnCoreConfig{}).energy;
  }
  // GNN (and anything else): idealised int8 roll-up.
  return hw::energy_of(counter, hw::EnergyTable::digital_45nm_int8());
}

double accuracy_on(EventPipeline& pipeline,
                   std::span<const events::LabelledSample> test,
                   bool shuffle_time) {
  if (test.empty()) return 0.0;
  Index correct = 0;
  std::uint64_t seed = 99;
  for (const auto& sample : test) {
    const int predicted =
        shuffle_time
            ? pipeline.classify(shuffle_timestamps(sample.stream, seed++))
            : pipeline.classify(sample.stream);
    correct += (predicted == sample.label) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace

MetricSet ComparisonHarness::measure(
    EventPipeline& pipeline, std::span<const events::LabelledSample> test) {
  MetricSet m;
  m.pipeline = pipeline.name();

  // Accuracy and its time-shuffled control.
  m.accuracy = accuracy_on(pipeline, test, false);
  m.temporal_delta_accuracy =
      m.accuracy - accuracy_on(pipeline, test, true);

  // Per-inference counters over the probe subset.
  const Index probes =
      std::min<Index>(config_.probe_samples, static_cast<Index>(test.size()));
  nn::OpCounter counter;
  {
    nn::ScopedCounter scope(counter);
    for (Index i = 0; i < probes; ++i) {
      (void)pipeline.classify(test[static_cast<size_t>(i)].stream);
    }
  }
  if (probes > 0) {
    m.ops_per_inference = counter.total_ops() / probes;
    m.bandwidth_bytes = counter.total_bytes() / probes;
  }
  const hw::EnergyBreakdown energy = pipeline_energy(m.pipeline, counter);
  m.energy_uj = energy.total_uj() / std::max<Index>(probes, 1);
  m.memory_energy_fraction = energy.memory_fraction();

  // Sparsity axes on the first probe stream.
  if (!test.empty()) {
    m.data_sparsity = pipeline.input_sparsity(test[0].stream);
    m.compute_sparsity = pipeline.computation_sparsity(test[0].stream);
  }

  m.preparation_bytes = pipeline.input_preparation_bytes();
  m.param_count = pipeline.param_count();
  m.memory_footprint_bytes = m.param_count * 4 + pipeline.state_bytes();

  // Retrain-free geometry change probe: double the sensor, re-place events.
  {
    events::EventStream grown;
    grown.width = config_.classification.dataset.width * 2;
    grown.height = config_.classification.dataset.height * 2;
    if (!test.empty()) {
      grown.events = test[0].stream.events;
      for (auto& e : grown.events) {
        e.x = static_cast<std::int16_t>(e.x * 2);
        e.y = static_cast<std::int16_t>(e.y * 2);
      }
    }
    try {
      (void)pipeline.classify(grown);
      m.resolution_flexible = true;
    } catch (const std::exception&) {
      m.resolution_flexible = false;
    }
  }

  // Streaming latency over onset trials.
  {
    const auto& streaming = config_.streaming;
    double first_sum = 0.0, correct_sum = 0.0;
    Index trials_done = 0;
    for (Index trial = 0; trial < streaming.trials; ++trial) {
      const int label = static_cast<int>(
          trial % config_.classification.dataset.num_classes);
      // Jittered onsets sample the clocked pipelines' periods uniformly.
      const TimeUs onset_us = streaming.onset_us + trial * 3777;
      const auto onset = events::make_onset_stream(
          config_.classification.dataset, label, onset_us,
          streaming.duration_us, 1234 + static_cast<std::uint64_t>(trial));
      auto session =
          pipeline.open_session(config_.classification.dataset.width,
                                config_.classification.dataset.height);
      for (const auto& e : onset.stream.events) session->feed(e);
      session->advance_to(streaming.duration_us);

      double first = NAN, first_correct = NAN;
      for (const auto& d : session->decisions()) {
        // Strictly after onset: a decision at t == onset can only have seen
        // pre-onset data.
        if (d.t <= onset.onset_us || d.label < 0) continue;
        if (d.confidence < streaming.confidence_gate) continue;
        if (std::isnan(first)) {
          first = static_cast<double>(d.t - onset.onset_us);
        }
        if (std::isnan(first_correct) && d.label == label) {
          first_correct = static_cast<double>(d.t - onset.onset_us);
        }
        if (!std::isnan(first) && !std::isnan(first_correct)) break;
      }
      const double censor =
          static_cast<double>(streaming.duration_us - streaming.onset_us);
      first_sum += std::isnan(first) ? censor : first;
      correct_sum += std::isnan(first_correct) ? censor : first_correct;
      ++trials_done;
    }
    if (trials_done > 0) {
      m.first_decision_latency_us = first_sum / static_cast<double>(trials_done);
      m.first_correct_latency_us =
          correct_sum / static_cast<double>(trials_done);
    }
  }
  return m;
}

ComparisonResult ComparisonHarness::run() {
  if (pipelines_.empty()) {
    throw std::logic_error("ComparisonHarness::run: no pipelines registered");
  }
  events::ShapeDataset dataset(config_.classification.dataset);
  std::vector<events::LabelledSample> train, test;
  dataset.make_split(config_.classification.train_per_class,
                     config_.classification.test_per_class, train, test);

  ComparisonResult result;
  for (auto* pipeline : pipelines_) {
    if (config_.verbose) {
      std::printf("== training %s ==\n", pipeline->name().c_str());
    }
    pipeline->train(train, config_.classification.training);
    if (config_.verbose) {
      std::printf("== measuring %s ==\n", pipeline->name().c_str());
    }
    result.metrics.push_back(measure(*pipeline, test));
  }
  return result;
}

Table ComparisonResult::measurement_table() const {
  std::vector<std::string> header = {"Axis (measured)"};
  for (const auto& m : metrics) header.push_back(m.pipeline);
  Table table(header);

  auto row = [&](const std::string& axis, auto getter) {
    std::vector<std::string> cells = {axis};
    for (const auto& m : metrics) cells.push_back(getter(m));
    table.add_row(cells);
  };
  row("Temporal info: acc drop when time shuffled", [](const MetricSet& m) {
    return Table::num(m.temporal_delta_accuracy, 3);
  });
  row("Data sparsity (1 - consumed/dense)", [](const MetricSet& m) {
    return Table::num(m.data_sparsity, 3);
  });
  row("Data preparation [bytes]", [](const MetricSet& m) {
    return Table::eng(static_cast<double>(m.preparation_bytes));
  });
  row("Computation sparsity", [](const MetricSet& m) {
    return Table::num(m.compute_sparsity, 3);
  });
  row("Operations / inference", [](const MetricSet& m) {
    return Table::eng(static_cast<double>(m.ops_per_inference));
  });
  row("Accuracy", [](const MetricSet& m) { return Table::num(m.accuracy, 3); });
  row("Parameters", [](const MetricSet& m) {
    return Table::eng(static_cast<double>(m.param_count));
  });
  row("Memory footprint [bytes]", [](const MetricSet& m) {
    return Table::eng(static_cast<double>(m.memory_footprint_bytes));
  });
  row("Memory bandwidth [bytes/inf]", [](const MetricSet& m) {
    return Table::eng(static_cast<double>(m.bandwidth_bytes));
  });
  row("Energy [uJ/inf] (hw model)", [](const MetricSet& m) {
    return Table::num(m.energy_uj, 3);
  });
  row("  of which memory", [](const MetricSet& m) {
    return Table::num(m.memory_energy_fraction * 100.0, 1) + "%";
  });
  row("Resolution change w/o retrain", [](const MetricSet& m) {
    return m.resolution_flexible ? "yes" : "no";
  });
  row("First decision after onset [us]", [](const MetricSet& m) {
    return Table::num(m.first_decision_latency_us, 0);
  });
  row("First correct decision [us]", [](const MetricSet& m) {
    return Table::num(m.first_correct_latency_us, 0);
  });
  return table;
}

Table ComparisonResult::rating_table() const {
  // Grades follow pipeline registration order; the paper columns are fixed
  // {SNN, CNN, GNN}, so look pipelines up by name.
  auto find = [&](const char* name) -> const MetricSet* {
    for (const auto& m : metrics) {
      if (m.pipeline == name) return &m;
    }
    return nullptr;
  };
  const MetricSet* snn = find("SNN");
  const MetricSet* cnn = find("CNN");
  const MetricSet* gnn = find("GNN");
  if (snn == nullptr || cnn == nullptr || gnn == nullptr) {
    throw std::logic_error(
        "rating_table: requires SNN, CNN and GNN pipelines");
  }

  Table table({"Axis", "SNN", "CNN", "GNN", "paper SNN", "paper CNN",
               "paper GNN"});
  const auto& paper = paper_table1();

  auto add = [&](size_t paper_row, std::vector<Rating> grades) {
    const auto& p = paper[paper_row];
    table.add_row({p.axis, rating_symbol(grades[0]), rating_symbol(grades[1]),
                   rating_symbol(grades[2]), p.snn, p.cnn, p.gnn});
  };
  auto triple = [&](auto getter) {
    return std::vector<double>{getter(*snn), getter(*cnn), getter(*gnn)};
  };

  add(0, grade_larger_better(triple([](const MetricSet& m) {
        return m.temporal_delta_accuracy;
      }),
      /*tie_factor=*/1.5, /*fail_factor=*/4.0));
  add(1, grade_larger_better(triple([](const MetricSet& m) {
        return m.data_sparsity;
      }),
      1.2, 3.0));
  add(2, grade_smaller_better(triple([](const MetricSet& m) {
        return static_cast<double>(m.preparation_bytes);
      })));
  add(3, grade_larger_better(triple([](const MetricSet& m) {
        return m.compute_sparsity;
      }),
      1.2, 3.0));
  add(4, grade_smaller_better(triple([](const MetricSet& m) {
        return static_cast<double>(m.ops_per_inference);
      })));
  add(5, grade_larger_better(triple([](const MetricSet& m) {
        return m.accuracy;
      }),
      /*tie_factor=*/1.05, /*fail_factor=*/1.5));
  // Hardware maturity is not measurable in software: documented constants
  // (paper refs: CNN accelerators are an industry; SNN cores exist in
  // silicon; event-GNN hardware does not exist).
  {
    const auto& p = paper[6];
    table.add_row({p.axis, "+", "++", "-", p.snn, p.cnn, p.gnn});
  }
  add(7, grade_smaller_better(triple([](const MetricSet& m) {
        return static_cast<double>(m.memory_footprint_bytes);
      })));
  add(8, grade_smaller_better(triple([](const MetricSet& m) {
        return static_cast<double>(m.bandwidth_bytes);
      })));
  add(9, grade_smaller_better(triple([](const MetricSet& m) {
        return m.energy_uj;
      })));
  {
    const auto& p = paper[10];
    auto symbol = [](const MetricSet& m) {
      return m.resolution_flexible ? "++" : "-";
    };
    table.add_row(
        {p.axis, symbol(*snn), symbol(*cnn), symbol(*gnn), p.snn, p.cnn,
         p.gnn});
  }
  add(11, grade_smaller_better(triple([](const MetricSet& m) {
        return m.first_decision_latency_us;
      }),
      /*tie_factor=*/1.5, /*fail_factor=*/3.0));
  return table;
}

}  // namespace evd::core
