#include "core/workload.hpp"

#include "common/rng.hpp"

namespace evd::core {

events::EventStream shuffle_timestamps(const events::EventStream& stream,
                                       std::uint64_t seed) {
  events::EventStream shuffled = stream;
  if (shuffled.events.size() < 2) return shuffled;
  Rng rng(seed);
  const TimeUs t0 = shuffled.events.front().t;
  const TimeUs t1 = shuffled.events.back().t;
  for (auto& e : shuffled.events) {
    e.t = t0 + static_cast<TimeUs>(rng.uniform() *
                                   static_cast<double>(t1 - t0));
  }
  events::sort_by_time(shuffled.events);
  return shuffled;
}

}  // namespace evd::core
