#include "snn/lif.hpp"

namespace evd::snn {

bool LifNeuron::step(float current) {
  if (refractory_left_ > 0) {
    --refractory_left_;
    return false;
  }
  v_ = config_.beta * v_ + current;
  if (v_ >= config_.threshold) {
    if (config_.reset_to_zero) {
      v_ = 0.0f;
    } else {
      v_ -= config_.threshold;
    }
    refractory_left_ = config_.refractory_steps;
    return true;
  }
  return false;
}

LifTrace simulate_lif(const LifConfig& config,
                      const std::vector<float>& current) {
  LifNeuron neuron(config);
  LifTrace trace;
  trace.membrane.reserve(current.size());
  trace.spikes.reserve(current.size());
  for (const float i : current) {
    const bool spiked = neuron.step(i);
    trace.membrane.push_back(neuron.membrane());
    trace.spikes.push_back(spiked ? 1 : 0);
  }
  return trace;
}

double measured_rate(const LifConfig& config, float current, Index steps) {
  LifNeuron neuron(config);
  Index spikes = 0;
  for (Index t = 0; t < steps; ++t) {
    spikes += neuron.step(current) ? 1 : 0;
  }
  return static_cast<double>(spikes) / static_cast<double>(steps);
}

}  // namespace evd::snn
