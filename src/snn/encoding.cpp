#include "snn/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/counters.hpp"

namespace evd::snn {

nn::Tensor SpikeTrain::to_dense() const {
  nn::Tensor dense({steps, size});
  for (Index t = 0; t < steps; ++t) {
    for (const Index i : active[static_cast<size_t>(t)]) {
      dense.at2(t, i) = 1.0f;
    }
  }
  return dense;
}

Index encoded_size(Index width, Index height, const EventEncoderConfig& cfg) {
  return 2 * (height / cfg.spatial_factor) * (width / cfg.spatial_factor);
}

SpikeTrain encode_events(const events::EventStream& stream,
                         const EventEncoderConfig& config) {
  if (config.steps <= 0 || config.spatial_factor <= 0) {
    throw std::invalid_argument("encode_events: bad config");
  }
  SpikeTrain train;
  train.steps = config.steps;
  const Index pw = stream.width / config.spatial_factor;
  const Index ph = stream.height / config.spatial_factor;
  train.size = 2 * pw * ph;
  train.active.resize(static_cast<size_t>(config.steps));
  if (stream.events.empty()) return train;

  const TimeUs t0 = stream.events.front().t;
  const TimeUs span = std::max<TimeUs>(stream.duration_us(), 1);
  // De-duplication bitmap reused per bin when binary coding.
  std::vector<char> seen;
  if (config.binary) seen.assign(static_cast<size_t>(train.size), 0);
  Index current_bin = -1;

  std::int64_t prep_ops = 0;
  for (const auto& e : stream.events) {
    Index bin = static_cast<Index>(
        static_cast<double>(e.t - t0) / static_cast<double>(span) *
        static_cast<double>(config.steps));
    bin = std::clamp<Index>(bin, 0, config.steps - 1);
    const Index px = e.x / config.spatial_factor;
    const Index py = e.y / config.spatial_factor;
    if (px >= pw || py >= ph) continue;
    const Index idx =
        polarity_channel(e.polarity) * pw * ph + py * pw + px;
    ++prep_ops;
    if (config.binary) {
      if (bin != current_bin) {
        // Streams are time-sorted, so clearing only the marks of the
        // previous bin keeps this O(events).
        if (current_bin >= 0) {
          for (const Index i : train.active[static_cast<size_t>(current_bin)]) {
            seen[static_cast<size_t>(i)] = 0;
          }
        }
        current_bin = bin;
      }
      if (seen[static_cast<size_t>(idx)]) continue;
      seen[static_cast<size_t>(idx)] = 1;
    }
    train.active[static_cast<size_t>(bin)].push_back(idx);
  }
  nn::count_add(prep_ops);
  return train;
}

SpikeTrain rate_encode(const nn::Tensor& values, Index steps,
                       bool deterministic, Rng* rng) {
  if (!deterministic && rng == nullptr) {
    throw std::invalid_argument("rate_encode: stochastic coding needs an Rng");
  }
  SpikeTrain train;
  train.steps = steps;
  train.size = values.numel();
  train.active.resize(static_cast<size_t>(steps));
  std::vector<float> accumulator(static_cast<size_t>(values.numel()), 0.0f);
  for (Index t = 0; t < steps; ++t) {
    for (Index i = 0; i < values.numel(); ++i) {
      const float v = std::min(std::max(values[i], 0.0f), 1.0f);
      if (deterministic) {
        accumulator[static_cast<size_t>(i)] += v;
        if (accumulator[static_cast<size_t>(i)] >= 1.0f) {
          accumulator[static_cast<size_t>(i)] -= 1.0f;
          train.active[static_cast<size_t>(t)].push_back(i);
        }
      } else if (rng->bernoulli(v)) {
        train.active[static_cast<size_t>(t)].push_back(i);
      }
    }
  }
  return train;
}

SpikeTrain latency_encode(const nn::Tensor& values, Index steps) {
  SpikeTrain train;
  train.steps = steps;
  train.size = values.numel();
  train.active.resize(static_cast<size_t>(steps));
  for (Index i = 0; i < values.numel(); ++i) {
    const float v = std::min(std::max(values[i], 0.0f), 1.0f);
    if (v <= 0.0f) continue;
    const auto t = static_cast<Index>(
        std::round((1.0 - static_cast<double>(v)) *
                   static_cast<double>(steps - 1)));
    train.active[static_cast<size_t>(t)].push_back(i);
  }
  return train;
}

}  // namespace evd::snn
