// EventPipeline adapter for the spiking paradigm.
//
// Classification: events are binned into a T-step spike train (light
// preparation — no dense frame is materialised) and the surrogate-gradient
// SNN classifies the whole train.
// Streaming: the network steps statefully every `timestep_us` (the paper's
// "timestep granularity, typically milliseconds"), emitting a decision per
// step — far finer-grained than the CNN's frame period, but still clocked.
#pragma once

#include <memory>

#include "core/pipeline.hpp"
#include "snn/encoding.hpp"
#include "snn/snn_model.hpp"

namespace evd::snn {

struct SnnPipelineConfig {
  Index width = 32;
  Index height = 32;
  Index num_classes = 4;
  Index hidden = 96;
  EventEncoderConfig encoder{20, 4, true};  ///< T=20, 4x spatial pooling.
  LifConfig lif{0.9f, 1.0f, false, 0};
  SurrogateKind surrogate = SurrogateKind::FastSigmoid;
  TimeUs timestep_us = 5000;       ///< Streaming timestep (5 ms).
  /// Bounded decision retention for streaming sessions (SNNs emit one
  /// decision per timestep, so unbounded storage grows without limit on a
  /// live stream).
  Index decision_retain = 8192;
  std::uint64_t seed = 11;
  /// fit.epochs/lr are the pipeline defaults, used when TrainOptions leaves
  /// them <= 0. 15 epochs: the augmented FC-SNN overfits beyond that.
  SnnFitOptions fit{15, 2e-3f, 1, 5.0f, false};
  /// Spatial-shift augmentation copies per training sample (the fully-
  /// connected SNN has no architectural translation invariance, so shifted
  /// copies are its substitute; 0 disables).
  Index augment_shifts = 4;
  Index augment_max_shift = 4;  ///< Max |dx|,|dy| in pixels.
};

class SnnPipeline : public core::EventPipeline {
 public:
  explicit SnnPipeline(SnnPipelineConfig config);

  std::string name() const override { return "SNN"; }
  void train(std::span<const events::LabelledSample> samples,
             const core::TrainOptions& options) override;
  int classify(const events::EventStream& stream) override;
  std::unique_ptr<core::StreamSession> open_session(Index width,
                                                    Index height) override;
  std::vector<core::StageInfo> stream_stages() const override;
  Index param_count() const override;
  Index state_bytes() const override;
  Index input_preparation_bytes() const override;
  double input_sparsity(const events::EventStream& probe) override;
  double computation_sparsity(const events::EventStream& probe) override;

  SpikingNet& net() noexcept { return net_; }
  const SnnPipelineConfig& config() const noexcept { return config_; }

 private:
  SnnPipelineConfig config_;
  Rng rng_;
  SpikingNet net_;
};

}  // namespace evd::snn
