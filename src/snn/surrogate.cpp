#include "snn/surrogate.hpp"

namespace evd::snn {

const char* surrogate_name(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::FastSigmoid: return "fast_sigmoid";
    case SurrogateKind::Boxcar: return "boxcar";
    case SurrogateKind::ArcTan: return "arctan";
  }
  return "unknown";
}

}  // namespace evd::snn
