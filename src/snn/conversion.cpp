#include "snn/conversion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/linear.hpp"

namespace evd::snn {
namespace {

double percentile_of(std::vector<float>& values, double p) {
  if (values.empty()) return 1.0;
  const auto rank = static_cast<size_t>(
      std::min(p, 100.0) / 100.0 * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  const double v = values[rank];
  return v > 1e-6 ? v : 1.0;
}

}  // namespace

ConvertedSnn convert_ann_to_snn(nn::Sequential& ann,
                                std::span<const nn::Tensor> calibration,
                                const ConversionOptions& options) {
  // Collect the Linear layers and verify the MLP shape.
  std::vector<nn::Linear*> linears;
  for (Index i = 0; i < ann.size(); ++i) {
    auto& layer = ann.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      linears.push_back(lin);
    } else if (dynamic_cast<nn::ReLU*>(&layer) == nullptr &&
               dynamic_cast<nn::Flatten*>(&layer) == nullptr) {
      throw std::invalid_argument(
          "convert_ann_to_snn: only [Linear|ReLU|Flatten] MLPs supported, "
          "found " + layer.name());
    }
  }
  if (linears.empty()) {
    throw std::invalid_argument("convert_ann_to_snn: no Linear layers");
  }

  // Data-based activation percentiles per linear layer output (post-ReLU for
  // hidden layers, raw for the final layer — the final scale is not needed).
  const size_t L = linears.size();
  std::vector<std::vector<float>> activations(L);
  for (const auto& input : calibration) {
    nn::Tensor x = input;
    size_t l = 0;
    for (Index i = 0; i < ann.size(); ++i) {
      x = ann.layer(i).forward(x, false);
      if (dynamic_cast<nn::Linear*>(&ann.layer(i)) != nullptr) {
        // Record the post-nonlinearity value the spike rate must represent:
        // hidden layers are followed by ReLU, so clamp negatives to zero.
        for (Index j = 0; j < x.numel(); ++j) {
          activations[l].push_back(std::max(x[j], 0.0f));
        }
        ++l;
      }
    }
  }

  std::vector<float> scales(L);
  for (size_t l = 0; l < L; ++l) {
    scales[l] =
        static_cast<float>(percentile_of(activations[l], options.percentile));
  }

  // Build the IF spiking network with balanced weights.
  SpikingNetConfig config;
  config.layer_sizes.push_back(linears.front()->in_features());
  for (const auto* lin : linears) {
    config.layer_sizes.push_back(lin->out_features());
  }
  config.lif.beta = 1.0f;            // integrate-and-fire (no leak)
  config.lif.threshold = 1.0f;
  config.lif.reset_to_zero = false;  // reset by subtraction: best conversion
  config.readout_beta = options.readout_beta;

  Rng rng(1);  // weights are overwritten below
  ConvertedSnn converted{SpikingNet(config, rng), scales};

  float prev_scale = 1.0f;  // calibration inputs are already in [0, 1]
  for (size_t l = 0; l < L; ++l) {
    const auto& src_w = linears[l]->weight().value;
    const auto& src_b = linears[l]->bias().value;
    auto& dst_w = converted.net.weight(static_cast<Index>(l)).value;
    auto& dst_b = converted.net.bias(static_cast<Index>(l)).value;
    const bool last = (l + 1 == L);
    const float w_scale = last ? prev_scale : prev_scale / scales[l];
    const float b_scale = last ? 1.0f : 1.0f / scales[l];
    for (Index i = 0; i < src_w.numel(); ++i) dst_w[i] = src_w[i] * w_scale;
    for (Index i = 0; i < src_b.numel(); ++i) dst_b[i] = src_b[i] * b_scale;
    prev_scale = scales[l];
  }
  return converted;
}

ConvertedInference run_converted(ConvertedSnn& converted,
                                 const nn::Tensor& input, Index steps) {
  // Deterministic-accumulator rate coding of the analog input.
  const SpikeTrain train = rate_encode(input, steps, /*deterministic=*/true);
  SnnState state = converted.net.make_state();
  ConvertedInference result;
  for (Index t = 0; t < steps; ++t) {
    result.logits =
        converted.net.step(state, train.active[static_cast<size_t>(t)]);
    result.total_spikes += state.step_hidden_spikes;
  }
  result.predicted = result.logits.argmax();
  return result;
}

}  // namespace evd::snn
