// Online, forward-mode SNN learning: eligibility propagation (paper §III-A,
// refs [34] e-prop and [31] event-driven random backpropagation).
//
// Surrogate-gradient BPTT must store every neuron's activity over all
// timesteps — the paper calls it "an unrealistic algorithm for on-chip
// learning due to the prohibitive amount of memory". E-prop replaces the
// backward pass with quantities that are available *locally and forward in
// time*:
//
//   eligibility trace   e_ji(t) = psi_j(t) * zbar_i(t)
//     where zbar_i is a low-pass filter of presynaptic spikes and psi_j the
//     surrogate pseudo-derivative at neuron j's membrane;
//   learning signal     L_j(t) = sum_k B_jk (pi_k(t) - y*_k)
//     where pi is the readout softmax and B is either the transposed
//     readout weights (symmetric e-prop) or a fixed random matrix
//     (random feedback alignment, the fully-local [31] variant);
//   weight update       dW_ji = -lr * sum_t L_j(t) e_ji(t).
//
// Memory is O(#synapses + #neurons), independent of sequence length —
// exactly the property on-chip learning hardware (ReckOn [41]) exploits.
// bench_onchip_learning compares its accuracy and memory against BPTT.
#pragma once

#include "common/rng.hpp"
#include "nn/optimizer.hpp"
#include "snn/snn_model.hpp"

namespace evd::snn {

struct EpropConfig {
  bool symmetric_feedback = false;  ///< true: B = W_out^T (needs weight
                                    ///< transport); false: random B [31].
  float lr = 2e-3f;
  float grad_clip = 5.0f;
  std::uint64_t feedback_seed = 17;
};

class EpropTrainer {
 public:
  /// The network must be input -> one spiking hidden layer -> readout
  /// (layer_count() == 2); throws otherwise. The trainer keeps a reference.
  EpropTrainer(SpikingNet& net, EpropConfig config);

  /// One online pass over a sample: runs the dynamics forward, accumulating
  /// eligibility-based updates step by step, then applies them.
  /// Returns (cross-entropy loss, correct?) from the final-step logits.
  std::pair<double, bool> train_sample(const SpikeTrain& input, Index label);

  /// Bytes of learning state this trainer carries (traces + feedback
  /// matrix) — the on-chip memory cost.
  Index trainer_state_bytes() const;

  /// Bytes BPTT would need to cache for a T-step sample on the same net
  /// (per-step membranes and spikes) — the §III-A "prohibitive" cost.
  static Index bptt_state_bytes(const SpikingNet& net, Index steps);

 private:
  SpikingNet& net_;
  EpropConfig config_;
  nn::Adam optimizer_;
  nn::Tensor feedback_;  ///< B [hidden, out] (random variant).
};

struct EpropFitReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

EpropFitReport fit_eprop(EpropTrainer& trainer,
                         std::span<const SpikeTrain> inputs,
                         std::span<const Index> labels, Index epochs,
                         std::uint64_t shuffle_seed = 1,
                         bool verbose = false);

}  // namespace evd::snn
