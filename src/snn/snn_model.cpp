#include "snn/snn_model.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "nn/counters.hpp"
#include "simd/kernels.hpp"
#include "nn/init.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"

namespace evd::snn {
namespace {

/// Neurons per parallel chunk for layer updates. Shape-only, so spike order
/// (chunks concatenated in ascending order = ascending neuron id) and
/// membrane arithmetic are identical for any thread count.
constexpr Index kNeuronGrain = 128;

}  // namespace

SpikingNet::SpikingNet(SpikingNetConfig config, Rng& rng)
    : config_(std::move(config)) {
  if (config_.layer_sizes.size() < 2) {
    throw std::invalid_argument("SpikingNet: need >= 2 layer sizes");
  }
  for (size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    const Index in = config_.layer_sizes[l];
    const Index out = config_.layer_sizes[l + 1];
    // snprintf-built names sidestep a GCC 12 -Wrestrict false positive in
    // the inlined std::string concatenation path.
    char w_name[24];
    char b_name[24];
    std::snprintf(w_name, sizeof w_name, "W%zu", l);
    std::snprintf(b_name, sizeof b_name, "b%zu", l);
    weights_.emplace_back(w_name, nn::he_normal({out, in}, in, rng));
    biases_.emplace_back(b_name, nn::Tensor({out}));
  }
}

std::vector<nn::Param*> SpikingNet::params() {
  weights_t_.mark_escaped();
  std::vector<nn::Param*> all;
  for (auto& w : weights_) all.push_back(&w);
  for (auto& b : biases_) all.push_back(&b);
  return all;
}

Index SpikingNet::param_count() {
  Index n = 0;
  for (const auto& w : weights_) n += w.value.numel();
  for (const auto& b : biases_) n += b.value.numel();
  return n;
}

const std::vector<std::vector<float>>& SpikingNet::ensure_transposed() {
  return weights_t_.ensure([this](std::vector<std::vector<float>>& all) {
    all.resize(weights_.size());
    for (size_t l = 0; l < weights_.size(); ++l) {
      const Index in = config_.layer_sizes[l];
      const Index out = config_.layer_sizes[l + 1];
      auto& wt = all[l];
      wt.resize(static_cast<size_t>(in) * static_cast<size_t>(out));
      const float* w = weights_[l].value.data();
      for (Index o = 0; o < out; ++o) {
        for (Index i = 0; i < in; ++i) {
          wt[static_cast<size_t>(i) * static_cast<size_t>(out) +
             static_cast<size_t>(o)] = w[o * in + i];
        }
      }
    }
  });
}

nn::Tensor SpikingNet::forward(const SpikeTrain& input, bool train) {
  const Index L = layer_count();           // linear maps
  const Index hidden_layers = L - 1;       // spiking layers
  const Index T = input.steps;
  if (input.size != config_.layer_sizes.front()) {
    throw std::invalid_argument("SpikingNet::forward: input size mismatch");
  }
  const Index out_size = config_.layer_sizes.back();
  const float theta = config_.lif.threshold;
  const float beta = config_.lif.beta;

  if (train) {
    cached_steps_ = T;
    cached_input_copy_ = input;
    cached_spikes_.assign(static_cast<size_t>(hidden_layers), {});
    cached_membrane_.clear();
    for (Index l = 0; l < hidden_layers; ++l) {
      cached_spikes_[static_cast<size_t>(l)].resize(static_cast<size_t>(T));
      cached_membrane_.emplace_back(
          std::vector<Index>{T, config_.layer_sizes[static_cast<size_t>(l + 1)]});
    }
  }

  // Transient membrane state.
  std::vector<std::vector<float>> v(static_cast<size_t>(hidden_layers));
  for (Index l = 0; l < hidden_layers; ++l) {
    v[static_cast<size_t>(l)].assign(
        static_cast<size_t>(config_.layer_sizes[static_cast<size_t>(l + 1)]),
        0.0f);
  }
  std::vector<float> v_out(static_cast<size_t>(out_size), 0.0f);
  std::vector<double> logit_sum(static_cast<size_t>(out_size), 0.0);

  last_hidden_spikes_ = 0;
  const bool counting = nn::active_counter() != nullptr;
  std::vector<Index> spikes_in, spikes_next;
  const auto& weights_t = ensure_transposed();

  for (Index t = 0; t < T; ++t) {
    spikes_in = input.active[static_cast<size_t>(t)];
    for (Index l = 0; l < hidden_layers; ++l) {
      auto& vl = v[static_cast<size_t>(l)];
      const Index n = static_cast<Index>(vl.size());
      const Index in_dim = config_.layer_sizes[static_cast<size_t>(l)];
      const float* w = weights_[static_cast<size_t>(l)].value.data();
      const float* b = biases_[static_cast<size_t>(l)].value.data();
      // Fused leak + bias + event-driven synaptic accumulation + threshold,
      // parallel over neuron chunks; the per-chunk body dispatches on the
      // SIMD tier (EVD_SIMD). Per neuron the addition order (bias, then
      // spikes in arrival order) matches the serial reference in every
      // tier; chunk spike lists concatenate in chunk order, preserving
      // ascending ids. Membrane is cached pre-reset (for the surrogate
      // gradient) when training.
      const Index nchunks = par::chunk_count(0, n, kNeuronGrain);
      std::vector<std::vector<Index>> chunk_spikes(
          static_cast<size_t>(nchunks));
      float* membrane_row =
          train ? &cached_membrane_[static_cast<size_t>(l)].at2(t, 0)
                : nullptr;
      const float* w_t = weights_t[static_cast<size_t>(l)].data();
      par::parallel_for_chunks(0, n, kNeuronGrain, [&](Index chunk, Index nb,
                                                       Index ne) {
        simd::lif_step_block(vl.data(), b, w, w_t, in_dim, n,
                             spikes_in.data(),
                             static_cast<Index>(spikes_in.size()), nb, ne,
                             beta, theta, config_.lif.reset_to_zero,
                             membrane_row,
                             chunk_spikes[static_cast<size_t>(chunk)]);
      });
      spikes_next.clear();
      for (const auto& local : chunk_spikes) {
        spikes_next.insert(spikes_next.end(), local.begin(), local.end());
      }
      if (counting) {
        nn::count_mult(n);                                   // leak
        nn::count_add(n);                                    // bias
        nn::count_add(static_cast<std::int64_t>(spikes_in.size()) * n);
        nn::count_compare(n);                                // threshold
        nn::count_param_read(
            (static_cast<std::int64_t>(spikes_in.size()) * n + n) * 4);
        nn::count_state_rw(n * 8);                           // V read+write
      }
      if (train) {
        cached_spikes_[static_cast<size_t>(l)][static_cast<size_t>(t)] =
            spikes_next;
      }
      last_hidden_spikes_ += static_cast<Index>(spikes_next.size());
      spikes_in = spikes_next;
    }
    // Readout integrator (non-spiking).
    {
      const Index in_dim = config_.layer_sizes[static_cast<size_t>(L - 1)];
      const float* w = weights_.back().value.data();
      const float* b = biases_.back().value.data();
      for (Index o = 0; o < out_size; ++o) {
        v_out[static_cast<size_t>(o)] =
            config_.readout_beta * v_out[static_cast<size_t>(o)] + b[o];
      }
      for (const Index i : spikes_in) {
        for (Index o = 0; o < out_size; ++o) {
          v_out[static_cast<size_t>(o)] += w[o * in_dim + i];
        }
      }
      for (Index o = 0; o < out_size; ++o) {
        logit_sum[static_cast<size_t>(o)] += v_out[static_cast<size_t>(o)];
      }
      if (counting) {
        nn::count_mult(out_size);
        nn::count_add(static_cast<std::int64_t>(spikes_in.size() + 2) *
                      out_size);
        nn::count_state_rw(out_size * 8);
      }
    }
  }

  Index hidden_neurons = 0;
  for (Index l = 1; l + 1 < static_cast<Index>(config_.layer_sizes.size());
       ++l) {
    hidden_neurons += config_.layer_sizes[static_cast<size_t>(l)];
  }
  last_density_ = (T > 0 && hidden_neurons > 0)
                      ? static_cast<double>(last_hidden_spikes_) /
                            (static_cast<double>(T) *
                             static_cast<double>(hidden_neurons))
                      : 0.0;

  nn::Tensor logits({out_size});
  for (Index o = 0; o < out_size; ++o) {
    logits[o] = static_cast<float>(logit_sum[static_cast<size_t>(o)] /
                                   static_cast<double>(T));
  }
  return logits;
}

void SpikingNet::backward(const nn::Tensor& grad_logits) {
  const Index L = layer_count();
  const Index hidden_layers = L - 1;
  const Index T = cached_steps_;
  if (T == 0) throw std::logic_error("SpikingNet::backward: no cached forward");
  const Index out_size = config_.layer_sizes.back();
  const float theta = config_.lif.threshold;
  const float beta = config_.lif.beta;

  // ---- Readout layer ----
  // logits = (1/T) sum_t V_out[t]; V_out[t] = rb * V_out[t-1] + W s[t] + b.
  const Index top = hidden_layers - 1;  // index of last spiking layer
  const Index top_size = config_.layer_sizes[static_cast<size_t>(L - 1)];
  nn::Tensor ds_top({T, top_size});  // dL/d s_top[t]
  {
    std::vector<float> delta(static_cast<size_t>(out_size), 0.0f);
    auto& w_out = weights_.back();
    auto& b_out = biases_.back();
    for (Index t = T - 1; t >= 0; --t) {
      for (Index o = 0; o < out_size; ++o) {
        delta[static_cast<size_t>(o)] =
            grad_logits[o] / static_cast<float>(T) +
            config_.readout_beta * delta[static_cast<size_t>(o)];
      }
      const auto& spikes =
          top >= 0 ? cached_spikes_[static_cast<size_t>(top)]
                         [static_cast<size_t>(t)]
                   : cached_input_copy_.active[static_cast<size_t>(t)];
      for (Index o = 0; o < out_size; ++o) {
        const float d = delta[static_cast<size_t>(o)];
        b_out.grad[o] += d;
        for (const Index i : spikes) {
          w_out.grad[o * top_size + i] += d;
        }
      }
      // Upstream gradient to the top spiking layer's spikes.
      if (top >= 0) {
        for (Index i = 0; i < top_size; ++i) {
          float acc = 0.0f;
          for (Index o = 0; o < out_size; ++o) {
            acc += w_out.value[o * top_size + i] *
                   delta[static_cast<size_t>(o)];
          }
          ds_top.at2(t, i) = acc;
        }
      }
    }
  }

  // ---- Spiking layers, top to bottom ----
  nn::Tensor ds = std::move(ds_top);  // dL/ds for current layer, [T, n]
  for (Index l = hidden_layers - 1; l >= 0; --l) {
    const Index n = config_.layer_sizes[static_cast<size_t>(l + 1)];
    const Index in_dim = config_.layer_sizes[static_cast<size_t>(l)];
    auto& w = weights_[static_cast<size_t>(l)];
    auto& b = biases_[static_cast<size_t>(l)];
    const auto& membrane = cached_membrane_[static_cast<size_t>(l)];

    nn::Tensor ds_below;
    const bool need_below = l > 0;
    if (need_below) ds_below = nn::Tensor({T, in_dim});

    std::vector<float> dv(static_cast<size_t>(n), 0.0f);
    for (Index t = T - 1; t >= 0; --t) {
      // dL/dV[t] = ds[t] * sg'(V[t]-theta) + beta * dL/dV[t+1]
      for (Index o = 0; o < n; ++o) {
        const float sg = surrogate_grad(config_.surrogate,
                                        membrane.at2(t, o) - theta,
                                        config_.surrogate_slope);
        dv[static_cast<size_t>(o)] =
            ds.at2(t, o) * sg + beta * dv[static_cast<size_t>(o)];
      }
      const auto& in_spikes =
          l > 0 ? cached_spikes_[static_cast<size_t>(l - 1)]
                      [static_cast<size_t>(t)]
                : cached_input_copy_.active[static_cast<size_t>(t)];
      for (Index o = 0; o < n; ++o) {
        const float d = dv[static_cast<size_t>(o)];
        if (d == 0.0f) continue;
        b.grad[o] += d;
        for (const Index i : in_spikes) {
          w.grad[o * in_dim + i] += d;
        }
      }
      if (need_below) {
        for (Index i = 0; i < in_dim; ++i) {
          float acc = 0.0f;
          for (Index o = 0; o < n; ++o) {
            acc += w.value[o * in_dim + i] * dv[static_cast<size_t>(o)];
          }
          ds_below.at2(t, i) = acc;
        }
      }
    }
    if (need_below) ds = std::move(ds_below);
  }
}

SnnState SpikingNet::make_state() const {
  SnnState state;
  const Index hidden_layers = layer_count() - 1;
  for (Index l = 0; l < hidden_layers; ++l) {
    state.membrane.emplace_back(
        static_cast<size_t>(config_.layer_sizes[static_cast<size_t>(l + 1)]),
        0.0f);
  }
  state.membrane.emplace_back(
      static_cast<size_t>(config_.layer_sizes.back()), 0.0f);
  state.readout_sum.assign(static_cast<size_t>(config_.layer_sizes.back()),
                           0.0f);
  return state;
}

nn::Tensor SpikingNet::step(SnnState& state,
                            const std::vector<Index>& input_spikes) {
  const Index L = layer_count();
  const Index hidden_layers = L - 1;
  const float theta = config_.lif.threshold;
  const float beta = config_.lif.beta;
  const bool counting = nn::active_counter() != nullptr;

  std::vector<Index> spikes_in = input_spikes;
  std::vector<Index> spikes_next;
  // Spike accounting lives in the state, not the net: step() must stay
  // const-safe on `this` so concurrent sessions can share one network.
  state.step_hidden_spikes = 0;
  const auto& weights_t = ensure_transposed();
  for (Index l = 0; l < hidden_layers; ++l) {
    auto& vl = state.membrane[static_cast<size_t>(l)];
    const Index n = static_cast<Index>(vl.size());
    const Index in_dim = config_.layer_sizes[static_cast<size_t>(l)];
    const float* w = weights_[static_cast<size_t>(l)].value.data();
    const float* b = biases_[static_cast<size_t>(l)].value.data();
    // SIMD-dispatched LIF chunk update; spike order and membrane bits are
    // tier-invariant (see simd::lif_step_block).
    const Index nchunks = par::chunk_count(0, n, kNeuronGrain);
    std::vector<std::vector<Index>> chunk_spikes(static_cast<size_t>(nchunks));
    const float* w_t = weights_t[static_cast<size_t>(l)].data();
    par::parallel_for_chunks(0, n, kNeuronGrain, [&](Index chunk, Index nb,
                                                     Index ne) {
      simd::lif_step_block(vl.data(), b, w, w_t, in_dim, n, spikes_in.data(),
                           static_cast<Index>(spikes_in.size()), nb, ne, beta,
                           theta, config_.lif.reset_to_zero, nullptr,
                           chunk_spikes[static_cast<size_t>(chunk)]);
    });
    spikes_next.clear();
    for (const auto& local : chunk_spikes) {
      spikes_next.insert(spikes_next.end(), local.begin(), local.end());
    }
    if (counting) {
      nn::count_mult(n);
      nn::count_add(static_cast<std::int64_t>(spikes_in.size() + 1) * n);
      nn::count_compare(n);
      nn::count_state_rw(n * 8);
      nn::count_param_read(
          (static_cast<std::int64_t>(spikes_in.size()) * n + n) * 4);
    }
    state.step_hidden_spikes += static_cast<Index>(spikes_next.size());
    spikes_in = spikes_next;
  }

  return readout(state, spikes_in);
}

nn::Tensor SpikingNet::step_event(SnnState& state,
                                  const std::vector<Index>& input_spikes) {
  // One spike-driven kernel call per layer on the calling thread — see the
  // header for the bitwise-equivalence argument against step(). The op
  // counting below is deliberately identical to step()'s: both paths do
  // the same arithmetic, so the analytic ledgers must agree too (the
  // modeled cost difference between the paths lives in the planner's
  // per-path profiles, not here).
  const Index hidden_layers = layer_count() - 1;
  const float theta = config_.lif.threshold;
  const float beta = config_.lif.beta;
  const bool counting = nn::active_counter() != nullptr;

  std::vector<Index> spikes_in = input_spikes;
  std::vector<Index> spikes_next;
  state.step_hidden_spikes = 0;
  const auto& weights_t = ensure_transposed();
  for (Index l = 0; l < hidden_layers; ++l) {
    auto& vl = state.membrane[static_cast<size_t>(l)];
    const Index n = static_cast<Index>(vl.size());
    const Index in_dim = config_.layer_sizes[static_cast<size_t>(l)];
    const float* w = weights_[static_cast<size_t>(l)].value.data();
    const float* b = biases_[static_cast<size_t>(l)].value.data();
    const float* w_t = weights_t[static_cast<size_t>(l)].data();
    spikes_next.clear();
    simd::lif_step_block(vl.data(), b, w, w_t, in_dim, n, spikes_in.data(),
                         static_cast<Index>(spikes_in.size()), 0, n, beta,
                         theta, config_.lif.reset_to_zero, nullptr,
                         spikes_next);
    if (counting) {
      nn::count_mult(n);
      nn::count_add(static_cast<std::int64_t>(spikes_in.size() + 1) * n);
      nn::count_compare(n);
      nn::count_state_rw(n * 8);
      nn::count_param_read(
          (static_cast<std::int64_t>(spikes_in.size()) * n + n) * 4);
    }
    state.step_hidden_spikes += static_cast<Index>(spikes_next.size());
    spikes_in = spikes_next;
  }
  return readout(state, spikes_in);
}

nn::Tensor SpikingNet::readout(SnnState& state,
                               const std::vector<Index>& spikes_in) {
  const Index L = layer_count();
  auto& v_out = state.membrane.back();
  const Index out_size = static_cast<Index>(v_out.size());
  const Index in_dim = config_.layer_sizes[static_cast<size_t>(L - 1)];
  const float* w = weights_.back().value.data();
  const float* b = biases_.back().value.data();
  for (Index o = 0; o < out_size; ++o) {
    v_out[static_cast<size_t>(o)] =
        config_.readout_beta * v_out[static_cast<size_t>(o)] + b[o];
  }
  for (const Index i : spikes_in) {
    for (Index o = 0; o < out_size; ++o) {
      v_out[static_cast<size_t>(o)] += w[o * in_dim + i];
    }
  }
  ++state.steps_seen;
  nn::Tensor logits({out_size});
  for (Index o = 0; o < out_size; ++o) {
    state.readout_sum[static_cast<size_t>(o)] += v_out[static_cast<size_t>(o)];
    logits[o] = state.readout_sum[static_cast<size_t>(o)] /
                static_cast<float>(state.steps_seen);
  }
  return logits;
}

SnnFitReport fit_snn(SpikingNet& net, std::span<const SpikeTrain> inputs,
                     std::span<const Index> labels,
                     const SnnFitOptions& options) {
  if (inputs.size() != labels.size()) {
    throw std::invalid_argument("fit_snn: inputs/labels mismatch");
  }
  nn::Adam optimizer(net.params(), options.lr);
  Rng rng(options.shuffle_seed);
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);

  SnnFitReport report;
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    double loss_sum = 0.0;
    Index correct = 0;
    for (const size_t idx : order) {
      const nn::Tensor logits = net.forward(inputs[idx], /*train=*/true);
      const auto ce = nn::softmax_cross_entropy(logits, labels[idx]);
      net.backward(ce.grad);
      nn::clip_grad_norm(net.params(), options.grad_clip);
      optimizer.step();
      loss_sum += ce.loss;
      correct += (logits.argmax() == labels[idx]) ? 1 : 0;
    }
    report.epoch_loss.push_back(loss_sum / static_cast<double>(inputs.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(inputs.size()));
    if (options.verbose) {
      std::printf("  [snn] epoch %lld loss %.4f acc %.3f\n",
                  static_cast<long long>(epoch), report.epoch_loss.back(),
                  report.epoch_accuracy.back());
    }
  }
  return report;
}

double evaluate_snn(SpikingNet& net, std::span<const SpikeTrain> inputs,
                    std::span<const Index> labels) {
  if (inputs.empty()) return 0.0;
  Index correct = 0;
  for (size_t i = 0; i < inputs.size(); ++i) {
    correct +=
        (net.forward(inputs[i], false).argmax() == labels[i]) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace evd::snn
