#include "snn/event_driven.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::snn {
namespace {

void check_spec(const SpikingLayerSpec& layer, const SpikeTrain& input) {
  if (layer.weight == nullptr || layer.weight->rank() != 2) {
    throw std::invalid_argument("SpikingLayerSpec: weight must be [out, in]");
  }
  if (layer.weight->dim(1) != input.size) {
    throw std::invalid_argument("SpikingLayerSpec: input size mismatch");
  }
  if (layer.lif.beta <= 0.0f || layer.lif.beta > 1.0f) {
    throw std::invalid_argument("SpikingLayerSpec: beta must be in (0, 1]");
  }
}

}  // namespace

SpikeTrain run_clocked(const SpikingLayerSpec& layer, const SpikeTrain& input,
                       ExecutionCost& cost) {
  check_spec(layer, input);
  const Index out = layer.weight->dim(0);
  const Index in = layer.weight->dim(1);
  const float* w = layer.weight->data();
  const float theta = layer.lif.threshold;

  SpikeTrain output;
  output.steps = input.steps;
  output.size = out;
  output.active.resize(static_cast<size_t>(input.steps));

  std::vector<float> v(static_cast<size_t>(out), 0.0f);
  for (Index t = 0; t < input.steps; ++t) {
    const auto& spikes = input.active[static_cast<size_t>(t)];
    for (Index o = 0; o < out; ++o) {
      float& vo = v[static_cast<size_t>(o)];
      vo *= layer.lif.beta;
      for (const Index i : spikes) vo += w[o * in + i];
      ++cost.neuron_updates;
      cost.memory_accesses += 2 + static_cast<std::int64_t>(spikes.size());
      cost.mults += 1;  // leak
      cost.adds += static_cast<std::int64_t>(spikes.size());
      // Burst semantics: drain the membrane below threshold, one spike per
      // threshold's worth of charge. This keeps the post-update state below
      // threshold, which is what makes lazy (event-driven) evaluation exact.
      while (vo >= theta) {
        vo = layer.lif.reset_to_zero ? 0.0f : vo - theta;
        output.active[static_cast<size_t>(t)].push_back(o);
        ++cost.output_spikes;
      }
    }
  }
  return output;
}

SpikeTrain run_event_driven(const SpikingLayerSpec& layer,
                            const SpikeTrain& input, ExecutionCost& cost) {
  check_spec(layer, input);
  const Index out = layer.weight->dim(0);
  const Index in = layer.weight->dim(1);
  const float* w = layer.weight->data();
  const float theta = layer.lif.threshold;

  SpikeTrain output;
  output.steps = input.steps;
  output.size = out;
  output.active.resize(static_cast<size_t>(input.steps));

  std::vector<float> v(static_cast<size_t>(out), 0.0f);
  std::vector<Index> last(static_cast<size_t>(out), 0);
  for (Index t = 0; t < input.steps; ++t) {
    const auto& spikes = input.active[static_cast<size_t>(t)];
    if (spikes.empty()) continue;  // nothing addressed: no work at all
    for (Index o = 0; o < out; ++o) {
      float& vo = v[static_cast<size_t>(o)];
      const Index dt = t - last[static_cast<size_t>(o)];
      // Analytic decay over the silent interval. On hardware this is a
      // lookup + multiply; we charge two multiplies for it.
      if (dt > 0) {
        vo *= static_cast<float>(
            std::pow(static_cast<double>(layer.lif.beta),
                     static_cast<double>(dt)));
      }
      for (const Index i : spikes) vo += w[o * in + i];
      last[static_cast<size_t>(o)] = t;
      ++cost.neuron_updates;
      // V read+write, timestamp read+write, plus weight reads.
      cost.memory_accesses += 4 + static_cast<std::int64_t>(spikes.size());
      cost.mults += 2;  // decay lookup + multiply
      cost.adds += static_cast<std::int64_t>(spikes.size());
      while (vo >= theta) {
        vo = layer.lif.reset_to_zero ? 0.0f : vo - theta;
        output.active[static_cast<size_t>(t)].push_back(o);
        ++cost.output_spikes;
      }
    }
  }
  return output;
}

}  // namespace evd::snn
