// ANN-to-SNN conversion (paper §III-A, refs [36]-[38]).
//
// A ReLU MLP is trained conventionally, then converted into a spiking
// network of integrate-and-fire neurons by data-based threshold balancing
// (Diehl et al. [36]): each layer's weights are rescaled by the ratio of
// consecutive layers' p-th percentile activations so that firing rates
// approximate the (normalised) ReLU activations. The input is rate-coded.
// The conversion error — including the "unevenness error" the paper
// mentions, where the realised spike count mismatches the target rate
// because of stimulation order — shrinks as the timestep budget grows,
// which bench_snn_coding sweeps.
#pragma once

#include <span>
#include <vector>

#include "nn/sequential.hpp"
#include "snn/snn_model.hpp"

namespace evd::snn {

struct ConversionOptions {
  double percentile = 99.0;  ///< Activation percentile for balancing.
  float readout_beta = 1.0f; ///< Pure accumulator readout.
};

struct ConvertedSnn {
  SpikingNet net;
  std::vector<float> layer_scales;  ///< Balancing scale per linear layer.
};

/// Convert a [Linear, ReLU]* Linear network. `calibration` are analog input
/// vectors (values in [0, 1]) used to estimate activation ranges.
/// Throws if the architecture is not an MLP of that form.
ConvertedSnn convert_ann_to_snn(nn::Sequential& ann,
                                std::span<const nn::Tensor> calibration,
                                const ConversionOptions& options);

struct ConvertedInference {
  Index predicted = -1;
  Index total_spikes = 0;   ///< Hidden spikes consumed.
  nn::Tensor logits;        ///< Accumulated readout at the final step.
};

/// Run a converted network on an analog input for `steps` timesteps using
/// deterministic-accumulator rate coding.
ConvertedInference run_converted(ConvertedSnn& converted,
                                 const nn::Tensor& input, Index steps);

}  // namespace evd::snn
