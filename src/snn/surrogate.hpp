// Surrogate gradients for the spiking threshold (paper §III-A [30]).
//
// The true derivative of the Heaviside spike function is a Dirac delta —
// zero everywhere except at threshold — which blocks gradient flow. The
// surrogate-gradient method replaces it with a smooth pseudo-derivative
// evaluated at the membrane's distance from threshold.
#pragma once

#include <cmath>

namespace evd::snn {

enum class SurrogateKind {
  FastSigmoid,  ///< 1 / (1 + a|x|)^2  (Zenke & Ganguli SuperSpike [33])
  Boxcar,       ///< 1/(2a) on |x| < a (straight-through window)
  ArcTan,       ///< a / (2 (1 + (pi/2 a x)^2)) (common in snn frameworks)
};

/// Pseudo-derivative d(spike)/d(V - threshold) at x = V - threshold.
inline float surrogate_grad(SurrogateKind kind, float x, float slope = 2.0f) {
  switch (kind) {
    case SurrogateKind::FastSigmoid: {
      const float d = 1.0f + slope * std::fabs(x);
      return 1.0f / (d * d);
    }
    case SurrogateKind::Boxcar:
      return std::fabs(x) < 0.5f / slope ? slope : 0.0f;
    case SurrogateKind::ArcTan: {
      const float u = 1.57079632679489662f * slope * x;
      return slope / (2.0f * (1.0f + u * u));
    }
  }
  return 0.0f;
}

const char* surrogate_name(SurrogateKind kind);

}  // namespace evd::snn
