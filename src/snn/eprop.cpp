#include "snn/eprop.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/softmax.hpp"

namespace evd::snn {

EpropTrainer::EpropTrainer(SpikingNet& net, EpropConfig config)
    : net_(net), config_(config), optimizer_(net.params(), config.lr) {
  if (net_.layer_count() != 2) {
    throw std::invalid_argument(
        "EpropTrainer: requires input -> hidden -> readout architecture");
  }
  const Index hidden = net_.config().layer_sizes[1];
  const Index out = net_.config().layer_sizes[2];
  Rng rng(config_.feedback_seed);
  // Fixed random feedback, scaled like a readout weight would be.
  feedback_ = nn::Tensor::randn(
      {hidden, out}, rng,
      static_cast<float>(std::sqrt(1.0 / static_cast<double>(out))));
}

Index EpropTrainer::trainer_state_bytes() const {
  const Index in = net_.config().layer_sizes[0];
  const Index hidden = net_.config().layer_sizes[1];
  const Index out = net_.config().layer_sizes[2];
  // zbar (in) + sbar (hidden) + psi (hidden) + feedback (hidden x out),
  // all fp32.
  return (in + 2 * hidden + hidden * out) * 4;
}

Index EpropTrainer::bptt_state_bytes(const SpikingNet& net, Index steps) {
  // BPTT caches, per step: every hidden membrane (fp32) and hidden spikes
  // (1 bit, charged as 1 byte), plus the input spike raster it replays.
  Index hidden = 0;
  for (size_t l = 1; l + 1 < net.config().layer_sizes.size(); ++l) {
    hidden += net.config().layer_sizes[l];
  }
  const Index in = net.config().layer_sizes.front();
  return steps * (hidden * 4 + hidden + in);
}

std::pair<double, bool> EpropTrainer::train_sample(const SpikeTrain& input,
                                                   Index label) {
  const auto& sizes = net_.config().layer_sizes;
  const Index in = sizes[0];
  const Index hidden = sizes[1];
  const Index out = sizes[2];
  if (input.size != in) {
    throw std::invalid_argument("EpropTrainer: input size mismatch");
  }
  const float beta = net_.config().lif.beta;
  const float beta_out = net_.config().readout_beta;
  const float theta = net_.config().lif.threshold;

  auto& w_hidden = net_.weight(0);
  auto& b_hidden = net_.bias(0);
  auto& w_out = net_.weight(1);
  auto& b_out = net_.bias(1);

  // Forward-mode state: O(neurons), constant in T.
  std::vector<float> v_hidden(static_cast<size_t>(hidden), 0.0f);
  std::vector<float> v_out(static_cast<size_t>(out), 0.0f);
  std::vector<float> zbar(static_cast<size_t>(in), 0.0f);   // input trace
  std::vector<float> sbar(static_cast<size_t>(out == 0 ? 0 : hidden), 0.0f);
  std::vector<char> spiked(static_cast<size_t>(hidden), 0);

  nn::Tensor logits({out});
  const float inv_steps = 1.0f / static_cast<float>(input.steps);

  for (Index t = 0; t < input.steps; ++t) {
    const auto& x = input.active[static_cast<size_t>(t)];
    // Input trace update (filtered presynaptic spikes).
    for (auto& z : zbar) z *= beta;
    for (const Index i : x) zbar[static_cast<size_t>(i)] += 1.0f;

    // Hidden dynamics.
    for (Index j = 0; j < hidden; ++j) {
      v_hidden[static_cast<size_t>(j)] =
          beta * v_hidden[static_cast<size_t>(j)] + b_hidden.value[j];
    }
    for (const Index i : x) {
      for (Index j = 0; j < hidden; ++j) {
        v_hidden[static_cast<size_t>(j)] += w_hidden.value[j * in + i];
      }
    }
    std::vector<float> psi(static_cast<size_t>(hidden));
    for (Index j = 0; j < hidden; ++j) {
      psi[static_cast<size_t>(j)] =
          surrogate_grad(net_.config().surrogate,
                         v_hidden[static_cast<size_t>(j)] - theta,
                         net_.config().surrogate_slope);
      if (v_hidden[static_cast<size_t>(j)] >= theta) {
        spiked[static_cast<size_t>(j)] = 1;
        v_hidden[static_cast<size_t>(j)] -= theta;
      } else {
        spiked[static_cast<size_t>(j)] = 0;
      }
    }

    // Filtered hidden spikes + readout dynamics.
    for (Index j = 0; j < hidden; ++j) {
      sbar[static_cast<size_t>(j)] = beta_out * sbar[static_cast<size_t>(j)] +
                                     (spiked[static_cast<size_t>(j)] ? 1.0f
                                                                     : 0.0f);
    }
    for (Index k = 0; k < out; ++k) {
      float acc = beta_out * v_out[static_cast<size_t>(k)] + b_out.value[k];
      for (Index j = 0; j < hidden; ++j) {
        if (spiked[static_cast<size_t>(j)]) {
          acc += w_out.value[k * hidden + j];
        }
      }
      v_out[static_cast<size_t>(k)] = acc;
      logits[k] = acc;  // instantaneous readout
    }

    // Per-step learning signals from the instantaneous softmax.
    const nn::Tensor pi = nn::softmax(logits);
    std::vector<float> l_out(static_cast<size_t>(out));
    for (Index k = 0; k < out; ++k) {
      l_out[static_cast<size_t>(k)] =
          (pi[k] - (k == label ? 1.0f : 0.0f)) * inv_steps;
    }
    // Readout updates use the filtered hidden spikes (local!).
    for (Index k = 0; k < out; ++k) {
      const float lk = l_out[static_cast<size_t>(k)];
      if (lk == 0.0f) continue;
      b_out.grad[k] += lk;
      for (Index j = 0; j < hidden; ++j) {
        w_out.grad[k * hidden + j] += lk * sbar[static_cast<size_t>(j)];
      }
    }
    // Hidden updates: learning signal via feedback matrix x eligibility.
    for (Index j = 0; j < hidden; ++j) {
      float lj = 0.0f;
      for (Index k = 0; k < out; ++k) {
        const float b = config_.symmetric_feedback
                            ? w_out.value[k * hidden + j]
                            : feedback_.at2(j, k);
        lj += b * l_out[static_cast<size_t>(k)];
      }
      const float gate = lj * psi[static_cast<size_t>(j)];
      if (gate == 0.0f) continue;
      b_hidden.grad[j] += gate;
      float* grad_row = w_hidden.grad.data() + j * in;
      for (Index i = 0; i < in; ++i) {
        if (zbar[static_cast<size_t>(i)] != 0.0f) {
          grad_row[i] += gate * zbar[static_cast<size_t>(i)];
        }
      }
    }
  }

  const auto ce = nn::softmax_cross_entropy(logits, label);
  nn::clip_grad_norm(net_.params(), config_.grad_clip);
  optimizer_.step();
  return {ce.loss, logits.argmax() == label};
}

EpropFitReport fit_eprop(EpropTrainer& trainer,
                         std::span<const SpikeTrain> inputs,
                         std::span<const Index> labels, Index epochs,
                         std::uint64_t shuffle_seed, bool verbose) {
  if (inputs.size() != labels.size()) {
    throw std::invalid_argument("fit_eprop: inputs/labels mismatch");
  }
  Rng rng(shuffle_seed);
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);

  EpropFitReport report;
  for (Index epoch = 0; epoch < epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    double loss_sum = 0.0;
    Index correct = 0;
    for (const size_t idx : order) {
      const auto [loss, hit] = trainer.train_sample(inputs[idx], labels[idx]);
      loss_sum += loss;
      correct += hit ? 1 : 0;
    }
    report.epoch_loss.push_back(loss_sum /
                                static_cast<double>(inputs.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(inputs.size()));
    if (verbose) {
      std::printf("  [eprop] epoch %lld loss %.4f acc %.3f\n",
                  static_cast<long long>(epoch), report.epoch_loss.back(),
                  report.epoch_accuracy.back());
    }
  }
  return report;
}

}  // namespace evd::snn
