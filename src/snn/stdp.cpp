#include "snn/stdp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evd::snn {

StdpLayer::StdpLayer(StdpConfig config) : config_(config) {
  if (config_.inputs <= 0 || config_.outputs <= 0 || config_.w_max <= 0.0f) {
    throw std::invalid_argument("StdpLayer: bad configuration");
  }
  // Uniform random initial weights in (0, w_max) — symmetry breaking.
  Rng rng(config_.seed);
  weights_ = nn::Tensor({config_.outputs, config_.inputs});
  for (Index i = 0; i < weights_.numel(); ++i) {
    weights_[i] =
        static_cast<float>(rng.uniform(0.2, 0.8)) * config_.w_max;
  }
  membrane_.assign(static_cast<size_t>(config_.outputs), 0.0f);
  pre_trace_.assign(static_cast<size_t>(config_.inputs), 0.0f);
  post_trace_.assign(static_cast<size_t>(config_.outputs), 0.0f);
  threshold_offset_.assign(static_cast<size_t>(config_.outputs), 0.0f);
}

void StdpLayer::reset_state() {
  std::fill(membrane_.begin(), membrane_.end(), 0.0f);
  std::fill(pre_trace_.begin(), pre_trace_.end(), 0.0f);
  std::fill(post_trace_.begin(), post_trace_.end(), 0.0f);
}

nn::Tensor StdpLayer::receptive_field(Index j) const {
  nn::Tensor field({config_.inputs});
  for (Index i = 0; i < config_.inputs; ++i) {
    field[i] = weights_.at2(j, i);
  }
  return field;
}

std::vector<Index> StdpLayer::present(const SpikeTrain& input, bool learn) {
  if (input.size != config_.inputs) {
    throw std::invalid_argument("StdpLayer::present: input size mismatch");
  }
  reset_state();
  std::vector<Index> counts(static_cast<size_t>(config_.outputs), 0);
  double total_change = 0.0;

  for (Index t = 0; t < input.steps; ++t) {
    const auto& spikes = input.active[static_cast<size_t>(t)];

    // Trace and membrane decay.
    for (auto& x : pre_trace_) x *= config_.alpha_pre;
    for (auto& y : post_trace_) y *= config_.alpha_post;
    for (auto& v : membrane_) v *= config_.beta;
    for (auto& offset : threshold_offset_) offset *= config_.homeostasis_decay;

    // Presynaptic events: integrate + depression (post trace says "this
    // output fired recently; an input arriving *after* is anti-causal").
    for (const Index i : spikes) {
      pre_trace_[static_cast<size_t>(i)] += 1.0f;
      for (Index j = 0; j < config_.outputs; ++j) {
        membrane_[static_cast<size_t>(j)] += weights_.at2(j, i);
        if (learn) {
          const float before = weights_.at2(j, i);
          const float depressed =
              before - config_.lr_post *
                           post_trace_[static_cast<size_t>(j)] * before;
          weights_.at2(j, i) = std::max(0.0f, depressed);
          total_change += std::fabs(weights_.at2(j, i) - before);
        }
      }
    }

    // Winner-take-all: the most-above-threshold output fires this step.
    Index winner = -1;
    float best_margin = 0.0f;
    for (Index j = 0; j < config_.outputs; ++j) {
      const float margin =
          membrane_[static_cast<size_t>(j)] -
          (config_.threshold + threshold_offset_[static_cast<size_t>(j)]);
      if (margin >= 0.0f && (winner < 0 || margin > best_margin)) {
        winner = j;
        best_margin = margin;
      }
    }
    if (winner >= 0) {
      ++counts[static_cast<size_t>(winner)];
      post_trace_[static_cast<size_t>(winner)] += 1.0f;
      threshold_offset_[static_cast<size_t>(winner)] += config_.homeostasis;
      // Lateral inhibition: everyone resets, losers get pushed down.
      for (Index j = 0; j < config_.outputs; ++j) {
        membrane_[static_cast<size_t>(j)] =
            (j == winner) ? 0.0f : membrane_[static_cast<size_t>(j)] * 0.5f;
      }
      if (learn) {
        // Potentiation: causal inputs (recent pre trace) strengthen toward
        // w_max (soft bound).
        for (Index i = 0; i < config_.inputs; ++i) {
          const float trace = pre_trace_[static_cast<size_t>(i)];
          if (trace <= 0.0f) continue;
          const float before = weights_.at2(winner, i);
          weights_.at2(winner, i) =
              before + config_.lr_pre * trace * (config_.w_max - before);
          total_change += std::fabs(weights_.at2(winner, i) - before);
        }
        // Row normalisation: fixed synaptic budget per output.
        if (config_.row_norm_fraction > 0.0f) {
          float sum = 0.0f;
          for (Index i = 0; i < config_.inputs; ++i) {
            sum += weights_.at2(winner, i);
          }
          const float target = config_.row_norm_fraction *
                               static_cast<float>(config_.inputs) *
                               config_.w_max;
          if (sum > 1e-6f) {
            const float scale = target / sum;
            for (Index i = 0; i < config_.inputs; ++i) {
              weights_.at2(winner, i) = std::min(
                  config_.w_max, weights_.at2(winner, i) * scale);
            }
          }
        }
      }
    }
  }
  last_change_ =
      total_change / static_cast<double>(weights_.numel());
  return counts;
}

}  // namespace evd::snn
