// Clocked vs. event-driven SNN execution (paper §III-A, refs [42], [44]).
//
// Digital neuromorphic processors almost always update neuron state on a
// clock: every timestep, every neuron's membrane is read, decayed, and
// written back. A fully event-driven alternative updates a neuron only when
// an input spike targets it, decaying the membrane analytically over the
// elapsed interval — fewer updates when activity is sparse, but each update
// is more expensive (extra timestamp state, an exponentiation) and the
// access pattern is irregular. Both executors below produce identical spike
// trains for the same layer; their instrumented costs quantify the paper's
// claim that clocked designs often win in practice [42].
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "snn/encoding.hpp"
#include "snn/lif.hpp"

namespace evd::snn {

struct ExecutionCost {
  std::int64_t neuron_updates = 0;   ///< Membrane read-modify-writes.
  std::int64_t memory_accesses = 0;  ///< Word-granular state + weight reads/writes.
  std::int64_t mults = 0;
  std::int64_t adds = 0;
  std::int64_t output_spikes = 0;
};

/// One fully-connected spiking layer, dense weights [out, in], shared LIF
/// parameters, executed over an input spike train.
struct SpikingLayerSpec {
  const nn::Tensor* weight = nullptr;  ///< [out, in]
  LifConfig lif;
};

/// Clocked execution: every neuron updated every timestep.
/// Returns output spike raster; fills cost.
SpikeTrain run_clocked(const SpikingLayerSpec& layer, const SpikeTrain& input,
                       ExecutionCost& cost);

/// Event-driven execution: neurons are touched only when addressed by an
/// input spike (decay applied lazily via beta^(dt)). A final flush at the
/// last timestep brings all membranes up to date.
/// Produces the same spikes as run_clocked for the same layer and input,
/// up to floating-point tolerance (asserted by tests).
SpikeTrain run_event_driven(const SpikingLayerSpec& layer,
                            const SpikeTrain& input, ExecutionCost& cost);

}  // namespace evd::snn
