#include "snn/snn_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/softmax.hpp"
#include "obs/trace.hpp"
#include "route/route.hpp"
#include "runtime/session_base.hpp"

namespace evd::snn {
namespace {

SpikingNetConfig net_config(const SnnPipelineConfig& config) {
  SpikingNetConfig net;
  net.layer_sizes = {encoded_size(config.width, config.height, config.encoder),
                     config.hidden, config.num_classes};
  net.lif = config.lif;
  net.surrogate = config.surrogate;
  return net;
}

}  // namespace

SnnPipeline::SnnPipeline(SnnPipelineConfig config)
    : config_(config), rng_(config.seed), net_(net_config(config), rng_) {}

void SnnPipeline::train(std::span<const events::LabelledSample> samples,
                        const core::TrainOptions& options) {
  std::vector<SpikeTrain> inputs;
  std::vector<Index> labels;
  inputs.reserve(samples.size() *
                 static_cast<size_t>(1 + config_.augment_shifts));
  labels.reserve(inputs.capacity());
  Rng aug_rng(config_.seed ^ 0xA06A06ULL);
  for (const auto& sample : samples) {
    inputs.push_back(encode_events(sample.stream, config_.encoder));
    labels.push_back(sample.label);
    for (Index k = 0; k < config_.augment_shifts; ++k) {
      const auto max_shift =
          static_cast<std::uint64_t>(2 * config_.augment_max_shift + 1);
      const Index dx = static_cast<Index>(aug_rng.uniform_int(max_shift)) -
                       config_.augment_max_shift;
      const Index dy = static_cast<Index>(aug_rng.uniform_int(max_shift)) -
                       config_.augment_max_shift;
      events::EventStream shifted;
      shifted.width = sample.stream.width;
      shifted.height = sample.stream.height;
      shifted.events.reserve(sample.stream.events.size());
      for (events::Event e : sample.stream.events) {
        const Index x = e.x + dx;
        const Index y = e.y + dy;
        if (x < 0 || y < 0 || x >= shifted.width || y >= shifted.height) {
          continue;
        }
        e.x = static_cast<std::int16_t>(x);
        e.y = static_cast<std::int16_t>(y);
        shifted.events.push_back(e);
      }
      inputs.push_back(encode_events(shifted, config_.encoder));
      labels.push_back(sample.label);
    }
  }
  SnnFitOptions fit = config_.fit;
  if (options.epochs > 0) fit.epochs = options.epochs;
  if (options.lr > 0.0f) fit.lr = options.lr;
  fit.shuffle_seed = options.shuffle_seed;
  fit.verbose = options.verbose;
  fit_snn(net_, inputs, labels, fit);
}

int SnnPipeline::classify(const events::EventStream& stream) {
  const SpikeTrain train = encode_events(stream, config_.encoder);
  return static_cast<int>(net_.forward(train, false).argmax());
}

std::vector<core::StageInfo> SnnPipeline::stream_stages() const {
  // Planning estimates for the evd::sched cost models (see core/stages.hpp).
  // The clocked stages amortise over a nominal 64 events per timestep — the
  // density the serving benches run at with a 5 ms timestep.
  constexpr std::int64_t kOpsPerStep = 64;
  const Index in = encoded_size(config_.width, config_.height, config_.encoder);
  const Index hidden = config_.hidden;
  const Index classes = config_.num_classes;

  core::StageInfo encode;
  encode.name = "snn.encode";
  encode.per_op.adds = 2;        // spatial pool + polarity bin
  encode.per_op.comparisons = 1; // dedup against the current bin
  encode.per_op.act_bytes_written = 8;  // index-coded spike

  core::StageInfo step;
  step.name = "snn.step";
  step.duty = 1.0 / static_cast<double>(kOpsPerStep);
  // One LIF sweep: input->hidden and hidden->readout matmuls plus leak,
  // threshold compare and reset on every neuron.
  const std::int64_t macs = static_cast<std::int64_t>(in) * hidden +
                            static_cast<std::int64_t>(hidden) * classes;
  step.per_op.mults = macs + hidden + classes;  // + leak multiplies
  step.per_op.adds = macs;
  step.per_op.comparisons = hidden + classes;  // threshold checks
  step.per_op.zero_skippable_mults = static_cast<std::int64_t>(in) * hidden;
  step.per_op.param_bytes_read = param_count() * 4;
  step.per_op.state_bytes_rw = state_bytes() * 2;  // read + write membranes
  step.fusable_with_next = true;  // readout can ride the same sweep

  core::StageInfo readout;
  readout.name = "snn.readout";
  readout.duty = step.duty;
  readout.per_op.mults = classes;  // softmax-ish normalisation
  readout.per_op.comparisons = classes;  // argmax
  readout.per_op.act_bytes_read = classes * 4;

  return {encode, step, readout};
}

Index SnnPipeline::param_count() const {
  return const_cast<SpikingNet&>(net_).param_count();
}

Index SnnPipeline::state_bytes() const {
  // Membrane potentials of every neuron (hidden + readout), 4 bytes each.
  Index neurons = 0;
  for (size_t l = 1; l < net_.config().layer_sizes.size(); ++l) {
    neurons += net_.config().layer_sizes[l];
  }
  return neurons * 4;
}

Index SnnPipeline::input_preparation_bytes() const {
  // Spike trains stay index-coded: ~8 bytes per binned event, no dense
  // buffer. Estimate with the encoder geometry at nominal density 2%.
  const Index n = encoded_size(config_.width, config_.height, config_.encoder);
  return static_cast<Index>(0.02 * static_cast<double>(
                                       n * config_.encoder.steps) *
                            8.0);
}

double SnnPipeline::input_sparsity(const events::EventStream& probe) {
  // Spikes consumed vs. the dense (neuron x timestep) input volume.
  const SpikeTrain train = encode_events(probe, config_.encoder);
  return 1.0 - train.density();
}

double SnnPipeline::computation_sparsity(const events::EventStream& probe) {
  // Synaptic additions actually issued vs. the fully-dense equivalent where
  // every input/hidden neuron fires every timestep.
  const SpikeTrain train = encode_events(probe, config_.encoder);
  nn::OpCounter counter;
  {
    nn::ScopedCounter scope(counter);
    (void)net_.forward(train, false);
  }
  const auto& sizes = net_.config().layer_sizes;
  std::int64_t dense_synops = 0;
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    dense_synops += sizes[l] * sizes[l + 1];
  }
  dense_synops *= train.steps;
  return dense_synops > 0
             ? 1.0 - static_cast<double>(counter.adds) /
                         static_cast<double>(dense_synops)
             : 0.0;
}

namespace {

runtime::SessionBaseConfig snn_session_config(const SnnPipelineConfig& c) {
  runtime::SessionBaseConfig sc;
  // Dedup bitmap over the encoded input, arena-resident.
  sc.arena_bytes =
      static_cast<std::size_t>(encoded_size(c.width, c.height, c.encoder)) +
      256;  // alignment slack
  sc.decision_retain = c.decision_retain;
  sc.paradigm = "snn";
  // Windowed activity estimator over the configured sensor plane, so the
  // re-plan hook can re-price snn.event_driven when a stream turns dense.
  sc.width = c.width;
  sc.height = c.height;
  return sc;
}

class SnnStreamSession : public runtime::SessionBase {
 public:
  SnnStreamSession(SnnPipeline& pipeline, Index width, Index height)
      : runtime::SessionBase(snn_session_config(pipeline.config())),
        pipeline_(pipeline),
        width_(width),
        height_(height),
        state_(pipeline.net().make_state()),
        step_end_(pipeline.config().timestep_us) {
    const Index n = encoded_size(width, height, pipeline.config().encoder);
    seen_ = arena().allocate_span<char>(n);
    // Pending can never exceed the dedup'd input size, so reserving it here
    // keeps the per-event path allocation-free.
    pending_.reserve(static_cast<size_t>(n));
  }

 private:
  void on_event(const events::Event& event) override {
    tick_until(event.t);
    // Bin the event into the current timestep's input spike set.
    const auto& enc = pipeline_.config().encoder;
    const Index pw = width_ / enc.spatial_factor;
    const Index ph = height_ / enc.spatial_factor;
    const Index px = event.x / enc.spatial_factor;
    const Index py = event.y / enc.spatial_factor;
    if (px >= pw || py >= ph) return;
    const Index idx = polarity_channel(event.polarity) * pw * ph + py * pw + px;
    if (!seen_[static_cast<size_t>(idx)]) {
      seen_[static_cast<size_t>(idx)] = 1;
      pending_.push_back(idx);
    }
  }

  void on_advance(TimeUs t) override { tick_until(t); }

  // Checkpoint payload: the full neuron state plus the timestep clock and
  // the pending input spike set. The arena dedup bitmap is derived — it is
  // exactly "index appears in pending_" — so on_load rebuilds it instead of
  // serializing the whole (mostly zero) map.
  bool checkpoint_supported() const override { return true; }

  void on_save(fault::CheckpointWriter& w) const override {
    w.i64(step_end_);
    w.i64(state_.steps_seen);
    w.i64(state_.step_hidden_spikes);
    w.i64(static_cast<Index>(state_.membrane.size()));
    for (const auto& layer : state_.membrane) w.pod_vector(layer);
    w.pod_vector(state_.readout_sum);
    w.pod_vector(pending_);
  }

  void on_load(fault::CheckpointReader& r) override {
    step_end_ = r.i64();
    state_.steps_seen = r.i64();
    state_.step_hidden_spikes = r.i64();
    if (const Index layers = r.i64();
        layers != static_cast<Index>(state_.membrane.size())) {
      throw Error(ErrorCode::CheckpointMismatch,
                  "SnnStreamSession: checkpointed " + std::to_string(layers) +
                      " membrane layers, net has " +
                      std::to_string(state_.membrane.size()));
    }
    for (auto& layer : state_.membrane) {
      const size_t expected = layer.size();
      r.pod_vector(layer);
      if (layer.size() != expected) {
        throw Error(ErrorCode::CheckpointMismatch,
                    "SnnStreamSession: membrane layer size changed");
      }
    }
    r.pod_vector(state_.readout_sum);
    std::fill(seen_.begin(), seen_.end(), 0);
    r.pod_vector(pending_);
    for (const Index i : pending_) {
      if (i < 0 || i >= static_cast<Index>(seen_.size())) {
        throw Error(ErrorCode::CheckpointCorrupt,
                    "SnnStreamSession: pending spike index out of range");
      }
      seen_[static_cast<size_t>(i)] = 1;
    }
  }

  void tick_until(TimeUs now) {
    // net().step() allocates internally; that cost is bounded by the clock
    // (one step per timestep_us), not by the event rate.
    while (now >= step_end_) {
      obs::Span span("snn.step");
      // Routed stepping discipline: the event-driven path runs each layer
      // as one spike-driven kernel call instead of the chunked fork-join —
      // bitwise-identical logits (route.snn_clocked_vs_event), different
      // scheduling cost. SnnClocked and Default both name the built-in
      // clocked path.
      const bool event_driven =
          route::enabled() &&
          execution_path() == route::PathId::SnnEventDriven;
      const nn::Tensor logits = event_driven
                                    ? pipeline_.net().step_event(state_, pending_)
                                    : pipeline_.net().step(state_, pending_);
      for (const Index i : pending_) seen_[static_cast<size_t>(i)] = 0;
      pending_.clear();
      core::Decision decision;
      decision.t = step_end_;
      decision.label = static_cast<int>(logits.argmax());
      const nn::Tensor probs = nn::softmax(logits);
      decision.confidence = probs[probs.argmax()];
      emit(decision);
      step_end_ += pipeline_.config().timestep_us;
    }
  }

  SnnPipeline& pipeline_;
  Index width_, height_;
  SnnState state_;
  TimeUs step_end_;
  std::vector<Index> pending_;
  std::span<char> seen_;  ///< Arena-backed dedup bitmap.
};

}  // namespace

std::unique_ptr<core::StreamSession> SnnPipeline::open_session(Index width,
                                                               Index height) {
  runtime::SessionBase::check_geometry("SnnPipeline", width, height,
                                       config_.width, config_.height);
  return std::make_unique<SnnStreamSession>(*this, width, height);
}

}  // namespace evd::snn
