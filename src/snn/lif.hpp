// Leaky-Integrate-and-Fire neuron model (paper §III-A, Fig. 2 left).
//
// The membrane potential obeys the RC-circuit equation
//     tau * dV/dt = -V + R * I(t)
// discretised with timestep dt as
//     V[t+1] = beta * V[t] + I[t],  beta = exp(-dt / tau)
// A spike is emitted when V crosses `threshold`; the membrane is then reset
// (to zero, or by subtracting the threshold) and optionally held for a
// refractory period.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace evd::snn {

struct LifConfig {
  float beta = 0.9f;        ///< Leak factor per step, exp(-dt/tau).
  float threshold = 1.0f;
  bool reset_to_zero = false;  ///< false = reset by subtraction (default).
  Index refractory_steps = 0;
};

/// Single LIF neuron stepped explicitly — the reference dynamics used by the
/// Fig. 2 bench and the unit tests.
class LifNeuron {
 public:
  explicit LifNeuron(LifConfig config) : config_(config) {}

  /// Advance one timestep with input current `current`; returns true if the
  /// neuron spiked.
  bool step(float current);

  void reset_state() {
    v_ = 0.0f;
    refractory_left_ = 0;
  }

  float membrane() const noexcept { return v_; }
  const LifConfig& config() const noexcept { return config_; }

 private:
  LifConfig config_;
  float v_ = 0.0f;
  Index refractory_left_ = 0;
};

/// Membrane trace of a neuron driven by a current waveform (for plotting /
/// verification): returns (V[t], spike[t]) series.
struct LifTrace {
  std::vector<float> membrane;
  std::vector<char> spikes;
  Index spike_count() const noexcept {
    Index n = 0;
    for (const char s : spikes) n += s;
    return n;
  }
};

LifTrace simulate_lif(const LifConfig& config,
                      const std::vector<float>& current);

/// Steady-state firing rate (spikes per step) of a LIF neuron under constant
/// input current — analytic check: with reset-by-subtraction and constant
/// I > theta*(1-beta), rate -> I / threshold for beta -> 1.
double measured_rate(const LifConfig& config, float current, Index steps);

}  // namespace evd::snn
