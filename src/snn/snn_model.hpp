// Multi-layer spiking network trained with surrogate-gradient BPTT
// (paper §III-A [30]).
//
// Architecture: L-1 spiking LIF layers followed by a non-spiking leaky
// integrator readout; the logits are the time-averaged readout membrane
// potentials (a membrane-potential loss, [30]). Hidden spikes are binary, so
// forward synaptic work is pure *additions* gated by spikes — the property
// the paper's energy argument rests on — and is counted as such through the
// OpCounter.
//
// Backward implements truncation-free BPTT with the reset path detached
// (standard surrogate-gradient practice): for each spiking layer
//   dL/dV[t] = dL/ds[t] * sg'(V[t] - theta) + beta * dL/dV[t+1].
#pragma once

#include <vector>

#include "common/derived_cache.hpp"
#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "snn/encoding.hpp"
#include "snn/lif.hpp"
#include "snn/surrogate.hpp"

namespace evd::snn {

struct SpikingNetConfig {
  std::vector<Index> layer_sizes;  ///< {input, hidden..., output}.
  LifConfig lif;                   ///< Hidden-layer dynamics.
  float readout_beta = 0.95f;      ///< Output integrator leak.
  SurrogateKind surrogate = SurrogateKind::FastSigmoid;
  float surrogate_slope = 2.0f;
};

/// Persistent layer state for streaming (stateful stepping) mode.
///
/// Everything step() mutates lives here, not in the net: concurrent
/// sessions share one SpikingNet (const parameters) and each brings its own
/// SnnState, so stepping different states from different threads is safe.
struct SnnState {
  std::vector<std::vector<float>> membrane;  ///< Per layer (incl. readout).
  std::vector<float> readout_sum;            ///< Accumulated readout logits.
  Index steps_seen = 0;
  Index step_hidden_spikes = 0;  ///< Hidden spikes in the most recent step().
};

class SpikingNet {
 public:
  SpikingNet(SpikingNetConfig config, Rng& rng);

  /// Full-sequence forward; returns logits [output_size]. When `train`,
  /// caches membrane and spike trajectories for backward().
  nn::Tensor forward(const SpikeTrain& input, bool train);

  /// BPTT given dL/dlogits; accumulates parameter gradients.
  void backward(const nn::Tensor& grad_logits);

  std::vector<nn::Param*> params();
  Index param_count();

  /// Hidden spike count of the most recent forward (activity metric).
  Index last_hidden_spikes() const noexcept { return last_hidden_spikes_; }
  /// Mean hidden spikes per neuron per step in the last forward.
  double last_spike_density() const noexcept { return last_density_; }

  // ---- Streaming (stateful) mode ----
  SnnState make_state() const;
  /// Advance one timestep with the given active input indices; returns the
  /// current running logits (time-averaged readout membrane).
  nn::Tensor step(SnnState& state, const std::vector<Index>& input_spikes);

  /// Event-driven stepping: the same timestep arithmetic as step(), but
  /// each layer runs as ONE spike-driven kernel call on the calling thread
  /// instead of a fork-join over neuron chunks with per-chunk spike-list
  /// concatenation. Bitwise-identical to step() by construction — neurons
  /// are independent, the kernel's full-range spike emission equals the
  /// chunked emission concatenated in ascending order, and the readout is
  /// shared code — which the route.snn_clocked_vs_event oracle enforces at
  /// ULP 0. The win is scheduling, not arithmetic: no pool dispatch or
  /// barrier per layer and no per-chunk vector churn, which is what makes
  /// it the right path for sparse, latency-sensitive streams (the paper's
  /// event-driven execution style).
  nn::Tensor step_event(SnnState& state,
                        const std::vector<Index>& input_spikes);

  const SpikingNetConfig& config() const noexcept { return config_; }
  Index layer_count() const noexcept {
    return static_cast<Index>(weights_.size());
  }
  nn::Param& weight(Index l) {
    weights_t_.mark_escaped();
    return weights_.at(static_cast<size_t>(l));
  }
  nn::Param& bias(Index l) {
    weights_t_.mark_escaped();
    return biases_.at(static_cast<size_t>(l));
  }

 private:
  SpikingNetConfig config_;
  std::vector<nn::Param> weights_;
  std::vector<nn::Param> biases_;

  /// Build/refresh and return the transposed weight copies.
  const std::vector<std::vector<float>>& ensure_transposed();

  /// Shared readout tail of step()/step_event(): leaky output-membrane
  /// update from the last hidden layer's spikes, running-average logits.
  nn::Tensor readout(SnnState& state, const std::vector<Index>& spikes_in);

  // Per-layer transposed ([in][out]) weight copies feeding the LIF kernel's
  // contiguous-streaming path (simd::lif_step_block's w_t): the per-spike
  // synapse fetch becomes a sequential row read instead of a strided gather
  // through the row-major matrix. See DerivedCache for the build-once /
  // escaped-handle rebuild protocol.
  DerivedCache<std::vector<std::vector<float>>> weights_t_;

  // Training caches (valid after forward(train=true)).
  Index cached_steps_ = 0;
  std::vector<std::vector<std::vector<Index>>> cached_spikes_;  ///< [layer][t]
  std::vector<nn::Tensor> cached_membrane_;  ///< [hidden layer] -> [T, n]
  SpikeTrain cached_input_copy_;

  Index last_hidden_spikes_ = 0;
  double last_density_ = 0.0;
};

struct SnnFitOptions {
  Index epochs = 10;
  float lr = 2e-3f;
  std::uint64_t shuffle_seed = 1;
  float grad_clip = 5.0f;
  bool verbose = false;
};

struct SnnFitReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

SnnFitReport fit_snn(SpikingNet& net, std::span<const SpikeTrain> inputs,
                     std::span<const Index> labels,
                     const SnnFitOptions& options);

double evaluate_snn(SpikingNet& net, std::span<const SpikeTrain> inputs,
                    std::span<const Index> labels);

}  // namespace evd::snn
