// Unsupervised spike-timing-dependent plasticity (paper §III-A, ref [27]
// Diehl & Cook).
//
// The third learning route the paper lists beside surrogate-gradient BPTT
// and conversion: no labels, no gradients — synapses strengthen when a
// presynaptic spike precedes the postsynaptic one (causal, "pre before
// post") and weaken on the reverse order, with winner-take-all lateral
// inhibition forcing output neurons to specialise on distinct input
// patterns. Pure local learning: exactly what analogue/in-memory
// neuromorphic hardware can implement without any digital training loop.
//
// Implementation: trace-based pair STDP on one excitatory layer of LIF
// neurons. Each input keeps a presynaptic trace x_i (decay alpha_pre); each
// output a postsynaptic trace y_j (decay alpha_post). On a postsynaptic
// spike of winner j:  w_ji += lr_pre * x_i * (w_max - w_ji)   (potentiate)
// On a presynaptic spike at i:  w_ji -= lr_post * y_j * w_ji  (depress)
// Adaptive thresholds (homeostasis) keep all outputs participating.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"
#include "snn/encoding.hpp"

namespace evd::snn {

struct StdpConfig {
  Index inputs = 64;
  Index outputs = 8;
  float beta = 0.9f;            ///< Membrane leak per step.
  float threshold = 8.0f;       ///< Base firing threshold.
  float alpha_pre = 0.7f;       ///< Presynaptic trace decay per step.
  float alpha_post = 0.7f;      ///< Postsynaptic trace decay per step.
  float lr_pre = 0.05f;         ///< Potentiation rate.
  float lr_post = 0.02f;        ///< Depression rate.
  float w_max = 1.0f;
  float homeostasis = 0.2f;     ///< Threshold bump per own spike (decays).
  float homeostasis_decay = 0.995f;
  /// Per-output L1 weight normalisation (Diehl & Cook): after each winner
  /// potentiation its row is rescaled to sum to
  /// row_norm_fraction * inputs * w_max. Potentiating one pattern then
  /// necessarily weakens the others — the mechanism that forces
  /// specialisation. 0 disables.
  float row_norm_fraction = 0.375f;
  std::uint64_t seed = 5;
};

class StdpLayer {
 public:
  explicit StdpLayer(StdpConfig config);

  /// Present one spike train; learns unless frozen. Returns the per-output
  /// spike counts for this presentation (the layer's response vector).
  std::vector<Index> present(const SpikeTrain& input, bool learn = true);

  /// Reset dynamic state (membranes, traces) — weights persist.
  void reset_state();

  const nn::Tensor& weights() const noexcept { return weights_; }
  /// Receptive field of output j as a copy (row of the weight matrix).
  nn::Tensor receptive_field(Index j) const;

  /// Mean |w| change during the most recent present() — convergence probe.
  double last_weight_change() const noexcept { return last_change_; }

 private:
  StdpConfig config_;
  nn::Tensor weights_;               ///< [outputs, inputs] in [0, w_max].
  std::vector<float> membrane_;
  std::vector<float> pre_trace_;
  std::vector<float> post_trace_;
  std::vector<float> threshold_offset_;  ///< Homeostatic adaptation.
  double last_change_ = 0.0;
};

}  // namespace evd::snn
