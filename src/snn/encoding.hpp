// Event-to-spike and analog-to-spike encodings (paper §III-A).
//
// * SpikeTrain: T timesteps of sparse binary spike vectors — the native SNN
//   input. Events map to it by time-binning with one channel per polarity
//   and optional spatial pooling (the data-preparation step of the SNN
//   pipeline: far lighter than dense frames, as Table I's "Data -
//   Preparation" row expects).
// * Rate coding [36]: analog value -> spike probability per step (Poisson)
//   or deterministic accumulator ("unevenness error"-free in the long run).
// * Latency coding [32]: larger value -> earlier single spike.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "events/event.hpp"
#include "nn/tensor.hpp"

namespace evd::snn {

/// Sparse binary spike raster: for each timestep, the indices that spiked.
struct SpikeTrain {
  Index steps = 0;
  Index size = 0;  ///< Neuron (input-dimension) count.
  std::vector<std::vector<Index>> active;  ///< active[t] = spiking indices.

  Index total_spikes() const noexcept {
    Index n = 0;
    for (const auto& step : active) n += static_cast<Index>(step.size());
    return n;
  }
  /// Mean spikes per neuron per step.
  double density() const noexcept {
    return steps > 0 && size > 0
               ? static_cast<double>(total_spikes()) /
                     (static_cast<double>(steps) * static_cast<double>(size))
               : 0.0;
  }
  nn::Tensor to_dense() const;
};

struct EventEncoderConfig {
  Index steps = 20;          ///< Timestep count T.
  Index spatial_factor = 2;  ///< Pool factor: input dim = 2*(H/f)*(W/f).
  bool binary = true;        ///< Multiple events in a bin -> one spike.
};

/// Flattened input index for (polarity channel, y, x) at pooled geometry.
Index encoded_size(Index width, Index height, const EventEncoderConfig& cfg);

/// Encode a recording into a spike train spanning its full duration.
SpikeTrain encode_events(const events::EventStream& stream,
                         const EventEncoderConfig& config);

/// Rate-code an analog vector (values in [0,1]) into T steps.
/// deterministic=true uses an accumulator (value integrates, spike on
/// crossing 1) — the conversion-friendly coding; otherwise Bernoulli.
SpikeTrain rate_encode(const nn::Tensor& values, Index steps,
                       bool deterministic, Rng* rng = nullptr);

/// Latency (time-to-first-spike) coding: index i spikes once at step
/// round((1 - v_i) * (T - 1)); values <= 0 never spike.
SpikeTrain latency_encode(const nn::Tensor& values, Index steps);

}  // namespace evd::snn
