// Incremental event-graph construction (paper §IV, HUGNet-style [72]).
//
// The k-d-tree path costs O(n log n) per rebuild (or an unbalanced insert
// plus a global search), which the paper identifies as *the* latency
// roadblock for real-time event-graphs. The fix exploits two properties of
// event data the generic tree ignores:
//   1. edges are causal and time-bounded — a new event can only connect to
//      events younger than a horizon (radius / time_scale);
//   2. the spatial neighbourhood is small and known a priori.
// So a uniform spatial grid hash, with each cell holding a small ring
// buffer of its most recent node ids, answers "earlier events within radius"
// by scanning a constant number of cells x a bounded number of candidates:
// O(1) amortised per event, versus the tree's global search. This is the
// mechanism behind the four-orders-of-magnitude speed-up the paper cites,
// which bench_graph_construction measures.
#pragma once

#include <vector>

#include "events/event.hpp"
#include "fault/checkpoint.hpp"
#include "gnn/graph.hpp"

namespace evd::gnn {

struct IncrementalConfig {
  double time_scale = 1e-4;
  float radius = 3.0f;
  Index max_neighbors = 8;
  Index cell_capacity = 16;  ///< Ring-buffer slots per grid cell.
};

class IncrementalGraphBuilder {
 public:
  IncrementalGraphBuilder(Index width, Index height, IncrementalConfig config);

  struct InsertResult {
    Index node_id = -1;
    std::vector<Index> neighbors;    ///< Earlier nodes within radius (capped).
    Index candidates_scanned = 0;    ///< Work metric for the cost model.
  };

  /// Insert one event; O(1) amortised.
  InsertResult insert(const events::Event& event);

  /// Allocation-free insert for the streaming hot path: neighbours go into
  /// the caller-owned `out_neighbors` (cleared first; reserve it to
  /// max_neighbors once) and the candidate count, if wanted, into
  /// `candidates_scanned`. Combined with reserve_nodes(), steady-state
  /// inserts perform zero heap allocations. Returns the new node id.
  /// Behaviour is identical to insert().
  Index insert_into(const events::Event& event,
                    std::vector<Index>& out_neighbors,
                    Index* candidates_scanned = nullptr);

  /// Pre-size the node store so insert_into never reallocates before
  /// `capacity` nodes exist.
  void reserve_nodes(Index capacity) {
    nodes_.reserve(static_cast<size_t>(capacity));
  }

  Index node_count() const noexcept {
    return static_cast<Index>(nodes_.size());
  }
  const GraphNode& node(Index i) const {
    return nodes_[static_cast<size_t>(i)];
  }

  /// Reset all state (nodes and grid).
  void clear();

  /// Checkpoint the mutable state (node store + grid rings) into `w` /
  /// restore it from `r`. The restoring builder must have the same geometry
  /// and config (grid dimensions are validated; a mismatch throws
  /// evd::Error(CheckpointMismatch)). Storage reserved by reserve_nodes()
  /// survives a load.
  void save(fault::CheckpointWriter& w) const;
  void load(fault::CheckpointReader& r);

  /// Bytes of persistent state (grid + node store).
  Index state_bytes() const noexcept;

 private:
  struct Cell {
    std::vector<Index> ids;  ///< Ring buffer, newest at cursor-1.
    Index cursor = 0;
    Index count = 0;
  };

  Cell& cell_at(Index cx, Index cy) {
    return cells_[static_cast<size_t>(cy * grid_w_ + cx)];
  }

  IncrementalConfig config_;
  Index grid_w_, grid_h_;
  float cell_size_;
  std::vector<Cell> cells_;
  std::vector<GraphNode> nodes_;
  TimeUs horizon_us_;
  /// Scratch for insert_into (candidates from <= 9 cells); reserved once.
  std::vector<std::pair<float, Index>> within_;
};

/// Convenience: run the incremental builder over a whole (sorted) stream and
/// materialise the resulting EventGraph — used by the equivalence tests
/// against build_graph() and by the GNN pipeline.
EventGraph build_graph_incremental(const events::EventStream& stream,
                                   const IncrementalConfig& config,
                                   Index max_nodes);

}  // namespace evd::gnn
