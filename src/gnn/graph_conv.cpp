#include "gnn/graph_conv.hpp"

#include <cstddef>
#include <stdexcept>

#include "nn/counters.hpp"
#include "nn/init.hpp"
#include "simd/kernels.hpp"

namespace evd::gnn {

GraphConv::GraphConv(Index in_features, Index out_features, Rng& rng,
                     Aggregation aggregation)
    : in_(in_features),
      out_(out_features),
      aggregation_(aggregation),
      w_self_("w_self", nn::he_normal({out_features, in_features},
                                      in_features, rng)),
      w_nbr_("w_nbr", nn::he_normal({out_features, in_features + 3},
                                    in_features + 3, rng)),
      bias_("bias", nn::Tensor({out_features})) {}

nn::Tensor GraphConv::forward(const EventGraph& graph, const nn::Tensor& h,
                              bool train) {
  const Index n = graph.node_count();
  if (h.rank() != 2 || h.dim(0) != n || h.dim(1) != in_) {
    throw std::invalid_argument("GraphConv::forward: feature shape mismatch");
  }
  nn::Tensor pre({n, out_});
  if (train && aggregation_ == Aggregation::Max) {
    cached_argmax_.assign(static_cast<size_t>(n * out_), -1);
  }
  std::int64_t macs = 0;

  for (Index i = 0; i < n; ++i) {
    const auto neighbors = graph.neighbors(i);
    const float inv_deg =
        neighbors.empty() ? 0.0f : 1.0f / static_cast<float>(neighbors.size());
    const auto& pi = graph.node(i).position;

    for (Index o = 0; o < out_; ++o) {
      float acc = bias_.value[o];
      const float* ws = w_self_.value.data() + o * in_;
      for (Index f = 0; f < in_; ++f) acc += ws[f] * h.at2(i, f);

      float msg = aggregation_ == Aggregation::Max ? 0.0f : 0.0f;
      bool has_msg = false;
      Index best_j = -1;
      const float* wn = w_nbr_.value.data() + o * (in_ + 3);
      for (const Index j : neighbors) {
        const auto& pj = graph.node(j).position;
        float contrib = 0.0f;
        for (Index f = 0; f < in_; ++f) contrib += wn[f] * h.at2(j, f);
        contrib += wn[in_ + 0] * (pj.x - pi.x);
        contrib += wn[in_ + 1] * (pj.y - pi.y);
        contrib += wn[in_ + 2] * (pj.z - pi.z);
        if (aggregation_ == Aggregation::Max) {
          if (!has_msg || contrib > msg) {
            msg = contrib;
            best_j = j;
            has_msg = true;
          }
        } else {
          msg += contrib;
        }
      }
      if (aggregation_ == Aggregation::Max) {
        pre.at2(i, o) = acc + (has_msg ? msg : 0.0f);
        if (train) {
          cached_argmax_[static_cast<size_t>(i * out_ + o)] = best_j;
        }
      } else {
        pre.at2(i, o) = acc + inv_deg * msg;
      }
    }
    macs += node_macs(static_cast<Index>(neighbors.size()));
  }

  if (nn::active_counter() != nullptr) {
    nn::count_mac(macs);
    nn::count_param_read((w_self_.value.numel() + w_nbr_.value.numel() +
                          bias_.value.numel()) * 4);
    nn::count_act_read(h.numel() * 4);
    nn::count_act_write(n * out_ * 4);
  }

  if (train) {
    cached_graph_ = &graph;
    cached_input_ = h;
    cached_pre_ = pre;
  }

  nn::Tensor out = pre;
  for (Index k = 0; k < out.numel(); ++k) {
    if (out[k] < 0.0f) out[k] = 0.0f;
  }
  nn::count_compare(out.numel());
  return out;
}

nn::Tensor GraphConv::backward(const nn::Tensor& grad_output) {
  if (cached_graph_ == nullptr) {
    throw std::logic_error("GraphConv::backward: no cached forward");
  }
  const EventGraph& graph = *cached_graph_;
  const Index n = graph.node_count();
  if (grad_output.rank() != 2 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_) {
    throw std::invalid_argument("GraphConv::backward: grad shape mismatch");
  }

  nn::Tensor grad_h({n, in_});
  for (Index i = 0; i < n; ++i) {
    const auto neighbors = graph.neighbors(i);
    const float inv_deg =
        neighbors.empty() ? 0.0f : 1.0f / static_cast<float>(neighbors.size());
    const auto& pi = graph.node(i).position;

    for (Index o = 0; o < out_; ++o) {
      if (cached_pre_.at2(i, o) <= 0.0f) continue;  // ReLU gate
      const float g = grad_output.at2(i, o);
      if (g == 0.0f) continue;
      bias_.grad[o] += g;
      float* dws = w_self_.grad.data() + o * in_;
      const float* ws = w_self_.value.data() + o * in_;
      for (Index f = 0; f < in_; ++f) {
        dws[f] += g * cached_input_.at2(i, f);
        grad_h.at2(i, f) += g * ws[f];
      }
      float* dwn = w_nbr_.grad.data() + o * (in_ + 3);
      const float* wn = w_nbr_.value.data() + o * (in_ + 3);
      if (aggregation_ == Aggregation::Max) {
        const Index j = cached_argmax_[static_cast<size_t>(i * out_ + o)];
        if (j < 0) continue;
        const auto& pj = graph.node(j).position;
        for (Index f = 0; f < in_; ++f) {
          dwn[f] += g * cached_input_.at2(j, f);
          grad_h.at2(j, f) += g * wn[f];
        }
        dwn[in_ + 0] += g * (pj.x - pi.x);
        dwn[in_ + 1] += g * (pj.y - pi.y);
        dwn[in_ + 2] += g * (pj.z - pi.z);
      } else {
        const float gm = g * inv_deg;
        for (const Index j : neighbors) {
          const auto& pj = graph.node(j).position;
          for (Index f = 0; f < in_; ++f) {
            dwn[f] += gm * cached_input_.at2(j, f);
            grad_h.at2(j, f) += gm * wn[f];
          }
          dwn[in_ + 0] += gm * (pj.x - pi.x);
          dwn[in_ + 1] += gm * (pj.y - pi.y);
          dwn[in_ + 2] += gm * (pj.z - pi.z);
        }
      }
    }
  }
  return grad_h;
}

const GraphConv::TransposedWeights& GraphConv::ensure_transposed() const {
  return transposed_.ensure([this](TransposedWeights& t) {
    t.self.resize(static_cast<size_t>(in_) * static_cast<size_t>(out_));
    t.nbr.resize(static_cast<size_t>(in_ + 3) * static_cast<size_t>(out_));
    const float* ws = w_self_.value.data();
    const float* wn = w_nbr_.value.data();
    for (Index o = 0; o < out_; ++o) {
      for (Index f = 0; f < in_; ++f) {
        t.self[static_cast<size_t>(f * out_ + o)] = ws[o * in_ + f];
      }
      for (Index f = 0; f < in_ + 3; ++f) {
        t.nbr[static_cast<size_t>(f * out_ + o)] = wn[o * (in_ + 3) + f];
      }
    }
  });
}

void GraphConv::apply_node(const float* h_self,
                           std::span<const NeighborRef> neighbors,
                           float* out) const {
  // NeighborRef and simd::GnnNeighbor are layout twins so the neighbor
  // array can be handed to the dispatched kernel without repacking.
  static_assert(sizeof(simd::GnnNeighbor) == sizeof(NeighborRef));
  static_assert(offsetof(simd::GnnNeighbor, features) ==
                offsetof(NeighborRef, features));
  static_assert(offsetof(simd::GnnNeighbor, dx) == offsetof(NeighborRef, dx));
  static_assert(offsetof(simd::GnnNeighbor, dy) == offsetof(NeighborRef, dy));
  static_assert(offsetof(simd::GnnNeighbor, dz) == offsetof(NeighborRef, dz));
  const float inv_deg =
      neighbors.empty() ? 0.0f : 1.0f / static_cast<float>(neighbors.size());
  const TransposedWeights& t = ensure_transposed();
  simd::gnn_apply_node(w_self_.value.data(), t.self.data(),
                       w_nbr_.value.data(), t.nbr.data(),
                       bias_.value.data(), in_, out_, h_self,
                       reinterpret_cast<const simd::GnnNeighbor*>(
                           neighbors.data()),
                       static_cast<Index>(neighbors.size()),
                       aggregation_ == Aggregation::Max, inv_deg, out);
}

}  // namespace evd::gnn
