// 3-D k-d tree over spatiotemporal event points (paper §IV, ref [75]).
//
// Events are embedded as points (x, y, t * time_scale) so that Euclidean
// radius queries define the event-graph neighbourhood. This is the
// "tree-search" baseline for graph construction whose per-event cost the
// incremental builder (incremental.hpp) beats by orders of magnitude.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace evd::gnn {

struct Point3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;  ///< Scaled time.
};

inline float squared_distance(const Point3& a, const Point3& b) noexcept {
  const float dx = a.x - b.x;
  const float dy = a.y - b.y;
  const float dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

class KdTree {
 public:
  KdTree() = default;

  /// Build a balanced tree over the points (O(n log n)).
  explicit KdTree(std::vector<Point3> points);

  Index size() const noexcept { return static_cast<Index>(points_.size()); }
  const Point3& point(Index i) const {
    return points_[static_cast<size_t>(i)];
  }

  /// Indices (into the original point order) within `radius` of `query`,
  /// excluding exact self-matches is the caller's business. When `visited`
  /// is non-null it receives the number of tree nodes touched by this query
  /// (search-cost metric) — returned per query rather than stashed in
  /// mutable member state so concurrent queries on a shared tree are
  /// race-free.
  std::vector<Index> radius_query(const Point3& query, float radius,
                                  Index* visited = nullptr) const;

  /// The k nearest neighbours of `query` (by Euclidean distance). `visited`
  /// as for radius_query.
  std::vector<Index> knn_query(const Point3& query, Index k,
                               Index* visited = nullptr) const;

 private:
  struct Node {
    Index point = -1;    ///< Index into points_/ids_.
    Index left = -1;
    Index right = -1;
    int axis = 0;
  };

  Index build(std::span<Index> ids, int depth);
  void radius_search(Index node, const Point3& query, float r2,
                     std::vector<Index>& out, Index& visited) const;
  void knn_search(Index node, const Point3& query,
                  std::vector<std::pair<float, Index>>& heap, Index k,
                  Index& visited) const;

  std::vector<Point3> points_;   ///< Original order.
  std::vector<Node> nodes_;
  Index root_ = -1;
};

}  // namespace evd::gnn
