#include "gnn/gnn_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/softmax.hpp"
#include "obs/trace.hpp"
#include "route/route.hpp"
#include "runtime/session_base.hpp"

namespace evd::gnn {

namespace {
EventGnnConfig model_config(const GnnPipelineConfig& config) {
  EventGnnConfig model = config.model;
  model.num_classes = config.num_classes;
  model.seed = config.seed;
  return model;
}
}  // namespace

GnnPipeline::GnnPipeline(GnnPipelineConfig config)
    : config_(config), model_(model_config(config)) {}

void GnnPipeline::train(std::span<const events::LabelledSample> samples,
                        const core::TrainOptions& options) {
  std::vector<EventGraph> graphs;
  std::vector<Index> labels;
  graphs.reserve(samples.size());
  labels.reserve(samples.size());
  for (const auto& sample : samples) {
    graphs.push_back(build_graph(sample.stream, config_.graph));
    labels.push_back(sample.label);
  }
  GnnFitOptions fit;
  fit.epochs = options.epochs > 0 ? options.epochs : config_.default_epochs;
  fit.lr = options.lr > 0.0f ? options.lr : config_.default_lr;
  fit.shuffle_seed = options.shuffle_seed;
  fit.verbose = options.verbose;
  fit_gnn(model_, graphs, labels, fit);
}

int GnnPipeline::classify(const events::EventStream& stream) {
  const EventGraph graph = build_graph(stream, config_.graph);
  return static_cast<int>(model_.forward(graph, false).argmax());
}

std::vector<core::StageInfo> GnnPipeline::stream_stages() const {
  // Planning estimates for the evd::sched cost models (see core/stages.hpp).
  // Fully event-driven: every stride-surviving event pays graph insertion
  // plus a causal message-pass, so duty is 1/stream_stride for all stages.
  const double duty =
      1.0 / static_cast<double>(std::max<Index>(1, config_.stream_stride));
  const Index hidden = config_.model.hidden;
  const Index layers = config_.model.layers;
  const Index classes = config_.num_classes;
  const Index nbrs = config_.graph.max_neighbors;

  core::StageInfo build;
  build.name = "gnn.graph_update";
  build.duty = duty;
  build.per_op.comparisons = 64;  // grid-hash probes for radius neighbours
  build.per_op.adds = nbrs;       // adjacency splices
  build.per_op.state_bytes_rw = nbrs * 16;  // node + edge-list touches
  build.fusable_with_next = true;  // features can stream off the fresh edges

  core::StageInfo message;
  message.name = "gnn.message_pass";
  message.duty = duty;
  // Causal update: the inserted node and its neighbours re-aggregate at
  // every layer, then the readout head scores the pooled embedding.
  const std::int64_t macs =
      static_cast<std::int64_t>(layers) * (nbrs + 1) * hidden * hidden +
      static_cast<std::int64_t>(hidden) * classes;
  message.per_op.mults = macs;
  message.per_op.adds = macs;
  message.per_op.param_bytes_read = param_count() * 4;
  message.per_op.act_bytes_read =
      static_cast<std::int64_t>(layers) * (nbrs + 1) * hidden * 4;
  message.per_op.act_bytes_written = hidden * 4;
  message.fusable_with_next = true;

  core::StageInfo readout;
  readout.name = "gnn.readout";
  readout.duty = duty;
  readout.per_op.mults = 2 * static_cast<std::int64_t>(hidden) * classes;
  readout.per_op.comparisons = classes;  // argmax
  readout.per_op.act_bytes_read = 2 * hidden * 4;

  return {build, message, readout};
}

Index GnnPipeline::param_count() const {
  return const_cast<EventGnn&>(model_).param_count();
}

Index GnnPipeline::state_bytes() const {
  // Streaming state: grid hash cells + per-node features for each layer.
  const Index per_node_features =
      config_.model.hidden * config_.model.layers * 4;
  const Index nominal_nodes = config_.graph.max_nodes;
  const Index grid_cells =
      (config_.width / static_cast<Index>(config_.graph.radius) + 1) *
      (config_.height / static_cast<Index>(config_.graph.radius) + 1);
  return nominal_nodes * (per_node_features +
                          static_cast<Index>(sizeof(GraphNode))) +
         grid_cells * 16 * static_cast<Index>(sizeof(Index));
}

Index GnnPipeline::input_preparation_bytes() const {
  // Graph structure: nodes + capped adjacency.
  return config_.graph.max_nodes *
         (static_cast<Index>(sizeof(GraphNode)) +
          config_.graph.max_neighbors * static_cast<Index>(sizeof(Index)));
}

double GnnPipeline::input_sparsity(const events::EventStream& probe) {
  // Graph nodes touched vs. the dense pixel grid the CNN would read.
  const EventGraph graph = build_graph(probe, config_.graph);
  const double dense =
      static_cast<double>(probe.width) * static_cast<double>(probe.height);
  return dense > 0.0
             ? 1.0 - std::min(1.0, static_cast<double>(graph.node_count()) /
                                       dense)
             : 0.0;
}

double GnnPipeline::computation_sparsity(const events::EventStream& probe) {
  // Asynchronous per-event updates vs. recomputing the full graph per event
  // (the AEGNN comparison [70]): fraction of full-recompute work avoided.
  const EventGraph graph = build_graph(probe, config_.graph);
  AsyncEventGnn async(model_, /*bidirectional=*/false);
  std::int64_t async_macs = 0;
  std::int64_t full_macs = 0;
  for (Index i = 0; i < graph.node_count(); ++i) {
    std::vector<Index> neighbors(graph.neighbors(i).begin(),
                                 graph.neighbors(i).end());
    const auto stats = async.insert(graph.node(i), neighbors);
    async_macs += stats.macs;
    full_macs += async.full_recompute_macs();
  }
  return full_macs > 0 ? 1.0 - static_cast<double>(async_macs) /
                                   static_cast<double>(full_macs)
                       : 0.0;
}

namespace {

runtime::SessionBaseConfig gnn_session_config(const GnnPipelineConfig& c) {
  runtime::SessionBaseConfig sc;
  // The graph stores live in the builder/async engine (pre-reserved below);
  // the arena only backs the bounded decision machinery, so a token size.
  sc.arena_bytes = 256;
  sc.decision_retain = c.decision_retain;
  sc.paradigm = "gnn";
  // Windowed activity estimator over the configured sensor plane (feeds the
  // re-plan hook's per-session activity; observational only).
  sc.width = c.width;
  sc.height = c.height;
  return sc;
}

class GnnStreamSession : public runtime::SessionBase {
 public:
  GnnStreamSession(GnnPipeline& pipeline, Index width, Index height)
      : runtime::SessionBase(gnn_session_config(pipeline.config())),
        pipeline_(pipeline),
        builder_(width, height,
                 IncrementalConfig{pipeline.config().graph.time_scale,
                                   pipeline.config().graph.radius,
                                   pipeline.config().graph.max_neighbors, 16}),
        async_(pipeline.model(), /*bidirectional=*/false),
        logits_({pipeline.config().num_classes}),
        probs_({pipeline.config().num_classes}) {
    const Index cap = pipeline.config().stream_max_nodes;
    const Index deg = pipeline.config().graph.max_neighbors;
    builder_.reserve_nodes(cap);
    async_.reserve(cap, deg);
    neighbors_.reserve(static_cast<size_t>(deg));
  }

 private:
  void on_event(const events::Event& event) override {
    // Insert every stride-th event (uniform thinning, same policy the batch
    // path uses to cap graph size).
    if (stride_counter_++ % pipeline_.config().stream_stride != 0) return;
    // Recycle the graph in place when it reaches the cap: builder and async
    // engine keep their storage, so even the restart allocates nothing.
    if (builder_.node_count() >= pipeline_.config().stream_max_nodes) {
      builder_.clear();
      async_.reset();
    }
    GraphNode node;
    {
      obs::Span span("gnn.graph_update");
      builder_.insert_into(event, neighbors_);
      node.position = embed(event, pipeline_.config().graph.time_scale);
      node.polarity_sign =
          static_cast<std::int8_t>(polarity_sign(event.polarity));
      node.t = event.t;
    }
    obs::Span span("gnn.message_pass");
    // Routed message-pass discipline: the batch path sweeps the whole graph
    // per event instead of the incremental frontier — bitwise-identical
    // decisions (route.gnn_batch_vs_incremental), O(N) modeled cost.
    // GnnIncremental and Default both name the built-in frontier path.
    if (route::enabled() &&
        execution_path() == route::PathId::GnnBatch) {
      async_.insert_batch(node, neighbors_);
    } else {
      async_.insert(node, neighbors_);
    }

    async_.logits_into(logits_);
    nn::softmax_into(logits_, probs_);
    core::Decision decision;
    decision.t = event.t;  // decision available upon the event itself
    decision.label = static_cast<int>(probs_.argmax());
    decision.confidence = probs_[probs_.argmax()];
    emit(decision);
  }

  void on_advance(TimeUs) override {}  // fully event-driven: nothing to tick

  // Checkpoint payload: the stride phase plus the full builder and async
  // engine state (the session runs causal mode, which AsyncEventGnn can
  // serialize exactly — see async_update.hpp). The inference tensors are
  // per-event scratch.
  bool checkpoint_supported() const override { return true; }

  void on_save(fault::CheckpointWriter& w) const override {
    w.i64(stride_counter_);
    builder_.save(w);
    async_.save(w);
  }

  void on_load(fault::CheckpointReader& r) override {
    stride_counter_ = r.i64();
    builder_.load(r);
    async_.load(r);
  }

  GnnPipeline& pipeline_;
  IncrementalGraphBuilder builder_;
  AsyncEventGnn async_;
  Index stride_counter_ = 0;
  std::vector<Index> neighbors_;  ///< Reused per-insert neighbour buffer.
  nn::Tensor logits_, probs_;     ///< Reused per-event inference scratch.
};

}  // namespace

std::unique_ptr<core::StreamSession> GnnPipeline::open_session(Index width,
                                                               Index height) {
  runtime::SessionBase::check_geometry("GnnPipeline", width, height,
                                       config_.width, config_.height);
  return std::make_unique<GnnStreamSession>(*this, width, height);
}

}  // namespace evd::gnn
