#include "gnn/graph_pool.hpp"

#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace evd::gnn {

EventGraph voxel_coarsen(const EventGraph& graph,
                         const VoxelPoolConfig& config) {
  if (config.cell_xy <= 0.0f || config.cell_z <= 0.0f) {
    throw std::invalid_argument("voxel_coarsen: cell sizes must be positive");
  }
  using Key = std::tuple<Index, Index, Index>;
  std::map<Key, Index> voxel_of;           // voxel -> coarse node id
  std::vector<Index> coarse_id(static_cast<size_t>(graph.node_count()));
  struct Accum {
    double x = 0, y = 0, z = 0;
    Index count = 0;
    Index polarity_sum = 0;
    TimeUs t_min = 0;
  };
  std::vector<Accum> accums;

  for (Index i = 0; i < graph.node_count(); ++i) {
    const auto& n = graph.node(i);
    const Key key{static_cast<Index>(std::floor(n.position.x / config.cell_xy)),
                  static_cast<Index>(std::floor(n.position.y / config.cell_xy)),
                  static_cast<Index>(std::floor(n.position.z / config.cell_z))};
    auto [it, inserted] =
        voxel_of.try_emplace(key, static_cast<Index>(accums.size()));
    if (inserted) accums.emplace_back();
    coarse_id[static_cast<size_t>(i)] = it->second;
    auto& acc = accums[static_cast<size_t>(it->second)];
    acc.x += n.position.x;
    acc.y += n.position.y;
    acc.z += n.position.z;
    acc.polarity_sum += n.polarity_sign;
    if (acc.count == 0 || n.t < acc.t_min) acc.t_min = n.t;
    ++acc.count;
  }

  // Coarse adjacency from original edges.
  std::vector<std::set<Index>> coarse_adj(accums.size());
  for (Index i = 0; i < graph.node_count(); ++i) {
    const Index ci = coarse_id[static_cast<size_t>(i)];
    for (const Index j : graph.neighbors(i)) {
      const Index cj = coarse_id[static_cast<size_t>(j)];
      if (ci != cj) coarse_adj[static_cast<size_t>(ci)].insert(cj);
    }
  }

  EventGraph coarse;
  for (size_t v = 0; v < accums.size(); ++v) {
    const auto& acc = accums[v];
    GraphNode node;
    node.position = {static_cast<float>(acc.x / static_cast<double>(acc.count)),
                     static_cast<float>(acc.y / static_cast<double>(acc.count)),
                     static_cast<float>(acc.z / static_cast<double>(acc.count))};
    node.polarity_sign = acc.polarity_sum >= 0 ? 1 : -1;
    node.t = acc.t_min;
    coarse.add_node(node, {coarse_adj[v].begin(), coarse_adj[v].end()});
  }
  return coarse;
}

}  // namespace evd::gnn
