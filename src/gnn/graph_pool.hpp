// Graph coarsening utilities.
//
// Voxel-grid pooling merges all events falling in the same (x, y, z) voxel
// into one super-node (position = centroid, polarity = majority), re-deriving
// edges from the originals. Used to study how aggressively an event-graph
// can be compacted before classification accuracy degrades.
#pragma once

#include "gnn/graph.hpp"

namespace evd::gnn {

struct VoxelPoolConfig {
  float cell_xy = 2.0f;  ///< Voxel size in pixels.
  float cell_z = 2.0f;   ///< Voxel size in scaled time.
};

/// Coarsen a graph by voxel pooling. Edge (a, b) exists in the coarse graph
/// iff some original edge connected the two voxels (self-loops dropped,
/// duplicates merged). Node order follows first appearance.
EventGraph voxel_coarsen(const EventGraph& graph, const VoxelPoolConfig& config);

}  // namespace evd::gnn
