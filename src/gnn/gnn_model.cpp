#include "gnn/gnn_model.hpp"

#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"

namespace evd::gnn {

EventGnn::EventGnn(EventGnnConfig config)
    : config_(config),
      rng_(config.seed),
      head_(2 * (config.layers > 0 ? config.hidden
                                   : EventGraph::kInputFeatures),
            config.num_classes, rng_) {
  Index in = EventGraph::kInputFeatures;
  for (Index l = 0; l < config_.layers; ++l) {
    convs_.emplace_back(in, config_.hidden, rng_);
    in = config_.hidden;
  }
}

nn::Tensor EventGnn::forward(const EventGraph& graph, bool train) {
  const Index n = graph.node_count();
  if (n == 0) {
    // Empty graph: classify from the bias alone.
    nn::Tensor zero({head_.in_features()});
    return head_.forward(zero, train);
  }
  cached_nodes_ = n;

  const std::vector<float> raw = graph.input_features();
  nn::Tensor h({n, EventGraph::kInputFeatures});
  std::copy(raw.begin(), raw.end(), h.data());

  for (auto& conv : convs_) h = conv.forward(graph, h, train);

  // Global mean + max pool, concatenated.
  const Index f = h.dim(1);
  nn::Tensor pooled({2 * f});
  if (train) cached_max_owner_.assign(static_cast<size_t>(f), 0);
  for (Index c = 0; c < f; ++c) {
    double sum = 0.0;
    float best = h.at2(0, c);
    Index owner = 0;
    for (Index i = 0; i < n; ++i) {
      const float v = h.at2(i, c);
      sum += v;
      if (v > best) {
        best = v;
        owner = i;
      }
    }
    pooled[c] = static_cast<float>(sum / static_cast<double>(n));
    pooled[f + c] = best;
    if (train) cached_max_owner_[static_cast<size_t>(c)] = owner;
  }

  return head_.forward(pooled, train);
}

void EventGnn::backward(const nn::Tensor& grad_logits) {
  if (cached_nodes_ == 0) {
    throw std::logic_error("EventGnn::backward: no cached forward");
  }
  nn::Tensor grad_pooled = head_.backward(grad_logits);
  const Index n = cached_nodes_;
  const Index f = grad_pooled.numel() / 2;
  nn::Tensor grad_h({n, f});
  const float inv = 1.0f / static_cast<float>(n);
  for (Index c = 0; c < f; ++c) {
    // Mean slot spreads evenly; max slot routes to the winning node.
    for (Index i = 0; i < n; ++i) grad_h.at2(i, c) = grad_pooled[c] * inv;
    grad_h.at2(cached_max_owner_[static_cast<size_t>(c)], c) +=
        grad_pooled[f + c];
  }
  for (auto it = convs_.rbegin(); it != convs_.rend(); ++it) {
    grad_h = it->backward(grad_h);
  }
}

std::vector<nn::Param*> EventGnn::params() {
  std::vector<nn::Param*> all;
  for (auto& conv : convs_) {
    for (auto* p : conv.params()) all.push_back(p);
  }
  for (auto* p : head_.params()) all.push_back(p);
  return all;
}

Index EventGnn::param_count() {
  Index n = 0;
  for (auto* p : params()) n += p->value.numel();
  return n;
}

GnnFitReport fit_gnn(EventGnn& model, std::span<const EventGraph> graphs,
                     std::span<const Index> labels,
                     const GnnFitOptions& options) {
  if (graphs.size() != labels.size()) {
    throw std::invalid_argument("fit_gnn: graphs/labels mismatch");
  }
  nn::Adam optimizer(model.params(), options.lr);
  Rng rng(options.shuffle_seed);
  std::vector<size_t> order(graphs.size());
  std::iota(order.begin(), order.end(), 0);

  GnnFitReport report;
  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    double loss_sum = 0.0;
    Index correct = 0;
    for (const size_t idx : order) {
      const nn::Tensor logits = model.forward(graphs[idx], /*train=*/true);
      const auto ce = nn::softmax_cross_entropy(logits, labels[idx]);
      model.backward(ce.grad);
      optimizer.step();
      loss_sum += ce.loss;
      correct += (logits.argmax() == labels[idx]) ? 1 : 0;
    }
    report.epoch_loss.push_back(loss_sum /
                                static_cast<double>(graphs.size()));
    report.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(graphs.size()));
    if (options.verbose) {
      std::printf("  [gnn] epoch %lld loss %.4f acc %.3f\n",
                  static_cast<long long>(epoch), report.epoch_loss.back(),
                  report.epoch_accuracy.back());
    }
  }
  return report;
}

double evaluate_gnn(EventGnn& model, std::span<const EventGraph> graphs,
                    std::span<const Index> labels) {
  if (graphs.empty()) return 0.0;
  Index correct = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    correct += (model.forward(graphs[i], false).argmax() == labels[i]) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(graphs.size());
}

}  // namespace evd::gnn
