#include "gnn/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace evd::gnn {

KdTree::KdTree(std::vector<Point3> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  std::vector<Index> ids(points_.size());
  std::iota(ids.begin(), ids.end(), 0);
  nodes_.reserve(points_.size());
  root_ = build(ids, 0);
}

Index KdTree::build(std::span<Index> ids, int depth) {
  if (ids.empty()) return -1;
  const int axis = depth % 3;
  const size_t mid = ids.size() / 2;
  std::nth_element(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(mid),
                   ids.end(), [&](Index a, Index b) {
                     const auto& pa = points_[static_cast<size_t>(a)];
                     const auto& pb = points_[static_cast<size_t>(b)];
                     switch (axis) {
                       case 0: return pa.x < pb.x;
                       case 1: return pa.y < pb.y;
                       default: return pa.z < pb.z;
                     }
                   });
  const Index node_id = static_cast<Index>(nodes_.size());
  nodes_.push_back(Node{ids[mid], -1, -1, axis});
  const Index left = build(ids.subspan(0, mid), depth + 1);
  const Index right = build(ids.subspan(mid + 1), depth + 1);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

namespace {
float axis_value(const Point3& p, int axis) {
  switch (axis) {
    case 0: return p.x;
    case 1: return p.y;
    default: return p.z;
  }
}
}  // namespace

void KdTree::radius_search(Index node, const Point3& query, float r2,
                           std::vector<Index>& out, Index& visited) const {
  if (node < 0) return;
  ++visited;
  const auto& n = nodes_[static_cast<size_t>(node)];
  const auto& p = points_[static_cast<size_t>(n.point)];
  if (squared_distance(p, query) <= r2) out.push_back(n.point);
  const float diff = axis_value(query, n.axis) - axis_value(p, n.axis);
  const Index near = diff <= 0.0f ? n.left : n.right;
  const Index far = diff <= 0.0f ? n.right : n.left;
  radius_search(near, query, r2, out, visited);
  if (diff * diff <= r2) radius_search(far, query, r2, out, visited);
}

std::vector<Index> KdTree::radius_query(const Point3& query, float radius,
                                        Index* visited) const {
  Index count = 0;
  std::vector<Index> out;
  radius_search(root_, query, radius * radius, out, count);
  if (visited != nullptr) *visited = count;
  return out;
}

void KdTree::knn_search(Index node, const Point3& query,
                        std::vector<std::pair<float, Index>>& heap, Index k,
                        Index& visited) const {
  if (node < 0) return;
  ++visited;
  const auto& n = nodes_[static_cast<size_t>(node)];
  const auto& p = points_[static_cast<size_t>(n.point)];
  const float d2 = squared_distance(p, query);
  if (static_cast<Index>(heap.size()) < k) {
    heap.emplace_back(d2, n.point);
    std::push_heap(heap.begin(), heap.end());
  } else if (d2 < heap.front().first) {
    std::pop_heap(heap.begin(), heap.end());
    heap.back() = {d2, n.point};
    std::push_heap(heap.begin(), heap.end());
  }
  const float diff = axis_value(query, n.axis) - axis_value(p, n.axis);
  const Index near = diff <= 0.0f ? n.left : n.right;
  const Index far = diff <= 0.0f ? n.right : n.left;
  knn_search(near, query, heap, k, visited);
  if (static_cast<Index>(heap.size()) < k || diff * diff < heap.front().first) {
    knn_search(far, query, heap, k, visited);
  }
}

std::vector<Index> KdTree::knn_query(const Point3& query, Index k,
                                     Index* visited) const {
  Index count = 0;
  std::vector<std::pair<float, Index>> heap;
  heap.reserve(static_cast<size_t>(k));
  knn_search(root_, query, heap, k, count);
  if (visited != nullptr) *visited = count;
  std::sort_heap(heap.begin(), heap.end());
  std::vector<Index> out;
  out.reserve(heap.size());
  for (const auto& [d2, id] : heap) out.push_back(id);
  return out;
}

}  // namespace evd::gnn
