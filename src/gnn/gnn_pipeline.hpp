// EventPipeline adapter for the event-graph GNN paradigm.
//
// Classification: events are (sub-sampled and) assembled into a
// spatiotemporal radius graph, classified by the EventGnn.
// Streaming: fully event-driven — each incoming event is inserted into the
// evolving graph by the O(1) incremental builder, its features are computed
// asynchronously (causal updates), and a fresh decision is available
// immediately after the event. No frame period, no timestep.
#pragma once

#include <memory>

#include "core/pipeline.hpp"
#include "gnn/async_update.hpp"
#include "gnn/gnn_model.hpp"
#include "gnn/graph_builder.hpp"
#include "gnn/incremental.hpp"

namespace evd::gnn {

struct GnnPipelineConfig {
  Index width = 32;
  Index height = 32;
  Index num_classes = 4;
  EventGnnConfig model;          ///< hidden=16, layers=2 default.
  GraphBuildConfig graph;        ///< Batch construction parameters.
  Index stream_stride = 4;       ///< Streaming: insert every k-th event.
  /// Streaming graph cap: when the incremental graph reaches this many
  /// nodes the session recycles it in place (allocation-free restart).
  /// Deliberately much larger than graph.max_nodes so bounded-length bench
  /// and test streams never hit it and their decision streams are
  /// unchanged; a serving deployment tunes it to its memory budget.
  Index stream_max_nodes = 8192;
  Index decision_retain = 8192;  ///< Bounded decision tail for streaming.
  std::uint64_t seed = 13;
  float default_lr = 2e-3f;   ///< Used when TrainOptions.lr <= 0.
  Index default_epochs = 30;  ///< Used when TrainOptions.epochs <= 0.
};

class GnnPipeline : public core::EventPipeline {
 public:
  explicit GnnPipeline(GnnPipelineConfig config);

  std::string name() const override { return "GNN"; }
  void train(std::span<const events::LabelledSample> samples,
             const core::TrainOptions& options) override;
  int classify(const events::EventStream& stream) override;
  std::unique_ptr<core::StreamSession> open_session(Index width,
                                                    Index height) override;
  std::vector<core::StageInfo> stream_stages() const override;
  Index param_count() const override;
  Index state_bytes() const override;
  Index input_preparation_bytes() const override;
  double input_sparsity(const events::EventStream& probe) override;
  double computation_sparsity(const events::EventStream& probe) override;

  EventGnn& model() noexcept { return model_; }
  const GnnPipelineConfig& config() const noexcept { return config_; }

 private:
  GnnPipelineConfig config_;
  EventGnn model_;
};

}  // namespace evd::gnn
