// Spatiotemporal graph convolution with manual backprop (paper §IV).
//
// A continuous-kernel convolution in the spirit of SplineCNN/EdgeConv
// ([68],[69]), simplified to a linear kernel on the concatenation of the
// neighbour feature and the spatiotemporal offset:
//
//   h'_i = ReLU( W_s h_i + (1/|N(i)|) sum_{j in N(i)} W_n [h_j ; p_j - p_i]
//                + b )
//
// Because the offset (dx, dy, dt) enters the kernel, relative event timing
// is available to every layer — the property the paper credits for
// event-graphs exploiting "precise timing information deep into the
// network".
#pragma once

#include <span>
#include <vector>

#include "common/derived_cache.hpp"
#include "common/rng.hpp"
#include "gnn/graph.hpp"
#include "nn/layer.hpp"

namespace evd::gnn {

enum class Aggregation { Mean, Max };

class GraphConv {
 public:
  GraphConv(Index in_features, Index out_features, Rng& rng,
            Aggregation aggregation = Aggregation::Max);

  /// Batch forward over all nodes. `h` is [N, in_features]; returns
  /// [N, out_features]. Caches for backward when train=true. The graph must
  /// outlive the backward call.
  nn::Tensor forward(const EventGraph& graph, const nn::Tensor& h, bool train);

  /// Returns dL/dh given dL/dh'. Accumulates parameter gradients.
  nn::Tensor backward(const nn::Tensor& grad_output);

  /// Single-node evaluation for asynchronous (per-event) inference: the
  /// neighbour list carries pointers into layer-(l-1) feature storage plus
  /// the offset to the centre node.
  struct NeighborRef {
    const float* features = nullptr;
    float dx = 0.0f, dy = 0.0f, dz = 0.0f;
  };
  void apply_node(const float* h_self, std::span<const NeighborRef> neighbors,
                  float* out) const;

  std::vector<nn::Param*> params() {
    transposed_.mark_escaped();
    return {&w_self_, &w_nbr_, &bias_};
  }
  Index in_features() const noexcept { return in_; }
  Index out_features() const noexcept { return out_; }

  /// MACs for evaluating one node with `degree` in-neighbours.
  std::int64_t node_macs(Index degree) const noexcept {
    return out_ * (in_ + degree * (in_ + 3));
  }

  Aggregation aggregation() const noexcept { return aggregation_; }

 private:
  Index in_, out_;
  Aggregation aggregation_;
  nn::Param w_self_;  ///< [out, in]
  nn::Param w_nbr_;   ///< [out, in + 3]
  nn::Param bias_;    ///< [out]

  struct TransposedWeights {
    std::vector<float> self;  ///< [in][out]
    std::vector<float> nbr;   ///< [in+3][out]
  };

  /// Build/refresh and return the transposed weight copies.
  const TransposedWeights& ensure_transposed() const;

  // Transposed weight copies feeding the per-event kernel's contiguous path
  // (simd::gnn_apply_node's w_*_t): per-feature weight columns become
  // sequential row reads instead of strided gathers. mutable because
  // apply_node() is const and may run from concurrent sessions; see
  // DerivedCache for the build-once / escaped-handle rebuild protocol.
  mutable DerivedCache<TransposedWeights> transposed_;

  const EventGraph* cached_graph_ = nullptr;
  nn::Tensor cached_input_;
  nn::Tensor cached_pre_;  ///< Pre-ReLU activations [N, out].
  std::vector<Index> cached_argmax_;  ///< Winning neighbour per (i, o) (Max).
};

}  // namespace evd::gnn
