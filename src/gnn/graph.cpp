#include "gnn/graph.hpp"

namespace evd::gnn {

void EventGraph::add_node(GraphNode node, std::vector<Index> neighbor_ids) {
  nodes_.push_back(node);
  for (const Index id : neighbor_ids) targets_.push_back(id);
  offsets_.push_back(static_cast<Index>(targets_.size()));
}

std::vector<float> EventGraph::input_features() const {
  std::vector<float> features(static_cast<size_t>(node_count()) * 2, 0.0f);
  for (Index i = 0; i < node_count(); ++i) {
    const auto& n = nodes_[static_cast<size_t>(i)];
    features[static_cast<size_t>(i * 2 + (n.polarity_sign > 0 ? 0 : 1))] =
        1.0f;
  }
  return features;
}

}  // namespace evd::gnn
