#include "gnn/async_update.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace evd::gnn {

AsyncEventGnn::AsyncEventGnn(EventGnn& model, bool bidirectional)
    : model_(model), bidirectional_(bidirectional) {
  features_.resize(static_cast<size_t>(model_.conv_count()));
  pooled_sum_.assign(static_cast<size_t>(model_.config().hidden), 0.0);
  pooled_max_.assign(static_cast<size_t>(model_.config().hidden), 0.0f);
}

void AsyncEventGnn::clear() {
  nodes_.clear();
  adj_.clear();
  out_adj_.clear();
  input_.clear();
  for (auto& layer : features_) layer.clear();
  std::fill(pooled_sum_.begin(), pooled_sum_.end(), 0.0);
  std::fill(pooled_max_.begin(), pooled_max_.end(), 0.0f);
}

bool AsyncEventGnn::recompute(Index layer, Index v, AsyncGnnStats& stats) {
  GraphConv& conv = model_.conv(layer);
  const auto& neighbors = adj_[static_cast<size_t>(v)];
  const auto& pv = nodes_[static_cast<size_t>(v)].position;

  // Gather neighbour references from the previous layer's storage.
  std::vector<GraphConv::NeighborRef> refs;
  refs.reserve(neighbors.size());
  for (const Index j : neighbors) {
    const auto& pj = nodes_[static_cast<size_t>(j)].position;
    const float* feat =
        layer == 0 ? input_[static_cast<size_t>(j)].data()
                   : features_[static_cast<size_t>(layer - 1)]
                             [static_cast<size_t>(j)].data();
    refs.push_back({feat, pj.x - pv.x, pj.y - pv.y, pj.z - pv.z});
  }
  const float* self =
      layer == 0 ? input_[static_cast<size_t>(v)].data()
                 : features_[static_cast<size_t>(layer - 1)]
                           [static_cast<size_t>(v)].data();

  std::vector<float> fresh(static_cast<size_t>(conv.out_features()));
  conv.apply_node(self, refs, fresh.data());
  stats.macs += conv.node_macs(static_cast<Index>(neighbors.size()));
  ++stats.node_layer_recomputes;

  auto& stored = features_[static_cast<size_t>(layer)][static_cast<size_t>(v)];
  bool changed = false;
  const bool last_layer = (layer + 1 == model_.conv_count());
  for (size_t f = 0; f < fresh.size(); ++f) {
    if (std::fabs(fresh[f] - stored[f]) > kEps) changed = true;
  }
  if (changed && last_layer) {
    for (size_t f = 0; f < fresh.size(); ++f) {
      pooled_sum_[f] += static_cast<double>(fresh[f]) - stored[f];
      pooled_max_[f] = std::max(pooled_max_[f], fresh[f]);
    }
  }
  if (changed) stored = fresh;
  return changed;
}

AsyncGnnStats AsyncEventGnn::insert(const GraphNode& node,
                                    std::span<const Index> neighbors) {
  AsyncGnnStats stats;
  const Index id = static_cast<Index>(nodes_.size());
  nodes_.push_back(node);
  adj_.emplace_back(neighbors.begin(), neighbors.end());
  out_adj_.emplace_back();
  input_.push_back(
      {node.polarity_sign > 0 ? 1.0f : 0.0f,
       node.polarity_sign > 0 ? 0.0f : 1.0f});
  for (Index l = 0; l < model_.conv_count(); ++l) {
    features_[static_cast<size_t>(l)].emplace_back(
        static_cast<size_t>(model_.conv(l).out_features()), 0.0f);
  }
  for (const Index j : neighbors) {
    if (j < 0 || j >= id) {
      throw std::invalid_argument("AsyncEventGnn::insert: bad neighbour id");
    }
    out_adj_[static_cast<size_t>(j)].push_back(id);
    if (bidirectional_) {
      adj_[static_cast<size_t>(j)].push_back(id);
      out_adj_[static_cast<size_t>(id)].push_back(j);
    }
  }

  // Seed of changed nodes per layer: the new node always needs computing;
  // in bidirectional mode its neighbours' in-sets changed too.
  std::unordered_set<Index> dirty;
  dirty.insert(id);
  if (bidirectional_) {
    for (const Index j : neighbors) dirty.insert(j);
  }

  for (Index l = 0; l < model_.conv_count(); ++l) {
    std::unordered_set<Index> changed;
    for (const Index v : dirty) {
      if (recompute(l, v, stats)) changed.insert(v);
    }
    if (l + 1 == model_.conv_count()) break;
    // A change at node v at layer l affects, at layer l+1, v itself and
    // every node whose in-neighbourhood contains v.
    std::unordered_set<Index> next;
    for (const Index v : changed) {
      next.insert(v);
      for (const Index w : out_adj_[static_cast<size_t>(v)]) next.insert(w);
    }
    if (next.empty()) break;
    dirty = std::move(next);
  }
  return stats;
}

nn::Tensor AsyncEventGnn::logits() {
  const Index f = static_cast<Index>(pooled_sum_.size());
  nn::Tensor pooled({2 * f});
  const Index n = node_count();
  if (n > 0) {
    for (Index c = 0; c < f; ++c) {
      pooled[c] = static_cast<float>(pooled_sum_[static_cast<size_t>(c)] /
                                     static_cast<double>(n));
      pooled[f + c] = pooled_max_[static_cast<size_t>(c)];
    }
  }
  return model_.head().forward(pooled, false);
}

std::int64_t AsyncEventGnn::full_recompute_macs() const {
  std::int64_t macs = 0;
  for (Index l = 0; l < model_.conv_count(); ++l) {
    const auto& conv = const_cast<EventGnn&>(model_).conv(l);
    for (const auto& neighbors : adj_) {
      macs += conv.node_macs(static_cast<Index>(neighbors.size()));
    }
  }
  return macs;
}

}  // namespace evd::gnn
