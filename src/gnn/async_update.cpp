#include "gnn/async_update.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace evd::gnn {

AsyncEventGnn::AsyncEventGnn(EventGnn& model, bool bidirectional)
    : model_(model), bidirectional_(bidirectional) {
  features_.resize(static_cast<size_t>(model_.conv_count()));
  pooled_sum_.assign(static_cast<size_t>(model_.config().hidden), 0.0);
  pooled_max_.assign(static_cast<size_t>(model_.config().hidden), 0.0f);
  pooled_scratch_ = nn::Tensor({2 * model_.config().hidden});
}

void AsyncEventGnn::clear() {
  count_ = 0;
  nodes_.clear();
  adj_.clear();
  out_adj_.clear();
  input_.clear();
  for (auto& layer : features_) layer.clear();
  std::fill(pooled_sum_.begin(), pooled_sum_.end(), 0.0);
  std::fill(pooled_max_.begin(), pooled_max_.end(), 0.0f);
}

void AsyncEventGnn::reset() {
  // Slots keep their storage; stale feature values are zeroed lazily as
  // slots are reused by insert().
  count_ = 0;
  std::fill(pooled_sum_.begin(), pooled_sum_.end(), 0.0);
  std::fill(pooled_max_.begin(), pooled_max_.end(), 0.0f);
}

void AsyncEventGnn::reserve(Index max_nodes, Index max_degree) {
  const auto n = static_cast<size_t>(max_nodes < 0 ? 0 : max_nodes);
  if (nodes_.size() < n) nodes_.resize(n);
  if (adj_.size() < n) adj_.resize(n);
  if (out_adj_.size() < n) out_adj_.resize(n);
  if (input_.size() < n) input_.resize(n);
  for (auto& a : adj_) a.reserve(static_cast<size_t>(max_degree));
  for (auto& in : input_) in.resize(2);
  for (Index l = 0; l < model_.conv_count(); ++l) {
    auto& layer = features_[static_cast<size_t>(l)];
    const auto out = static_cast<size_t>(model_.conv(l).out_features());
    if (layer.size() < n) layer.resize(n);
    for (auto& slot : layer) slot.resize(out);
  }
  refs_.reserve(static_cast<size_t>(max_degree));
}

void AsyncEventGnn::save(fault::CheckpointWriter& w) const {
  if (bidirectional_) {
    throw Error(ErrorCode::CheckpointUnsupported,
                "AsyncEventGnn: bidirectional graphs cannot checkpoint "
                "(stale pooled-max envelope would diverge on restore)");
  }
  w.i64(count_);
  w.i64(model_.conv_count());
  // Live prefixes only: slots beyond count_ are reserve()/reset() residue
  // that insert() re-zeroes before use.
  const auto n = static_cast<size_t>(count_);
  w.pod_span(std::span<const GraphNode>(nodes_.data(), n));
  for (size_t v = 0; v < n; ++v) w.pod_vector(adj_[v]);
  for (size_t v = 0; v < n; ++v) w.pod_vector(input_[v]);
  for (const auto& layer : features_) {
    for (size_t v = 0; v < n; ++v) w.pod_vector(layer[v]);
  }
  w.pod_vector(pooled_sum_);
  w.pod_vector(pooled_max_);
}

void AsyncEventGnn::load(fault::CheckpointReader& r) {
  if (bidirectional_) {
    throw Error(ErrorCode::CheckpointUnsupported,
                "AsyncEventGnn: bidirectional graphs cannot checkpoint");
  }
  const Index count = r.i64();
  if (const Index convs = r.i64(); convs != model_.conv_count()) {
    throw Error(ErrorCode::CheckpointMismatch,
                "AsyncEventGnn: checkpointed " + std::to_string(convs) +
                    " conv layers, model has " +
                    std::to_string(model_.conv_count()));
  }
  if (count < 0) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "AsyncEventGnn: negative node count");
  }
  const auto n = static_cast<size_t>(count);
  if (nodes_.size() < n) nodes_.resize(n);
  if (adj_.size() < n) adj_.resize(n);
  if (out_adj_.size() < n) out_adj_.resize(n);
  if (input_.size() < n) input_.resize(n);
  for (auto& layer : features_) {
    if (layer.size() < n) layer.resize(n);
  }
  if (r.pod_span_into(std::span<GraphNode>(nodes_.data(), n)) !=
      static_cast<Index>(n)) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "AsyncEventGnn: node store truncated");
  }
  for (size_t v = 0; v < n; ++v) r.pod_vector(adj_[v]);
  for (size_t v = 0; v < n; ++v) r.pod_vector(input_[v]);
  for (auto& layer : features_) {
    for (size_t v = 0; v < n; ++v) r.pod_vector(layer[v]);
  }
  r.pod_vector(pooled_sum_);
  r.pod_vector(pooled_max_);
  if (static_cast<Index>(pooled_sum_.size()) != model_.config().hidden ||
      pooled_max_.size() != pooled_sum_.size()) {
    throw Error(ErrorCode::CheckpointMismatch,
                "AsyncEventGnn: pooled width " +
                    std::to_string(pooled_sum_.size()) + " vs model hidden " +
                    std::to_string(model_.config().hidden));
  }
  count_ = count;
}

bool AsyncEventGnn::recompute(Index layer, Index v, AsyncGnnStats& stats) {
  GraphConv& conv = model_.conv(layer);
  const auto& neighbors = adj_[static_cast<size_t>(v)];
  const auto& pv = nodes_[static_cast<size_t>(v)].position;

  // Gather neighbour references from the previous layer's storage (member
  // scratch: no allocation once capacity has warmed up).
  refs_.clear();
  for (const Index j : neighbors) {
    const auto& pj = nodes_[static_cast<size_t>(j)].position;
    const float* feat =
        layer == 0 ? input_[static_cast<size_t>(j)].data()
                   : features_[static_cast<size_t>(layer - 1)]
                             [static_cast<size_t>(j)].data();
    refs_.push_back({feat, pj.x - pv.x, pj.y - pv.y, pj.z - pv.z});
  }
  const float* self =
      layer == 0 ? input_[static_cast<size_t>(v)].data()
                 : features_[static_cast<size_t>(layer - 1)]
                           [static_cast<size_t>(v)].data();

  fresh_.resize(static_cast<size_t>(conv.out_features()));
  conv.apply_node(self, refs_, fresh_.data());
  stats.macs += conv.node_macs(static_cast<Index>(neighbors.size()));
  ++stats.node_layer_recomputes;

  auto& stored = features_[static_cast<size_t>(layer)][static_cast<size_t>(v)];
  bool changed = false;
  const bool last_layer = (layer + 1 == model_.conv_count());
  for (size_t f = 0; f < fresh_.size(); ++f) {
    if (std::fabs(fresh_[f] - stored[f]) > kEps) changed = true;
  }
  if (changed && last_layer) {
    for (size_t f = 0; f < fresh_.size(); ++f) {
      pooled_sum_[f] += static_cast<double>(fresh_[f]) - stored[f];
      pooled_max_[f] = std::max(pooled_max_[f], fresh_[f]);
    }
  }
  if (changed) std::copy(fresh_.begin(), fresh_.end(), stored.begin());
  return changed;
}

Index AsyncEventGnn::insert_structural(const GraphNode& node,
                                       std::span<const Index> neighbors) {
  const Index id = count_;
  const auto sid = static_cast<size_t>(id);
  if (sid < nodes_.size()) {
    // Reuse a slot prepared by reserve() (or left behind by reset()):
    // assignment into retained storage, no allocation while the neighbour
    // list fits the slot's warmed-up capacity.
    nodes_[sid] = node;
    adj_[sid].assign(neighbors.begin(), neighbors.end());
    out_adj_[sid].clear();
    if (input_[sid].size() != 2) input_[sid].resize(2);
    for (Index l = 0; l < model_.conv_count(); ++l) {
      auto& slot = features_[static_cast<size_t>(l)][sid];
      const auto out = static_cast<size_t>(model_.conv(l).out_features());
      if (slot.size() != out) slot.resize(out);
      std::fill(slot.begin(), slot.end(), 0.0f);
    }
  } else {
    nodes_.push_back(node);
    adj_.emplace_back(neighbors.begin(), neighbors.end());
    out_adj_.emplace_back();
    input_.emplace_back(2);
    for (Index l = 0; l < model_.conv_count(); ++l) {
      features_[static_cast<size_t>(l)].emplace_back(
          static_cast<size_t>(model_.conv(l).out_features()), 0.0f);
    }
  }
  input_[sid][0] = node.polarity_sign > 0 ? 1.0f : 0.0f;
  input_[sid][1] = node.polarity_sign > 0 ? 0.0f : 1.0f;
  ++count_;

  for (const Index j : neighbors) {
    if (j < 0 || j >= id) {
      throw std::invalid_argument("AsyncEventGnn::insert: bad neighbour id");
    }
    if (bidirectional_) {
      out_adj_[static_cast<size_t>(j)].push_back(id);
      adj_[static_cast<size_t>(j)].push_back(id);
      out_adj_[sid].push_back(j);
    }
  }
  return id;
}

AsyncGnnStats AsyncEventGnn::insert(const GraphNode& node,
                                    std::span<const Index> neighbors) {
  AsyncGnnStats stats;
  const Index id = insert_structural(node, neighbors);

  if (!bidirectional_) {
    // Causal fast path, equivalent to the generic propagation below: edges
    // only point from earlier events to the new node, so no existing node's
    // in-neighbourhood changed and the dirty set is always exactly {id} —
    // the set machinery degenerates to recomputing the new node layer by
    // layer until a layer reports no change.
    for (Index l = 0; l < model_.conv_count(); ++l) {
      if (!recompute(l, id, stats)) break;
    }
    return stats;
  }

  // Seed of changed nodes per layer: the new node always needs computing;
  // in bidirectional mode its neighbours' in-sets changed too.
  std::unordered_set<Index> dirty;
  dirty.insert(id);
  for (const Index j : neighbors) dirty.insert(j);

  for (Index l = 0; l < model_.conv_count(); ++l) {
    std::unordered_set<Index> changed;
    for (const Index v : dirty) {
      if (recompute(l, v, stats)) changed.insert(v);
    }
    if (l + 1 == model_.conv_count()) break;
    // A change at node v at layer l affects, at layer l+1, v itself and
    // every node whose in-neighbourhood contains v.
    std::unordered_set<Index> next;
    for (const Index v : changed) {
      next.insert(v);
      for (const Index w : out_adj_[static_cast<size_t>(v)]) next.insert(w);
    }
    if (next.empty()) break;
    dirty = std::move(next);
  }
  return stats;
}

AsyncGnnStats AsyncEventGnn::insert_batch(const GraphNode& node,
                                          std::span<const Index> neighbors) {
  if (bidirectional_) {
    // The batch sweep's bitwise-equivalence argument relies on existing
    // nodes' in-neighbourhoods being immutable; bidirectional insertion
    // violates that, so route through the generic dirty-set propagation.
    return insert(node, neighbors);
  }
  AsyncGnnStats stats;
  insert_structural(node, neighbors);

  // Full-graph layer sweep with a PER-NODE early break: every node starts
  // active, is re-evaluated at each layer while active, and drops out the
  // first time its recompute reports no change. The per-node rule is what
  // keeps the sweep bitwise-identical to insert(): an existing node's
  // layer-0 recompute reproduces its stored features exactly (inputs and
  // in-neighbourhood are immutable under causal insertion) and deactivates
  // it, while the new node follows precisely the incremental path's
  // layer-by-layer break. A shared any-node-changed break would instead
  // drag early-converged nodes to deeper layers, where a bias-driven fresh
  // value can spuriously differ from their (never-computed) stored zeros.
  // Net effect: identical state evolution, full-sweep stats — the O(N)-
  // per-event cost the planner prices against the incremental path.
  active_.assign(static_cast<size_t>(count_), 1);
  for (Index l = 0; l < model_.conv_count(); ++l) {
    bool any_changed = false;
    for (Index v = 0; v < count_; ++v) {
      if (!active_[static_cast<size_t>(v)]) continue;
      const bool changed = recompute(l, v, stats);
      active_[static_cast<size_t>(v)] = changed ? 1 : 0;
      any_changed |= changed;
    }
    if (!any_changed) break;
  }
  return stats;
}

nn::Tensor AsyncEventGnn::logits() {
  nn::Tensor out({model_.config().num_classes});
  logits_into(out);
  return out;
}

void AsyncEventGnn::logits_into(nn::Tensor& out) {
  const Index f = static_cast<Index>(pooled_sum_.size());
  const Index n = node_count();
  if (n > 0) {
    for (Index c = 0; c < f; ++c) {
      pooled_scratch_[c] =
          static_cast<float>(pooled_sum_[static_cast<size_t>(c)] /
                             static_cast<double>(n));
      pooled_scratch_[f + c] = pooled_max_[static_cast<size_t>(c)];
    }
  } else {
    pooled_scratch_.zero();
  }
  model_.head().forward_into(pooled_scratch_, out);
}

std::int64_t AsyncEventGnn::full_recompute_macs() const {
  std::int64_t macs = 0;
  for (Index l = 0; l < model_.conv_count(); ++l) {
    const auto& conv = const_cast<EventGnn&>(model_).conv(l);
    for (Index v = 0; v < count_; ++v) {
      macs += conv.node_macs(
          static_cast<Index>(adj_[static_cast<size_t>(v)].size()));
    }
  }
  return macs;
}

}  // namespace evd::gnn
