// Batch event-graph construction via k-d tree radius search.
#pragma once

#include "events/event.hpp"
#include "gnn/graph.hpp"

namespace evd::gnn {

struct GraphBuildConfig {
  double time_scale = 1e-4;   ///< Pixels per microsecond (z = t * scale):
                              ///< 1e-4 -> 10 ms of time ~ 1 pixel.
  float radius = 3.0f;        ///< Neighbourhood radius in embedded space.
  Index max_neighbors = 8;    ///< Degree cap (keep nearest).
  Index max_nodes = 512;      ///< Uniform temporal subsampling above this.
  /// 0: radius graph (default). > 0: pure k-nearest-neighbour edges (still
  /// causal, still capped by max_neighbors) — the other construction the
  /// event-graph literature uses; radius is ignored.
  Index knn = 0;
};

/// Subsample the stream to at most max_nodes events (uniform stride).
std::vector<events::Event> subsample_events(
    std::span<const events::Event> events, Index max_nodes);

/// Build the full graph: directed edges from each node to its (up to
/// max_neighbors nearest) *earlier* events within `radius`.
EventGraph build_graph(const events::EventStream& stream,
                       const GraphBuildConfig& config);

/// Embed an event into graph space.
Point3 embed(const events::Event& event, double time_scale);

}  // namespace evd::gnn
