#include "gnn/graph_builder.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace evd::gnn {

Point3 embed(const events::Event& event, double time_scale) {
  return Point3{static_cast<float>(event.x), static_cast<float>(event.y),
                static_cast<float>(static_cast<double>(event.t) * time_scale)};
}

std::vector<events::Event> subsample_events(
    std::span<const events::Event> events, Index max_nodes) {
  std::vector<events::Event> kept;
  const auto n = static_cast<Index>(events.size());
  if (n <= max_nodes) {
    kept.assign(events.begin(), events.end());
    return kept;
  }
  kept.reserve(static_cast<size_t>(max_nodes));
  const double stride = static_cast<double>(n) / static_cast<double>(max_nodes);
  double cursor = 0.0;
  for (Index k = 0; k < max_nodes; ++k) {
    kept.push_back(events[static_cast<size_t>(cursor)]);
    cursor += stride;
  }
  return kept;
}

EventGraph build_graph(const events::EventStream& stream,
                       const GraphBuildConfig& config) {
  const std::vector<events::Event> sampled =
      subsample_events(stream.events, config.max_nodes);

  std::vector<Point3> points;
  points.reserve(sampled.size());
  for (const auto& e : sampled) points.push_back(embed(e, config.time_scale));
  const KdTree tree(points);

  // Batch neighbourhood search: each event's query is independent of every
  // other's (the kd-tree is immutable and visit counts are per-query), so
  // events partition freely across the pool. Results land in a per-event
  // slot and the CSR graph is assembled serially in event order — identical
  // output for any thread count.
  const auto n = static_cast<Index>(sampled.size());
  std::vector<std::vector<Index>> neighbor_lists(static_cast<size_t>(n));
  par::parallel_for(0, n, 64, [&](Index begin, Index end) {
    for (Index idx = begin; idx < end; ++idx) {
      const auto i = static_cast<size_t>(idx);
      std::vector<Index> candidates;
      if (config.knn > 0) {
        // Grow the query until enough *earlier* neighbours survive the
        // causality filter (nearest points in (x,y,z) are often later
        // events).
        Index k = 2 * config.knn + 1;
        const auto total = static_cast<Index>(points.size());
        while (true) {
          candidates = tree.knn_query(points[i], std::min(k, total));
          std::erase_if(candidates, [&](Index c) {
            return static_cast<size_t>(c) >= i;
          });
          if (static_cast<Index>(candidates.size()) >= config.knn ||
              k >= total) {
            break;
          }
          k *= 2;
        }
      } else {
        candidates = tree.radius_query(points[i], config.radius);
        // Keep only strictly earlier events (directed, causal edges).
        std::erase_if(candidates, [&](Index c) {
          return static_cast<size_t>(c) >= i;
        });
      }
      // Tie-break equal distances by id so the degree cap is deterministic
      // (and identical to the incremental builder's ordering).
      std::sort(candidates.begin(), candidates.end(), [&](Index a, Index b) {
        const float da =
            squared_distance(points[static_cast<size_t>(a)], points[i]);
        const float db =
            squared_distance(points[static_cast<size_t>(b)], points[i]);
        return da < db || (da == db && a < b);
      });
      const Index degree_cap = config.knn > 0
                                   ? std::min(config.knn, config.max_neighbors)
                                   : config.max_neighbors;
      if (static_cast<Index>(candidates.size()) > degree_cap) {
        candidates.resize(static_cast<size_t>(degree_cap));
      }
      neighbor_lists[i] = std::move(candidates);
    }
  });

  EventGraph graph;
  for (size_t i = 0; i < sampled.size(); ++i) {
    GraphNode node;
    node.position = points[i];
    node.polarity_sign =
        static_cast<std::int8_t>(polarity_sign(sampled[i].polarity));
    node.t = sampled[i].t;
    graph.add_node(node, std::move(neighbor_lists[i]));
  }
  return graph;
}

}  // namespace evd::gnn
