// Event-graph classifier: stacked graph convolutions, global mean pooling,
// linear head — with its training loop.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "gnn/graph_conv.hpp"
#include "nn/linear.hpp"

namespace evd::gnn {

struct EventGnnConfig {
  Index hidden = 24;
  Index layers = 3;       ///< Graph-conv layer count.
  Index num_classes = 4;
  std::uint64_t seed = 13;
};

class EventGnn {
 public:
  explicit EventGnn(EventGnnConfig config);

  /// Forward a whole graph; returns logits [num_classes]. The readout is
  /// the concatenation of mean- and max-pooled final node features.
  nn::Tensor forward(const EventGraph& graph, bool train);

  /// Backward from dL/dlogits (requires forward(train=true)).
  void backward(const nn::Tensor& grad_logits);

  std::vector<nn::Param*> params();
  Index param_count();

  Index conv_count() const noexcept {
    return static_cast<Index>(convs_.size());
  }
  GraphConv& conv(Index l) { return convs_.at(static_cast<size_t>(l)); }
  nn::Linear& head() noexcept { return head_; }
  const EventGnnConfig& config() const noexcept { return config_; }

 private:
  EventGnnConfig config_;
  Rng rng_;
  std::vector<GraphConv> convs_;
  nn::Linear head_;
  Index cached_nodes_ = 0;
  std::vector<Index> cached_max_owner_;  ///< Node owning each max-pool slot.
};

struct GnnFitOptions {
  Index epochs = 10;
  float lr = 2e-3f;
  std::uint64_t shuffle_seed = 1;
  bool verbose = false;
};

struct GnnFitReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;
};

GnnFitReport fit_gnn(EventGnn& model, std::span<const EventGraph> graphs,
                     std::span<const Index> labels,
                     const GnnFitOptions& options);

double evaluate_gnn(EventGnn& model, std::span<const EventGraph> graphs,
                    std::span<const Index> labels);

}  // namespace evd::gnn
