#include "gnn/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gnn/graph_builder.hpp"

namespace evd::gnn {

IncrementalGraphBuilder::IncrementalGraphBuilder(Index width, Index height,
                                                 IncrementalConfig config)
    : config_(config), cell_size_(std::max(config.radius, 1.0f)) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("IncrementalGraphBuilder: bad geometry");
  }
  grid_w_ = static_cast<Index>(std::ceil(static_cast<double>(width) /
                                         static_cast<double>(cell_size_)));
  grid_h_ = static_cast<Index>(std::ceil(static_cast<double>(height) /
                                         static_cast<double>(cell_size_)));
  cells_.resize(static_cast<size_t>(grid_w_ * grid_h_));
  for (auto& cell : cells_) {
    cell.ids.assign(static_cast<size_t>(config_.cell_capacity), -1);
  }
  // A neighbour at distance <= radius in embedded space can be at most
  // radius/time_scale microseconds in the past.
  horizon_us_ = static_cast<TimeUs>(
      static_cast<double>(config_.radius) / config_.time_scale) + 1;
  within_.reserve(static_cast<size_t>(9 * config_.cell_capacity));
}

void IncrementalGraphBuilder::clear() {
  for (auto& cell : cells_) {
    std::fill(cell.ids.begin(), cell.ids.end(), -1);
    cell.cursor = 0;
    cell.count = 0;
  }
  nodes_.clear();
}

void IncrementalGraphBuilder::save(fault::CheckpointWriter& w) const {
  w.i64(grid_w_);
  w.i64(grid_h_);
  w.i64(config_.cell_capacity);
  w.pod_vector(nodes_);
  for (const Cell& cell : cells_) {
    w.pod_vector(cell.ids);
    w.i64(cell.cursor);
    w.i64(cell.count);
  }
}

void IncrementalGraphBuilder::load(fault::CheckpointReader& r) {
  const Index gw = r.i64();
  const Index gh = r.i64();
  const Index cap = r.i64();
  if (gw != grid_w_ || gh != grid_h_ || cap != config_.cell_capacity) {
    throw Error(ErrorCode::CheckpointMismatch,
                "IncrementalGraphBuilder: checkpointed grid " +
                    std::to_string(gw) + "x" + std::to_string(gh) + "/" +
                    std::to_string(cap) + " vs configured " +
                    std::to_string(grid_w_) + "x" + std::to_string(grid_h_) +
                    "/" + std::to_string(config_.cell_capacity));
  }
  r.pod_vector(nodes_);
  for (Cell& cell : cells_) {
    r.pod_vector(cell.ids);
    cell.cursor = r.i64();
    cell.count = r.i64();
  }
}

Index IncrementalGraphBuilder::state_bytes() const noexcept {
  return static_cast<Index>(cells_.size() *
                            (static_cast<size_t>(config_.cell_capacity) *
                                 sizeof(Index) +
                             2 * sizeof(Index)) +
                            nodes_.size() * sizeof(GraphNode));
}

IncrementalGraphBuilder::InsertResult IncrementalGraphBuilder::insert(
    const events::Event& event) {
  InsertResult result;
  result.neighbors.reserve(static_cast<size_t>(config_.max_neighbors));
  result.node_id =
      insert_into(event, result.neighbors, &result.candidates_scanned);
  return result;
}

Index IncrementalGraphBuilder::insert_into(const events::Event& event,
                                           std::vector<Index>& out_neighbors,
                                           Index* candidates_scanned) {
  out_neighbors.clear();
  within_.clear();
  Index scanned = 0;
  const Point3 p = embed(event, config_.time_scale);
  const float r2 = config_.radius * config_.radius;

  const Index cx = static_cast<Index>(static_cast<float>(event.x) / cell_size_);
  const Index cy = static_cast<Index>(static_cast<float>(event.y) / cell_size_);

  // Gather candidates from the 3x3 cell neighbourhood (cell_size >= radius
  // guarantees coverage).
  for (Index dy = -1; dy <= 1; ++dy) {
    const Index ny = cy + dy;
    if (ny < 0 || ny >= grid_h_) continue;
    for (Index dx = -1; dx <= 1; ++dx) {
      const Index nx = cx + dx;
      if (nx < 0 || nx >= grid_w_) continue;
      const Cell& cell = cell_at(nx, ny);
      for (Index k = 0; k < cell.count; ++k) {
        const Index id =
            cell.ids[static_cast<size_t>((cell.cursor - 1 - k +
                                          2 * config_.cell_capacity) %
                                         config_.cell_capacity)];
        if (id < 0) continue;
        const auto& candidate = nodes_[static_cast<size_t>(id)];
        ++scanned;
        // Candidates are scanned newest-first; once one is beyond the time
        // horizon, everything older in this cell is too.
        if (event.t - candidate.t > horizon_us_) break;
        const float d2 = squared_distance(candidate.position, p);
        if (d2 <= r2) within_.emplace_back(d2, id);
      }
    }
  }
  std::sort(within_.begin(), within_.end());
  if (static_cast<Index>(within_.size()) > config_.max_neighbors) {
    within_.resize(static_cast<size_t>(config_.max_neighbors));
  }
  for (const auto& [d2, id] : within_) out_neighbors.push_back(id);

  // Append the node and register it in its cell's ring buffer.
  GraphNode node;
  node.position = p;
  node.polarity_sign =
      static_cast<std::int8_t>(polarity_sign(event.polarity));
  node.t = event.t;
  const Index node_id = static_cast<Index>(nodes_.size());
  nodes_.push_back(node);

  Cell& home = cell_at(std::min(cx, grid_w_ - 1), std::min(cy, grid_h_ - 1));
  home.ids[static_cast<size_t>(home.cursor)] = node_id;
  home.cursor = (home.cursor + 1) % config_.cell_capacity;
  home.count = std::min(home.count + 1, config_.cell_capacity);
  if (candidates_scanned != nullptr) *candidates_scanned = scanned;
  return node_id;
}

EventGraph build_graph_incremental(const events::EventStream& stream,
                                   const IncrementalConfig& config,
                                   Index max_nodes) {
  const std::vector<events::Event> sampled =
      subsample_events(stream.events, max_nodes);
  IncrementalGraphBuilder builder(std::max<Index>(stream.width, 1),
                                  std::max<Index>(stream.height, 1), config);
  EventGraph graph;
  for (const auto& e : sampled) {
    auto result = builder.insert(e);
    GraphNode node;
    node.position = embed(e, config.time_scale);
    node.polarity_sign = static_cast<std::int8_t>(polarity_sign(e.polarity));
    node.t = e.t;
    graph.add_node(node, std::move(result.neighbors));
  }
  return graph;
}

}  // namespace evd::gnn
