// Asynchronous, per-event GNN inference (paper §IV, AEGNN [70] / HUGNet
// [72] mechanisms).
//
// Two update disciplines over a trained EventGnn:
//
//  * Causal ("hemispherical", HUGNet-style): edges point only from earlier
//    events to the new one, so inserting a node can never change any
//    existing node's in-neighbourhood — only the new node's features must
//    be computed, exactly once per layer. O(degree) work per event.
//
//  * Bidirectional (AEGNN-style undirected graphs): the new node also
//    becomes an in-neighbour of its neighbours, whose features must be
//    recomputed; changes then propagate one hop per layer. Still far
//    cheaper than full recomputation, but strictly more work than causal.
//
// Both keep the running class logits available after every event — the
// event-driven decision stream the comparison harness measures for latency.
#pragma once

#include <span>
#include <vector>

#include "fault/checkpoint.hpp"
#include "gnn/gnn_model.hpp"

namespace evd::gnn {

struct AsyncGnnStats {
  std::int64_t macs = 0;
  Index node_layer_recomputes = 0;  ///< (node, layer) evaluations performed.
};

class AsyncEventGnn {
 public:
  /// The model must outlive this object and must not be retrained while an
  /// async session is active.
  AsyncEventGnn(EventGnn& model, bool bidirectional);

  /// Insert a node with its (earlier) neighbour ids, update features.
  AsyncGnnStats insert(const GraphNode& node, std::span<const Index> neighbors);

  /// Batch-discipline insert: the same structural insertion, but the
  /// message pass re-evaluates the WHOLE graph layer by layer (every node,
  /// index order) instead of only the incremental frontier, carrying each
  /// node forward to the next layer only while its features keep changing.
  /// In causal mode this is bitwise-identical to insert() by construction:
  /// existing nodes' in-neighbourhoods and inputs never change, so their
  /// layer-0 re-evaluations reproduce their stored features exactly and
  /// drop them from the sweep — the state evolution (features, pools, and
  /// therefore every decision) matches the incremental path bit for bit,
  /// while the stats record the full-sweep work. That equality is what the
  /// route.gnn_batch_vs_incremental oracle pins at ULP 0, and the modeled
  /// cost gap (O(N) sweep vs O(degree) frontier) is what the planner
  /// prices when routing. Bidirectional graphs fall back to insert().
  AsyncGnnStats insert_batch(const GraphNode& node,
                             std::span<const Index> neighbors);

  /// Current logits from the running pooled representation.
  nn::Tensor logits();

  /// Zero-allocation logits: writes into caller-owned `out` (shape
  /// [num_classes]). Bitwise identical to logits().
  void logits_into(nn::Tensor& out);

  /// Pre-size every per-node buffer for up to `max_nodes` nodes of in-degree
  /// <= `max_degree`, so causal-mode insert() performs no heap allocation
  /// until the graph exceeds that size. (Bidirectional mode grows neighbour
  /// lists of *earlier* nodes and cannot be pre-sized this way.)
  void reserve(Index max_nodes, Index max_degree);

  /// Logical clear that keeps all storage: with reserve(), a session
  /// recycles its graph allocation-free when it hits its node cap.
  void reset();

  /// Checkpoint the live per-node state (nodes, adjacency, inputs, layer
  /// features, running pools) into `w` / restore it from `r`. Causal mode
  /// only: bidirectional graphs grow earlier nodes' neighbour lists, whose
  /// stale pooled-max envelope makes a restored stream diverge, so save()
  /// throws evd::Error(CheckpointUnsupported) there. The restoring engine
  /// must wrap the same model (layer shapes are validated).
  void save(fault::CheckpointWriter& w) const;
  void load(fault::CheckpointReader& r);

  Index node_count() const noexcept { return count_; }

  /// MACs a from-scratch forward over the current graph would cost —
  /// the baseline against which per-event updates are compared.
  std::int64_t full_recompute_macs() const;

  void clear();

 private:
  /// Recompute features of node v at conv layer l; returns true if changed.
  bool recompute(Index layer, Index v, AsyncGnnStats& stats);

  /// Shared structural half of insert()/insert_batch(): slot fill,
  /// adjacency + input setup, neighbour validation. Returns the new id.
  Index insert_structural(const GraphNode& node,
                          std::span<const Index> neighbors);

  static constexpr float kEps = 1e-6f;

  EventGnn& model_;
  bool bidirectional_;
  Index count_ = 0;  ///< Live nodes; storage below may be larger (reserve()).
  std::vector<GraphNode> nodes_;
  std::vector<std::vector<Index>> adj_;      ///< In-neighbours per node.
  std::vector<std::vector<Index>> out_adj_;  ///< Nodes that list v as neighbour
                                             ///< (maintained only when
                                             ///< bidirectional — causal
                                             ///< propagation never reads it).
  std::vector<std::vector<float>> input_;    ///< [node] -> [2] polarity onehot.
  /// features_[l][node] = output of conv layer l.
  std::vector<std::vector<std::vector<float>>> features_;
  std::vector<double> pooled_sum_;
  /// Running max per feature. Exact under causal insertion (node features
  /// are immutable once computed, and ReLU outputs are >= 0, the pool's
  /// identity); in bidirectional mode a feature that *decreases* leaves a
  /// stale envelope, so this is a monotone upper bound there.
  std::vector<float> pooled_max_;
  // Scratch reused across recompute()/logits_into() calls (one thread owns
  // an AsyncEventGnn, so plain members are safe).
  std::vector<GraphConv::NeighborRef> refs_;
  std::vector<float> fresh_;
  std::vector<std::uint8_t> active_;  ///< insert_batch() sweep frontier.
  nn::Tensor pooled_scratch_;
};

}  // namespace evd::gnn
