// Event-graph data structure (paper §IV, Fig. 2 right).
//
// Nodes are events embedded as spatiotemporal points; directed edges connect
// each node to (a bounded number of) earlier events within a Euclidean
// radius in (x, y, t*time_scale) space — so the graph's edges carry the
// precise relative timing information the convolution layers consume.
// Storage is CSR once finalised.
#pragma once

#include <span>
#include <vector>

#include "events/event.hpp"
#include "gnn/kdtree.hpp"

namespace evd::gnn {

struct GraphNode {
  Point3 position;   ///< (x, y, t * time_scale).
  std::int8_t polarity_sign = 1;  ///< +1 / -1.
  TimeUs t = 0;      ///< Original timestamp.
};

class EventGraph {
 public:
  EventGraph() = default;

  Index node_count() const noexcept {
    return static_cast<Index>(nodes_.size());
  }
  Index edge_count() const noexcept {
    return static_cast<Index>(targets_.size());
  }
  const GraphNode& node(Index i) const {
    return nodes_[static_cast<size_t>(i)];
  }

  /// Incoming-neighbour indices of node i (CSR row).
  std::span<const Index> neighbors(Index i) const {
    const auto begin = static_cast<size_t>(offsets_[static_cast<size_t>(i)]);
    const auto end = static_cast<size_t>(offsets_[static_cast<size_t>(i) + 1]);
    return {targets_.data() + begin, end - begin};
  }

  double mean_degree() const noexcept {
    return node_count() > 0 ? static_cast<double>(edge_count()) /
                                  static_cast<double>(node_count())
                            : 0.0;
  }

  /// Memory footprint of the structure in bytes (nodes + CSR).
  Index storage_bytes() const noexcept {
    return static_cast<Index>(nodes_.size() * sizeof(GraphNode) +
                              offsets_.size() * sizeof(Index) +
                              targets_.size() * sizeof(Index));
  }

  /// Builder access: append nodes/adjacency then finalise.
  void add_node(GraphNode node, std::vector<Index> neighbor_ids);

  /// Initial per-node input features: [polarity_on, polarity_off].
  static constexpr Index kInputFeatures = 2;
  /// Fill `out` ([N, 2] row-major) with input features.
  std::vector<float> input_features() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<Index> offsets_{0};  ///< CSR offsets, size N+1.
  std::vector<Index> targets_;     ///< CSR neighbour ids.
};

}  // namespace evd::gnn
