// Execution-path routing: the registry of interchangeable execution
// variants the planner may place a paradigm onto.
//
// The paper's central dichotomy — dense clocked execution vs sparse
// event-driven execution of the same network — is a *routing* question,
// not a model question. Before this layer each pipeline hard-coded its
// answer (Conv2d's shape heuristic, the SNN's chunked clocked stepping,
// the GNN's incremental message pass). evd::route lifts the decision out:
//
//   * An ExecutionPath describes one routable variant of a paradigm's hot
//     stage (CNN: direct / im2col-GEMM / sparse conv; SNN: clocked /
//     event-driven stepping; GNN: incremental / batch message pass).
//   * The PathRegistry enumerates the variants and tracks which of them
//     are *proved*: a path becomes routable to the planner only once a
//     registered differential oracle (`route.*` in evd::check) pins it
//     decision-stream-identical (ULP 0) to the paradigm's default path.
//     The annealer's path move only ever selects Default or a proved
//     path, so a plan can change how work executes but never what it
//     computes.
//   * Sessions store a PathId (installed by SessionManager::set_plan from
//     the plan's placements) and consult it at their hot-stage dispatch
//     point. PathId::Default — and the EVD_ROUTE=off kill-switch — fall
//     back byte-identically to the pre-refactor hard-coded behavior.
//
// The library sits at the leaf of the link graph (depends only on
// evd_common) so both the runtime (which applies routes) and the planning
// stack (which searches over them) can link it without cycles.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace evd::route {

/// EVD_ROUTE kill-switch (default on). When off, every dispatch site runs
/// the paradigm's default path regardless of any installed route — the
/// byte-identical fallback the equivalence contract demands.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Stable identifiers for the routable execution variants. The numeric
/// values are serialized inside plan bytes (sched::ParadigmPlacement), so
/// they must never be renumbered; gaps leave room for new variants per
/// paradigm family.
enum class PathId : std::uint8_t {
  Default = 0,  ///< The paradigm's built-in behavior (pre-refactor path).
  CnnDirect = 1,       ///< Force the direct convolution loop nest.
  CnnGemm = 2,         ///< Force the im2col + blocked-GEMM path.
  CnnSparse = 3,       ///< Zero-skipping sparse conv over the event frame.
  SnnClocked = 8,      ///< Chunked fork-join clocked LIF stepping.
  SnnEventDriven = 9,  ///< Single spike-driven full-layer kernel call.
  GnnIncremental = 16, ///< Frontier-only incremental message pass.
  GnnBatch = 17,       ///< Full-graph sweep message pass per event.
};

/// How the cost model prices a path relative to the paradigm's declared
/// (default-path) StageInfo counters — the modeled side of the paper's
/// dense-vs-event-driven dichotomy.
enum class CostShape : std::uint8_t {
  AsDeclared,      ///< The declared counters already describe this path.
  ActivityScaled,  ///< Compute/param traffic scale with input activity.
  FullSweep,       ///< Re-touches the whole state per op (dense sweep).
};

/// One routable execution variant of a paradigm's hot stage.
struct ExecutionPath {
  PathId id = PathId::Default;
  const char* paradigm = "";  ///< "cnn" / "snn" / "gnn".
  const char* name = "";      ///< e.g. "cnn.sparse" (stable, used in docs).
  CostShape cost = CostShape::AsDeclared;
  bool is_default = false;  ///< Aliases the paradigm's built-in behavior.
};

/// Short stable name ("default", "cnn.sparse", ...).
const char* path_name(PathId id) noexcept;

/// Owning paradigm ("cnn" / "snn" / "gnn"); empty for Default / unknown.
const char* path_paradigm(PathId id) noexcept;

/// True when `id` may be installed on a session of `paradigm` — Default
/// always, otherwise only the paradigm's own variants.
bool path_valid_for(PathId id, std::string_view paradigm) noexcept;

/// Decode a serialized path byte; nullopt for unknown values (the typed
/// Corrupt error is the caller's to raise — plan decoding owns framing).
std::optional<PathId> path_from_byte(std::uint8_t raw) noexcept;

/// The process-wide path registry: enumeration plus the equivalence gate.
class PathRegistry {
 public:
  static PathRegistry& instance() noexcept;

  /// Every registered variant, all paradigms, registry order.
  std::span<const ExecutionPath> paths() const noexcept;
  /// The variants owned by one paradigm (empty span for unknown labels).
  std::span<const ExecutionPath> paths_for(
      std::string_view paradigm) const noexcept;
  /// Descriptor lookup; nullptr for Default (which is not a variant — it
  /// names "whatever the paradigm hard-codes") and for unknown ids.
  const ExecutionPath* find(PathId id) const noexcept;

  /// Equivalence gate. mark_proved is called when the path's differential
  /// oracle is registered with evd::check (register_builtin_oracles) — the
  /// oracle suite is what keeps the mark honest in CI. Default and
  /// is_default variants are born proved (they *are* the baseline).
  void mark_proved(PathId id) noexcept;
  bool proved(PathId id) const noexcept;

  /// The paths the planner may route `paradigm` onto: Default plus every
  /// proved variant, in registry order. Unproved variants never appear —
  /// the annealer cannot choose an unverified execution path.
  std::vector<PathId> routable(std::string_view paradigm) const;

 private:
  PathRegistry();
};

}  // namespace evd::route
