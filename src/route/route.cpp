#include "route/route.hpp"

#include <array>
#include <atomic>
#include <cstring>

#include "common/env.hpp"

namespace evd::route {
namespace {

std::atomic<bool>& enabled_state() {
  static std::atomic<bool> state{env_flag("EVD_ROUTE", true)};
  return state;
}

// Registry order groups each paradigm's variants contiguously so
// paths_for() can hand out subspans of one static table.
constexpr std::array<ExecutionPath, 7> kPaths = {{
    {PathId::CnnDirect, "cnn", "cnn.direct", CostShape::AsDeclared, true},
    {PathId::CnnGemm, "cnn", "cnn.gemm", CostShape::AsDeclared, true},
    {PathId::CnnSparse, "cnn", "cnn.sparse", CostShape::ActivityScaled,
     false},
    {PathId::SnnClocked, "snn", "snn.clocked", CostShape::AsDeclared, true},
    {PathId::SnnEventDriven, "snn", "snn.event_driven",
     CostShape::ActivityScaled, false},
    {PathId::GnnIncremental, "gnn", "gnn.incremental", CostShape::AsDeclared,
     true},
    {PathId::GnnBatch, "gnn", "gnn.batch", CostShape::FullSweep, false},
}};

constexpr std::size_t kProvedSlots = 32;  // > max PathId value (17).

std::array<std::atomic<bool>, kProvedSlots>& proved_flags() {
  static std::array<std::atomic<bool>, kProvedSlots> flags{};
  return flags;
}

}  // namespace

bool enabled() noexcept {
  return enabled_state().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_state().store(on, std::memory_order_relaxed);
}

const char* path_name(PathId id) noexcept {
  if (id == PathId::Default) return "default";
  for (const ExecutionPath& p : kPaths) {
    if (p.id == id) return p.name;
  }
  return "unknown";
}

const char* path_paradigm(PathId id) noexcept {
  for (const ExecutionPath& p : kPaths) {
    if (p.id == id) return p.paradigm;
  }
  return "";
}

bool path_valid_for(PathId id, std::string_view paradigm) noexcept {
  if (id == PathId::Default) return true;
  return paradigm == path_paradigm(id) && paradigm.size() > 0;
}

std::optional<PathId> path_from_byte(std::uint8_t raw) noexcept {
  if (raw == 0) return PathId::Default;
  for (const ExecutionPath& p : kPaths) {
    if (static_cast<std::uint8_t>(p.id) == raw) return p.id;
  }
  return std::nullopt;
}

PathRegistry::PathRegistry() {
  // Default-aliasing variants are born proved: choosing them cannot change
  // what executes beyond what the paradigm's own heuristic already may.
  for (const ExecutionPath& p : kPaths) {
    if (p.is_default) {
      proved_flags()[static_cast<std::size_t>(p.id)].store(
          true, std::memory_order_relaxed);
    }
  }
}

PathRegistry& PathRegistry::instance() noexcept {
  static PathRegistry registry;
  return registry;
}

std::span<const ExecutionPath> PathRegistry::paths() const noexcept {
  return {kPaths.data(), kPaths.size()};
}

std::span<const ExecutionPath> PathRegistry::paths_for(
    std::string_view paradigm) const noexcept {
  std::size_t begin = kPaths.size();
  std::size_t end = 0;
  for (std::size_t i = 0; i < kPaths.size(); ++i) {
    if (paradigm == kPaths[i].paradigm) {
      if (i < begin) begin = i;
      end = i + 1;
    }
  }
  if (begin >= end) return {};
  return {kPaths.data() + begin, end - begin};
}

const ExecutionPath* PathRegistry::find(PathId id) const noexcept {
  for (const ExecutionPath& p : kPaths) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

void PathRegistry::mark_proved(PathId id) noexcept {
  const auto slot = static_cast<std::size_t>(id);
  if (id == PathId::Default || slot >= kProvedSlots || find(id) == nullptr) {
    return;
  }
  proved_flags()[slot].store(true, std::memory_order_relaxed);
}

bool PathRegistry::proved(PathId id) const noexcept {
  if (id == PathId::Default) return true;
  const auto slot = static_cast<std::size_t>(id);
  if (slot >= kProvedSlots) return false;
  return proved_flags()[slot].load(std::memory_order_relaxed);
}

std::vector<PathId> PathRegistry::routable(std::string_view paradigm) const {
  std::vector<PathId> out;
  out.push_back(PathId::Default);
  for (const ExecutionPath& p : paths_for(paradigm)) {
    if (proved(p.id)) out.push_back(p.id);
  }
  return out;
}

}  // namespace evd::route
