// Parameter checkpointing, generic over anything exposing params().
//
// Format: magic, parameter count, then per parameter: name, shape, values.
// Loading verifies names and shapes so a checkpoint cannot silently attach
// to the wrong architecture.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace evd::nn {

/// Save parameters (values only) to `path`.
void save_params(const std::string& path, const std::vector<Param*>& params);

/// Load into an existing parameter set; throws std::runtime_error on
/// count/name/shape mismatch or malformed files.
void load_params(const std::string& path, const std::vector<Param*>& params);

}  // namespace evd::nn
