// Optimizers over collections of Params.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evd::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then clear them.
  virtual void step() = 0;

  void zero_grad() {
    for (auto* p : params_) p->grad.zero();
  }

 protected:
  std::vector<Param*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

  void set_lr(float lr) noexcept { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  Index t_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Gradient-norm clip across all params (helps SNN BPTT stability).
void clip_grad_norm(const std::vector<Param*>& params, float max_norm);

}  // namespace evd::nn
