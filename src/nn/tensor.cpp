#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evd::nn {

namespace {
Index shape_numel(const std::vector<Index>& shape) {
  Index n = 1;
  for (const Index d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<Index> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::full(std::vector<Index> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<Index> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor& Tensor::reshape(std::vector<Index> shape) {
  if (shape_numel(shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch");
  }
  shape_ = std::move(shape);
  return *this;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (other.numel() != numel()) {
    throw std::invalid_argument("Tensor::operator+=: numel mismatch");
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Tensor::zero_fraction() const noexcept {
  if (data_.empty()) return 0.0;
  Index zeros = 0;
  for (const float v : data_) zeros += (v == 0.0f) ? 1 : 0;
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (const float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sum() const noexcept {
  double s = 0.0;
  for (const float v : data_) s += v;
  return s;
}

Index Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax: empty tensor");
  return static_cast<Index>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

void check_shape(const Tensor& t, const std::vector<Index>& expected,
                 const char* where) {
  if (t.shape() != expected) {
    Tensor probe(expected);
    throw std::invalid_argument(std::string(where) + ": expected shape " +
                                probe.shape_string() + ", got " +
                                t.shape_string());
  }
}

}  // namespace evd::nn
