#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/counters.hpp"
#include "nn/init.hpp"

namespace evd::nn {

Conv2d::Conv2d(Conv2dConfig config, Rng& rng)
    : config_(config),
      weight_("weight",
              he_normal({config.out_channels, config.in_channels,
                         config.kernel, config.kernel},
                        config.in_channels * config.kernel * config.kernel,
                        rng)),
      bias_("bias", Tensor({config.out_channels})) {
  if (config.kernel <= 0 || config.stride <= 0 || config.padding < 0 ||
      config.in_channels <= 0 || config.out_channels <= 0) {
    throw std::invalid_argument("Conv2d: invalid configuration");
  }
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 3 || input.dim(0) != config_.in_channels) {
    throw std::invalid_argument("Conv2d::forward: expected [C,H,W] input with C=" +
                                std::to_string(config_.in_channels));
  }
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index oh = out_size(ih);
  const Index ow = out_size(iw);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
  }
  if (train) cached_input_ = input;

  const Index k = config_.kernel;
  Tensor output({config_.out_channels, oh, ow});
  for (Index oc = 0; oc < config_.out_channels; ++oc) {
    for (Index oy = 0; oy < oh; ++oy) {
      for (Index ox = 0; ox < ow; ++ox) {
        float acc = bias_.value[oc];
        const Index base_y = oy * config_.stride - config_.padding;
        const Index base_x = ox * config_.stride - config_.padding;
        for (Index ic = 0; ic < config_.in_channels; ++ic) {
          for (Index ky = 0; ky < k; ++ky) {
            const Index y = base_y + ky;
            if (y < 0 || y >= ih) continue;
            for (Index kx = 0; kx < k; ++kx) {
              const Index x = base_x + kx;
              if (x < 0 || x >= iw) continue;
              acc += weight_.value[((oc * config_.in_channels + ic) * k + ky) *
                                       k +
                                   kx] *
                     input.at3(ic, y, x);
            }
          }
        }
        output.at3(oc, oy, ox) = acc;
      }
    }
  }

  if (active_counter() != nullptr) {
    // Count MACs over valid (non-padding) taps, and how many of those had a
    // zero activation operand (skippable on sparse hardware).
    std::int64_t macs = 0;
    std::int64_t skippable = 0;
    for (Index oy = 0; oy < oh; ++oy) {
      for (Index ox = 0; ox < ow; ++ox) {
        const Index base_y = oy * config_.stride - config_.padding;
        const Index base_x = ox * config_.stride - config_.padding;
        for (Index ic = 0; ic < config_.in_channels; ++ic) {
          for (Index ky = 0; ky < k; ++ky) {
            const Index y = base_y + ky;
            if (y < 0 || y >= ih) continue;
            for (Index kx = 0; kx < k; ++kx) {
              const Index x = base_x + kx;
              if (x < 0 || x >= iw) continue;
              ++macs;
              if (input.at3(ic, y, x) == 0.0f) ++skippable;
            }
          }
        }
      }
    }
    count_mac(macs * config_.out_channels);
    count_zero_skippable(skippable * config_.out_channels);
    count_param_read(
        static_cast<std::int64_t>(weight_.value.numel() + bias_.value.numel()) *
        4);
    count_act_read(input.numel() * 4);
    count_act_write(output.numel() * 4);
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward: no cached forward");
  }
  const Index ih = cached_input_.dim(1);
  const Index iw = cached_input_.dim(2);
  const Index oh = out_size(ih);
  const Index ow = out_size(iw);
  if (grad_output.rank() != 3 || grad_output.dim(0) != config_.out_channels ||
      grad_output.dim(1) != oh || grad_output.dim(2) != ow) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }

  const Index k = config_.kernel;
  Tensor grad_input(cached_input_.shape());
  for (Index oc = 0; oc < config_.out_channels; ++oc) {
    for (Index oy = 0; oy < oh; ++oy) {
      for (Index ox = 0; ox < ow; ++ox) {
        const float go = grad_output.at3(oc, oy, ox);
        if (go == 0.0f) continue;
        bias_.grad[oc] += go;
        const Index base_y = oy * config_.stride - config_.padding;
        const Index base_x = ox * config_.stride - config_.padding;
        for (Index ic = 0; ic < config_.in_channels; ++ic) {
          for (Index ky = 0; ky < k; ++ky) {
            const Index y = base_y + ky;
            if (y < 0 || y >= ih) continue;
            for (Index kx = 0; kx < k; ++kx) {
              const Index x = base_x + kx;
              if (x < 0 || x >= iw) continue;
              const Index widx =
                  ((oc * config_.in_channels + ic) * k + ky) * k + kx;
              weight_.grad[widx] += go * cached_input_.at3(ic, y, x);
              grad_input.at3(ic, y, x) += go * weight_.value[widx];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param*> Conv2d::params() { return {&weight_, &bias_}; }

}  // namespace evd::nn
