#include "nn/conv2d.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "nn/counters.hpp"
#include "nn/init.hpp"
#include "simd/kernels.hpp"

namespace evd::nn {
namespace {

thread_local ConvAlgo t_conv_algo = ConvAlgo::Auto;

}  // namespace

ConvAlgo thread_conv_algo() noexcept { return t_conv_algo; }

ScopedConvAlgo::ScopedConvAlgo(ConvAlgo algo) noexcept
    : previous_(t_conv_algo) {
  t_conv_algo = algo;
}

ScopedConvAlgo::~ScopedConvAlgo() { t_conv_algo = previous_; }

Conv2d::Conv2d(Conv2dConfig config, Rng& rng)
    : config_(config),
      weight_("weight",
              he_normal({config.out_channels, config.in_channels,
                         config.kernel, config.kernel},
                        config.in_channels * config.kernel * config.kernel,
                        rng)),
      bias_("bias", Tensor({config.out_channels})) {
  if (config.kernel <= 0 || config.stride <= 0 || config.padding < 0 ||
      config.in_channels <= 0 || config.out_channels <= 0) {
    throw std::invalid_argument("Conv2d: invalid configuration");
  }
}

bool Conv2d::use_gemm(Index oh, Index ow) const noexcept {
  // Amortise the im2col materialisation: worthwhile once the patch matrix
  // carries a few thousand multiplies. Shape-only, so the choice (and hence
  // the output bits) never depends on the thread count.
  const Index patch = config_.in_channels * config_.kernel * config_.kernel;
  return patch * oh * ow >= 4096;
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 3 || input.dim(0) != config_.in_channels) {
    throw std::invalid_argument("Conv2d::forward: expected [C,H,W] input with C=" +
                                std::to_string(config_.in_channels));
  }
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index oh = out_size(ih);
  const Index ow = out_size(iw);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("Conv2d::forward: input smaller than kernel");
  }
  if (train) cached_input_ = input;

  // Kernel selection: an explicit config wins; a config of Auto defers to
  // the thread-local routing override (evd::route installs one around a
  // routed session's forward call); Auto with no override falls back to the
  // shape heuristic. All four kernels produce bit-identical outputs.
  ConvAlgo algo = config_.algo;
  if (algo == ConvAlgo::Auto) {
    algo = thread_conv_algo();
    // The sparse route targets event-frame sparsity; layers fed by dense
    // deeper activations fall back to the shape heuristic (see
    // Conv2dConfig::frame_input).
    if (algo == ConvAlgo::Sparse && !config_.frame_input) {
      algo = ConvAlgo::Auto;
    }
  }
  if (algo == ConvAlgo::Auto) {
    algo = use_gemm(oh, ow) ? ConvAlgo::Gemm : ConvAlgo::Direct;
  }
  Tensor output = algo == ConvAlgo::Gemm     ? forward_gemm(input, oh, ow)
                  : algo == ConvAlgo::Sparse ? forward_sparse(input, oh, ow)
                                             : forward_direct(input, oh, ow);
  if (active_counter() != nullptr) count_forward(input, oh, ow);
  return output;
}

Tensor Conv2d::forward_direct(const Tensor& input, Index oh, Index ow) const {
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index k = config_.kernel;
  const Index ic_count = config_.in_channels;
  const Index stride = config_.stride;
  const Index padding = config_.padding;

  Tensor output({config_.out_channels, oh, ow});
  const float* in = input.data();
  const float* wts = weight_.value.data();
  float* out = output.data();

  par::parallel_for(0, config_.out_channels, 1, [&](Index oc_begin,
                                                    Index oc_end) {
    for (Index oc = oc_begin; oc < oc_end; ++oc) {
      const float* w_oc = wts + oc * ic_count * k * k;
      const float bias = bias_.value[oc];
      float* out_oc = out + oc * oh * ow;
      for (Index oy = 0; oy < oh; ++oy) {
        const Index base_y = oy * stride - padding;
        // Valid kernel-row range for this output row: interior rows skip
        // all per-pixel bounds checks.
        const Index ky0 = base_y < 0 ? -base_y : 0;
        const Index ky1 = std::min(k, ih - base_y);
        for (Index ox = 0; ox < ow; ++ox) {
          const Index base_x = ox * stride - padding;
          const Index kx0 = base_x < 0 ? -base_x : 0;
          const Index kx1 = std::min(k, iw - base_x);
          float acc = bias;
          for (Index ic = 0; ic < ic_count; ++ic) {
            const float* w_ic = w_oc + ic * k * k;
            const float* in_ic = in + ic * ih * iw;
            for (Index ky = ky0; ky < ky1; ++ky) {
              const float* w_row = w_ic + ky * k;
              const float* in_row = in_ic + (base_y + ky) * iw + base_x;
              for (Index kx = kx0; kx < kx1; ++kx) {
                acc += w_row[kx] * in_row[kx];
              }
            }
          }
          out_oc[oy * ow + ox] = acc;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::forward_sparse(const Tensor& input, Index oh, Index ow) const {
  // The direct loop nest with a zero-skip gate on the activation operand —
  // the software mirror of the zero-skip accelerator the hw models price.
  // Bitwise contract: skipping `acc += w * 0.0f` leaves acc unchanged for
  // every finite acc except -0.0 (where the dense path may flush to +0.0);
  // acc starts at the bias, and -0.0 parameters do not arise from He-normal
  // init or zero-init biases. Tap order over the *surviving* taps is the
  // direct path's (ic, ky, kx) ascending order, so the partial sums visit
  // the same values in the same order. The route.cnn_sparse_vs_dense oracle
  // holds the equality at ULP 0 on generated event frames.
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index k = config_.kernel;
  const Index ic_count = config_.in_channels;
  const Index stride = config_.stride;
  const Index padding = config_.padding;

  Tensor output({config_.out_channels, oh, ow});
  const float* in = input.data();
  const float* wts = weight_.value.data();
  float* out = output.data();

  // Live-pixel integral image over all input channels: 2-D prefix sums of
  // the any-channel-nonzero mask let every output pixel test its whole
  // receptive field in O(1). On an event frame most receptive fields are
  // entirely dead, and a dead window short-circuits straight to the bias —
  // bitwise what the tap loop computes when every tap is skipped. Built
  // once (input-only), shared read-only by the channel workers.
  std::vector<std::int32_t> live(
      static_cast<size_t>((ih + 1) * (iw + 1)), 0);
  for (Index y = 0; y < ih; ++y) {
    std::int32_t row = 0;
    for (Index x = 0; x < iw; ++x) {
      bool any = false;
      for (Index ic = 0; ic < ic_count && !any; ++ic) {
        any = in[(ic * ih + y) * iw + x] != 0.0f;
      }
      row += any ? 1 : 0;
      live[static_cast<size_t>((y + 1) * (iw + 1) + (x + 1))] =
          live[static_cast<size_t>(y * (iw + 1) + (x + 1))] + row;
    }
  }
  // Live pixels in the half-open, pre-clamped window [y0,y1) x [x0,x1).
  const auto window_live = [&live, iw](Index y0, Index y1, Index x0,
                                       Index x1) {
    const auto at = [&live, iw](Index y, Index x) {
      return live[static_cast<size_t>(y * (iw + 1) + x)];
    };
    return at(y1, x1) - at(y0, x1) - at(y1, x0) + at(y0, x0);
  };

  par::parallel_for(0, config_.out_channels, 1, [&](Index oc_begin,
                                                    Index oc_end) {
    for (Index oc = oc_begin; oc < oc_end; ++oc) {
      const float* w_oc = wts + oc * ic_count * k * k;
      const float bias = bias_.value[oc];
      float* out_oc = out + oc * oh * ow;
      for (Index oy = 0; oy < oh; ++oy) {
        const Index base_y = oy * stride - padding;
        const Index ky0 = base_y < 0 ? -base_y : 0;
        const Index ky1 = std::min(k, ih - base_y);
        for (Index ox = 0; ox < ow; ++ox) {
          const Index base_x = ox * stride - padding;
          const Index kx0 = base_x < 0 ? -base_x : 0;
          const Index kx1 = std::min(k, iw - base_x);
          if (window_live(base_y + ky0, base_y + ky1, base_x + kx0,
                          base_x + kx1) == 0) {
            out_oc[oy * ow + ox] = bias;
            continue;
          }
          float acc = bias;
          for (Index ic = 0; ic < ic_count; ++ic) {
            const float* w_ic = w_oc + ic * k * k;
            const float* in_ic = in + ic * ih * iw;
            for (Index ky = ky0; ky < ky1; ++ky) {
              const float* w_row = w_ic + ky * k;
              const float* in_row = in_ic + (base_y + ky) * iw + base_x;
              for (Index kx = kx0; kx < kx1; ++kx) {
                const float v = in_row[kx];
                if (v != 0.0f) acc += w_row[kx] * v;
              }
            }
          }
          out_oc[oy * ow + ox] = acc;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::forward_gemm(const Tensor& input, Index oh, Index ow) const {
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index k = config_.kernel;
  const Index stride = config_.stride;
  const Index padding = config_.padding;
  const Index rows = config_.in_channels * k * k;  // patch dimension R
  const Index cols = oh * ow;                      // pixel dimension P

  // im2col: col[r][p] is input tap (ic, ky, kx) = unflatten(r) at output
  // pixel p, zero for padding taps. Row order matches the direct loop's
  // (ic, ky, kx) accumulation order exactly.
  std::vector<float> col(static_cast<size_t>(rows * cols));
  const float* in = input.data();
  par::parallel_for(0, rows, 1, [&](Index r_begin, Index r_end) {
    for (Index r = r_begin; r < r_end; ++r) {
      const Index ic = r / (k * k);
      const Index ky = (r / k) % k;
      const Index kx = r % k;
      const float* in_ic = in + ic * ih * iw;
      float* dst = col.data() + r * cols;
      Index p = 0;
      for (Index oy = 0; oy < oh; ++oy) {
        const Index y = oy * stride - padding + ky;
        if (y < 0 || y >= ih) {
          std::fill(dst + p, dst + p + ow, 0.0f);
          p += ow;
          continue;
        }
        const float* in_row = in_ic + y * iw;
        for (Index ox = 0; ox < ow; ++ox, ++p) {
          const Index x = ox * stride - padding + kx;
          dst[p] = (x >= 0 && x < iw) ? in_row[x] : 0.0f;
        }
      }
    }
  });

  // Blocked GEMM microkernel: out[oc] = bias[oc] + W[oc] . col. The pixel
  // dimension is blocked OUTSIDE the output-channel loop so one col block
  // (rows * px_block floats, sized to roughly half of a typical L2) stays
  // cache-resident while every output channel crosses it — without this the
  // full col matrix is re-streamed from L3 once per channel tile. Within a
  // block, output channels run in parallel. The kernel dispatches on the
  // SIMD tier (EVD_SIMD); every tier accumulates each output pixel over r in
  // the same ascending order — the direct loop's (ic, ky, kx) order — so
  // neither the blocking nor the tier ever affects bits. Grain 4 hands each
  // chunk a full register tile of output channels; block and chunk
  // boundaries stay a pure function of the shape, preserving the
  // thread-count determinism contract.
  Tensor output({config_.out_channels, oh, ow});
  const float* wts = weight_.value.data();
  float* out = output.data();
  constexpr Index kColBlockBytes = 1 << 20;
  constexpr Index kPxAlign = 16;
  Index px_block = kColBlockBytes / (static_cast<Index>(sizeof(float)) * rows);
  px_block = std::max<Index>(kPxAlign, px_block - px_block % kPxAlign);
  for (Index px = 0; px < cols; px += px_block) {
    const Index px_end = std::min(cols, px + px_block);
    par::parallel_for(0, config_.out_channels, 4, [&](Index oc_begin,
                                                      Index oc_end) {
      simd::conv_gemm_block(wts, bias_.value.data(), col.data(), out,
                            oc_begin, oc_end, rows, cols, px, px_end);
    });
  }
  return output;
}

void Conv2d::count_forward(const Tensor& input, Index oh, Index ow) const {
  // Count MACs over valid (non-padding) taps, and how many of those had a
  // zero activation operand (skippable on sparse hardware). The tap pattern
  // is identical for every output channel, so count one channel's taps in
  // parallel (per-chunk counters, merged in chunk order) and scale.
  const Index ih = input.dim(1);
  const Index iw = input.dim(2);
  const Index k = config_.kernel;
  const Index stride = config_.stride;
  const Index padding = config_.padding;
  const float* in = input.data();

  const Index nchunks = par::chunk_count(0, oh, 1);
  ChunkCounters chunks(nchunks);
  par::parallel_for_chunks(0, oh, 1, [&](Index c, Index y_begin,
                                         Index y_end) {
    OpCounter& local = chunks.slot(c);
    std::int64_t macs = 0;
    std::int64_t skippable = 0;
    for (Index oy = y_begin; oy < y_end; ++oy) {
      const Index base_y = oy * stride - padding;
      const Index ky0 = base_y < 0 ? -base_y : 0;
      const Index ky1 = std::min(k, ih - base_y);
      for (Index ox = 0; ox < ow; ++ox) {
        const Index base_x = ox * stride - padding;
        const Index kx0 = base_x < 0 ? -base_x : 0;
        const Index kx1 = std::min(k, iw - base_x);
        for (Index ic = 0; ic < config_.in_channels; ++ic) {
          const float* in_ic = in + ic * ih * iw;
          for (Index ky = ky0; ky < ky1; ++ky) {
            const float* in_row = in_ic + (base_y + ky) * iw + base_x;
            macs += kx1 - kx0;
            for (Index kx = kx0; kx < kx1; ++kx) {
              if (in_row[kx] == 0.0f) ++skippable;
            }
          }
        }
      }
    }
    local.mults += macs;
    local.adds += macs;
    local.zero_skippable_mults += skippable;
  });
  const OpCounter taps = chunks.total();
  count_mac(taps.mults * config_.out_channels);
  count_zero_skippable(taps.zero_skippable_mults * config_.out_channels);
  count_param_read(
      static_cast<std::int64_t>(weight_.value.numel() + bias_.value.numel()) *
      4);
  count_act_read(input.numel() * 4);
  count_act_write(config_.out_channels * oh * ow * 4);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d::backward: no cached forward");
  }
  const Index ih = cached_input_.dim(1);
  const Index iw = cached_input_.dim(2);
  const Index oh = out_size(ih);
  const Index ow = out_size(iw);
  if (grad_output.rank() != 3 || grad_output.dim(0) != config_.out_channels ||
      grad_output.dim(1) != oh || grad_output.dim(2) != ow) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }

  const Index k = config_.kernel;
  const Index stride = config_.stride;
  const Index padding = config_.padding;
  const float* go_data = grad_output.data();

  // Bias gradients: partitioned by output channel.
  par::parallel_for(0, config_.out_channels, 1, [&](Index oc_begin,
                                                    Index oc_end) {
    for (Index oc = oc_begin; oc < oc_end; ++oc) {
      const float* go_oc = go_data + oc * oh * ow;
      for (Index p = 0; p < oh * ow; ++p) {
        if (go_oc[p] != 0.0f) bias_.grad[oc] += go_oc[p];
      }
    }
  });

  // Weight and input gradients: both are indexed by the input channel, so
  // partitioning by ic keeps every write thread-private. Per-element
  // accumulation order over (oc, oy, ox) matches the serial loop.
  Tensor grad_input(cached_input_.shape());
  const float* in = cached_input_.data();
  par::parallel_for(0, config_.in_channels, 1, [&](Index ic_begin,
                                                   Index ic_end) {
    for (Index ic = ic_begin; ic < ic_end; ++ic) {
      const float* in_ic = in + ic * ih * iw;
      float* gi_ic = grad_input.data() + ic * ih * iw;
      for (Index oc = 0; oc < config_.out_channels; ++oc) {
        const float* go_oc = go_data + oc * oh * ow;
        const Index w_base = (oc * config_.in_channels + ic) * k * k;
        const float* w_ic = weight_.value.data() + w_base;
        float* gw_ic = weight_.grad.data() + w_base;
        for (Index oy = 0; oy < oh; ++oy) {
          const Index base_y = oy * stride - padding;
          const Index ky0 = base_y < 0 ? -base_y : 0;
          const Index ky1 = std::min(k, ih - base_y);
          for (Index ox = 0; ox < ow; ++ox) {
            const float go = go_oc[oy * ow + ox];
            if (go == 0.0f) continue;
            const Index base_x = ox * stride - padding;
            const Index kx0 = base_x < 0 ? -base_x : 0;
            const Index kx1 = std::min(k, iw - base_x);
            for (Index ky = ky0; ky < ky1; ++ky) {
              const float* w_row = w_ic + ky * k;
              float* gw_row = gw_ic + ky * k;
              const float* in_row = in_ic + (base_y + ky) * iw + base_x;
              float* gi_row = gi_ic + (base_y + ky) * iw + base_x;
              for (Index kx = kx0; kx < kx1; ++kx) {
                gw_row[kx] += go * in_row[kx];
                gi_row[kx] += go * w_row[kx];
              }
            }
          }
        }
      }
    }
  });
  return grad_input;
}

std::vector<Param*> Conv2d::params() { return {&weight_, &bias_}; }

}  // namespace evd::nn
