// Weight initialisation schemes.
#pragma once

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace evd::nn {

/// He (Kaiming) normal init for ReLU networks: stddev = sqrt(2 / fan_in).
Tensor he_normal(std::vector<Index> shape, Index fan_in, Rng& rng);

/// Xavier (Glorot) uniform init: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(std::vector<Index> shape, Index fan_in, Index fan_out,
                      Rng& rng);

}  // namespace evd::nn
