// Minimal dense float tensor.
//
// Row-major, arbitrary rank, value semantics. This is deliberately a small
// surface: the layers in evd::nn implement their own loops (and their own
// backward passes), so the tensor only needs shape algebra, element access
// and a few whole-tensor operations.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace evd::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<Index> shape);
  Tensor(std::initializer_list<Index> shape)
      : Tensor(std::vector<Index>(shape)) {}

  static Tensor zeros(std::vector<Index> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<Index> shape, float value);
  /// I.i.d. normal entries (used by initializers).
  static Tensor randn(std::vector<Index> shape, Rng& rng, float stddev = 1.0f);

  const std::vector<Index>& shape() const noexcept { return shape_; }
  Index rank() const noexcept { return static_cast<Index>(shape_.size()); }
  Index dim(Index axis) const { return shape_.at(static_cast<size_t>(axis)); }
  Index numel() const noexcept { return static_cast<Index>(data_.size()); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::vector<float>& vec() noexcept { return data_; }
  const std::vector<float>& vec() const noexcept { return data_; }

  float& operator[](Index i) { return data_[static_cast<size_t>(i)]; }
  float operator[](Index i) const { return data_[static_cast<size_t>(i)]; }

  /// 3-D access (channel, row, col) for feature maps. Bounds unchecked.
  float& at3(Index c, Index h, Index w) noexcept {
    return data_[static_cast<size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }
  float at3(Index c, Index h, Index w) const noexcept {
    return data_[static_cast<size_t>((c * shape_[1] + h) * shape_[2] + w)];
  }
  /// 2-D access (row, col) for matrices. Bounds unchecked.
  float& at2(Index r, Index c) noexcept {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at2(Index r, Index c) const noexcept {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// Reshape in place; new shape must preserve numel. Returns *this.
  Tensor& reshape(std::vector<Index> shape);

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Element-wise accumulate: *this += other (shapes must match).
  Tensor& operator+=(const Tensor& other);
  /// Scale all elements.
  Tensor& operator*=(float s);

  /// Fraction of exactly-zero elements (sparsity measure).
  double zero_fraction() const noexcept;
  float max_abs() const noexcept;
  double sum() const noexcept;

  /// Index of the maximum element (argmax over the flat view).
  Index argmax() const;

  std::string shape_string() const;

 private:
  std::vector<Index> shape_;
  std::vector<float> data_;
};

/// Throwing shape-compatibility check used at layer boundaries.
void check_shape(const Tensor& t, const std::vector<Index>& expected,
                 const char* where);

}  // namespace evd::nn
