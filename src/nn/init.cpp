#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::nn {

Tensor he_normal(std::vector<Index> shape, Index fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("he_normal: fan_in <= 0");
  const auto stddev =
      static_cast<float>(std::sqrt(2.0 / static_cast<double>(fan_in)));
  return Tensor::randn(std::move(shape), rng, stddev);
}

Tensor xavier_uniform(std::vector<Index> shape, Index fan_in, Index fan_out,
                      Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: non-positive fan");
  }
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Tensor t(std::move(shape));
  for (Index i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-a, a));
  }
  return t;
}

}  // namespace evd::nn
