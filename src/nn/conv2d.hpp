// 2-D convolution with manual backward pass.
//
// Input is a single feature volume [C, H, W] (no batch dimension — training
// in this library is per-sample with gradient accumulation). Direct loops,
// zero padding, arbitrary stride. Operation counting distinguishes total
// MACs from zero-skippable MACs (zero activations), feeding the hardware
// models of §III-B.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace evd::nn {

struct Conv2dConfig {
  Index in_channels = 1;
  Index out_channels = 1;
  Index kernel = 3;
  Index stride = 1;
  Index padding = 1;
};

class Conv2d : public Layer {
 public:
  Conv2d(Conv2dConfig config, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2d"; }

  const Conv2dConfig& config() const noexcept { return config_; }
  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }

  /// Output spatial size for a given input size.
  Index out_size(Index in_size) const noexcept {
    return (in_size + 2 * config_.padding - config_.kernel) / config_.stride +
           1;
  }

 private:
  Conv2dConfig config_;
  Param weight_;  ///< [OC, IC, K, K]
  Param bias_;    ///< [OC]
  Tensor cached_input_;
};

}  // namespace evd::nn
