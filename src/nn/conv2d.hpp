// 2-D convolution with manual backward pass.
//
// Input is a single feature volume [C, H, W] (no batch dimension — training
// in this library is per-sample with gradient accumulation). Zero padding,
// arbitrary stride. Two forward kernels produce identical results:
//
//   * Direct — the reference loop nest, with hoisted weight-row pointers and
//     per-row valid-tap ranges instead of per-pixel bounds checks.
//   * Gemm   — im2col into a [C*K*K, OH*OW] patch matrix, then a
//     cache-blocked GEMM over output channels. Accumulation order per output
//     element matches the direct loop (ic, ky, kx ascending), so the two
//     paths agree and both are bitwise reproducible for any EVD_THREADS.
//
// Both kernels parallelise over output channels via evd::par. Operation
// counting distinguishes total MACs from zero-skippable MACs (zero
// activations), feeding the hardware models of §III-B; the counting pass
// aggregates per-chunk counters and merges them deterministically.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace evd::nn {

/// Forward kernel selection. Auto picks Gemm once the patch matrix is big
/// enough to amortise im2col, Direct otherwise (a pure function of shapes,
/// never of thread count). Sparse runs the direct loop nest but skips taps
/// whose activation is exactly zero — bitwise-identical on event-frame
/// inputs (adding w*0.0f to a finite accumulator cannot change its bits
/// unless the accumulator is -0.0, which He-normal/zero-init parameters
/// never produce; the route.cnn_sparse_vs_dense oracle enforces this).
enum class ConvAlgo { Auto, Direct, Gemm, Sparse };

/// Thread-local ConvAlgo override consulted by Conv2d::forward when the
/// layer's own config says Auto. This is how a routed CNN session forces a
/// path through a *shared* model without mutating it: sessions share one
/// Sequential across worker threads, so the override must be per-thread and
/// scoped exactly around the session's forward call.
ConvAlgo thread_conv_algo() noexcept;

/// RAII scope installing a thread-local ConvAlgo override (Auto = none).
/// Restores the previous override on destruction; nests correctly.
class ScopedConvAlgo {
 public:
  explicit ScopedConvAlgo(ConvAlgo algo) noexcept;
  ~ScopedConvAlgo();
  ScopedConvAlgo(const ScopedConvAlgo&) = delete;
  ScopedConvAlgo& operator=(const ScopedConvAlgo&) = delete;

 private:
  ConvAlgo previous_;
};

struct Conv2dConfig {
  Index in_channels = 1;
  Index out_channels = 1;
  Index kernel = 3;
  Index stride = 1;
  Index padding = 1;
  ConvAlgo algo = ConvAlgo::Auto;
  /// This layer consumes the (sparse) event frame. Only such layers honor a
  /// thread-local Sparse override: deeper layers see dense post-ReLU
  /// activations, where the zero-skip gate pays a test per tap for nothing
  /// and would displace the SIMD GEMM kernel. An explicit config algo of
  /// Sparse is always honored regardless.
  bool frame_input = false;
};

class Conv2d : public Layer {
 public:
  Conv2d(Conv2dConfig config, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Conv2d"; }

  const Conv2dConfig& config() const noexcept { return config_; }
  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }

  /// Output spatial size for a given input size.
  Index out_size(Index in_size) const noexcept {
    return (in_size + 2 * config_.padding - config_.kernel) / config_.stride +
           1;
  }

 private:
  bool use_gemm(Index oh, Index ow) const noexcept;
  Tensor forward_direct(const Tensor& input, Index oh, Index ow) const;
  Tensor forward_sparse(const Tensor& input, Index oh, Index ow) const;
  Tensor forward_gemm(const Tensor& input, Index oh, Index ow) const;
  void count_forward(const Tensor& input, Index oh, Index ow) const;

  Conv2dConfig config_;
  Param weight_;  ///< [OC, IC, K, K]
  Param bias_;    ///< [OC]
  Tensor cached_input_;
};

}  // namespace evd::nn
