#include "nn/softmax.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.numel() == 0) {
    throw std::invalid_argument("softmax: empty logits");
  }
  Tensor out = logits;
  softmax_into(logits, out);
  return out;
}

void softmax_into(const Tensor& logits, Tensor& out) {
  if (logits.numel() == 0) {
    throw std::invalid_argument("softmax: empty logits");
  }
  if (out.numel() != logits.numel()) {
    throw std::invalid_argument("softmax_into: shape mismatch");
  }
  const float m = [&] {
    float best = logits[0];
    for (Index i = 1; i < logits.numel(); ++i) best = std::max(best, logits[i]);
    return best;
  }();
  double sum = 0.0;
  for (Index i = 0; i < logits.numel(); ++i) {
    out[i] = std::exp(logits[i] - m);
    sum += out[i];
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (Index i = 0; i < out.numel(); ++i) out[i] *= inv;
}

CrossEntropy softmax_cross_entropy(const Tensor& logits, Index target) {
  if (target < 0 || target >= logits.numel()) {
    throw std::invalid_argument("softmax_cross_entropy: target out of range");
  }
  CrossEntropy result;
  result.probabilities = softmax(logits);
  const double p = std::max(
      static_cast<double>(result.probabilities[target]), 1e-12);
  result.loss = -std::log(p);
  result.grad = result.probabilities;
  result.grad[target] -= 1.0f;
  return result;
}

MseLoss mse_loss(const Tensor& prediction, const Tensor& target) {
  if (prediction.numel() != target.numel() || prediction.numel() == 0) {
    throw std::invalid_argument("mse_loss: shape mismatch or empty");
  }
  MseLoss result;
  result.grad = Tensor(prediction.shape());
  const double inv = 1.0 / static_cast<double>(prediction.numel());
  for (Index i = 0; i < prediction.numel(); ++i) {
    const double diff = static_cast<double>(prediction[i]) - target[i];
    result.loss += diff * diff * inv;
    result.grad[i] = static_cast<float>(2.0 * diff * inv);
  }
  return result;
}

}  // namespace evd::nn
