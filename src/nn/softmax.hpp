// Softmax + cross-entropy, fused for numerical stability.
#pragma once

#include "nn/tensor.hpp"

namespace evd::nn {

/// Numerically stable softmax over a flat logit vector.
Tensor softmax(const Tensor& logits);

/// softmax writing into caller-owned `out` (same numel, preallocated):
/// allocation-free and bitwise identical to softmax(). `out` may not alias
/// `logits`. Streaming sessions use this on their per-event path.
void softmax_into(const Tensor& logits, Tensor& out);

/// Fused softmax-cross-entropy. Returns the loss; writes d(loss)/d(logits)
/// into grad (same shape as logits). target is the class index.
struct CrossEntropy {
  double loss = 0.0;
  Tensor grad;
  Tensor probabilities;
};

CrossEntropy softmax_cross_entropy(const Tensor& logits, Index target);

/// Mean-squared-error loss for regression heads (e.g. localization).
/// Returns the loss; grad is d(loss)/d(prediction).
struct MseLoss {
  double loss = 0.0;
  Tensor grad;
};

MseLoss mse_loss(const Tensor& prediction, const Tensor& target);

}  // namespace evd::nn
