// Weight/activation quantization (paper §III-B [52], §III-A conversion
// path [39]).
//
// * Post-training quantization: uniform symmetric fake-quantization of all
//   parameters to b bits.
// * Quantization-aware training via the straight-through estimator [39]:
//   QatTrainer keeps full-precision latent parameters, runs forward/backward
//   at the quantized point, and applies the (unmodified) gradients to the
//   latent weights.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evd::nn {

struct QuantResult {
  Tensor values;  ///< Quantize-dequantized tensor.
  float scale = 1.0f;
  int bits = 8;
};

/// Uniform symmetric quantization to `bits` bits (range ±max|x|).
QuantResult fake_quantize(const Tensor& tensor, int bits);

/// Quantize every parameter of the model in place (post-training).
void quantize_params(const std::vector<Param*>& params, int bits);

/// Straight-through-estimator QAT driver.
///
/// Usage per training step:
///   qat.quantize_for_forward();   // params := Q(latent)
///   ... forward / backward ...    // grads computed at quantized point
///   qat.restore_latent();         // params := latent
///   optimizer.step();             // latent updated with STE gradients
class QatTrainer {
 public:
  QatTrainer(std::vector<Param*> params, int bits);

  void quantize_for_forward();
  void restore_latent();

  int bits() const noexcept { return bits_; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> latent_;
  int bits_;
  bool quantized_ = false;
};

}  // namespace evd::nn
