// Max and average pooling over [C, H, W] feature volumes.
#pragma once

#include "nn/layer.hpp"

namespace evd::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(Index window, Index stride = 0)
      : window_(window), stride_(stride > 0 ? stride : window) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  Index window_, stride_;
  Tensor cached_input_;
  std::vector<Index> argmax_;  ///< Flat input index of each output's max.
};

class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(Index window, Index stride = 0)
      : window_(window), stride_(stride > 0 ? stride : window) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  Index window_, stride_;
  std::vector<Index> in_shape_;
};

/// Global average pool: [C, H, W] -> [C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<Index> in_shape_;
};

}  // namespace evd::nn
