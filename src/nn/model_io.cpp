#include "nn/model_io.hpp"

#include <stdexcept>

#include "common/serialization.hpp"

namespace evd::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4D445645;  // "EVDM"
}

void save_params(const std::string& path, const std::vector<Param*>& params) {
  BinaryWriter writer(path);
  writer.write_u32(kMagic);
  writer.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) {
    writer.write_string(p->name);
    writer.write_u32(static_cast<std::uint32_t>(p->value.rank()));
    for (Index d = 0; d < p->value.rank(); ++d) {
      writer.write_i64(p->value.dim(d));
    }
    writer.write_f32_vector(p->value.vec());
  }
}

void load_params(const std::string& path, const std::vector<Param*>& params) {
  BinaryReader reader(path);
  if (reader.read_u32() != kMagic) {
    throw std::runtime_error("load_params: bad magic in " + path);
  }
  const auto count = reader.read_u32();
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch (file " +
                             std::to_string(count) + ", model " +
                             std::to_string(params.size()) + ")");
  }
  for (auto* p : params) {
    const std::string name = reader.read_string();
    if (name != p->name) {
      throw std::runtime_error("load_params: expected parameter '" + p->name +
                               "', file has '" + name + "'");
    }
    const auto rank = reader.read_u32();
    std::vector<Index> shape(rank);
    for (auto& d : shape) d = reader.read_i64();
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_params: shape mismatch for '" + name +
                               "'");
    }
    const auto values = reader.read_f32_vector();
    if (static_cast<Index>(values.size()) != p->value.numel()) {
      throw std::runtime_error("load_params: value count mismatch for '" +
                               name + "'");
    }
    p->value.vec() = values;
  }
}

}  // namespace evd::nn
