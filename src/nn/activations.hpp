// Element-wise activation layers. ReLU is the sparsity workhorse of the
// CNN pipeline (paper §III-B [50]); the others support the SNN conversion
// path and ablations.
#pragma once

#include "nn/layer.hpp"

namespace evd::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

  /// Output sparsity of the most recent forward (fraction of zeros).
  double last_sparsity() const noexcept { return last_sparsity_; }

 private:
  Tensor mask_;  ///< 1 where input > 0.
  double last_sparsity_ = 0.0;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f) : slope_(slope) {}
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Flatten [C,H,W] (or any shape) to [N]; shape bookkeeping only.
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<Index> in_shape_;
};

}  // namespace evd::nn
