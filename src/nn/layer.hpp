// Layer interface for the from-scratch network stack.
//
// Layers own their parameters and their parameter gradients, cache whatever
// they need from the forward pass, and implement an explicit backward pass.
// There is no autograd graph: Sequential simply calls backward in reverse
// order, which is all the architectures in this library need.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace evd::nn {

/// A learnable parameter: value + gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` enables caching for backward.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backward pass: gradient w.r.t. input given gradient w.r.t. output.
  /// Accumulates into parameter grads. Requires a prior forward(train=true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Mutable views of this layer's parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  virtual std::string name() const = 0;

  /// Total learnable scalar count.
  Index param_count() {
    Index n = 0;
    for (auto* p : params()) n += p->value.numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace evd::nn
