#include "nn/sequential.hpp"

namespace evd::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (auto* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::pair<double, bool> train_step(Sequential& model, const Tensor& input,
                                   Index label) {
  const Tensor logits = model.forward(input, /*train=*/true);
  const CrossEntropy ce = softmax_cross_entropy(logits, label);
  model.backward(ce.grad);
  return {ce.loss, logits.argmax() == label};
}

Index predict(Sequential& model, const Tensor& input) {
  return model.forward(input, /*train=*/false).argmax();
}

}  // namespace evd::nn
