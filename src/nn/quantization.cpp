#include "nn/quantization.hpp"

#include <cmath>
#include <stdexcept>

namespace evd::nn {

QuantResult fake_quantize(const Tensor& tensor, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("fake_quantize: bits must be in [2, 16]");
  }
  QuantResult result;
  result.bits = bits;
  const float max_abs = tensor.max_abs();
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  result.scale = max_abs > 0.0f ? max_abs / qmax : 1.0f;
  result.values = tensor;
  for (Index i = 0; i < result.values.numel(); ++i) {
    const float q = std::round(result.values[i] / result.scale);
    result.values[i] =
        std::min(std::max(q, -qmax - 1.0f), qmax) * result.scale;
  }
  return result;
}

void quantize_params(const std::vector<Param*>& params, int bits) {
  for (auto* p : params) {
    p->value = fake_quantize(p->value, bits).values;
  }
}

QatTrainer::QatTrainer(std::vector<Param*> params, int bits)
    : params_(std::move(params)), bits_(bits) {
  latent_.reserve(params_.size());
  for (auto* p : params_) latent_.push_back(p->value);
}

void QatTrainer::quantize_for_forward() {
  if (quantized_) throw std::logic_error("QatTrainer: already quantized");
  for (size_t k = 0; k < params_.size(); ++k) {
    latent_[k] = params_[k]->value;  // capture latest latent
    params_[k]->value = fake_quantize(latent_[k], bits_).values;
  }
  quantized_ = true;
}

void QatTrainer::restore_latent() {
  if (!quantized_) throw std::logic_error("QatTrainer: not quantized");
  for (size_t k = 0; k < params_.size(); ++k) {
    params_[k]->value = latent_[k];
  }
  quantized_ = false;
}

}  // namespace evd::nn
