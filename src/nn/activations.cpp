#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/counters.hpp"

namespace evd::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor output = input;
  if (train) mask_ = Tensor(input.shape());
  Index zeros = 0;
  for (Index i = 0; i < output.numel(); ++i) {
    if (output[i] > 0.0f) {
      if (train) mask_[i] = 1.0f;
    } else {
      output[i] = 0.0f;
      ++zeros;
    }
  }
  last_sparsity_ = output.numel() > 0
                       ? static_cast<double>(zeros) /
                             static_cast<double>(output.numel())
                       : 0.0;
  count_compare(output.numel());
  count_act_read(input.numel() * 4);
  count_act_write(output.numel() * 4);
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (mask_.numel() != grad_output.numel()) {
    throw std::logic_error("ReLU::backward: no/mismatched cached forward");
  }
  Tensor grad_input = grad_output;
  for (Index i = 0; i < grad_input.numel(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

Tensor LeakyReLU::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  Tensor output = input;
  for (Index i = 0; i < output.numel(); ++i) {
    if (output[i] < 0.0f) output[i] *= slope_;
  }
  count_compare(output.numel());
  return output;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  if (cached_input_.numel() != grad_output.numel()) {
    throw std::logic_error("LeakyReLU::backward: no cached forward");
  }
  Tensor grad_input = grad_output;
  for (Index i = 0; i < grad_input.numel(); ++i) {
    if (cached_input_[i] < 0.0f) grad_input[i] *= slope_;
  }
  return grad_input;
}

Tensor Sigmoid::forward(const Tensor& input, bool train) {
  Tensor output = input;
  for (Index i = 0; i < output.numel(); ++i) {
    output[i] = 1.0f / (1.0f + std::exp(-output[i]));
  }
  if (train) cached_output_ = output;
  count_mult(output.numel() * 4);  // exp approximated as ~4 mults
  return output;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (cached_output_.numel() != grad_output.numel()) {
    throw std::logic_error("Sigmoid::backward: no cached forward");
  }
  Tensor grad_input = grad_output;
  for (Index i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= y * (1.0f - y);
  }
  return grad_input;
}

Tensor Tanh::forward(const Tensor& input, bool train) {
  Tensor output = input;
  for (Index i = 0; i < output.numel(); ++i) output[i] = std::tanh(output[i]);
  if (train) cached_output_ = output;
  count_mult(output.numel() * 4);
  return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cached_output_.numel() != grad_output.numel()) {
    throw std::logic_error("Tanh::backward: no cached forward");
  }
  Tensor grad_input = grad_output;
  for (Index i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] *= 1.0f - y * y;
  }
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (train) in_shape_ = input.shape();
  Tensor output = input;
  output.reshape({input.numel()});
  return output;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (in_shape_.empty()) {
    throw std::logic_error("Flatten::backward: no cached forward");
  }
  Tensor grad_input = grad_output;
  grad_input.reshape(in_shape_);
  return grad_input;
}

}  // namespace evd::nn
