#include "nn/linear.hpp"

#include <stdexcept>

#include "common/parallel.hpp"
#include "nn/counters.hpp"
#include "nn/init.hpp"

namespace evd::nn {
namespace {

/// Chunk size for loops over output features: keep per-chunk work around a
/// few thousand MACs so small layers stay serial (shape-only, so the split
/// never depends on the thread count).
Index feature_grain(Index inner) {
  const Index grain = 4096 / (inner > 0 ? inner : 1);
  return grain < 1 ? 1 : grain;
}

}  // namespace

Linear::Linear(Index in_features, Index out_features, Rng& rng, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_("weight", he_normal({out_features, in_features}, in_features, rng)),
      bias_("bias", Tensor({out_features})) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: non-positive feature count");
  }
}

Tensor Linear::forward(const Tensor& input, bool train) {
  if (input.numel() != in_) {
    throw std::invalid_argument("Linear::forward: input numel " +
                                std::to_string(input.numel()) + " != " +
                                std::to_string(in_));
  }
  if (train) cached_input_ = input;

  Tensor output({out_});
  const float* x = input.data();
  par::parallel_for(0, out_, feature_grain(in_), [&](Index begin, Index end) {
    for (Index o = begin; o < end; ++o) {
      const float* w = weight_.value.data() + o * in_;
      float acc = has_bias_ ? bias_.value[o] : 0.0f;
      for (Index i = 0; i < in_; ++i) acc += w[i] * x[i];
      output[o] = acc;
    }
  });

  if (active_counter() != nullptr) {
    count_mac(out_ * in_);
    Index zeros = 0;
    for (Index i = 0; i < in_; ++i) zeros += (x[i] == 0.0f) ? 1 : 0;
    count_zero_skippable(zeros * out_);
    count_param_read(static_cast<std::int64_t>(weight_.value.numel() +
                                               (has_bias_ ? out_ : 0)) * 4);
    count_act_read(in_ * 4);
    count_act_write(out_ * 4);
  }
  return output;
}

void Linear::forward_into(const Tensor& input, Tensor& output) {
  if (input.numel() != in_) {
    throw std::invalid_argument("Linear::forward_into: input numel " +
                                std::to_string(input.numel()) + " != " +
                                std::to_string(in_));
  }
  if (output.numel() != out_) {
    throw std::invalid_argument("Linear::forward_into: output numel " +
                                std::to_string(output.numel()) + " != " +
                                std::to_string(out_));
  }
  const float* x = input.data();
  // Serial on purpose: parallel_for's std::function erases a capture too
  // large for SBO, which would heap-allocate on every call. Heads this
  // method serves are small; per-feature accumulation order matches
  // forward() exactly.
  for (Index o = 0; o < out_; ++o) {
    const float* w = weight_.value.data() + o * in_;
    float acc = has_bias_ ? bias_.value[o] : 0.0f;
    for (Index i = 0; i < in_; ++i) acc += w[i] * x[i];
    output[o] = acc;
  }

  if (active_counter() != nullptr) {
    count_mac(out_ * in_);
    Index zeros = 0;
    for (Index i = 0; i < in_; ++i) zeros += (x[i] == 0.0f) ? 1 : 0;
    count_zero_skippable(zeros * out_);
    count_param_read(static_cast<std::int64_t>(weight_.value.numel() +
                                               (has_bias_ ? out_ : 0)) * 4);
    count_act_read(in_ * 4);
    count_act_write(out_ * 4);
  }
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (grad_output.numel() != out_) {
    throw std::invalid_argument("Linear::backward: grad numel mismatch");
  }
  if (cached_input_.numel() != in_) {
    throw std::logic_error("Linear::backward: no cached forward");
  }
  Tensor grad_input({in_});
  const float* g = grad_output.data();
  const float* x = cached_input_.data();
  // Weight/bias gradients partition by output feature; the input gradient
  // (W^T g) partitions by input feature — two passes, no shared writes.
  par::parallel_for(0, out_, feature_grain(in_), [&](Index begin, Index end) {
    for (Index o = begin; o < end; ++o) {
      const float go = g[o];
      float* dw = weight_.grad.data() + o * in_;
      for (Index i = 0; i < in_; ++i) dw[i] += go * x[i];
      if (has_bias_) bias_.grad[o] += go;
    }
  });
  par::parallel_for(0, in_, feature_grain(out_), [&](Index begin, Index end) {
    const float* w = weight_.value.data();
    for (Index i = begin; i < end; ++i) {
      float acc = 0.0f;
      for (Index o = 0; o < out_; ++o) acc += g[o] * w[o * in_ + i];
      grad_input[i] = acc;
    }
  });
  return grad_input;
}

std::vector<Param*> Linear::params() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace evd::nn
