#include "nn/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace evd::nn {

PruneMask::PruneMask(std::vector<Param*> params) : params_(std::move(params)) {
  keep_.reserve(params_.size());
  for (auto* p : params_) {
    keep_.emplace_back(static_cast<size_t>(p->value.numel()), 1);
  }
}

void PruneMask::prune_magnitude(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("prune_magnitude: fraction out of [0,1]");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    if (p.value.rank() < 2) continue;  // skip biases
    const auto n = static_cast<size_t>(p.value.numel());
    std::vector<float> mags(n);
    for (size_t i = 0; i < n; ++i) {
      mags[i] = std::fabs(p.value[static_cast<Index>(i)]);
    }
    auto sorted = mags;
    const auto cut = static_cast<size_t>(fraction * static_cast<double>(n));
    if (cut == 0) continue;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(cut - 1),
                     sorted.end());
    const float threshold = sorted[cut - 1];
    size_t pruned = 0;
    for (size_t i = 0; i < n && pruned < cut; ++i) {
      if (mags[i] <= threshold && keep_[k][i]) {
        keep_[k][i] = 0;
        ++pruned;
      }
    }
  }
  apply();
}

void PruneMask::prune_structured_rows(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("prune_structured_rows: fraction out of [0,1]");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    if (p.value.rank() < 2) continue;
    const Index rows = p.value.dim(0);
    const Index row_size = p.value.numel() / rows;
    std::vector<std::pair<double, Index>> norms;
    norms.reserve(static_cast<size_t>(rows));
    for (Index r = 0; r < rows; ++r) {
      double n2 = 0.0;
      for (Index i = 0; i < row_size; ++i) {
        const float v = p.value[r * row_size + i];
        n2 += static_cast<double>(v) * v;
      }
      norms.emplace_back(n2, r);
    }
    std::sort(norms.begin(), norms.end());
    const auto cut =
        static_cast<size_t>(fraction * static_cast<double>(rows));
    for (size_t j = 0; j < cut; ++j) {
      const Index r = norms[j].second;
      for (Index i = 0; i < row_size; ++i) {
        keep_[k][static_cast<size_t>(r * row_size + i)] = 0;
      }
    }
  }
  apply();
}

void PruneMask::apply() {
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    for (Index i = 0; i < p.value.numel(); ++i) {
      if (!keep_[k][static_cast<size_t>(i)]) p.value[i] = 0.0f;
    }
  }
}

double PruneMask::sparsity() const {
  Index total = 0, pruned = 0;
  for (const auto& mask : keep_) {
    total += static_cast<Index>(mask.size());
    for (const char bit : mask) pruned += bit ? 0 : 1;
  }
  return total > 0 ? static_cast<double>(pruned) / static_cast<double>(total)
                   : 0.0;
}

double weight_sparsity(const std::vector<Param*>& params) {
  Index total = 0, zeros = 0;
  for (const auto* p : params) {
    total += p->value.numel();
    for (Index i = 0; i < p->value.numel(); ++i) {
      zeros += (p->value[i] == 0.0f) ? 1 : 0;
    }
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace evd::nn
