// Operation and memory-traffic counters.
//
// Every layer in every pipeline reports its arithmetic work (multiplies,
// additions, comparisons) and its idealised memory traffic (parameter and
// activation bytes touched) into the active OpCounter. The hardware cost
// models in evd::hw turn these counts into energy/latency via per-op energy
// tables — this is how the paper's Table I rows "Computation - #Operations",
// "Memory - Bandwidth" and "System - Energy Efficiency" become measurements.
//
// Counting is scoped: installing a ScopedCounter makes it the active sink
// for the current thread; a null active counter makes all count_* calls
// no-ops (so hot paths stay cheap when not being measured).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace evd::nn {

struct OpCounter {
  // Arithmetic.
  std::int64_t mults = 0;        ///< Multiplies (incl. the mul of each MAC).
  std::int64_t adds = 0;         ///< Additions (incl. the add of each MAC).
  std::int64_t comparisons = 0;  ///< Thresholds, max-pool compares, spikes.
  /// Multiplies whose activation operand was exactly zero: dense hardware
  /// performs them, zero-skipping hardware elides them (paper §III-B).
  std::int64_t zero_skippable_mults = 0;
  // Memory traffic in bytes (idealised: every operand touched once).
  std::int64_t param_bytes_read = 0;
  std::int64_t act_bytes_read = 0;
  std::int64_t act_bytes_written = 0;
  std::int64_t state_bytes_rw = 0;  ///< Persistent state (SNN membranes, graphs).

  std::int64_t macs() const noexcept { return mults < adds ? mults : adds; }
  std::int64_t total_ops() const noexcept { return mults + adds + comparisons; }
  std::int64_t total_bytes() const noexcept {
    return param_bytes_read + act_bytes_read + act_bytes_written +
           state_bytes_rw;
  }

  OpCounter& operator+=(const OpCounter& other) noexcept {
    mults += other.mults;
    adds += other.adds;
    comparisons += other.comparisons;
    zero_skippable_mults += other.zero_skippable_mults;
    param_bytes_read += other.param_bytes_read;
    act_bytes_read += other.act_bytes_read;
    act_bytes_written += other.act_bytes_written;
    state_bytes_rw += other.state_bytes_rw;
    return *this;
  }
};

namespace detail {
inline OpCounter*& active_counter_ref() noexcept {
  thread_local OpCounter* active = nullptr;
  return active;
}
}  // namespace detail

inline OpCounter* active_counter() noexcept {
  return detail::active_counter_ref();
}

/// RAII activation of a counter for the current thread (nestable: restores
/// the previous sink on destruction).
class ScopedCounter {
 public:
  explicit ScopedCounter(OpCounter& counter) noexcept
      : previous_(detail::active_counter_ref()) {
    detail::active_counter_ref() = &counter;
  }
  ~ScopedCounter() { detail::active_counter_ref() = previous_; }
  ScopedCounter(const ScopedCounter&) = delete;
  ScopedCounter& operator=(const ScopedCounter&) = delete;

 private:
  OpCounter* previous_;
};

inline void count_mac(std::int64_t n) noexcept {
  if (auto* c = active_counter()) {
    c->mults += n;
    c->adds += n;
  }
}
inline void count_mult(std::int64_t n) noexcept {
  if (auto* c = active_counter()) c->mults += n;
}
inline void count_add(std::int64_t n) noexcept {
  if (auto* c = active_counter()) c->adds += n;
}
inline void count_compare(std::int64_t n) noexcept {
  if (auto* c = active_counter()) c->comparisons += n;
}
inline void count_zero_skippable(std::int64_t n) noexcept {
  if (auto* c = active_counter()) c->zero_skippable_mults += n;
}
inline void count_param_read(std::int64_t bytes) noexcept {
  if (auto* c = active_counter()) c->param_bytes_read += bytes;
}
inline void count_act_read(std::int64_t bytes) noexcept {
  if (auto* c = active_counter()) c->act_bytes_read += bytes;
}
inline void count_act_write(std::int64_t bytes) noexcept {
  if (auto* c = active_counter()) c->act_bytes_written += bytes;
}
inline void count_state_rw(std::int64_t bytes) noexcept {
  if (auto* c = active_counter()) c->state_bytes_rw += bytes;
}

/// Deterministic scatter/gather of op counts across a parallel region.
///
/// The active counter is thread-local, so count_* calls made on pool workers
/// would otherwise vanish (or race, if workers shared the caller's sink).
/// Instead each chunk of a parallel_for_chunks region accumulates into its
/// own slot — either directly through the public OpCounter fields or by
/// installing `ScopedCounter scope(cc.slot(c))` inside the chunk — and
/// merge() folds the partials into the caller's active counter in ascending
/// chunk order, so totals are identical for any thread count.
class ChunkCounters {
 public:
  explicit ChunkCounters(Index nchunks)
      : partials_(static_cast<size_t>(nchunks > 0 ? nchunks : 0)) {}

  OpCounter& slot(Index chunk) noexcept {
    return partials_[static_cast<size_t>(chunk)];
  }

  /// Sum of all partials (whether or not a counter is active).
  OpCounter total() const noexcept {
    OpCounter sum;
    for (const auto& partial : partials_) sum += partial;
    return sum;
  }

  /// Fold the partials into the caller's active counter (no-op when none).
  void merge() const noexcept {
    if (auto* c = active_counter()) {
      for (const auto& partial : partials_) *c += partial;
    }
  }

 private:
  std::vector<OpCounter> partials_;
};

}  // namespace evd::nn
