// Weight pruning (paper §III-B [51], structured variant [65]).
//
// Magnitude pruning zeroes the smallest-|w| fraction of weights; a PruneMask
// re-applied after each optimizer step keeps them zero through fine-tuning.
// Structured pruning zeroes whole rows (output neurons / channels), giving
// the regular sparsity pattern that both systolic and zero-skipping
// accelerators exploit without irregular memory access [65].
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace evd::nn {

/// Binary masks parallel to a parameter set.
class PruneMask {
 public:
  explicit PruneMask(std::vector<Param*> params);

  /// Zero the `fraction` smallest-magnitude weights of each parameter
  /// tensor independently (per-layer magnitude pruning).
  void prune_magnitude(double fraction);

  /// Zero the `fraction` of rows (dim-0 slices) with smallest L2 norm —
  /// structured sparsity. Only applied to parameters of rank >= 2.
  void prune_structured_rows(double fraction);

  /// Re-zero masked weights (call after every optimizer step).
  void apply();

  /// Overall weight sparsity under the current mask.
  double sparsity() const;

 private:
  std::vector<Param*> params_;
  std::vector<std::vector<char>> keep_;  ///< 1 = keep, 0 = pruned.
};

/// Fraction of exactly-zero weights across a parameter set.
double weight_sparsity(const std::vector<Param*>& params);

}  // namespace evd::nn
