#include "nn/optimizer.hpp"

#include <cmath>

namespace evd::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    auto& vel = velocity_[k];
    for (Index i = 0; i < p.value.numel(); ++i) {
      float g = p.grad[i] + weight_decay_ * p.value[i];
      if (momentum_ > 0.0f) {
        vel[i] = momentum_ * vel[i] + g;
        g = vel[i];
      }
      p.value[i] -= lr_ * g;
    }
    p.grad.zero();
  }
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& p = *params_[k];
    for (Index i = 0; i < p.value.numel(); ++i) {
      const float g = p.grad[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const double mhat = m_[k][i] / bc1;
      const double vhat = v_[k][i] / bc2;
      p.value[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
    p.grad.zero();
  }
}

void clip_grad_norm(const std::vector<Param*>& params, float max_norm) {
  double norm2 = 0.0;
  for (auto* p : params) {
    for (Index i = 0; i < p->grad.numel(); ++i) {
      norm2 += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const double norm = std::sqrt(norm2);
  if (norm <= max_norm || norm == 0.0) return;
  const auto scale = static_cast<float>(max_norm / norm);
  for (auto* p : params) {
    for (Index i = 0; i < p->grad.numel(); ++i) p->grad[i] *= scale;
  }
}

}  // namespace evd::nn
