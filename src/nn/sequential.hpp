// Sequential layer container plus a minimal classifier training loop.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/layer.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"

namespace evd::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void push(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Sequential"; }

  Index size() const noexcept { return static_cast<Index>(layers_.size()); }
  Layer& layer(Index i) { return *layers_.at(static_cast<size_t>(i)); }

 private:
  std::vector<LayerPtr> layers_;
};

/// One training step on (input, label): forward, loss, backward, grad
/// accumulation. Returns (loss, correct?). Caller steps the optimizer.
std::pair<double, bool> train_step(Sequential& model, const Tensor& input,
                                   Index label);

/// Greedy prediction (argmax of logits).
Index predict(Sequential& model, const Tensor& input);

}  // namespace evd::nn
