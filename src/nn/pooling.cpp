#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

#include "common/parallel.hpp"
#include "nn/counters.hpp"

namespace evd::nn {
namespace {

void require_chw(const Tensor& t, const char* where) {
  if (t.rank() != 3) {
    throw std::invalid_argument(std::string(where) + ": expected [C,H,W]");
  }
}

Index pooled_size(Index in, Index window, Index stride) {
  return in < window ? 0 : (in - window) / stride + 1;
}

}  // namespace

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  require_chw(input, "MaxPool2d");
  const Index c = input.dim(0), ih = input.dim(1), iw = input.dim(2);
  const Index oh = pooled_size(ih, window_, stride_);
  const Index ow = pooled_size(iw, window_, stride_);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("MaxPool2d: window larger than input");
  }
  Tensor output({c, oh, ow});
  argmax_.assign(static_cast<size_t>(c * oh * ow), 0);
  if (train) cached_input_ = input;

  par::parallel_for(0, c, 1, [&](Index ch_begin, Index ch_end) {
    for (Index ch = ch_begin; ch < ch_end; ++ch) {
      Index out_idx = ch * oh * ow;
      for (Index oy = 0; oy < oh; ++oy) {
        for (Index ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          Index best_idx = 0;
          for (Index wy = 0; wy < window_; ++wy) {
            for (Index wx = 0; wx < window_; ++wx) {
              const Index y = oy * stride_ + wy;
              const Index x = ox * stride_ + wx;
              const float v = input.at3(ch, y, x);
              if (v > best) {
                best = v;
                best_idx = (ch * ih + y) * iw + x;
              }
            }
          }
          output[out_idx] = best;
          argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  });
  count_compare(c * oh * ow * window_ * window_);
  count_act_read(input.numel() * 4);
  count_act_write(output.numel() * 4);
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("MaxPool2d::backward: no cached forward");
  }
  Tensor grad_input(cached_input_.shape());
  for (Index i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  require_chw(input, "AvgPool2d");
  const Index c = input.dim(0), ih = input.dim(1), iw = input.dim(2);
  const Index oh = pooled_size(ih, window_, stride_);
  const Index ow = pooled_size(iw, window_, stride_);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("AvgPool2d: window larger than input");
  }
  if (train) in_shape_ = input.shape();
  const float inv = 1.0f / static_cast<float>(window_ * window_);

  Tensor output({c, oh, ow});
  par::parallel_for(0, c, 1, [&](Index ch_begin, Index ch_end) {
    for (Index ch = ch_begin; ch < ch_end; ++ch) {
      for (Index oy = 0; oy < oh; ++oy) {
        for (Index ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (Index wy = 0; wy < window_; ++wy) {
            for (Index wx = 0; wx < window_; ++wx) {
              acc += input.at3(ch, oy * stride_ + wy, ox * stride_ + wx);
            }
          }
          output.at3(ch, oy, ox) = acc * inv;
        }
      }
    }
  });
  count_add(c * oh * ow * window_ * window_);
  count_mult(c * oh * ow);
  count_act_read(input.numel() * 4);
  count_act_write(output.numel() * 4);
  return output;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  if (in_shape_.empty()) {
    throw std::logic_error("AvgPool2d::backward: no cached forward");
  }
  Tensor grad_input(in_shape_);
  const Index c = in_shape_[0];
  const Index oh = grad_output.dim(1), ow = grad_output.dim(2);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  par::parallel_for(0, c, 1, [&](Index ch_begin, Index ch_end) {
    for (Index ch = ch_begin; ch < ch_end; ++ch) {
      for (Index oy = 0; oy < oh; ++oy) {
        for (Index ox = 0; ox < ow; ++ox) {
          const float g = grad_output.at3(ch, oy, ox) * inv;
          for (Index wy = 0; wy < window_; ++wy) {
            for (Index wx = 0; wx < window_; ++wx) {
              grad_input.at3(ch, oy * stride_ + wy, ox * stride_ + wx) += g;
            }
          }
        }
      }
    }
  });
  return grad_input;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  require_chw(input, "GlobalAvgPool");
  if (train) in_shape_ = input.shape();
  const Index c = input.dim(0);
  const Index area = input.dim(1) * input.dim(2);
  Tensor output({c});
  par::parallel_for(0, c, 1, [&](Index ch_begin, Index ch_end) {
    for (Index ch = ch_begin; ch < ch_end; ++ch) {
      float acc = 0.0f;
      for (Index y = 0; y < input.dim(1); ++y) {
        for (Index x = 0; x < input.dim(2); ++x) acc += input.at3(ch, y, x);
      }
      output[ch] = acc / static_cast<float>(area);
    }
  });
  count_add(input.numel());
  count_act_read(input.numel() * 4);
  count_act_write(c * 4);
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  if (in_shape_.empty()) {
    throw std::logic_error("GlobalAvgPool::backward: no cached forward");
  }
  Tensor grad_input(in_shape_);
  const float inv = 1.0f / static_cast<float>(in_shape_[1] * in_shape_[2]);
  for (Index ch = 0; ch < in_shape_[0]; ++ch) {
    const float g = grad_output[ch] * inv;
    for (Index y = 0; y < in_shape_[1]; ++y) {
      for (Index x = 0; x < in_shape_[2]; ++x) grad_input.at3(ch, y, x) = g;
    }
  }
  return grad_input;
}

}  // namespace evd::nn
