// Fully-connected layer with manual backward pass.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace evd::nn {

class Linear : public Layer {
 public:
  /// Weight is [out_features, in_features]; He-initialised.
  Linear(Index in_features, Index out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;

  /// Inference-only forward writing into caller-owned `output` (shape
  /// [out_features], preallocated): no tensor allocation, no parallel
  /// dispatch. Per-output-feature accumulation order is identical to
  /// forward(), so results are bitwise equal — the streaming runtime's
  /// zero-allocation feed path depends on both properties.
  void forward_into(const Tensor& input, Tensor& output);

  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string name() const override { return "Linear"; }

  Index in_features() const noexcept { return in_; }
  Index out_features() const noexcept { return out_; }
  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }
  bool has_bias() const noexcept { return has_bias_; }

 private:
  Index in_, out_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

}  // namespace evd::nn
