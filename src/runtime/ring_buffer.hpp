// Fixed-capacity FIFO ring. Storage is allocated once at construction and
// never resized — the primitive under EventQueue and the DecisionSink's
// retained tail. Single-threaded by design: the runtime's concurrency model
// is "one thread owns a session and everything attached to it" (the
// SessionManager hands disjoint sessions to disjoint pool workers), so the
// ring needs no atomics and costs two index updates per op.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"

namespace evd::runtime {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(Index capacity)
      : slots_(static_cast<size_t>(capacity < 1 ? 1 : capacity)) {}

  Index capacity() const noexcept { return static_cast<Index>(slots_.size()); }
  Index size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  bool full() const noexcept { return count_ == capacity(); }

  /// False (and no change) when full.
  bool push(const T& value) {
    if (full()) return false;
    slots_[static_cast<size_t>(tail_)] = value;
    tail_ = next(tail_);
    ++count_;
    return true;
  }

  /// False when empty; otherwise moves the oldest element into `out`.
  bool pop(T& out) {
    if (empty()) return false;
    out = std::move(slots_[static_cast<size_t>(head_)]);
    head_ = next(head_);
    --count_;
    return true;
  }

  /// Drop the oldest element (no-op when empty). Returns whether one was
  /// dropped — the DropOldest overflow policy.
  bool drop_front() {
    if (empty()) return false;
    head_ = next(head_);
    --count_;
    return true;
  }

  const T& front() const { return slots_[static_cast<size_t>(head_)]; }

  void clear() noexcept {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  Index next(Index i) const noexcept {
    return i + 1 == capacity() ? 0 : i + 1;
  }

  std::vector<T> slots_;
  Index head_ = 0;
  Index tail_ = 0;
  Index count_ = 0;
};

}  // namespace evd::runtime
