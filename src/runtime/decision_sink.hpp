// Bounded decision storage for streaming sessions.
//
// The original StreamSession contract exposed `decisions()` as an unbounded
// vector — fine for a bench that replays one recording, fatal for a serving
// process that stays up: an SNN session ticking at 1 kHz accumulates
// ~86 M decisions/day. The sink replaces that with two explicit modes of
// consumption:
//
//   drain(out)  — move-out everything emitted since the last drain. This is
//                 the serving API: a consumer that drains regularly sees
//                 every decision exactly once and storage stays at O(drain
//                 interval), not O(stream length).
//   retained()  — the most recent decisions, kept for callers that inspect
//                 history after the fact (the comparison harness, benches).
//                 At least the last `retain` decisions are available, and at
//                 most 2*retain are ever stored: eviction compacts the
//                 buffer by halves so the amortised per-emit cost stays O(1)
//                 without a ring's wraparound complicating span views.
//
// Decisions evicted before any drain saw them are counted in
// `dropped()` — silence about data loss is the one thing a bounded buffer
// must not do.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "fault/checkpoint.hpp"
#include "obs/metrics.hpp"

namespace evd::runtime {

class DecisionSink {
 public:
  /// `retain` <= 0 falls back to 1. Storage is reserved to 2*retain once,
  /// here — emit() never reallocates.
  explicit DecisionSink(Index retain);

  /// Append a decision; evicts from the front (oldest first) when the
  /// 2*retain bound is reached. No heap allocation after construction.
  void emit(const core::Decision& d);

  /// Move all not-yet-drained decisions into `out` (appended); returns how
  /// many were moved. Drained decisions remain visible via retained() until
  /// eviction catches up with them.
  Index drain(std::vector<core::Decision>& out);

  /// Everything currently stored, oldest first. Stable until the next
  /// emit(). Size is in [min(total, retain), 2*retain].
  const std::vector<core::Decision>& retained() const noexcept {
    return buffer_;
  }

  /// Total decisions ever emitted.
  std::int64_t total() const noexcept { return total_; }
  /// Decisions evicted before any drain() consumed them.
  std::int64_t dropped() const noexcept { return dropped_; }
  /// Decisions evicted from the buffer at all (drained or not).
  std::int64_t evicted() const noexcept { return evicted_; }
  Index retain_limit() const noexcept { return retain_; }

  /// Mirror eviction accounting into registry counters: `evicted` counts
  /// every decision compacted out of the buffer, `dropped` only those no
  /// drain() had consumed — data loss, the serving-level alert signal.
  void bind_obs(obs::Counter evicted, obs::Counter dropped) {
    evicted_counter_ = evicted;
    dropped_counter_ = dropped;
  }

  /// Checkpoint the sink's complete state (buffer, drain cursor, counters)
  /// so a restored session's decisions()/drain()/stats() are byte-for-byte
  /// those of the session at checkpoint time.
  void save(fault::CheckpointWriter& w) const;
  /// Restores a checkpoint taken from a sink with the same retain limit
  /// (Error(CheckpointMismatch) otherwise).
  void load(fault::CheckpointReader& r);

 private:
  Index retain_;
  std::vector<core::Decision> buffer_;
  Index drain_cursor_ = 0;  ///< Index into buffer_ of first undrained decision.
  std::int64_t total_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t evicted_ = 0;
  obs::Counter evicted_counter_;  ///< Inert until bind_obs().
  obs::Counter dropped_counter_;
};

}  // namespace evd::runtime
