// Arena allocation for streaming sessions.
//
// A session's scratch — the CNN frame accumulator window, the SNN input
// bitmap, the GNN neighbour buffer — is acquired exactly once, at
// open_session, from a fixed-size ArenaAllocator. The steady-state feed()
// path then only ever writes into memory it already owns: zero heap
// allocations per event, no allocator contention between concurrent
// sessions, and a hard bound on per-session memory that the SessionManager
// can budget against.
//
// The arena is deliberately monotonic (bump-pointer, no per-block free):
// session scratch has a single lifetime — the session's — so reset() is the
// only reclamation anyone needs. Exhaustion throws at open_session time,
// never mid-stream.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace evd::runtime {

class ArenaAllocator {
 public:
  /// Reserves `capacity_bytes` upfront; this is the only heap allocation
  /// the arena ever performs.
  explicit ArenaAllocator(std::size_t capacity_bytes);
  ~ArenaAllocator();

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Alignment of the arena's backing block: one cache line, which also
  /// satisfies any vector-register alignment the simd kernels could want.
  /// Offset-based alignment below is exact because every request divides it.
  static constexpr std::size_t kBaseAlignment = 64;
  /// Default per-allocation alignment: one full AVX2 vector register, so
  /// float buffers handed to the evd::simd kernels start on a lane boundary
  /// without callers having to ask.
  static constexpr std::size_t kDefaultAlignment = 32;

  /// Bump-allocate `bytes` at `alignment` (power of two, at most
  /// kBaseAlignment). Throws std::bad_alloc when the arena is exhausted —
  /// sized-at-open means this can only happen during session construction,
  /// not on the feed path.
  void* allocate(std::size_t bytes, std::size_t alignment = kDefaultAlignment);

  /// Typed span of `count` default-constructed T at the default (vector)
  /// alignment — never less than alignof(T). T must be trivially
  /// destructible: the arena never runs destructors.
  template <typename T>
  std::span<T> allocate_span(Index count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (count <= 0) return {};
    constexpr std::size_t align =
        alignof(T) > kDefaultAlignment ? alignof(T) : kDefaultAlignment;
    T* data = static_cast<T*>(
        allocate(static_cast<std::size_t>(count) * sizeof(T), align));
    for (Index i = 0; i < count; ++i) new (data + i) T{};
    return {data, static_cast<std::size_t>(count)};
  }

  /// Reclaim everything at once (spans handed out before become invalid).
  void reset() noexcept { used_ = 0; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace evd::runtime
