#include "runtime/decision_sink.hpp"

namespace evd::runtime {

DecisionSink::DecisionSink(Index retain) : retain_(retain < 1 ? 1 : retain) {
  buffer_.reserve(static_cast<size_t>(retain_) * 2);
}

void DecisionSink::emit(const core::Decision& d) {
  if (static_cast<Index>(buffer_.size()) >= retain_ * 2) {
    // Compact: keep the newest `retain_` decisions. Erasing half at a time
    // keeps eviction amortised O(1) per emit and leaves retained() a plain
    // contiguous vector.
    const Index evict = static_cast<Index>(buffer_.size()) - retain_;
    if (drain_cursor_ < evict) {
      dropped_ += evict - drain_cursor_;
      dropped_counter_.add(evict - drain_cursor_);
    }
    evicted_ += evict;
    evicted_counter_.add(evict);
    buffer_.erase(buffer_.begin(), buffer_.begin() + evict);
    drain_cursor_ = drain_cursor_ < evict ? 0 : drain_cursor_ - evict;
  }
  buffer_.push_back(d);
  ++total_;
}

Index DecisionSink::drain(std::vector<core::Decision>& out) {
  const Index n = static_cast<Index>(buffer_.size()) - drain_cursor_;
  out.insert(out.end(), buffer_.begin() + drain_cursor_, buffer_.end());
  drain_cursor_ = static_cast<Index>(buffer_.size());
  return n;
}

void DecisionSink::save(fault::CheckpointWriter& w) const {
  w.i64(retain_);
  w.pod_vector(buffer_);  // Decision is trivially copyable
  w.i64(drain_cursor_);
  w.i64(total_);
  w.i64(dropped_);
  w.i64(evicted_);
}

void DecisionSink::load(fault::CheckpointReader& r) {
  const std::int64_t retain = r.i64();
  if (retain != retain_) {
    throw Error(ErrorCode::CheckpointMismatch,
                "DecisionSink retain " + std::to_string(retain_) +
                    " vs checkpointed " + std::to_string(retain));
  }
  r.pod_vector(buffer_);
  if (static_cast<Index>(buffer_.size()) > retain_ * 2) {
    throw Error(ErrorCode::CheckpointCorrupt,
                "DecisionSink buffer exceeds its 2*retain bound");
  }
  drain_cursor_ = r.i64();
  if (drain_cursor_ < 0 || drain_cursor_ > static_cast<Index>(buffer_.size())) {
    throw Error(ErrorCode::CheckpointCorrupt, "DecisionSink cursor out of range");
  }
  total_ = r.i64();
  dropped_ = r.i64();
  evicted_ = r.i64();
}

}  // namespace evd::runtime
